"""Shared substrate of the simulated CFD applications (BT and SP).

BT and SP solve the same 3-D compressible Navier-Stokes discretization and
differ only in how they factor the implicit operator (block-tridiagonal
5x5 systems vs diagonalized scalar pentadiagonal systems).  Everything
upstream of the solves is textually identical in bt.f and sp.f and lives
here once:

* :mod:`repro.cfd.constants` -- the ``set_constants`` scalar soup;
* :mod:`repro.cfd.exact` -- the polynomial exact solution;
* :mod:`repro.cfd.initialize` -- transfinite-interpolation initial state
  with exact boundary values;
* :mod:`repro.cfd.exact_rhs` -- the forcing term that makes the exact
  solution stationary;
* :mod:`repro.cfd.rhs` -- ``compute_rhs`` (fluxes + 4th-order dissipation),
  slab-parallel over the outermost grid dimension;
* :mod:`repro.cfd.norms` -- solution-error and residual norms used by
  verification.

Arrays are C-ordered ``(nz, ny, nx, 5)`` -- the linearized-array layout the
paper adopts after finding multidimensional Java arrays 2-3x slower.
"""

from repro.cfd.constants import CFDConstants
from repro.cfd.exact import CE, exact_solution
from repro.cfd.exact_rhs import compute_forcing
from repro.cfd.initialize import initialize
from repro.cfd.norms import error_norm, rhs_norm

__all__ = [
    "CFDConstants",
    "CE",
    "exact_solution",
    "initialize",
    "compute_forcing",
    "error_norm",
    "rhs_norm",
]
