"""The BT/SP/LU polynomial exact solution.

The simulated CFD applications verify against an analytic field: each of
the five conserved quantities is a sum of cubic polynomials in xi, eta and
zeta with the coefficient matrix ``ce`` fixed by the NPB specification.
"""

from __future__ import annotations

import numpy as np

#: ce(m, 1..13) from set_constants, 0-based here as CE[m, 0..12].
CE = np.array([
    [2.0, 0.0, 0.0, 4.0, 5.0, 3.0, 0.5, 0.02, 0.01, 0.03, 0.5, 0.4, 0.3],
    [1.0, 0.0, 0.0, 0.0, 1.0, 2.0, 3.0, 0.01, 0.03, 0.02, 0.4, 0.3, 0.5],
    [2.0, 2.0, 0.0, 0.0, 0.0, 2.0, 3.0, 0.04, 0.03, 0.05, 0.3, 0.5, 0.4],
    [2.0, 2.0, 0.0, 0.0, 0.0, 2.0, 3.0, 0.03, 0.05, 0.04, 0.2, 0.1, 0.3],
    [5.0, 4.0, 3.0, 2.0, 0.1, 0.4, 0.3, 0.05, 0.04, 0.03, 0.1, 0.3, 0.2],
])


def exact_solution(xi, eta, zeta) -> np.ndarray:
    """Exact solution at (xi, eta, zeta); broadcasts over array inputs.

    Returns an array of shape ``broadcast(xi,eta,zeta).shape + (5,)``.
    Horner grouping matches the Fortran ``exact_solution`` statement.
    """
    xi = np.asarray(xi, dtype=np.float64)
    eta = np.asarray(eta, dtype=np.float64)
    zeta = np.asarray(zeta, dtype=np.float64)
    shape = np.broadcast_shapes(xi.shape, eta.shape, zeta.shape)
    out = np.empty(shape + (5,))
    for m in range(5):
        c = CE[m]
        out[..., m] = (
            c[0]
            + xi * (c[1] + xi * (c[4] + xi * (c[7] + xi * c[10])))
            + eta * (c[2] + eta * (c[5] + eta * (c[8] + eta * c[11])))
            + zeta * (c[3] + zeta * (c[6] + zeta * (c[9] + zeta * c[12])))
        )
    return out


def grid_coordinates(n: int, dm1: float) -> np.ndarray:
    """Grid coordinates ``i * dm1`` for i = 0..n-1 (the Fortran idiom)."""
    return np.arange(n, dtype=np.float64) * dm1


def exact_field(nx: int, ny: int, nz: int, dnxm1: float, dnym1: float,
                dnzm1: float) -> np.ndarray:
    """Exact solution on the full grid, shape (nz, ny, nx, 5)."""
    xi = grid_coordinates(nx, dnxm1)[None, None, :]
    eta = grid_coordinates(ny, dnym1)[None, :, None]
    zeta = grid_coordinates(nz, dnzm1)[:, None, None]
    return exact_solution(xi, eta, zeta)
