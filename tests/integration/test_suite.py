"""Integration tests: the full suite through the public API."""

import pytest

from repro import run_benchmark
from repro.core.registry import get_benchmark
from repro.team import ProcessTeam, SerialTeam


class TestFullSuiteClassS:
    @pytest.mark.parametrize("name", ["BT", "SP", "LU", "FT", "MG", "CG",
                                      "IS", "EP"])
    def test_serial_class_s_verifies(self, name):
        result = run_benchmark(name, "S")
        assert result.verified, result.verification.summary()
        assert result.time_seconds > 0
        assert result.mops > 0

    def test_result_record_fields(self):
        result = run_benchmark("CG", "S")
        assert result.name == "CG"
        assert result.problem_class == "S"
        assert result.backend == "serial"
        assert result.nworkers == 1
        assert result.niter == 15
        assert "total" in result.timers
        assert "SUCCESSFUL" in result.banner()

    def test_run_is_repeatable(self):
        first = run_benchmark("MG", "S")
        second = run_benchmark("MG", "S")
        assert first.verification.checks[0][1] == \
            second.verification.checks[0][1]


class TestBackendAgreement:
    """Serial and one-worker parallel backends must agree bitwise; the
    verification values prove multi-worker agreement within tolerance."""

    @pytest.mark.parametrize("name", ["CG", "MG", "FT"])
    def test_process_two_workers_verifies(self, name):
        result = run_benchmark(name, "S", "process", 2)
        assert result.verified

    @pytest.mark.parametrize("name", ["SP", "IS", "EP"])
    def test_threads_two_workers_verifies(self, name):
        result = run_benchmark(name, "S", "threads", 2)
        assert result.verified

    def test_benchmark_reuses_team(self):
        with ProcessTeam(2) as team:
            cg = get_benchmark("CG")("S", team)
            first = cg.run()
            mg = get_benchmark("MG")("S", team)
            second = mg.run()
        assert first.verified and second.verified

    def test_default_team_is_serial(self):
        bench = get_benchmark("EP")("S")
        assert isinstance(bench.team, SerialTeam)


@pytest.mark.slow
class TestClassW:
    @pytest.mark.parametrize("name", ["CG", "MG", "FT", "IS", "EP"])
    def test_kernels_class_w_verify(self, name):
        assert run_benchmark(name, "W").verified

    @pytest.mark.parametrize("name", ["BT", "SP", "LU"])
    def test_applications_class_w_verify(self, name):
        assert run_benchmark(name, "W").verified


@pytest.mark.slow
class TestClassA:
    @pytest.mark.parametrize("name", ["CG", "MG", "IS", "EP", "FT"])
    def test_kernels_class_a_verify(self, name):
        assert run_benchmark(name, "A").verified
