"""Scalability study: measured backends on this host + modeled machines.

Part 1 measures the CG and MG timed regions under the serial, thread, and
process backends at increasing worker counts on the local machine (on a
single-CPU container the curves are flat or worse -- the honest result).

Part 2 asks the machine models for the same curves on the paper's SMPs,
reproducing section 5.2: BT/SP/LU reach speedup 6-12 at 16 threads, LU
trails BT/SP, CG needs the warm-up-load fix, and the Linux PC shows no
speedup at 2 threads.
"""

import os
import time

from repro.core.registry import get_benchmark
from repro.machines import machine, speedup_curve
from repro.team import make_team


def measure(name: str, problem_class: str, backend: str,
            nworkers: int) -> float:
    cls = get_benchmark(name)
    with make_team(backend, nworkers) as team:
        bench = cls(problem_class, team)
        bench.setup()
        start = time.perf_counter()
        bench._iterate()
        elapsed = time.perf_counter() - start
        assert bench.verify().verified
        return elapsed


def part1_measured() -> None:
    ncpus = os.cpu_count() or 1
    print(f"Measured on this host ({ncpus} CPU(s)); class S timed regions")
    for name in ("CG", "MG"):
        serial = measure(name, "S", "serial", 1)
        print(f"\n  {name}.S serial: {serial:.3f}s")
        for backend in ("threads", "process"):
            for workers in (1, 2, 4):
                t = measure(name, "S", backend, workers)
                print(f"    {backend:>8} x{workers}: {t:.3f}s  "
                      f"(speedup {serial / t:.2f})")


def part2_modeled() -> None:
    print("\nModeled on the paper's machines (class A)")
    o2k = machine("origin2000")
    for name in ("BT", "SP", "LU", "FT", "MG"):
        curve = speedup_curve(o2k, name, "A")
        print(f"  Origin2000 {name}.A Java: "
              + "  ".join(f"{p}thr={s:.1f}" for p, s in curve.items()))
    cg_plain = speedup_curve(o2k, "CG", "A")[16]
    cg_fixed = speedup_curve(o2k, "CG", "A", warmup_load=True)[16]
    print(f"  Origin2000 CG.A @16 threads: {cg_plain:.1f} without the "
          f"warm-up fix, {cg_fixed:.1f} with it")
    pc = machine("linux-pc")
    print(f"  Linux PC BT.A @2 threads: speedup "
          f"{speedup_curve(pc, 'BT', 'A')[2]:.2f} (the paper saw none)")


if __name__ == "__main__":
    part1_measured()
    part2_modeled()
