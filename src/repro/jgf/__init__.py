"""Java Grande Forum kernels: resolving the paper's section 5.1 discrepancy.

The Java Grande Benchmarking Group reported Java within a factor of ~2 of
C/Fortran on "almost all" of its kernels, in sharp contrast with the
paper's 3-12x on the NPB.  The paper traces the difference to workload
mix: the JGF kernels are dominated by transcendental math, irregular
access and data movement -- categories where the Fortran compiler's
regular-stride optimizations buy little -- while the NPB structured-grid
codes live exactly where those optimizations shine (the paper dissects
``lufact``, see :mod:`repro.lufact`; this package covers three more JGF
Section-2 kernels).

Each kernel is implemented in the two roles used throughout this
reproduction (vectorized NumPy = compiled; interpreted loops = the
translated-Java role), self-validated, and classified into the machine
model's operation categories so the JGF-vs-NPB ratio bands can be
compared on the same modeled JVMs (:func:`repro.jgf.study.jgf_ratio_band`).
"""

from repro.jgf.series import series_loops, series_numpy
from repro.jgf.sor import sor_loops, sor_numpy
from repro.jgf.sparsematmult import (
    make_sparse_system,
    sparsematmult_loops,
    sparsematmult_numpy,
)
from repro.jgf.study import JGF_KERNELS, jgf_ratio_band, measured_ratios

__all__ = [
    "series_numpy",
    "series_loops",
    "sor_numpy",
    "sor_loops",
    "sparsematmult_numpy",
    "sparsematmult_loops",
    "make_sparse_system",
    "JGF_KERNELS",
    "jgf_ratio_band",
    "measured_ratios",
]
