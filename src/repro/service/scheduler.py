"""Scheduler: dispatcher threads joining queue, pool, and cache.

One dispatcher thread per pool slot pulls jobs off the
:class:`~repro.service.jobs.JobQueue` in priority order and drives each
through its lifecycle:

1. **cache probe** -- unless the job asked for ``no_cache``, a
   fingerprint hit short-circuits the run: the job goes straight to the
   terminal ``cached`` state carrying the stored record (with the
   provenance of the job that actually computed it).
2. **execute** -- lease a team from the :class:`~repro.service.pool.TeamPool`
   (warm when the spec matches the pool shape, cold otherwise), point
   its ``policy`` at the spec's fault knobs for the duration (per-job
   deadlines and retry ride the existing
   :class:`~repro.runtime.dispatch.FaultPolicy` machinery inside
   ``Team._dispatch`` -- the scheduler adds no second retry layer), run
   the benchmark, release the team.
3. **record** -- stamp the v4 service fields (``job_id``, ``cache_hit``,
   ``queue_wait_seconds``) into the run record, store it in the cache,
   and mark the job ``done`` (or ``failed`` if the benchmark raised).

``drain()`` is the graceful-shutdown half: close the queue (new
submissions are rejected with ``AdmissionRejected``), let dispatchers
finish every already-admitted job, join them, then close the pool.
"""

from __future__ import annotations

import threading
import time
import traceback

from repro.service.cache import ResultCache, provenance
from repro.service.jobs import Job, JobQueue
from repro.service.pool import TeamPool


def _no_update(job: Job) -> None:
    """Default on_update callback: nothing is watching."""


class Scheduler:
    """Runs queued jobs on pooled teams; one dispatcher per pool slot."""

    def __init__(
        self,
        queue: JobQueue,
        pool: TeamPool,
        cache: ResultCache,
        on_update=None,
    ):
        self._queue = queue
        self._pool = pool
        self._cache = cache
        #: callback invoked after every job state change (the service
        #: layer uses it to wake ``wait()`` ers); must be cheap
        self._on_update = on_update if on_update is not None else _no_update
        self._threads: list[threading.Thread] = []
        self._lock = threading.Lock()
        #: optional ChaosInjector (fault-injection tests); None = off
        self.chaos = None
        self.executed = 0
        self.cached = 0
        self.failed = 0
        #: cache-eligible executions that started while the same
        #: fingerprint was already executing cache-eligibly -- exactly
        #: the duplicate work in-flight coalescing exists to remove.
        #: The threaded front end accrues these under concurrent twin
        #: submissions; the async front end must keep this at zero.
        self.duplicate_executions = 0
        self._executing: dict[str, int] = {}
        self.fault_counts: dict[str, int] = {}

    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Spawn the dispatcher threads (idempotent)."""
        if self._threads:
            return
        for i in range(self._pool.size):
            thread = threading.Thread(
                target=self._loop, daemon=True, name=f"npb-dispatcher-{i}"
            )
            self._threads.append(thread)
            thread.start()

    def _loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            try:
                if self.chaos is not None:
                    self.chaos.on_dispatch(job)
                self._execute(job)
            except Exception as exc:  # defensive: a dispatcher must survive
                self._finish(job, "failed", error=f"{type(exc).__name__}: {exc}")

    # ------------------------------------------------------------------ #

    def _finish(
        self,
        job: Job,
        state: str,
        result: dict | None = None,
        error: str | None = None,
    ) -> None:
        job.result = result
        job.error = error
        job.state = state
        job.finished_at = time.time()
        with self._lock:
            if state == "failed":
                self.failed += 1
        self._on_update(job)

    def _execute(self, job: Job) -> None:
        fingerprint = job.spec.fingerprint()
        if not job.no_cache:
            stored = self._cache.get(fingerprint)
            if stored is not None:
                job.cache_hit = True
                job.started_at = time.time()
                record = dict(stored)
                record["job_id"] = job.job_id
                record["cache_hit"] = True
                record["queue_wait_seconds"] = job.queue_wait_seconds
                # v6 provenance is per-response, not per-computation:
                # restamp over whatever the computing job recorded
                record["tenant"] = job.tenant
                record["coalesced_with"] = None
                with self._lock:
                    self.cached += 1
                self._finish(job, "cached", result=record)
                return

        # Duplicate-work accounting: a cache-eligible job whose
        # fingerprint is already executing cache-eligibly is an
        # in-flight twin -- work coalescing would have deduplicated.
        tracked = not job.no_cache
        if tracked:
            with self._lock:
                if self._executing.get(fingerprint, 0) > 0:
                    self.duplicate_executions += 1
                self._executing[fingerprint] = (
                    self._executing.get(fingerprint, 0) + 1
                )

        try:
            team, pooled = self._pool.lease(job.spec.backend, job.spec.workers)
            job.pooled = pooled
            job.state = "running"
            job.started_at = time.time()
            self._on_update(job)
            saved_policy = team.policy
            saved_tier = team.kernel_backend
            job_policy = job.spec.fault_policy()
            try:
                from repro.core.registry import get_benchmark

                if job_policy is not None:
                    team.policy = job_policy
                # Pooled teams outlive one job: select the job's kernel
                # tier for this run and restore the pool default
                # afterwards (the same save/swap/restore as the fault
                # policy above).
                if job.spec.kernel_backend != saved_tier:
                    team.set_kernel_backend(job.spec.kernel_backend)
                benchmark = get_benchmark(job.spec.benchmark)(
                    job.spec.problem_class, team
                )
                result = benchmark.run()
            except Exception:
                self._finish(job, "failed", error=traceback.format_exc())
                return
            finally:
                team.policy = saved_policy
                if team.kernel_backend != saved_tier:
                    team.set_kernel_backend(saved_tier)
                self._pool.release(team, pooled)
        finally:
            if tracked:
                with self._lock:
                    remaining = self._executing.get(fingerprint, 0) - 1
                    if remaining > 0:
                        self._executing[fingerprint] = remaining
                    else:
                        self._executing.pop(fingerprint, None)

        result.job_id = job.job_id
        result.cache_hit = False
        result.queue_wait_seconds = job.queue_wait_seconds
        result.tenant = job.tenant
        result.coalesced_with = None
        record = result.to_dict()
        record["provenance"] = provenance(job.job_id, fingerprint)
        self._cache.put(fingerprint, record)
        with self._lock:
            self.executed += 1
            for kind, count in result.fault_counts.items():
                self.fault_counts[kind] = self.fault_counts.get(kind, 0) + count
        self._finish(job, "done", result=record)

    # ------------------------------------------------------------------ #

    def stats(self) -> dict:
        with self._lock:
            return {
                "dispatchers": len(self._threads),
                "executed": self.executed,
                "cached": self.cached,
                "failed": self.failed,
                "duplicate_executions": self.duplicate_executions,
                "fault_counts": dict(self.fault_counts),
            }

    def drain(self, timeout: float | None = 30.0) -> bool:
        """Graceful shutdown: finish admitted jobs, reject new ones.

        Returns True when every dispatcher exited within the timeout.
        """
        self._queue.close()
        clean = True
        for thread in self._threads:
            thread.join(timeout)
            clean = clean and not thread.is_alive()
        self._pool.close(timeout)
        return clean
