"""Scheduler: dispatcher threads joining queue, pool, and cache.

One dispatcher thread per pool slot pulls jobs off the
:class:`~repro.service.jobs.JobQueue` in priority order and drives each
through its lifecycle:

1. **cache probe** -- unless the job asked for ``no_cache``, a
   fingerprint hit short-circuits the run: the job goes straight to the
   terminal ``cached`` state carrying the stored record (with the
   provenance of the job that actually computed it).
2. **execute** -- lease a team from the :class:`~repro.service.pool.TeamPool`
   (warm when the spec matches the pool shape, cold otherwise), point
   its ``policy`` at the spec's fault knobs for the duration (per-job
   deadlines and retry ride the existing
   :class:`~repro.runtime.dispatch.FaultPolicy` machinery inside
   ``Team._dispatch`` -- the scheduler adds no second retry layer), run
   the benchmark, release the team.
3. **record** -- stamp the v4 service fields (``job_id``, ``cache_hit``,
   ``queue_wait_seconds``) into the run record, store it in the cache,
   and mark the job ``done`` (or ``failed`` if the benchmark raised).

``drain()`` is the graceful-shutdown half: close the queue (new
submissions are rejected with ``AdmissionRejected``), let dispatchers
finish every already-admitted job, join them, then close the pool.
"""

from __future__ import annotations

import threading
import time
import traceback

from repro.obs.spans import get_span_store, spans_from_team_trace
from repro.obs.trace import use_trace
from repro.service.cache import ResultCache, provenance
from repro.service.jobs import Job, JobQueue
from repro.service.pool import TeamPool


def _no_update(job: Job) -> None:
    """Default on_update callback: nothing is watching."""


class Scheduler:
    """Runs queued jobs on pooled teams; one dispatcher per pool slot."""

    def __init__(
        self,
        queue: JobQueue,
        pool: TeamPool,
        cache: ResultCache,
        on_update=None,
    ):
        self._queue = queue
        self._pool = pool
        self._cache = cache
        #: callback invoked after every job state change (the service
        #: layer uses it to wake ``wait()`` ers); must be cheap
        self._on_update = on_update if on_update is not None else _no_update
        self._threads: list[threading.Thread] = []
        self._lock = threading.Lock()
        #: optional ChaosInjector (fault-injection tests); None = off
        self.chaos = None
        self.executed = 0
        self.cached = 0
        self.failed = 0
        #: cache-eligible executions that started while the same
        #: fingerprint was already executing cache-eligibly -- exactly
        #: the duplicate work in-flight coalescing exists to remove.
        #: The threaded front end accrues these under concurrent twin
        #: submissions; the async front end must keep this at zero.
        self.duplicate_executions = 0
        self._executing: dict[str, int] = {}
        self.fault_counts: dict[str, int] = {}

    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Spawn the dispatcher threads (idempotent)."""
        if self._threads:
            return
        for i in range(self._pool.size):
            thread = threading.Thread(
                target=self._loop, daemon=True, name=f"npb-dispatcher-{i}"
            )
            self._threads.append(thread)
            thread.start()

    def _loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            try:
                self._execute(job)
            except Exception as exc:  # defensive: a dispatcher must survive
                self._finish(job, "failed", error=f"{type(exc).__name__}: {exc}")

    # ------------------------------------------------------------------ #

    def _finish(
        self,
        job: Job,
        state: str,
        result: dict | None = None,
        error: str | None = None,
    ) -> None:
        job.result = result
        job.error = error
        job.state = state
        job.finished_at = time.time()
        with self._lock:
            if state == "failed":
                self.failed += 1
        self._on_update(job)

    # ------------------------------------------------------------------ #
    # tracing helpers (no-ops for untraced jobs)

    def _chaos_mark(self) -> int:
        return len(self.chaos.events) if self.chaos is not None else 0

    def _attach_chaos_events(self, span, mark: int) -> None:
        """Turn faults injected since ``mark`` into events on ``span``.

        This is what lets a chaos run's trace prove *which* span
        absorbed each injected fault.
        """
        if span is None or self.chaos is None:
            return
        for event in list(self.chaos.events)[mark:]:
            span.add_event(
                f"chaos.{event['kind']}",
                point=event["point"],
                detail=event.get("detail", ""),
            )

    def _execute(self, job: Job) -> None:
        trace = job.trace
        traced = trace is not None and trace.sampled
        store = get_span_store() if traced else None
        sched_span = run_ctx = None
        if traced:
            sched_span, run_ctx = store.start_span(
                "schedule",
                ctx=trace,
                attrs={
                    "job_id": job.job_id,
                    "benchmark": job.spec.benchmark,
                    "problem_class": job.spec.problem_class,
                    "backend": job.spec.backend,
                    "workers": job.spec.workers,
                },
            )
            # queue wait happened before this dispatcher picked the job
            # up; backdate the span to admission so the tree shows it
            wait_span, _ = store.start_span(
                "queue.wait",
                ctx=run_ctx,
                started_at=job.queued_at or sched_span.started_at,
            )
            wait_span.end()
        chaos_mark = self._chaos_mark()
        if self.chaos is not None:
            self.chaos.on_dispatch(job)
        self._attach_chaos_events(sched_span, chaos_mark)

        fingerprint = job.spec.fingerprint()
        if not job.no_cache:
            probe_span = None
            if traced:
                probe_span, _ = store.start_span("cache.probe", ctx=run_ctx)
            chaos_mark = self._chaos_mark()
            stored = self._cache.get(fingerprint)
            if probe_span is not None:
                probe_span.attrs["hit"] = stored is not None
                self._attach_chaos_events(probe_span, chaos_mark)
                probe_span.end()
            if stored is not None:
                job.cache_hit = True
                job.started_at = time.time()
                record = dict(stored)
                record["job_id"] = job.job_id
                record["cache_hit"] = True
                record["queue_wait_seconds"] = job.queue_wait_seconds
                # v6 provenance is per-response, not per-computation:
                # restamp over whatever the computing job recorded
                record["tenant"] = job.tenant
                record["coalesced_with"] = None
                if traced:
                    record["trace_id"] = trace.trace_id
                    sched_span.end()
                with self._lock:
                    self.cached += 1
                self._finish(job, "cached", result=record)
                return

        # Duplicate-work accounting: a cache-eligible job whose
        # fingerprint is already executing cache-eligibly is an
        # in-flight twin -- work coalescing would have deduplicated.
        tracked = not job.no_cache
        if tracked:
            with self._lock:
                if self._executing.get(fingerprint, 0) > 0:
                    self.duplicate_executions += 1
                self._executing[fingerprint] = (
                    self._executing.get(fingerprint, 0) + 1
                )

        try:
            lease_span = None
            if traced:
                lease_span, _ = store.start_span("pool.lease", ctx=run_ctx)
            chaos_mark = self._chaos_mark()
            team, pooled = self._pool.lease(job.spec.backend, job.spec.workers)
            if lease_span is not None:
                lease_span.attrs["pooled"] = pooled
                lease_span.attrs["team"] = type(team).__name__
                self._attach_chaos_events(lease_span, chaos_mark)
                lease_span.end()
            job.pooled = pooled
            job.state = "running"
            job.started_at = time.time()
            self._on_update(job)
            saved_policy = team.policy
            saved_tier = team.kernel_backend
            job_policy = job.spec.fault_policy()
            try:
                from repro.core.registry import get_benchmark

                if job_policy is not None:
                    team.policy = job_policy
                # Pooled teams outlive one job: select the job's kernel
                # tier for this run and restore the pool default
                # afterwards (the same save/swap/restore as the fault
                # policy above).
                if job.spec.kernel_backend != saved_tier:
                    team.set_kernel_backend(job.spec.kernel_backend)
                benchmark = get_benchmark(job.spec.benchmark)(
                    job.spec.problem_class, team
                )
                if traced:
                    run_span, region_ctx = store.start_span(
                        "run",
                        ctx=run_ctx,
                        attrs={
                            "benchmark": job.spec.benchmark,
                            "backend": job.spec.backend,
                            "workers": job.spec.workers,
                            "kernel_backend": job.spec.kernel_backend,
                        },
                    )
                    try:
                        # activate the context so Team._dispatch
                        # accumulates per-region / per-worker timing
                        with use_trace(region_ctx):
                            result = benchmark.run()
                    except Exception:
                        run_span.end("error")
                        raise
                    run_span.attrs["verified"] = result.verified
                    run_span.end()
                    store.add_many(
                        spans_from_team_trace(
                            team.take_trace(), result.regions, region_ctx
                        )
                    )
                else:
                    result = benchmark.run()
            except Exception:
                if traced:
                    sched_span.end("error")
                self._finish(job, "failed", error=traceback.format_exc())
                return
            finally:
                team.policy = saved_policy
                if team.kernel_backend != saved_tier:
                    team.set_kernel_backend(saved_tier)
                self._pool.release(team, pooled)
        finally:
            if tracked:
                with self._lock:
                    remaining = self._executing.get(fingerprint, 0) - 1
                    if remaining > 0:
                        self._executing[fingerprint] = remaining
                    else:
                        self._executing.pop(fingerprint, None)

        result.job_id = job.job_id
        result.cache_hit = False
        result.queue_wait_seconds = job.queue_wait_seconds
        result.tenant = job.tenant
        result.coalesced_with = None
        record = result.to_dict()
        record["provenance"] = provenance(job.job_id, fingerprint)
        chaos_mark = self._chaos_mark()
        self._cache.put(fingerprint, record)
        self._attach_chaos_events(sched_span, chaos_mark)
        if traced:
            # stamped after cache.put so the *stored* record stays
            # trace-free (a later hit is a different trace)
            record["trace_id"] = trace.trace_id
            sched_span.end()
        with self._lock:
            self.executed += 1
            for kind, count in result.fault_counts.items():
                self.fault_counts[kind] = self.fault_counts.get(kind, 0) + count
        self._finish(job, "done", result=record)

    # ------------------------------------------------------------------ #

    def stats(self) -> dict:
        with self._lock:
            return {
                "dispatchers": len(self._threads),
                "executed": self.executed,
                "cached": self.cached,
                "failed": self.failed,
                "duplicate_executions": self.duplicate_executions,
                "fault_counts": dict(self.fault_counts),
            }

    def drain(self, timeout: float | None = 30.0) -> bool:
        """Graceful shutdown: finish admitted jobs, reject new ones.

        Returns True when every dispatcher exited within the timeout.
        """
        self._queue.close()
        clean = True
        for thread in self._threads:
            thread.join(timeout)
            clean = clean and not thread.is_alive()
        self._pool.close(timeout)
        return clean
