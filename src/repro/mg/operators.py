"""MG grid operators (mg.f: resid, psinv, rprj3, interp, comm3, norm2u3).

All arrays are C-ordered with axes ``(i3, i2, i1)`` and one ghost layer per
side, so a level with interior ``m`` has shape ``(m+2, m+2, m+2)``.  Each
operator has a ``_slab`` worker parallelized over the outermost interior
dimension ``i3`` -- the decomposition of the OpenMP MG that the paper's
Java threading mirrors -- plus a team-level driver.

Floating-point grouping follows the Fortran statement order term by term so
results match the reference to the last bit modulo slab-boundary reduction
order.
"""

from __future__ import annotations

import numpy as np

from repro.team.base import Team


def comm3(x: np.ndarray) -> None:
    """Periodic ghost-cell exchange, axis i1 then i2 then i3 (comm3)."""
    x[:, :, 0] = x[:, :, -2]
    x[:, :, -1] = x[:, :, 1]
    x[:, 0, :] = x[:, -2, :]
    x[:, -1, :] = x[:, 1, :]
    x[0, :, :] = x[-2, :, :]
    x[-1, :, :] = x[1, :, :]


def zero3(x: np.ndarray) -> None:
    x.fill(0.0)


# --------------------------------------------------------------------- #
# resid: r = v - A u

def _resid_slab(lo: int, hi: int, u, v, r, a) -> None:
    """Residual on interior planes [1+lo, 1+hi).

    The a(1) face term is zero for the NPB coefficients and, following the
    Fortran, is never computed.
    """
    if hi <= lo:
        return
    a0, _, a2, a3 = a
    uc = u[lo : hi + 2]  # the slab plus one halo plane each side
    u1 = (uc[1:-1, :-2, :] + uc[1:-1, 2:, :]
          + uc[:-2, 1:-1, :] + uc[2:, 1:-1, :])
    u2 = (uc[:-2, :-2, :] + uc[:-2, 2:, :]
          + uc[2:, :-2, :] + uc[2:, 2:, :])
    center = uc[1:-1, 1:-1, 1:-1]
    r[1 + lo : 1 + hi, 1:-1, 1:-1] = (
        v[1 + lo : 1 + hi, 1:-1, 1:-1]
        - a0 * center
        - a2 * (u2[:, :, 1:-1] + u1[:, :, :-2] + u1[:, :, 2:])
        - a3 * (u2[:, :, :-2] + u2[:, :, 2:])
    )


def resid(team: Team, u, v, r, a) -> None:
    """r = v - A u (safe when v is r), then ghost exchange on r."""
    team.parallel_for(u.shape[0] - 2, _resid_slab, u, v, r, a)
    comm3(r)


# --------------------------------------------------------------------- #
# psinv: u = u + S r  (the smoother)

def _psinv_slab(lo: int, hi: int, r, u, c) -> None:
    """Smoother update on interior planes [1+lo, 1+hi).

    The c(3) corner term is zero for both NPB coefficient sets and,
    following the Fortran, is never computed.
    """
    if hi <= lo:
        return
    c0, c1, c2, _ = c
    rc = r[lo : hi + 2]
    r1 = (rc[1:-1, :-2, :] + rc[1:-1, 2:, :]
          + rc[:-2, 1:-1, :] + rc[2:, 1:-1, :])
    r2 = (rc[:-2, :-2, :] + rc[:-2, 2:, :]
          + rc[2:, :-2, :] + rc[2:, 2:, :])
    center = rc[1:-1, 1:-1, :]
    u[1 + lo : 1 + hi, 1:-1, 1:-1] += (
        c0 * center[:, :, 1:-1]
        + c1 * (center[:, :, :-2] + center[:, :, 2:] + r1[:, :, 1:-1])
        + c2 * (r2[:, :, 1:-1] + r1[:, :, :-2] + r1[:, :, 2:])
    )


def psinv(team: Team, r, u, c) -> None:
    """u += S r, then ghost exchange on u."""
    team.parallel_for(r.shape[0] - 2, _psinv_slab, r, u, c)
    comm3(u)


# --------------------------------------------------------------------- #
# rprj3: full-weighting restriction fine r -> coarse s

def _fine_slices(lo: int, hi: int, d: int, offset: int) -> slice:
    """Fine-grid slice hitting ``2*jj + 1 - d + offset`` for coarse
    interior indices ``jj`` in [lo, hi) (0-based)."""
    start = 2 * lo + 1 - d + offset
    stop = 2 * (hi - 1) + 1 - d + offset + 1
    return slice(start, stop, 2)


def _rprj3_slab(lo: int, hi: int, r, s, d) -> None:
    """Restriction writing coarse interior planes [1+lo, 1+hi)."""
    if hi <= lo:
        return
    m3j, m2j, m1j = s.shape
    d3, d2, d1 = d
    s3 = {o: _fine_slices(1 + lo, 1 + hi, d3, o) for o in (-1, 0, 1)}
    s2 = {o: _fine_slices(1, m2j - 1, d2, o) for o in (-1, 0, 1)}
    s1 = {o: _fine_slices(1, m1j - 1, d1, o) for o in (-1, 0, 1)}

    def R(o3: int, o2: int, o1: int) -> np.ndarray:
        return r[s3[o3], s2[o2], s1[o1]]

    # x1/y1 are the lateral sums of the Fortran at i1-1 and i1+1; x2/y2 the
    # same sums at the center i1.  Grouping follows the Fortran statements.
    def x1(o1: int) -> np.ndarray:
        return R(0, -1, o1) + R(0, 1, o1) + R(-1, 0, o1) + R(1, 0, o1)

    def y1(o1: int) -> np.ndarray:
        return R(-1, -1, o1) + R(1, -1, o1) + R(-1, 1, o1) + R(1, 1, o1)

    # Weights sum to 4: the factor that rescales the residual of the
    # unscaled NPB stencil from grid h to grid 2h.
    s[1 + lo : 1 + hi, 1:-1, 1:-1] = (
        0.5 * R(0, 0, 0)
        + 0.25 * (R(0, 0, -1) + R(0, 0, 1) + x1(0))
        + 0.125 * (x1(-1) + x1(1) + y1(0))
        + 0.0625 * (y1(-1) + y1(1))
    )


def rprj3(team: Team, r, s) -> None:
    """Restrict fine residual r to coarse grid s, then exchange ghosts."""
    d = tuple(2 if mk == 3 else 1 for mk in r.shape)
    team.parallel_for(s.shape[0] - 2, _rprj3_slab, r, s, d)
    comm3(s)


# --------------------------------------------------------------------- #
# interp: trilinear prolongation, u += P z

def _interp_slab(lo: int, hi: int, z, u) -> None:
    """Prolongation for coarse planes cz3 in [lo, hi) (0-based, up to mm3-1),
    writing fine planes 2*cz3 and 2*cz3+1."""
    if hi <= lo:
        return
    mm3, mm2, mm1 = z.shape
    a = slice(lo, hi)          # coarse i3
    ap = slice(lo + 1, hi + 1)  # coarse i3+1
    # Fortran z1/z2/z3 lateral sums (statement order preserved):
    z1 = z[a, 1:, :] + z[a, :-1, :]
    z2 = z[ap, :-1, :] + z[a, :-1, :]
    z3 = z[ap, 1:, :] + z[ap, :-1, :] + z1

    fe3 = slice(2 * lo, 2 * (hi - 1) + 1, 2)       # fine even planes 2*cz3
    fo3 = slice(2 * lo + 1, 2 * (hi - 1) + 2, 2)   # fine odd planes 2*cz3+1
    fe = slice(0, 2 * (mm2 - 2) + 1, 2)            # fine even rows/cols
    fo = slice(1, 2 * (mm2 - 2) + 2, 2)            # fine odd rows/cols
    c = slice(0, mm1 - 1)                          # coarse i1
    cp = slice(1, mm1)                             # coarse i1+1

    u[fe3, fe, fe] += z[a, :-1, c]
    u[fe3, fe, fo] += 0.5 * (z[a, :-1, cp] + z[a, :-1, c])
    u[fe3, fo, fe] += 0.5 * z1[:, :, c]
    u[fe3, fo, fo] += 0.25 * (z1[:, :, c] + z1[:, :, cp])
    u[fo3, fe, fe] += 0.5 * z2[:, :, c]
    u[fo3, fe, fo] += 0.25 * (z2[:, :, c] + z2[:, :, cp])
    u[fo3, fo, fe] += 0.25 * z3[:, :, c]
    u[fo3, fo, fo] += 0.125 * (z3[:, :, c] + z3[:, :, cp])


def interp(team: Team, z, u) -> None:
    """u += P z.  No ghost exchange here, exactly as in the serial mg.f
    (the following resid/psinv re-establish the ghosts they produce)."""
    if 3 in u.shape:
        raise NotImplementedError(
            "interp onto a size-3 grid (interior 1) is not reachable for "
            "the NPB problem classes"
        )
    team.parallel_for(z.shape[0] - 1, _interp_slab, z, u)


# --------------------------------------------------------------------- #
# norm2u3

def _norm_slab(lo: int, hi: int, r) -> tuple[float, float]:
    """Partial (sum of squares, max abs) over interior planes [1+lo, 1+hi)."""
    if hi <= lo:
        return 0.0, 0.0
    interior = r[1 + lo : 1 + hi, 1:-1, 1:-1]
    return float(np.sum(interior * interior)), float(np.max(np.abs(interior)))


def norm2u3(team: Team, r, nx: int, ny: int, nz: int) -> tuple[float, float]:
    """L2 norm (per-point) and max norm of the interior (norm2u3)."""
    partials = team.parallel_for(r.shape[0] - 2, _norm_slab, r)
    total = sum(p[0] for p in partials)
    rnmu = max(p[1] for p in partials)
    rnm2 = float(np.sqrt(total / (float(nx) * ny * nz)))
    return rnm2, rnmu
