"""Thread backend: the paper's master--worker scheme with wait()/notify().

Section 4 of the paper: every benchmark object is a thread; the master
switches workers between blocked and runnable states with ``wait()`` and
``notify()``.  Here each worker blocks on a shared condition variable until
the master publishes a new task generation, executes its slab, and reports
completion; the master's dispatch returns only when all workers have
checked in (the barrier).

Python's GIL serializes interpreted bytecode, but NumPy kernels release the
GIL, so slab-level NumPy work can overlap.  On this suite the backend's role
is structural fidelity (overhead and synchronization behaviour) rather than
raw speedup -- the process backend is the true-parallelism path.

The task/result/error bookkeeping lives in the shared dispatch core
(:meth:`repro.team.base.Team._dispatch`); this module provides only the
condition-variable transport.
"""

from __future__ import annotations

import threading
import time
import warnings
from typing import Callable

from repro.runtime.dispatch import WorkerReply
from repro.runtime.plan import Bounds
from repro.team.base import Team


class ThreadTeam(Team):
    """Persistent worker threads coordinated by a condition variable."""

    backend = "threads"

    def __init__(self, nworkers: int, join_timeout: float = 5.0):
        super().__init__(nworkers)
        self._join_timeout = join_timeout
        self._cond = threading.Condition()
        self._generation = 0
        self._pending = 0
        self._task: tuple[Callable, Bounds, tuple] | None = None
        self._replies: list[WorkerReply | None] = [None] * nworkers
        self._shutdown = False
        self._threads = [
            threading.Thread(
                target=self._worker_loop, args=(rank,), daemon=True,
                name=f"npb-worker-{rank}",
            )
            for rank in range(nworkers)
        ]
        for t in self._threads:
            t.start()

    # ------------------------------------------------------------------ #

    def _worker_loop(self, rank: int) -> None:
        seen = 0
        while True:
            with self._cond:
                # blocked state: wait() until the master notify()s a new task
                while self._generation == seen and not self._shutdown:
                    self._cond.wait()
                if self._shutdown:
                    return
                seen = self._generation
                fn, bounds, args = self._task
            a, b = bounds[rank]
            started_at = time.perf_counter()
            try:
                ok, value = True, fn(a, b, *args)
            except BaseException as exc:  # captured; the core re-raises
                ok, value = False, exc
            finished_at = time.perf_counter()
            reply = WorkerReply(rank, ok, value, started_at, finished_at)
            with self._cond:
                self._replies[rank] = reply
                self._pending -= 1
                if self._pending == 0:
                    self._cond.notify_all()

    def _transport(self, fn: Callable, bounds: Bounds,
                   args: tuple) -> list[WorkerReply]:
        with self._cond:
            self._task = (fn, bounds, args)
            self._replies = [None] * self._nworkers
            self._pending = self._nworkers
            self._generation += 1
            self._cond.notify_all()  # runnable state
            while self._pending > 0:
                self._cond.wait()
            return list(self._replies)

    # ------------------------------------------------------------------ #

    def close(self) -> None:
        with self._cond:
            if self._shutdown:
                return
            self._shutdown = True
            self._cond.notify_all()
        super().close()
        leaked = []
        for t in self._threads:
            t.join(timeout=self._join_timeout)
            if t.is_alive():
                leaked.append(t.name)
        if leaked:
            warnings.warn(
                f"ThreadTeam.close: worker threads failed to join within "
                f"{self._join_timeout}s and were leaked (daemon): {leaked}",
                RuntimeWarning,
                stacklevel=2,
            )
