"""Command-line interface (``npb`` console script / ``python -m repro``).

Subcommands::

    npb run BT -c S -b process -w 4    run one benchmark (--json for a
                                       structured run record)
    npb verify -c S                    run + verify the whole suite
    npb profile LU -c S                per-region overhead breakdown
    npb bench --quick --repeat 3       append a BENCH_<seq>.json record
                                       to the perf trajectory
    npb bench --compare BASE.json      noise-aware regression gate
    npb table 3 [--measured] [-c A]    regenerate a paper table
    npb tables [--measured]            regenerate all seven tables
    npb serve --pool 2 --port 8642     long-lived benchmark job service
                                       (queue + warm team pool + cache)
    npb shard-serve --spawn 2          consistent-hash coordinator over N
                                       worker daemons (spawned or --shard
                                       URL); same HTTP API as serve
    npb submit CG -c S --url URL       submit a job to a running service
    npb jobs [JOB_ID] --url URL        service status / job inspection
    npb loadgen --url URL -C 1,2,4     closed/open-loop traffic harness;
                                       appends LOADGEN_<seq>.json records
    npb loadgen --compare BASE.json    noise-aware SLO/latency gate
    npb chaos --seed 7 --shards 2      deterministic fault-injection run:
                                       loadgen mix against a spawned
                                       sharded service under a seeded
                                       fault schedule; checks the
                                       admitted-jobs invariant and
                                       appends a CHAOS_<seq>.json record
    npb backends [--json]              list kernel tiers, per-kernel
                                       coverage, and availability
    npb list                           list benchmarks and classes

Kernel tiers: ``run``/``verify``/``profile``/``bench``/``serve``/
``submit`` accept ``--kernel-backend {reference,fused,compiled}``
(default ``fused``); see :mod:`repro.kernels.registry`.

Exit codes
----------
The single authoritative table -- every subcommand returns one of these
(asserted by ``tests/harness/test_cli_verify.py``):

====  =================================================================
code  meaning
====  =================================================================
0     success (``EXIT_OK``): ran, verified, no regression
1     failure (``EXIT_FAILURE``): verification failed, a bench cell
      regressed or was unverified, or a submitted job failed
2     usage (``EXIT_USAGE``): bad arguments (argparse), missing
      comparison candidate, or an unreachable service daemon
3     unrecoverable worker failure (``EXIT_WORKER_FAILURE``): a
      :class:`~repro.runtime.dispatch.WorkerError` escaped the fault-
      tolerance machinery (remote traceback printed)
4     admission rejected (``EXIT_REJECTED``): the service queue is full
      or draining (HTTP 429); back off and resubmit
====  =================================================================
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys

from repro import available_benchmarks, run_benchmark
from repro.common.params import CLASS_ORDER
from repro.kernels.registry import DEFAULT_TIER, REGISTRY, TIERS
from repro.harness.bench import (DEFAULT_ABS_SLACK, DEFAULT_MAD_MULTIPLIER,
                                 DEFAULT_TOLERANCE)
from repro.harness.report import format_table, region_profile_table
from repro.harness.tables import TABLES, generate_table
from repro.runtime.dispatch import FaultPolicy, WorkerError

#: Exit-code table (documented in the module docstring above; keep the
#: two in sync -- the tests assert both).
EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_USAGE = 2
EXIT_WORKER_FAILURE = 3
EXIT_REJECTED = 4

#: Default address of the ``npb serve`` daemon.
DEFAULT_SERVICE_URL = "http://127.0.0.1:8642"

#: Default listen port of the ``npb shard-serve`` coordinator.
DEFAULT_COORDINATOR_PORT = 8640

#: Built-in loadgen traffic profile names.  Mirrored here (instead of
#: importing repro.service.loadgen at parser-build time) so `npb --help`
#: stays cheap; tests/service/test_loadgen.py asserts the two stay in
#: sync with repro.service.loadgen.PROFILES.
LOADGEN_PROFILES = ("cache-heavy", "mixed", "smoke")

#: Built-in chaos preset names.  Mirrored from repro.service.chaos.PRESETS
#: for the same parser-build-time reason; tests/service/test_chaos.py
#: asserts the two stay in sync.
CHAOS_PRESETS = ("coordinator", "service")


def _fault_policy(args) -> FaultPolicy | None:
    """Build a FaultPolicy from --dispatch-timeout/--max-retries, if given."""
    timeout = getattr(args, "dispatch_timeout", None)
    retries = getattr(args, "max_retries", None)
    if timeout is None and retries is None:
        return None
    kwargs = {}
    if timeout is not None:
        kwargs["dispatch_timeout"] = timeout
    if retries is not None:
        kwargs["max_retries"] = retries
    return FaultPolicy(**kwargs)


def _warn_tier_fallback(tier: str) -> None:
    """One stderr line when the requested tier cannot fully serve.

    The run proceeds (resolution falls back per kernel, exactly as
    documented); this just makes sure nobody reads a fallback run's
    numbers as the compiled tier's.
    """
    available, reason = REGISTRY.tier_status(tier)
    if not available:
        print(f"npb: kernel backend {tier!r} unavailable ({reason}); "
              f"kernels fall back to the next tier", file=sys.stderr)


def _fault_lines(result) -> str:
    """Per-event fault report lines for the text output."""
    return "\n".join(
        f"  fault: {e['kind']} backend={e['backend']} "
        f"region={e['region']} rank={e['rank']}: {e['detail']}"
        for e in result.faults)


def _cmd_run(args) -> int:
    _warn_tier_fallback(args.kernel_backend)
    result = run_benchmark(args.benchmark.upper(), args.problem_class,
                           args.backend, args.workers,
                           policy=_fault_policy(args),
                           kernel_backend=args.kernel_backend)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(result.banner())
        if args.verbose:
            print(result.verification.summary())
        if result.faults:
            print(_fault_lines(result), file=sys.stderr)
    return 0 if result.verified else 1


def _cmd_verify(args) -> int:
    _warn_tier_fallback(args.kernel_backend)
    failures = 0
    records = []
    for name in available_benchmarks():
        result = run_benchmark(name, args.problem_class, args.backend,
                               args.workers, policy=_fault_policy(args),
                               kernel_backend=args.kernel_backend)
        if args.json:
            records.append(result.to_dict())
        else:
            status = "ok  " if result.verified else "FAIL"
            faults = (f"  [{len(result.faults)} fault(s)]"
                      if result.faults else "")
            print(f"[{status}] {name}.{args.problem_class}  "
                  f"{result.time_seconds:8.2f}s  {result.mops:10.1f} Mop/s"
                  f"{faults}")
            if not result.verified:
                print(result.verification.summary())
        if not result.verified:
            failures += 1
    if args.json:
        print(json.dumps(records, indent=2))
    return 1 if failures else 0


def _cmd_profile(args) -> int:
    import tracemalloc

    from repro.core.registry import get_benchmark
    from repro.team import make_team

    cls = get_benchmark(args.benchmark.upper())
    _warn_tier_fallback(args.kernel_backend)
    if args.alloc and not tracemalloc.is_tracing():
        tracemalloc.start()
    try:
        with make_team(args.backend, args.workers,
                       policy=_fault_policy(args),
                       kernel_backend=args.kernel_backend) as team:
            result = cls(args.problem_class, team).run()
            plan_info = team.plan.cache_info()
    finally:
        if args.alloc and tracemalloc.is_tracing():
            tracemalloc.stop()
    if args.json:
        record = result.to_dict()
        record["plan_cache"] = plan_info
        print(json.dumps(record, indent=2))
    else:
        print(format_table(region_profile_table(result, plan_info)))
        if result.faults:
            print(_fault_lines(result), file=sys.stderr)
    return 0 if result.verified else 1


def _cmd_bench(args) -> int:
    from repro.harness import bench
    from repro.harness.report import bench_compare_table, bench_record_table

    if args.compare:
        baseline = bench.load_record(args.compare)
        candidate_path = args.candidate or bench.latest_record_path(args.dir)
        if candidate_path is None:
            print(f"no BENCH_*.json candidate found in {args.dir!r}; "
                  f"run 'npb bench' first or pass a candidate path",
                  file=sys.stderr)
            return EXIT_USAGE
        candidate = bench.load_record(candidate_path)
        comparison = bench.compare_records(
            baseline, candidate, tolerance=args.tolerance,
            mad_multiplier=args.mad_multiplier, abs_slack=args.abs_slack)
        if args.json:
            print(json.dumps(comparison.as_dict(), indent=2))
        else:
            print(format_table(bench_compare_table(comparison)))
        return 1 if comparison.regressions else 0

    if args.cells:
        cells = [bench.BenchCell.parse(spec)
                 for spec in args.cells.split(",")]
        kernels = []
    elif args.quick:
        cells = bench.QUICK_CELLS
        kernels = bench.QUICK_KERNELS
    else:
        cells = bench.FULL_CELLS
        kernels = bench.FULL_KERNELS
    if args.no_kernels:
        kernels = []
    if args.kernel_backend != DEFAULT_TIER:
        # Re-tier the whole benchmark cell set; the Table-1 basic-op
        # kernels time raw numpy idioms and have no tier to select.
        _warn_tier_fallback(args.kernel_backend)
        cells = [dataclasses.replace(c, kernel_backend=args.kernel_backend)
                 for c in cells]
    progress = None if args.json else print
    record = bench.run_suite(cells, kernels, repeat=args.repeat,
                             quick=args.quick, progress=progress,
                             trace_alloc=args.alloc)
    path = bench.write_record(record, directory=args.dir, path=args.out)
    if args.json:
        print(json.dumps(bench.load_record(path), indent=2))
    else:
        print(format_table(bench_record_table(bench.load_record(path))))
        print(f"wrote {path}")
    unverified = [cell["id"] for cell in record["cells"]
                  if not cell["verified"]]
    if unverified:
        print("UNVERIFIED cells: " + ", ".join(unverified), file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args) -> int:
    import signal
    import threading

    from repro.service import BenchService, make_server

    _warn_tier_fallback(args.kernel_backend)
    chaos = None
    if getattr(args, "chaos_seed", None) is not None:
        from repro.service.chaos import PRESETS, ChaosInjector, ChaosPlan

        plan = ChaosPlan.compile(
            PRESETS[args.chaos_preset](), args.chaos_seed)
        chaos = ChaosInjector(plan)
    service = BenchService(
        backend=args.backend, workers=args.workers,
        pool_size=args.pool, queue_depth=args.queue_depth,
        cache_dir=args.cache_dir, cache_entries=args.cache_entries,
        policy=_fault_policy(args),
        kernel_backend=args.kernel_backend,
        chaos=chaos,
        trace_sample=getattr(args, "trace_sample", 0.0))
    if getattr(args, "async_frontend", False):
        return _serve_async(args, service, chaos)
    httpd = make_server(service, host=args.host, port=args.port,
                        verbose=args.verbose)
    host, port = httpd.server_address[:2]
    print(f"npb service listening on http://{host}:{port} "
          f"(pool {args.pool}x {args.backend} x{args.workers}, "
          f"queue depth {args.queue_depth}, cache {args.cache_dir})",
          flush=True)
    if chaos is not None:
        print(f"npb service chaos enabled (seed {args.chaos_seed}, "
              f"preset {args.chaos_preset}, "
              f"{len(chaos.plan.faults())} planned faults)", flush=True)

    stop = threading.Event()

    def _handle(signum, frame):
        stop.set()

    signal.signal(signal.SIGTERM, _handle)
    signal.signal(signal.SIGINT, _handle)
    server_thread = threading.Thread(target=httpd.serve_forever,
                                     kwargs={"poll_interval": 0.2},
                                     daemon=True)
    server_thread.start()
    stop.wait()
    # Graceful drain: stop accepting connections, finish every admitted
    # job, close all teams, then exit 0 so supervisors see a clean stop.
    print("npb service draining (finishing admitted jobs, rejecting new "
          "submissions)...", flush=True)
    httpd.shutdown()
    server_thread.join(5.0)
    httpd.server_close()
    clean = service.drain(timeout=args.drain_timeout)
    print(f"npb service drained "
          f"{'cleanly' if clean else 'with stuck dispatchers'}", flush=True)
    return EXIT_OK if clean else EXIT_FAILURE


def _serve_async(args, service, chaos) -> int:
    """The ``npb serve --async`` path: one event loop, same service."""
    import asyncio
    import signal

    from repro.service.async_api import serve_async

    weights = {}
    for spec in getattr(args, "tenant_weight", None) or []:
        name, sep, value = spec.partition("=")
        if not sep:
            print(f"npb serve: --tenant-weight {spec!r} is not NAME=WEIGHT",
                  file=sys.stderr)
            return EXIT_USAGE
        try:
            weights[name] = float(value)
        except ValueError:
            print(f"npb serve: --tenant-weight {spec!r} has a non-numeric "
                  f"weight", file=sys.stderr)
            return EXIT_USAGE

    def announce(url: str) -> None:
        print(f"npb service listening on {url} "
              f"(async front end, pool {args.pool}x {args.backend} "
              f"x{args.workers}, queue depth {args.queue_depth}, "
              f"cache {args.cache_dir})", flush=True)
        if chaos is not None:
            print(f"npb service chaos enabled (seed {args.chaos_seed}, "
                  f"preset {args.chaos_preset}, "
                  f"{len(chaos.plan.faults())} planned faults)", flush=True)

    async def main() -> bool:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()

        def _handle() -> None:
            if not stop.is_set():
                print("npb service draining (finishing admitted jobs, "
                      "rejecting new submissions)...", flush=True)
            stop.set()

        loop.add_signal_handler(signal.SIGTERM, _handle)
        loop.add_signal_handler(signal.SIGINT, _handle)
        return await serve_async(
            service,
            host=args.host,
            port=args.port,
            window=args.admission_window,
            quota=args.tenant_quota,
            weights=weights or None,
            verbose=args.verbose,
            announce=announce,
            stop_event=stop,
            drain_timeout=args.drain_timeout,
        )

    clean = asyncio.run(main())
    print(f"npb service drained "
          f"{'cleanly' if clean else 'with stuck dispatchers'}", flush=True)
    return EXIT_OK if clean else EXIT_FAILURE


def _spawn_shard(name: str, args, chaos_seed: int | None = None,
                 chaos_preset: str = "service"):
    """Spawn one ``npb serve`` child daemon; returns ``(child, url)``.

    Spawned shards are real ``npb serve`` child processes on loopback
    ports of the OS's choosing; each announces its address on stdout
    exactly like a hand-started daemon, and we read it from there
    (``url`` is None if the child exited before announcing).  Shared by
    ``npb shard-serve`` and ``npb chaos``.
    """
    import os
    import re
    import subprocess

    cmd = [sys.executable, "-m", "repro", "serve",
           "--host", "127.0.0.1", "--port", "0",
           "--backend", args.backend, "--workers", str(args.workers),
           "--pool", str(args.pool),
           "--queue-depth", str(args.queue_depth),
           "--cache-dir", os.path.join(args.cache_dir, name),
           "--kernel-backend", args.kernel_backend,
           "--drain-timeout", str(args.drain_timeout)]
    if getattr(args, "async_frontend", False):
        cmd.append("--async")
    if getattr(args, "trace_sample", 0.0):
        cmd += ["--trace-sample", str(args.trace_sample)]
    if chaos_seed is not None:
        cmd += ["--chaos-seed", str(chaos_seed),
                "--chaos-preset", chaos_preset]
    child = subprocess.Popen(cmd, stdout=subprocess.PIPE, text=True)
    announce = re.compile(r"listening on (http://\S+)")
    url = None
    for line in child.stdout:
        match = announce.search(line)
        if match:
            url = match.group(1)
            break
    return child, url


def _cmd_shard_serve(args) -> int:
    import signal
    import subprocess
    import threading

    from repro.service.shard import ShardCoordinator, make_shard_server

    shards = {}
    for i, spec in enumerate(args.shard or []):
        name, sep, url = spec.partition("=")
        if not sep:
            name, url = f"shard{i}", spec
        if name in shards:
            print(f"npb shard-serve: duplicate shard name {name!r}",
                  file=sys.stderr)
            return EXIT_USAGE
        shards[name] = url

    children = []

    def _stop_children(sig=signal.SIGTERM):
        for child in children:
            if child.poll() is None:
                child.send_signal(sig)

    if args.spawn:
        _warn_tier_fallback(args.kernel_backend)
    for i in range(args.spawn):
        name = f"shard{len(shards)}"
        child, url = _spawn_shard(name, args)
        children.append(child)
        if url is None:
            print(f"npb shard-serve: spawned shard {name} exited before "
                  f"announcing its address", file=sys.stderr)
            _stop_children()
            return EXIT_USAGE
        shards[name] = url
    if not shards:
        print("npb shard-serve: no shards (pass --shard URL and/or "
              "--spawn N)", file=sys.stderr)
        return EXIT_USAGE

    coordinator = ShardCoordinator(
        shards, replicas=args.replicas,
        health_interval=args.health_interval,
        trace_sample=getattr(args, "trace_sample", 0.0))
    coordinator.start()
    httpd = make_shard_server(coordinator, host=args.host, port=args.port,
                              verbose=args.verbose)
    host, port = httpd.server_address[:2]
    roster = ", ".join(f"{name}={url}" for name, url in shards.items())
    print(f"npb coordinator listening on http://{host}:{port} "
          f"(shards: {roster})", flush=True)

    stop = threading.Event()

    def _handle(signum, frame):
        stop.set()

    signal.signal(signal.SIGTERM, _handle)
    signal.signal(signal.SIGINT, _handle)
    server_thread = threading.Thread(target=httpd.serve_forever,
                                     kwargs={"poll_interval": 0.2},
                                     daemon=True)
    server_thread.start()
    stop.wait()
    # Drain: stop routing first, then SIGTERM the spawned shards so they
    # run their own graceful drain (external --shard daemons are not
    # ours to stop and stay up).
    print("npb coordinator draining (stopping routing, signaling "
          "spawned shards)...", flush=True)
    httpd.shutdown()
    server_thread.join(5.0)
    httpd.server_close()
    coordinator.close()
    _stop_children()
    clean = True
    deadline = args.drain_timeout
    for child in children:
        try:
            child.wait(timeout=max(deadline, 1.0))
        except subprocess.TimeoutExpired:
            child.kill()
            child.wait()
            clean = False
        if child.stdout is not None:
            child.stdout.close()
    print(f"npb coordinator drained "
          f"{'cleanly' if clean else 'with killed shards'}", flush=True)
    return EXIT_OK if clean else EXIT_FAILURE


def _cmd_chaos(args) -> int:
    import signal
    import threading
    import time

    from repro.service import loadgen
    from repro.service import chaos as chaos_mod
    from repro.service.api import ServiceClient, ServiceUnavailable
    from repro.service.shard import ShardCoordinator

    _warn_tier_fallback(args.kernel_backend)
    say = (lambda *a, **k: None) if args.json else print

    # 1. Spawn the shard daemons, each running in-daemon chaos under a
    #    sub-seed derived from the run seed (pure function, so the plan
    #    recorded here matches what the daemon actually compiled).
    children: list = []
    shards: dict[str, str] = {}
    shard_plans: dict[str, chaos_mod.ChaosPlan] = {}
    service_spec = chaos_mod.PRESETS["service"]()

    def _stop_children(sig=signal.SIGTERM):
        for child in children:
            if child.poll() is None:
                child.send_signal(sig)

    for i in range(args.shards):
        name = f"shard{i}"
        sub_seed = chaos_mod.derive_seed(args.seed, name)
        shard_plans[name] = chaos_mod.ChaosPlan.compile(
            service_spec, sub_seed)
        child, url = _spawn_shard(name, args, chaos_seed=sub_seed,
                                  chaos_preset="service")
        children.append(child)
        if url is None:
            print(f"npb chaos: spawned shard {name} exited before "
                  f"announcing its address", file=sys.stderr)
            _stop_children()
            return EXIT_USAGE
        shards[name] = url
        say(f"npb chaos: {name} at {url} (seed {sub_seed}, "
            f"{len(shard_plans[name].faults())} planned faults)")

    # 2. Coordinator (in-process) with the coordinator-level injector.
    ordinal = 1 % args.shards
    plan = chaos_mod.ChaosPlan.compile(
        chaos_mod.coordinator_preset(kill_shard_after=args.kill_at,
                                     kill_shard_ordinal=ordinal),
        args.seed)
    injector = chaos_mod.ChaosInjector(plan)
    coordinator = ShardCoordinator(shards, health_interval=0.5)
    injector.install_coordinator(coordinator)
    coordinator.start()
    say(f"npb chaos: coordinator up over {args.shards} shards "
        f"(seed {args.seed}, {len(plan.faults())} planned faults, "
        f"kill {'shard%d' % ordinal} at submission {args.kill_at})")

    # 3. Drive the loadgen mix; every submission first consumes one
    #    chaos.submit index, which is where the planned SIGKILL of a
    #    whole shard daemon lands mid-traffic.
    kills: list[dict] = []
    kill_lock = threading.Lock()

    def submit(payload):
        fault = injector.on_chaos_submit()
        if fault is not None and fault.kind == "kill_shard":
            victim = int(fault.param or 0) % len(children)
            with kill_lock:
                pid = chaos_mod.kill_process(children[victim])
            if pid is not None:
                kills.append({"kind": "kill_shard", "index": fault.index,
                              "shard": f"shard{victim}", "pid": pid,
                              "at": time.time()})
                say(f"npb chaos: SIGKILLed shard{victim} (pid {pid}) "
                    f"at submission {fault.index}")
        return coordinator.submit(payload)

    profile = loadgen.PROFILES[args.profile]
    sampler = loadgen.RequestSampler(profile, seed=args.seed)
    ledger, elapsed = chaos_mod.drive_traffic(
        submit, sampler, total_requests=args.requests,
        concurrency=args.concurrency, retries=args.retries)
    say(f"npb chaos: {len(ledger)} requests in {elapsed:.1f}s, "
        f"{len(injector.events)} coordinator faults injected")

    # 4. Settle: surviving shards must reach all-terminal job listings
    #    (anything stuck is an invariant violation, not a race).
    deadline = time.monotonic() + args.settle_timeout
    shard_jobs: dict[str, list[dict]] = {}
    while True:
        pending = 0
        shard_jobs = {}
        for name, url in shards.items():
            try:
                _, body = ServiceClient(url, timeout=10.0).jobs()
            except ServiceUnavailable:
                continue  # the killed shard: its jobs died with it
            listing = body.get("jobs", [])
            shard_jobs[name] = listing
            pending += sum(1 for job in listing
                           if job.get("state")
                           not in ("done", "cached", "failed"))
        if pending == 0 or time.monotonic() > deadline:
            break
        time.sleep(0.2)

    shard_chaos: dict[str, dict | None] = {}
    for name, url in shards.items():
        try:
            _, status = ServiceClient(url, timeout=10.0).status()
            shard_chaos[name] = status.get("chaos")
        except ServiceUnavailable:
            shard_chaos[name] = None

    # 5. The invariant, the record, teardown.
    verdict = chaos_mod.InvariantChecker(ledger, shard_jobs).check()
    record = chaos_mod.build_record(
        seed=args.seed,
        config={
            "shards": args.shards, "requests": args.requests,
            "concurrency": args.concurrency, "profile": args.profile,
            "backend": args.backend, "workers": args.workers,
            "pool": args.pool, "queue_depth": args.queue_depth,
            "kernel_backend": args.kernel_backend,
            "kill_at": args.kill_at, "retries": args.retries,
        },
        coordinator_plan=plan,
        shard_plans=shard_plans,
        injected={
            "coordinator": injector.summary()["events"],
            "runner": kills,
            "shards": shard_chaos,
        },
        traffic=chaos_mod.summarize_ledger(ledger, elapsed),
        invariant=verdict,
    )
    record["ledger"] = [entry.as_dict() for entry in ledger]
    path = chaos_mod.write_record(record, directory=args.dir, path=args.out)

    coordinator.close()
    _stop_children()
    for child in children:
        try:
            child.wait(timeout=max(args.drain_timeout, 1.0))
        except Exception:
            child.kill()
            child.wait()
        if child.stdout is not None:
            child.stdout.close()

    if args.json:
        print(json.dumps(chaos_mod.load_record(path), indent=2))
    else:
        for check in verdict["checks"]:
            flag = "ok  " if check["pass"] else "FAIL"
            print(f"[{flag}] {check['name']}: {check['detail']}")
        counts = verdict["counts"]
        print(f"jobs: {counts['done']} done, {counts['cached']} cached, "
              f"{counts['failed']} failed, "
              f"{counts['rejected_429']} rejected, "
              f"{counts['unroutable_503']} unroutable, "
              f"{counts['lost']} lost "
              f"({counts['degraded']} degraded routes)")
        print(f"fault kinds injected: "
              f"{', '.join(record['fault_kinds']) or 'none'}")
        print(f"wrote {path}")
    if len(record["fault_kinds"]) < args.min_fault_kinds:
        print(f"npb chaos: only {len(record['fault_kinds'])} distinct "
              f"fault kinds injected (need {args.min_fault_kinds}); "
              f"raise --requests or change --seed", file=sys.stderr)
        return EXIT_FAILURE
    if not verdict["pass"]:
        print("npb chaos: admitted-jobs invariant VIOLATED",
              file=sys.stderr)
        return EXIT_FAILURE
    return EXIT_OK


def _job_summary(job: dict) -> str:
    lines = [f"job {job['job_id']}  state={job['state']}  "
             f"spec={job['spec']['benchmark']}."
             f"{job['spec']['problem_class']}."
             f"{job['spec']['backend']}.x{job['spec']['workers']}  "
             f"cache_hit={job['cache_hit']}  "
             f"queue_wait={job['queue_wait_seconds']:.4f}s"]
    result = job.get("result")
    if result:
        lines.append(f"  time={result['time_seconds']:.4f}s  "
                     f"mops={result['mops']:.1f}  "
                     f"verified={result['verified']}")
    if job.get("error"):
        lines.append(f"  error: {job['error'].splitlines()[-1]}")
    return "\n".join(lines)


def _cmd_submit(args) -> int:
    from repro.service import ServiceClient, ServiceUnavailable

    client = ServiceClient(args.url, timeout=args.timeout)
    payload = {
        "benchmark": args.benchmark,
        "problem_class": args.problem_class,
        "backend": args.backend,
        "workers": args.workers,
        "priority": args.priority,
        "no_cache": args.no_cache,
        "kernel_backend": args.kernel_backend,
        "wait": not args.no_wait,
    }
    if args.trace:
        payload["trace"] = True
    if args.dispatch_timeout is not None:
        payload["dispatch_timeout"] = args.dispatch_timeout
    if args.max_retries is not None:
        payload["max_retries"] = args.max_retries
    headers = {}
    if args.idempotency_key is not None:
        headers["Idempotency-Key"] = args.idempotency_key
    if args.tenant is not None:
        headers["X-NPB-Tenant"] = args.tenant
    try:
        code, body = client.submit(payload, retries=args.retries,
                                   headers=headers or None)
    except ServiceUnavailable as exc:
        print(f"npb submit: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if code == 429:
        print(f"npb submit: admission rejected after {args.retries} "
              f"retr{'y' if args.retries == 1 else 'ies'}: "
              f"{body.get('error')}", file=sys.stderr)
        return EXIT_REJECTED
    if code not in (200, 202):
        print(f"npb submit: HTTP {code}: {body.get('error')}",
              file=sys.stderr)
        return EXIT_USAGE
    if args.json:
        print(json.dumps(body, indent=2))
    else:
        print(_job_summary(body))
    if args.trace and body.get("job_id") and not args.json:
        print(f"traced: npb trace {body['job_id']} --url {args.url}")
    if args.no_wait:
        return EXIT_OK
    if body.get("state") == "failed":
        return EXIT_FAILURE
    result = body.get("result") or {}
    return EXIT_OK if result.get("verified") else EXIT_FAILURE


def _cmd_jobs(args) -> int:
    from repro.service import ServiceClient, ServiceUnavailable

    client = ServiceClient(args.url, timeout=args.timeout)
    try:
        if args.job_id:
            code, body = client.job(args.job_id)
            if code == 404:
                print(f"npb jobs: unknown job {args.job_id!r}",
                      file=sys.stderr)
                return EXIT_FAILURE
            print(json.dumps(body, indent=2) if args.json
                  else _job_summary(body))
            return EXIT_OK
        code, status = client.status()
        _, listing = client.jobs()
    except ServiceUnavailable as exc:
        print(f"npb jobs: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if args.json:
        print(json.dumps({"status": status, **listing}, indent=2))
        return EXIT_OK
    if status.get("service") == "npb-shard-coordinator":
        totals = status["totals"]
        routing = status["routing"]
        health = "degraded" if status["degraded"] else "healthy"
        print(f"coordinator up {status['uptime_seconds']:.1f}s  "
              f"{status['healthy_shards']}/{status['shard_count']} shards "
              f"({health})")
        print(f"queue   depth {totals['queue_depth']}"
              f"/{totals['queue_capacity']}")
        print(f"pool    {totals['pool_in_use']}/{totals['pool_size']} in use")
        print(f"cache   {totals['cache_entries']} entries "
              f"({totals['cache_hits']} hits / "
              f"{totals['cache_misses']} misses)")
        print(f"sched   {totals['executed']} executed, "
              f"{totals['cached']} cached, {totals['failed']} failed")
        print(f"routing {routing['submitted']} submitted, "
              f"{routing['failovers']} failovers, "
              f"{routing['unroutable']} unroutable")
        for job in listing.get("jobs", []):
            print(_job_summary(job))
        return EXIT_OK
    queue = status["queue"]
    pool = status["pool"]
    cache = status["cache"]
    sched = status["scheduler"]
    print(f"service up {status['uptime_seconds']:.1f}s  "
          f"draining={status['draining']}")
    print(f"queue   depth {queue['depth']}/{queue['capacity']}")
    print(f"pool    {pool['in_use']}/{pool['size']} in use "
          f"({pool['backend']} x{pool['workers']}, "
          f"{pool['leases']} leases, {pool['cold_spawns']} cold, "
          f"{pool['replacements']} replaced)")
    print(f"cache   {cache['entries']} entries, "
          f"hit rate {cache['hit_rate']:.0%} "
          f"({cache['hits']} hits / {cache['misses']} misses)")
    print(f"sched   {sched['executed']} executed, {sched['cached']} cached, "
          f"{sched['failed']} failed, faults={sched['fault_counts']}")
    for job in listing.get("jobs", []):
        print(_job_summary(job))
    return EXIT_OK


def _cmd_trace(args) -> int:
    from repro.obs.export import (
        build_trace_record,
        latest_trace_record_path,
        layer_summary,
        load_trace_record,
        render_trace_tree,
        write_trace_record,
    )
    from repro.obs.spans import Span
    from repro.service import ServiceClient, ServiceUnavailable

    if args.last:
        path = latest_trace_record_path(args.dir)
        if path is None:
            print(f"npb trace: no TRACE_*.json in {args.dir!r}; fetch one "
                  f"first with 'npb trace <job_id>'", file=sys.stderr)
            return EXIT_FAILURE
        record = load_trace_record(path)
        spans = [Span.from_dict(s) for s in record["spans"]]
        if args.json:
            print(json.dumps(record, indent=2))
        else:
            print(f"{path} (job {record.get('job_id')})")
            print(render_trace_tree(spans, record["trace_id"]))
        return EXIT_OK
    if not args.job_id:
        print("npb trace: pass a job id or --last", file=sys.stderr)
        return EXIT_USAGE

    client = ServiceClient(args.url, timeout=args.timeout)
    try:
        code, body = client.trace(args.job_id)
    except ServiceUnavailable as exc:
        print(f"npb trace: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if code == 404:
        print(f"npb trace: {body.get('error')}", file=sys.stderr)
        return EXIT_FAILURE
    if code != 200:
        print(f"npb trace: HTTP {code}: {body.get('error')}",
              file=sys.stderr)
        return EXIT_USAGE
    spans = [Span.from_dict(s) for s in body.get("spans", [])]
    if not spans:
        print(f"npb trace: job {args.job_id!r} has trace id "
              f"{body.get('trace_id')} but no spans survive in the "
              f"store (evicted?)", file=sys.stderr)
        return EXIT_FAILURE
    path = None
    if not args.no_record:
        path = write_trace_record(
            spans, body["trace_id"], args.dir, job_id=body.get("job_id"))
    if args.json:
        record = build_trace_record(
            spans, body["trace_id"], job_id=body.get("job_id"))
        record["path"] = path
        print(json.dumps(record, indent=2))
        return EXIT_OK
    print(render_trace_tree(spans, body["trace_id"]))
    layers = layer_summary(spans)
    width = max(len(name) for name in layers)
    print("\nper-layer totals:")
    for name, seconds in sorted(
            layers.items(), key=lambda item: -item[1]):
        print(f"  {name:<{width}}  {seconds * 1000:.1f}ms")
    if path is not None:
        print(f"wrote {path}")
    return EXIT_OK


def _loadgen_step_line(step: dict) -> str:
    counts = step["requests"]
    latency = step["latency_seconds"] or {}
    verdict = "pass" if step["slo"]["pass"] else "FAIL"
    line = (f"[{verdict}] {step['mode']}@{step['level']:g}  "
            f"{counts['ok']}/{counts['total']} ok "
            f"({counts['cached']} cached, {counts['rejected_429']} shed, "
            f"{counts['failed'] + counts['unreachable']} errors)  "
            f"{step['throughput_rps']:.2f} req/s")
    if latency:
        line += (f"  p50 {latency['p50'] * 1000:.1f}ms"
                 f"  p95 {latency['p95'] * 1000:.1f}ms"
                 f"  p99 {latency['p99'] * 1000:.1f}ms")
    if counts["degraded"]:
        line += f"  [{counts['degraded']} degraded-route]"
    slowest = step.get("slowest_trace")
    if slowest:
        line += (f"\n       slowest: npb trace {slowest['job_id']} "
                 f"({slowest['latency_seconds'] * 1000:.1f}ms)")
    return line


def _print_loadgen_compare(comparison: dict) -> None:
    for step in comparison["steps"]:
        flag = "ok  " if not step["regressions"] else "FAIL"
        print(f"[{flag}] {step['mode']}@{step['level']:g}  "
              f"threshold {step['threshold']:.0%}  "
              f"slo={'pass' if step['slo_pass'] else 'FAIL'}")
        for metric in step["metrics"]:
            marker = {"regression": "REGRESSION", "improved": "improved",
                      "ok": "ok"}[metric["verdict"]]
            print(f"    {metric['metric']:<16} "
                  f"{metric['base']:.4f} -> {metric['candidate']:.4f} "
                  f"(x{metric['ratio']:.2f})  {marker}")
    for key in comparison["missing"]:
        print(f"[FAIL] step {key} missing from candidate")
    print(f"verdict: {comparison['verdict']} "
          f"({comparison['regressions']} regression(s))")


def _cmd_loadgen(args) -> int:
    import dataclasses as dc

    from repro.service import loadgen
    from repro.service.api import ServiceUnavailable

    if args.compare:
        baseline = loadgen.load_record(args.compare)
        candidate_path = args.candidate or loadgen.latest_record_path(
            args.dir)
        if candidate_path is None:
            print(f"no LOADGEN_*.json candidate found in {args.dir!r}; "
                  f"run 'npb loadgen' first or pass a candidate path",
                  file=sys.stderr)
            return EXIT_USAGE
        candidate = loadgen.load_record(candidate_path)
        comparison = loadgen.compare_records(
            baseline, candidate, tolerance=args.tolerance,
            mad_multiplier=args.mad_multiplier, abs_slack=args.abs_slack)
        if comparison["missing"]:
            comparison["regressions"] += len(comparison["missing"])
            comparison["verdict"] = "regression"
        if args.json:
            print(json.dumps(comparison, indent=2))
        else:
            _print_loadgen_compare(comparison)
        return EXIT_FAILURE if comparison["regressions"] else EXIT_OK

    if args.mix:
        profile = loadgen.parse_mix(
            args.mix,
            duplicate_fraction=(0.5 if args.duplicate_fraction is None
                                else args.duplicate_fraction))
    else:
        profile = loadgen.PROFILES[args.profile]
        if args.duplicate_fraction is not None:
            profile = dc.replace(
                profile, duplicate_fraction=args.duplicate_fraction)

    try:
        levels = tuple(
            float(part)
            for part in (args.rate if args.mode == "open"
                         else args.concurrency).split(",") if part.strip())
    except ValueError:
        levels = ()
    if not levels:
        print("npb loadgen: --concurrency/--rate must be a comma-"
              "separated list of numbers", file=sys.stderr)
        return EXIT_USAGE

    policy = loadgen.SLOPolicy(
        max_error_rate=args.slo_max_error_rate,
        max_429_rate=args.slo_max_429_rate,
        max_p95_seconds=args.slo_max_p95,
        min_cache_hit_ratio=args.slo_min_cache_ratio,
        min_dedup_ratio=args.slo_min_dedup_ratio,
        min_ok=args.slo_min_ok)
    config = loadgen.LoadgenConfig(
        profile=profile, mode=args.mode, levels=levels,
        requests_per_step=args.requests,
        duration_seconds=args.duration, seed=args.seed,
        retries=args.retries, slo=policy, tenant=args.tenant,
        trace=args.trace)
    try:
        record = loadgen.run_loadgen(
            args.url, config, timeout=args.timeout,
            progress=None if args.json else print)
    except ServiceUnavailable as exc:
        print(f"npb loadgen: {exc}", file=sys.stderr)
        return EXIT_USAGE
    path = loadgen.write_record(record, directory=args.dir, path=args.out)
    if args.json:
        print(json.dumps(loadgen.load_record(path), indent=2))
    else:
        for step in record["curve"]:
            print(_loadgen_step_line(step))
        print(f"wrote {path}")
    return EXIT_OK if record["slo_pass"] else EXIT_FAILURE


def _cmd_table(args) -> int:
    mode = "measured" if args.measured else "simulated"
    numbers = [args.number] if args.number else list(TABLES)
    for n in numbers:
        table = generate_table(n, mode, args.problem_class)
        print(format_table(table))
        print()
    return 0


def _cmd_speedup(args) -> int:
    import time

    from repro.core.registry import get_benchmark
    from repro.harness.report import Table
    from repro.machines import MACHINES, speedup_curve
    from repro.team import make_team
    from repro.team.base import team_worker_counts

    name = args.benchmark.upper()
    cls = get_benchmark(name)
    counts = team_worker_counts(args.max_workers)

    rows = Table(
        f"Speedup study: {name}.{args.problem_class}",
        ["Configuration", "seconds", "speedup"],
    )
    bench = cls(args.problem_class)
    bench.setup()
    t0 = time.perf_counter()
    bench._iterate()
    serial = time.perf_counter() - t0
    rows.add_row("serial (this host)", serial, 1.0)
    for workers in counts:
        with make_team(args.backend, workers) as team:
            parallel = cls(args.problem_class, team)
            parallel.setup()
            t0 = time.perf_counter()
            parallel._iterate()
            elapsed = time.perf_counter() - t0
            verification = parallel.verify()
        if not verification.verified:
            print(format_table(rows))
            print(verification.summary())
            print(f"FAIL: {name}.{args.problem_class} under "
                  f"{args.backend} x{workers} did not verify; "
                  f"speedups above are not trustworthy", file=sys.stderr)
            return 1
        rows.add_row(f"{args.backend} x{workers} (this host)", elapsed,
                     serial / elapsed)
    print(format_table(rows))
    print()
    modeled = Table(
        f"Modeled {name}.A Java speedups on the paper's machines",
        ["Machine"] + [f"{p}thr" for p in (1, 2, 4, 8, 16, 32)],
    )
    for key, spec in MACHINES.items():
        curve = speedup_curve(spec, name, "A", warmup_load=True)
        modeled.add_row(key, *[curve.get(p, float("nan"))
                               for p in (1, 2, 4, 8, 16, 32)])
    print(format_table(modeled))
    return 0


def _cmd_report(args) -> int:
    from repro.harness.findings import generate_report

    print(generate_report(include_tables=not args.no_tables))
    return 0


def _cmd_backends(args) -> int:
    """List kernel tiers, availability (with the why), and coverage."""
    coverage = REGISTRY.coverage()
    if args.json:
        print(json.dumps(coverage, indent=2))
        return EXIT_OK
    for tier in TIERS:
        info = coverage["tiers"][tier]
        flags = []
        if info["default"]:
            flags.append("default")
        flags.append("available" if info["available"] else "UNAVAILABLE")
        print(f"{tier:<10} [{', '.join(flags)}]")
        if not info["available"]:
            print(f"  reason: {info['reason']}")
        for kernel, detail in info["kernels"].items():
            line = f"  {kernel:<14}"
            if detail["serves"] != tier:
                line += f" -> serves via {detail['serves']}"
            if detail["tolerance"]:
                line += f"  tolerance {detail['tolerance']:g}"
            print(line)
        uncovered = [k for k in coverage["kernels"]
                     if k not in info["kernels"]]
        if uncovered:
            print("  (falls back for: " + ", ".join(uncovered) + ")")
    return EXIT_OK


def _cmd_list(args) -> int:
    print("Benchmarks:  ", ", ".join(available_benchmarks()))
    print("Classes:     ", ", ".join(str(c) for c in CLASS_ORDER))
    print("Backends:     serial, threads, process")
    print("Kernel tiers:", ", ".join(TIERS),
          f"(default {DEFAULT_TIER}; see 'npb backends')")
    print("Tables:      ", ", ".join(str(t) for t in TABLES))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="npb",
        description="NAS Parallel Benchmarks in Python "
                    "(reproduction of Frumkin et al., IPPS 2003)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one benchmark")
    run.add_argument("benchmark", choices=available_benchmarks(),
                     type=str.upper)
    _common(run)
    run.add_argument("-v", "--verbose", action="store_true")
    run.add_argument("--json", action="store_true",
                     help="emit a structured run record (timers + "
                          "per-region dispatch/execute/barrier split)")
    run.set_defaults(fn=_cmd_run)

    verify = sub.add_parser("verify", help="run and verify the whole suite")
    _common(verify)
    verify.add_argument("--json", action="store_true",
                        help="emit one structured run record per benchmark")
    verify.set_defaults(fn=_cmd_verify)

    profile = sub.add_parser(
        "profile", help="run one benchmark and report the per-region "
                        "overhead breakdown (dispatch/execute/barrier)")
    profile.add_argument("benchmark", choices=available_benchmarks(),
                         type=str.upper)
    _common(profile)
    profile.add_argument("--alloc", action="store_true",
                         help="trace allocations (tracemalloc) and report "
                              "per-region allocated bytes/blocks; slows "
                              "the run, and with -b process only "
                              "master-side allocation is visible")
    profile.add_argument("--json", action="store_true",
                         help="emit the run record plus plan-cache stats "
                              "as JSON")
    profile.set_defaults(fn=_cmd_profile)

    bench = sub.add_parser(
        "bench", help="append a BENCH_<seq>.json record to the perf "
                      "trajectory, or gate a candidate record against a "
                      "baseline (--compare)")
    bench.add_argument("candidate", nargs="?", default=None,
                       help="candidate record for --compare (default: the "
                            "latest BENCH_*.json in --dir)")
    bench.add_argument("--quick", action="store_true",
                       help="small class-S cell set for shared CI runners")
    bench.add_argument("-r", "--repeat", type=int, default=3,
                       help="repeats per cell; best-of-k is recorded "
                            "(default 3)")
    bench.add_argument("--cells", default=None,
                       help="comma-separated BENCH:CLASS:BACKEND:WORKERS "
                            "specs overriding the cell set "
                            "(e.g. CG:S:threads:2,LU:S:serial:1)")
    bench.add_argument("--no-kernels", action="store_true",
                       help="skip the Table-1 basic-operation kernels")
    bench.add_argument("--dir", default=".",
                       help="trajectory directory for BENCH_<seq>.json "
                            "numbering (default .)")
    bench.add_argument("--out", default=None,
                       help="explicit output path (skips sequence "
                            "numbering; useful in CI)")
    bench.add_argument("--compare", metavar="BASELINE.json", default=None,
                       help="compare a candidate record against this "
                            "baseline instead of running; exits 1 on "
                            "regression")
    bench.add_argument("--tolerance", type=float,
                       default=DEFAULT_TOLERANCE,
                       help="relative slowdown tolerated before the noise "
                            "term (default 0.10; CI uses 2.0 to gate only "
                            ">3x blowups)")
    bench.add_argument("--mad-multiplier", type=float,
                       default=DEFAULT_MAD_MULTIPLIER,
                       help="k in the max(tolerance, k*MAD/best) noise "
                            "band (default 3.0)")
    bench.add_argument("--abs-slack", type=float, default=DEFAULT_ABS_SLACK,
                       help="absolute seconds of slowdown always tolerated "
                            "(widens the band for sub-10ms cells; "
                            "default 0.005)")
    bench.add_argument("--alloc", action="store_true",
                       help="run the suite under tracemalloc so region "
                            "alloc_bytes/alloc_blocks are populated; "
                            "traced records are slower -- only compare "
                            "them against other traced records")
    bench.add_argument("--kernel-backend", default=DEFAULT_TIER,
                       choices=list(TIERS),
                       help="kernel tier for every benchmark cell; "
                            "non-default tiers get distinct cell ids "
                            "(CG.S.serial.x1.compiled) so they never "
                            "collide with fused baselines")
    bench.add_argument("--json", action="store_true",
                       help="print the record (or comparison) as JSON")
    bench.set_defaults(fn=_cmd_bench)

    serve = sub.add_parser(
        "serve", help="start the benchmark job service daemon (bounded "
                      "admission queue, warm team pool, content-addressed "
                      "result cache, HTTP API)")
    _common(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642,
                       help="listen port (0 picks a free one; the chosen "
                            "address is printed on startup)")
    serve.add_argument("--pool", type=int, default=2, metavar="N",
                       help="warm teams kept alive and reused across jobs "
                            "(also the number of concurrent jobs; "
                            "default 2)")
    serve.add_argument("--queue-depth", type=int, default=64, metavar="D",
                       help="admitted-but-unstarted jobs held before "
                            "submissions are rejected with HTTP 429 "
                            "(default 64)")
    serve.add_argument("--cache-dir", default=".npb-service-cache",
                       help="directory of the content-addressed result "
                            "cache (default .npb-service-cache)")
    serve.add_argument("--cache-entries", type=int, default=256,
                       help="LRU bound on cached results (default 256)")
    serve.add_argument("--drain-timeout", type=float, default=60.0,
                       help="seconds to wait for running jobs on "
                            "SIGTERM/SIGINT before giving up (default 60)")
    serve.add_argument("--async", dest="async_frontend",
                       action="store_true",
                       help="serve with the asyncio front end: in-flight "
                            "request coalescing, Idempotency-Key replays, "
                            "and deficit-round-robin fair admission "
                            "across tenants (same HTTP API, same "
                            "execution core)")
    serve.add_argument("--admission-window", type=int, default=None,
                       metavar="N",
                       help="async only: jobs admitted but not yet "
                            "terminal before fair queueing holds new "
                            "work back (default: the pool size)")
    serve.add_argument("--tenant-quota", type=int, default=64,
                       metavar="Q",
                       help="async only: per-tenant queued-request bound "
                            "before structured 429s (default 64)")
    serve.add_argument("--tenant-weight", action="append",
                       metavar="NAME=W",
                       help="async only: DRR weight for one tenant "
                            "(repeatable; unlisted tenants weigh 1)")
    serve.add_argument("--chaos-seed", type=int, default=None,
                       metavar="SEED",
                       help="enable deterministic fault injection inside "
                            "this daemon: compile the --chaos-preset "
                            "fault schedule from SEED and hook it into "
                            "pool/cache/scheduler (testing only)")
    serve.add_argument("--chaos-preset", default="service",
                       choices=list(CHAOS_PRESETS),
                       help="fault-rule preset for --chaos-seed "
                            "(default service)")
    serve.add_argument("--trace-sample", type=float, default=0.0,
                       metavar="RATE",
                       help="trace this fraction of submissions end-to-"
                            "end (0..1; default 0 = off; explicit "
                            "'npb submit --trace' jobs are always "
                            "traced); spans show at GET /jobs/<id>/trace "
                            "and 'npb trace'")
    serve.add_argument("-v", "--verbose", action="store_true",
                       help="log every HTTP request to stderr")
    serve.set_defaults(fn=_cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit one benchmark job to a running service "
                       "(exit 4 when admission is rejected)")
    submit.add_argument("benchmark", choices=available_benchmarks(),
                        type=str.upper)
    _common(submit)
    submit.add_argument("--url", default=DEFAULT_SERVICE_URL,
                        help=f"service address (default "
                             f"{DEFAULT_SERVICE_URL})")
    submit.add_argument("--priority", default="normal",
                        choices=["high", "normal"],
                        help="queue lane; high drains before normal")
    submit.add_argument("--no-cache", action="store_true",
                        help="force execution even when an identical "
                             "result is cached (the new result is still "
                             "stored)")
    submit.add_argument("--no-wait", action="store_true",
                        help="return immediately with the queued job id "
                             "instead of waiting for the result")
    submit.add_argument("--idempotency-key", default=None, metavar="KEY",
                        help="client-chosen idempotency key (sent as the "
                             "Idempotency-Key header): resubmitting the "
                             "same key returns the original job instead "
                             "of admitting a duplicate")
    submit.add_argument("--tenant", default=None,
                        help="tenant id (sent as the X-NPB-Tenant "
                             "header) for fair admission and the v6 "
                             "run-record provenance")
    submit.add_argument("--retries", type=int, default=3,
                        help="resubmissions after HTTP 429, honoring the "
                             "server's Retry-After backoff hint "
                             "(default 3; 0 fails fast with exit 4)")
    submit.add_argument("--timeout", type=float, default=600.0,
                        help="client-side HTTP timeout in seconds "
                             "(default 600)")
    submit.add_argument("--trace", action="store_true",
                        help="trace this job end-to-end regardless of "
                             "the server's --trace-sample rate; read "
                             "the span tree back with 'npb trace "
                             "<job_id>'")
    submit.add_argument("--json", action="store_true",
                        help="print the job record as JSON")
    submit.set_defaults(fn=_cmd_submit)

    shard_serve = sub.add_parser(
        "shard-serve", help="run a consistent-hash coordinator over N "
                            "worker daemons (--shard URL and/or --spawn "
                            "N children); same HTTP API as serve")
    shard_serve.add_argument("--shard", action="append", metavar="[NAME=]URL",
                             help="an already-running worker daemon to "
                                  "front (repeatable; default names are "
                                  "shard0, shard1, ...)")
    shard_serve.add_argument("--spawn", type=int, default=0, metavar="N",
                             help="spawn N 'npb serve' child daemons on "
                                  "free loopback ports and front them "
                                  "(default 0)")
    shard_serve.add_argument("--host", default="127.0.0.1")
    shard_serve.add_argument("--port", type=int,
                             default=DEFAULT_COORDINATOR_PORT,
                             help=f"coordinator listen port (default "
                                  f"{DEFAULT_COORDINATOR_PORT}; 0 picks a "
                                  f"free one)")
    shard_serve.add_argument("--replicas", type=int, default=128,
                             help="virtual points per shard on the hash "
                                  "ring (default 128)")
    shard_serve.add_argument("--health-interval", type=float, default=2.0,
                             help="seconds between background shard "
                                  "health probes (default 2)")
    shard_serve.add_argument("--backend", default="serial",
                             choices=["serial", "threads", "process"],
                             help="backend of spawned shards (default "
                                  "serial)")
    shard_serve.add_argument("--workers", type=int, default=1,
                             help="workers per spawned-shard team")
    shard_serve.add_argument("--pool", type=int, default=2,
                             help="warm teams per spawned shard")
    shard_serve.add_argument("--queue-depth", type=int, default=64,
                             help="admission queue depth per spawned shard")
    shard_serve.add_argument("--cache-dir", default=".npb-service-cache",
                             help="base cache directory; spawned shards "
                                  "use <dir>/shardN subdirectories")
    shard_serve.add_argument("--kernel-backend", default=DEFAULT_TIER,
                             choices=list(TIERS),
                             help="kernel tier of spawned shards")
    shard_serve.add_argument("--async", dest="async_frontend",
                             action="store_true",
                             help="spawn shards with the asyncio front "
                                  "end (--async on each child): in-flight "
                                  "coalescing per shard, end-to-end "
                                  "through the ring")
    shard_serve.add_argument("--drain-timeout", type=float, default=60.0,
                             help="seconds to wait for spawned shards to "
                                  "drain on SIGTERM/SIGINT (default 60)")
    shard_serve.add_argument("--trace-sample", type=float, default=0.0,
                             metavar="RATE",
                             help="trace this fraction of submissions "
                                  "(0..1; default 0); applied at the "
                                  "coordinator edge and passed through "
                                  "to spawned shards so one decision "
                                  "covers routing, scheduling, and "
                                  "kernel regions")
    shard_serve.add_argument("-v", "--verbose", action="store_true",
                             help="log every HTTP request to stderr")
    shard_serve.set_defaults(fn=_cmd_shard_serve)

    chaos = sub.add_parser(
        "chaos", help="deterministic fault-injection run: spawn a "
                      "sharded service with in-daemon chaos, drive a "
                      "loadgen mix through a fault-injecting "
                      "coordinator (including a SIGKILLed shard), "
                      "check the admitted-jobs invariant, and append a "
                      "CHAOS_<seq>.json record; same --seed, same "
                      "fault schedule")
    chaos.add_argument("--seed", type=int, default=0,
                       help="fault-schedule seed; shards derive "
                            "sub-seeds from it (default 0)")
    chaos.add_argument("--shards", type=int, default=2, metavar="N",
                       help="worker daemons to spawn (default 2)")
    chaos.add_argument("-n", "--requests", type=int, default=24,
                       help="total requests to drive (default 24)")
    chaos.add_argument("-C", "--concurrency", type=int, default=3,
                       help="closed-loop client threads (default 3)")
    chaos.add_argument("--profile", default="smoke",
                       choices=list(LOADGEN_PROFILES),
                       help="loadgen traffic mix (default smoke)")
    chaos.add_argument("--kill-at", type=int, default=6, metavar="INDEX",
                       help="submission index at which the planned "
                            "shard SIGKILL fires (default 6)")
    chaos.add_argument("--backend", default="serial",
                       choices=["serial", "threads", "process"],
                       help="backend of spawned shards (default serial)")
    chaos.add_argument("--workers", type=int, default=1,
                       help="workers per spawned-shard team")
    chaos.add_argument("--pool", type=int, default=2,
                       help="warm teams per spawned shard")
    chaos.add_argument("--queue-depth", type=int, default=64,
                       help="admission queue depth per spawned shard")
    chaos.add_argument("--cache-dir", default=".npb-chaos-cache",
                       help="base cache directory; shards use "
                            "<dir>/shardN subdirectories "
                            "(default .npb-chaos-cache)")
    chaos.add_argument("--kernel-backend", default=DEFAULT_TIER,
                       choices=list(TIERS),
                       help="kernel tier of spawned shards")
    chaos.add_argument("--retries", type=int, default=3,
                       help="429 retries per request (default 3)")
    chaos.add_argument("--settle-timeout", type=float, default=30.0,
                       help="seconds to wait for surviving shards to "
                            "reach all-terminal job listings "
                            "(default 30)")
    chaos.add_argument("--drain-timeout", type=float, default=30.0,
                       help="seconds to wait for shards to drain at "
                            "teardown (default 30)")
    chaos.add_argument("--min-fault-kinds", type=int, default=4,
                       metavar="K",
                       help="fail unless at least K distinct fault "
                            "kinds were actually injected (default 4)")
    chaos.add_argument("--dir", default=".",
                       help="trajectory directory for CHAOS_<seq>.json "
                            "numbering (default .)")
    chaos.add_argument("--out", default=None,
                       help="explicit output path (skips sequence "
                            "numbering; useful in CI)")
    chaos.add_argument("--json", action="store_true",
                       help="print the chaos record as JSON")
    chaos.set_defaults(fn=_cmd_chaos)

    jobs = sub.add_parser(
        "jobs", help="service status and job listing (or one job by id)")
    jobs.add_argument("job_id", nargs="?", default=None)
    jobs.add_argument("--url", default=DEFAULT_SERVICE_URL,
                      help=f"service address (default {DEFAULT_SERVICE_URL})")
    jobs.add_argument("--timeout", type=float, default=30.0)
    jobs.add_argument("--json", action="store_true")
    jobs.set_defaults(fn=_cmd_jobs)

    trace = sub.add_parser(
        "trace", help="fetch a traced job's span tree from a running "
                      "service or coordinator, render it with per-layer "
                      "durations, and append a TRACE_<seq>.json record "
                      "(--last re-renders the newest record from disk)")
    trace.add_argument("job_id", nargs="?", default=None,
                       help="job id (namespaced <shard>:<id> through a "
                            "coordinator); the job must have been "
                            "traced (submit --trace or --trace-sample)")
    trace.add_argument("--last", action="store_true",
                       help="render the latest TRACE_<seq>.json in "
                            "--dir instead of fetching from a service")
    trace.add_argument("--url", default=DEFAULT_SERVICE_URL,
                       help=f"service or coordinator address (default "
                            f"{DEFAULT_SERVICE_URL})")
    trace.add_argument("--dir", default=".",
                       help="trajectory directory for TRACE_<seq>.json "
                            "numbering (default .)")
    trace.add_argument("--no-record", action="store_true",
                       help="render only; skip writing TRACE_<seq>.json")
    trace.add_argument("--timeout", type=float, default=30.0)
    trace.add_argument("--json", action="store_true",
                       help="print the trace record as JSON")
    trace.set_defaults(fn=_cmd_trace)

    loadgen = sub.add_parser(
        "loadgen", help="generate service traffic (closed-loop "
                        "concurrency sweep or open-loop Poisson "
                        "arrivals), append a LOADGEN_<seq>.json record, "
                        "and verdict it against an SLO; or gate a "
                        "candidate record against a baseline (--compare)")
    loadgen.add_argument("candidate", nargs="?", default=None,
                         help="candidate record for --compare (default: "
                              "the latest LOADGEN_*.json in --dir)")
    loadgen.add_argument("--url", default=DEFAULT_SERVICE_URL,
                         help=f"service or coordinator address (default "
                              f"{DEFAULT_SERVICE_URL})")
    loadgen.add_argument("--mode", default="closed",
                         choices=["closed", "open"],
                         help="closed: fixed concurrent clients issuing "
                              "back-to-back; open: Poisson arrivals at a "
                              "fixed rate (default closed)")
    loadgen.add_argument("--profile", default="smoke",
                         choices=list(LOADGEN_PROFILES),
                         help="built-in traffic mix (default smoke)")
    loadgen.add_argument("--mix", default=None,
                         metavar="SPEC[@W],...",
                         help="custom weighted mix overriding --profile, "
                              "e.g. CG:S:serial:1@2,MG:S "
                              "(BENCH[:CLASS[:BACKEND[:WORKERS"
                              "[:TIER]]]][@WEIGHT])")
    loadgen.add_argument("--duplicate-fraction", type=float, default=None,
                         help="fraction of requests that are cache-"
                              "eligible resubmissions (default: the "
                              "profile's own; 0.5 for --mix)")
    loadgen.add_argument("-C", "--concurrency", default="2",
                         help="closed-loop concurrency levels, one curve "
                              "step each (comma-separated, default 2)")
    loadgen.add_argument("--rate", default="4",
                         help="open-loop arrival rates in req/s, one "
                              "curve step each (comma-separated, "
                              "default 4)")
    loadgen.add_argument("-n", "--requests", type=int, default=20,
                         help="requests per closed-loop step (default 20)")
    loadgen.add_argument("--duration", type=float, default=None,
                         help="seconds per step: the open-loop window "
                              "(required for --mode open), or an optional "
                              "closed-loop cap")
    loadgen.add_argument("--seed", type=int, default=0,
                         help="RNG seed for the traffic mix and arrival "
                              "process (default 0; same seed, same "
                              "request stream)")
    loadgen.add_argument("--retries", type=int, default=3,
                         help="429 retries per request, honoring "
                              "Retry-After (default 3)")
    loadgen.add_argument("--timeout", type=float, default=600.0,
                         help="client-side HTTP timeout per request "
                              "(default 600)")
    loadgen.add_argument("--dir", default=".",
                         help="trajectory directory for LOADGEN_<seq>"
                              ".json numbering (default .)")
    loadgen.add_argument("--out", default=None,
                         help="explicit output path (skips sequence "
                              "numbering; useful in CI)")
    loadgen.add_argument("--slo-max-error-rate", type=float, default=0.0,
                         help="failed+unreachable fraction tolerated "
                              "(default 0)")
    loadgen.add_argument("--slo-max-429-rate", type=float, default=0.5,
                         help="fraction of requests allowed to stay shed "
                              "after retries (default 0.5)")
    loadgen.add_argument("--slo-max-p95", type=float, default=None,
                         metavar="SECONDS",
                         help="p95 latency bound (default: not checked)")
    loadgen.add_argument("--slo-min-cache-ratio", type=float, default=None,
                         help="minimum cache-hit ratio over ok requests "
                              "(default: not checked)")
    loadgen.add_argument("--slo-min-dedup-ratio", type=float, default=None,
                         help="minimum dedup ratio (cached + coalesced "
                              "over ok; default: not checked)")
    loadgen.add_argument("--tenant", default=None,
                         help="tenant id stamped on every request "
                              "(X-NPB-Tenant header)")
    loadgen.add_argument("--trace", action="store_true",
                         help="trace every request and report the "
                              "slowest per step (diagnosis mode; span "
                              "collection adds overhead, so not for "
                              "baseline records)")
    loadgen.add_argument("--slo-min-ok", type=int, default=1,
                         help="minimum completed-ok requests per step "
                              "(default 1)")
    loadgen.add_argument("--compare", metavar="BASELINE.json", default=None,
                         help="compare a candidate record against this "
                              "baseline instead of generating traffic; "
                              "exits 1 on regression")
    loadgen.add_argument("--tolerance", type=float, default=0.25,
                         help="relative latency/throughput change "
                              "tolerated before the noise term "
                              "(default 0.25)")
    loadgen.add_argument("--mad-multiplier", type=float, default=3.0,
                         help="k in the max(tolerance, k*MAD/p50) noise "
                              "band (default 3.0)")
    loadgen.add_argument("--abs-slack", type=float, default=0.010,
                         help="absolute seconds of latency change always "
                              "tolerated (default 0.010)")
    loadgen.add_argument("--json", action="store_true",
                         help="print the record (or comparison) as JSON")
    loadgen.set_defaults(fn=_cmd_loadgen)

    table = sub.add_parser("table", help="regenerate one paper table")
    table.add_argument("number", type=int, choices=TABLES)
    table.add_argument("--measured", action="store_true",
                       help="measure on this host instead of simulating "
                            "the paper's machines")
    table.add_argument("-c", "--problem-class", default="A",
                       help="problem class for tables 2-6 (default A "
                            "simulated; use S/W for measured runs)")
    table.set_defaults(fn=_cmd_table)

    tables = sub.add_parser("tables", help="regenerate all seven tables")
    tables.add_argument("--measured", action="store_true")
    tables.add_argument("-c", "--problem-class", default="A")
    tables.set_defaults(fn=_cmd_table, number=None)

    speedup = sub.add_parser(
        "speedup", help="measured host speedups + modeled paper-machine "
                        "speedup curves for one benchmark")
    speedup.add_argument("benchmark", choices=available_benchmarks(),
                         type=str.upper)
    speedup.add_argument("-c", "--problem-class", default="S")
    speedup.add_argument("-b", "--backend", default="process",
                         choices=["threads", "process"])
    speedup.add_argument("-w", "--max-workers", type=int, default=4)
    speedup.set_defaults(fn=_cmd_speedup)

    report = sub.add_parser(
        "report", help="evaluate every paper claim against the models "
                       "and print a markdown findings report")
    report.add_argument("--no-tables", action="store_true",
                        help="omit the simulated tables")
    report.set_defaults(fn=_cmd_report)

    backends = sub.add_parser(
        "backends", help="list kernel tiers, per-kernel coverage, and "
                         "availability (with the why-unavailable reason)")
    backends.add_argument("--json", action="store_true",
                          help="emit the structured coverage report")
    backends.set_defaults(fn=_cmd_backends)

    lst = sub.add_parser("list", help="list benchmarks, classes, tables")
    lst.set_defaults(fn=_cmd_list)
    return parser


def _common(sub_parser) -> None:
    sub_parser.add_argument("-c", "--problem-class", default="S")
    sub_parser.add_argument("-b", "--backend", default="serial",
                            choices=["serial", "threads", "process"])
    sub_parser.add_argument("-w", "--workers", type=int, default=1)
    sub_parser.add_argument("--kernel-backend", default=DEFAULT_TIER,
                            choices=list(TIERS),
                            help="kernel tier to resolve registered "
                                 "kernels against (default fused; an "
                                 "unavailable compiled tier warns and "
                                 "falls back per kernel -- see "
                                 "'npb backends')")
    sub_parser.add_argument("--dispatch-timeout", type=float, default=None,
                            metavar="SECONDS",
                            help="per-dispatch deadline; hung workers are "
                                 "respawned and the dispatch retried "
                                 "(default: no deadline; worker death is "
                                 "still detected and recovered)")
    sub_parser.add_argument("--max-retries", type=int, default=None,
                            metavar="N",
                            help="transport failures tolerated per dispatch "
                                 "before degrading to inline serial "
                                 "execution (default 2)")


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except WorkerError as exc:
        # A worker failed in a way the dispatch core could not recover or
        # translate (the remote traceback rides along verbatim).
        print(f"npb: unrecoverable worker failure\n{exc}", file=sys.stderr)
        return EXIT_WORKER_FAILURE


if __name__ == "__main__":
    sys.exit(main())
