"""End-to-end CLI tests (verify command and report)."""

from repro.harness.cli import main


class TestVerifyCommand:
    def test_whole_suite_class_s(self, capsys):
        assert main(["verify", "-c", "S"]) == 0
        out = capsys.readouterr().out
        assert out.count("[ok  ]") == 8
        for name in ("BT", "SP", "LU", "FT", "MG", "CG", "IS", "EP"):
            assert f"{name}.S" in out

    def test_run_verbose_prints_checks(self, capsys):
        assert main(["run", "MG", "-c", "S", "-v"]) == 0
        out = capsys.readouterr().out
        assert "rnm2" in out

    def test_run_with_process_backend(self, capsys):
        assert main(["run", "EP", "-c", "S", "-b", "process",
                     "-w", "2"]) == 0
        assert "process x2" in capsys.readouterr().out


class TestReportCommand:
    def test_report_no_tables(self, capsys):
        assert main(["report", "--no-tables"]) == 0
        out = capsys.readouterr().out
        assert "0 failed" in out
        assert "[FAIL]" not in out

    def test_tables_command_all(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        for n in range(1, 8):
            assert f"Table {n}" in out
