"""Obs test fixtures: isolate the process-global span store per test."""

from __future__ import annotations

import pytest

from repro.obs.spans import SpanStore, set_span_store


@pytest.fixture(autouse=True)
def fresh_span_store():
    """Every obs test gets its own store; the suite's other traced
    activity (and earlier tests) can never leak spans into assertions."""
    old = set_span_store(SpanStore())
    try:
        yield
    finally:
        set_span_store(old)
