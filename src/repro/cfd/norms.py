"""Verification norms shared by BT and SP (error_norm / rhs_norm)."""

from __future__ import annotations

import numpy as np

from repro.cfd.constants import CFDConstants
from repro.cfd.exact import exact_field


def error_norm(u: np.ndarray, c: CFDConstants) -> np.ndarray:
    """RMS difference from the exact solution over ALL grid points,
    normalized by the interior point count (error_norm in bt.f/sp.f)."""
    ue = exact_field(c.nx, c.ny, c.nz, c.dnxm1, c.dnym1, c.dnzm1)
    diff = u - ue
    sums = np.sum(diff * diff, axis=(0, 1, 2))
    denom = float((c.nx - 2) * (c.ny - 2) * (c.nz - 2))
    return np.sqrt(sums / denom)


def rhs_norm(rhs: np.ndarray, c: CFDConstants) -> np.ndarray:
    """RMS of the interior residual (rhs_norm in bt.f/sp.f)."""
    interior = rhs[1:-1, 1:-1, 1:-1, :]
    sums = np.sum(interior * interior, axis=(0, 1, 2))
    denom = float((c.nx - 2) * (c.ny - 2) * (c.nz - 2))
    return np.sqrt(sums / denom)
