"""Pluggable kernel-backend registry: named, selectable kernel tiers.

The paper's central axis is the interpreted-vs-compiled language gap on
the NAS kernels; this registry turns the suite's hard-wired kernel calls
into a three-way study of that axis.  Every hot slab kernel is registered
under a stable name (``"mg.resid"``, ``"cg.matvec"``, ...) in up to three
*tiers*:

``reference``
    The expression-form NumPy kernels (``*_slab_reference``) -- readable
    specification, allocates temporaries per call.  The "interpreted"
    baseline of the study.

``fused``
    The in-place arena ufunc chains of PR 4 -- allocation-free,
    bit-identical to the reference.  The default tier and the suite's
    production path.

``compiled``
    Numba ``njit`` scalar-loop micro-kernels
    (:mod:`repro.kernels.compiled`) -- the "JNI column" of Halli et al.:
    native code behind the managed front end.  Optional: when numba is
    not installed the tier reports *unavailable with a reason* and
    resolution falls back down the chain ``compiled -> fused ->
    reference`` instead of raising.

Selection is plumbed through the runtime: a :class:`~repro.team.base.Team`
carries the requested tier on its :class:`~repro.runtime.plan.ExecutionPlan`
and resolves registered kernels at dispatch time
(:meth:`~repro.team.base.Team.parallel_kernel`), so all three backends --
serial, threads, process -- honor the same selection.  Resolved callables
are always module-level functions, which is what lets the process backend
ship them to workers by qualified name.

Equivalence is the non-negotiable core: every registered variant must pass
the cross-tier suite in ``tests/kernels/test_fused_equivalence.py``.  A
variant that cannot replicate the reference's floating-point grouping
declares an explicit per-kernel ``tolerance`` (relative), asserted by the
suite rather than waved through; ``tolerance=0.0`` means bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from importlib import import_module
from typing import Callable

#: Registered tiers, in language-gap order (slowest first).
TIERS = ("reference", "fused", "compiled")

#: The tier a Team uses unless told otherwise.
DEFAULT_TIER = "fused"

#: Resolution fallback, best-available-first, for each requested tier.
#: ``compiled`` degrades to ``fused`` (bit-compat superset of behaviours),
#: never the other way around: asking for a cheaper tier always gets it.
_FALLBACK = {
    "reference": ("reference",),
    "fused": ("fused", "reference"),
    "compiled": ("compiled", "fused", "reference"),
}

#: Modules that register kernel variants at import time.  Imported lazily
#: on first lookup so ``import repro`` stays cheap (the same deferral as
#: :mod:`repro.core.registry`).
_PROVIDERS = (
    "repro.mg.operators",
    "repro.cfd.rhs",
    "repro.cg.solver",
    "repro.kernels.compiled",
)


class UnknownTierError(ValueError):
    """The requested tier is not one of :data:`TIERS`."""

    def __init__(self, tier: str):
        super().__init__(
            f"unknown kernel backend {tier!r}; choose from {list(TIERS)}")
        self.tier = tier


class UnknownKernelError(KeyError):
    """No variant of the named kernel is registered in any tier."""

    def __init__(self, kernel: str, known):
        super().__init__(
            f"unknown kernel {kernel!r}; registered: {sorted(known)}")
        self.kernel = kernel


class TierUnavailableError(RuntimeError):
    """Strict resolution asked for a tier that cannot serve the kernel."""


@dataclass(frozen=True)
class KernelVariant:
    """One registered implementation of one kernel in one tier."""

    kernel: str
    tier: str
    fn: Callable
    #: maximum relative error versus the reference tier that the
    #: equivalence suite accepts for this variant; 0.0 = bit-identical
    tolerance: float = 0.0
    #: one-line justification when ``tolerance`` is nonzero (documented
    #: FP-grouping departure), or other notes worth surfacing
    note: str = ""


@dataclass
class _Availability:
    available: bool
    reason: str = ""


class KernelRegistry:
    """Kernel name -> tier -> variant, with availability bookkeeping."""

    def __init__(self):
        self._kernels: dict[str, dict[str, KernelVariant]] = {}
        self._tier_status: dict[str, _Availability] = {
            tier: _Availability(True) for tier in TIERS}
        self._providers_loaded = False

    # ------------------------------------------------------------------ #
    # registration (called at provider-module import time)

    def register(self, kernel: str, tier: str, fn: Callable,
                 tolerance: float = 0.0, note: str = "") -> KernelVariant:
        """Register one variant; re-registration replaces (idempotent
        under module re-import)."""
        if tier not in TIERS:
            raise UnknownTierError(tier)
        if tolerance < 0.0:
            raise ValueError("tolerance must be >= 0")
        if tolerance > 0.0 and not note:
            raise ValueError(
                f"{kernel}/{tier}: a nonzero tolerance must carry a note "
                f"documenting the FP-grouping departure")
        variant = KernelVariant(kernel=kernel, tier=tier, fn=fn,
                                tolerance=tolerance, note=note)
        self._kernels.setdefault(kernel, {})[tier] = variant
        return variant

    def mark_tier_unavailable(self, tier: str, reason: str) -> None:
        """Report a whole tier as unavailable (with the why), instead of
        raising at import time -- resolution then falls back."""
        if tier not in TIERS:
            raise UnknownTierError(tier)
        self._tier_status[tier] = _Availability(False, reason)

    # ------------------------------------------------------------------ #
    # lookup

    def _ensure_providers(self) -> None:
        if self._providers_loaded:
            return
        self._providers_loaded = True
        for module in _PROVIDERS:
            import_module(module)

    def kernels(self) -> list[str]:
        """All registered kernel names, sorted."""
        self._ensure_providers()
        return sorted(self._kernels)

    def tier_status(self, tier: str) -> tuple[bool, str]:
        """(available, why-not) for one tier."""
        if tier not in TIERS:
            raise UnknownTierError(tier)
        self._ensure_providers()
        status = self._tier_status[tier]
        return status.available, status.reason

    def variants(self, kernel: str) -> dict[str, KernelVariant]:
        """tier -> variant for one kernel (registered tiers only)."""
        self._ensure_providers()
        if kernel not in self._kernels:
            raise UnknownKernelError(kernel, self._kernels)
        return dict(self._kernels[kernel])

    def resolve(self, kernel: str, tier: str = DEFAULT_TIER,
                fallback: bool = True) -> KernelVariant:
        """Best available variant of ``kernel`` for the requested tier.

        Walks the fallback chain (``compiled -> fused -> reference``)
        past unavailable or unregistered tiers; the returned variant's
        ``.tier`` says what actually serves.  With ``fallback=False`` a
        tier that cannot serve raises :class:`TierUnavailableError`
        carrying the reason instead.
        """
        if tier not in TIERS:
            raise UnknownTierError(tier)
        self._ensure_providers()
        if kernel not in self._kernels:
            raise UnknownKernelError(kernel, self._kernels)
        registered = self._kernels[kernel]
        blockers = []
        for candidate in _FALLBACK[tier]:
            status = self._tier_status[candidate]
            if not status.available:
                blockers.append(f"{candidate}: {status.reason}")
            elif candidate in registered:
                variant = registered[candidate]
                if not fallback and variant.tier != tier:
                    break
                return variant
            else:
                blockers.append(f"{candidate}: no {kernel} variant "
                                f"registered")
            if not fallback:
                break
        raise TierUnavailableError(
            f"kernel {kernel!r} cannot be served at tier {tier!r}: "
            + "; ".join(blockers))

    # ------------------------------------------------------------------ #
    # reporting (the `npb backends` command)

    def coverage(self) -> dict:
        """Structured tier/kernel report for ``npb backends --json``."""
        self._ensure_providers()
        tiers = {}
        for tier in TIERS:
            status = self._tier_status[tier]
            kernels = {}
            for kernel in sorted(self._kernels):
                variant = self._kernels[kernel].get(tier)
                if variant is None:
                    continue
                served = self.resolve(kernel, tier).tier
                kernels[kernel] = {
                    "tolerance": variant.tolerance,
                    "note": variant.note,
                    "serves": served,
                }
            tiers[tier] = {
                "available": status.available,
                "reason": status.reason,
                "default": tier == DEFAULT_TIER,
                "kernels": kernels,
            }
        return {"tiers": tiers, "kernels": sorted(self._kernels)}


#: The process-wide registry every provider module registers into.
REGISTRY = KernelRegistry()


def register(kernel: str, tier: str, fn: Callable, tolerance: float = 0.0,
             note: str = "") -> KernelVariant:
    """Module-level convenience for provider registration."""
    return REGISTRY.register(kernel, tier, fn, tolerance=tolerance,
                             note=note)


def resolve(kernel: str, tier: str = DEFAULT_TIER,
            fallback: bool = True) -> KernelVariant:
    """Module-level convenience for :meth:`KernelRegistry.resolve`."""
    return REGISTRY.resolve(kernel, tier, fallback=fallback)


def validate_tier(tier: str) -> str:
    """Raise :class:`UnknownTierError` unless ``tier`` is registered."""
    if tier not in TIERS:
        raise UnknownTierError(tier)
    return tier
