"""Structured spans and the per-process bounded span store.

A :class:`Span` is a named, timed interval with attributes, events,
and a status -- the unit ``npb trace`` renders and ``TRACE_<seq>.json``
exports.  Spans live in a :class:`SpanStore`: a bounded ring buffer
(default 4096 spans) indexed by trace id, so a long-lived daemon's
memory stays flat no matter how much traffic it traces.

Sampling (:class:`TraceSampler`) is decided once at the edge:

* an incoming ``traceparent`` with the sampled flag -> always on
  (the edge that started the trace already decided);
* an explicit traced submit (``npb submit --trace``) -> always on;
* otherwise Bernoulli(rate) from ``--trace-sample RATE`` (default 0,
  i.e. tracing off unless asked for).

Cross-process collection: forked ProcessTeam workers stamp replies
with their own ``perf_counter`` times (CLOCK_MONOTONIC, shared epoch
across fork on Linux), so the master synthesizes per-worker spans from
those stamps -- worker timing surfaces in the parent store without any
pipe-protocol change.
"""

from __future__ import annotations

import random
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.obs.trace import (
    TraceContext,
    current_trace,
    new_span_id,
    new_trace_id,
    perf_to_epoch_offset,
)

DEFAULT_STORE_CAPACITY = 4096


@dataclass
class Span:
    """One named, timed interval inside a trace.

    ``started_at``/``ended_at`` are wall-clock epoch seconds so spans
    from different processes line up after export; producers that time
    with ``perf_counter`` convert via
    :func:`repro.obs.trace.perf_to_epoch_offset`.
    """

    name: str
    trace_id: str
    span_id: str
    parent_span_id: str | None
    started_at: float
    ended_at: float | None = None
    #: "ok" | "error" | "unset"
    status: str = "unset"
    attrs: dict = field(default_factory=dict)
    events: list[dict] = field(default_factory=list)

    @property
    def duration_seconds(self) -> float:
        if self.ended_at is None:
            return 0.0
        return max(0.0, self.ended_at - self.started_at)

    def add_event(self, name: str, **attrs) -> None:
        self.events.append({"name": name, "at": time.time(), **attrs})

    def end(self, status: str = "ok") -> None:
        if self.ended_at is None:
            self.ended_at = time.time()
        if self.status == "unset":
            self.status = status

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_span_id": self.parent_span_id,
            "started_at": self.started_at,
            "ended_at": self.ended_at,
            "duration_seconds": self.duration_seconds,
            "status": self.status,
            "attrs": dict(self.attrs),
            "events": [dict(event) for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        return cls(
            name=data["name"],
            trace_id=data["trace_id"],
            span_id=data["span_id"],
            parent_span_id=data.get("parent_span_id"),
            started_at=data["started_at"],
            ended_at=data.get("ended_at"),
            status=data.get("status", "unset"),
            attrs=dict(data.get("attrs") or {}),
            events=list(data.get("events") or []),
        )


class SpanStore:
    """Bounded per-process span buffer, indexed by trace id.

    Eviction is per-span FIFO: when the buffer is full the oldest span
    goes, and a trace whose last span was evicted disappears from the
    index.  That keeps the store O(capacity) regardless of uptime --
    the export path is expected to read a trace shortly after its job
    finishes, which the default capacity comfortably covers.
    """

    def __init__(self, capacity: int = DEFAULT_STORE_CAPACITY):
        if capacity < 1:
            raise ValueError("span store capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        #: insertion-ordered span_id -> Span (the ring)
        self._spans: "OrderedDict[str, Span]" = OrderedDict()
        #: trace_id -> list of span ids (index into the ring)
        self._by_trace: dict[str, list[str]] = {}
        self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def add(self, span: Span) -> None:
        with self._lock:
            while len(self._spans) >= self.capacity:
                old_id, old = self._spans.popitem(last=False)
                self.dropped += 1
                ids = self._by_trace.get(old.trace_id)
                if ids is not None:
                    try:
                        ids.remove(old_id)
                    except ValueError:
                        pass
                    if not ids:
                        del self._by_trace[old.trace_id]
            self._spans[span.span_id] = span
            self._by_trace.setdefault(span.trace_id, []).append(span.span_id)

    def add_many(self, spans: list[Span]) -> None:
        for span in spans:
            self.add(span)

    def trace(self, trace_id: str) -> list[Span]:
        """All stored spans of one trace, in insertion order."""
        with self._lock:
            ids = list(self._by_trace.get(trace_id, ()))
            return [self._spans[i] for i in ids if i in self._spans]

    def trace_ids(self) -> list[str]:
        with self._lock:
            return list(self._by_trace)

    def stats(self) -> dict:
        with self._lock:
            return {
                "spans": len(self._spans),
                "traces": len(self._by_trace),
                "capacity": self.capacity,
                "dropped": self.dropped,
            }

    # ----------------------------------------------------------------- #
    # span construction
    # ----------------------------------------------------------------- #

    def start_span(
        self,
        name: str,
        ctx: TraceContext | None = None,
        attrs: dict | None = None,
        started_at: float | None = None,
    ) -> tuple[Span, TraceContext]:
        """Open a span under ``ctx`` (or the ambient context, or a new
        root trace) and return it with the child context for callees.

        The span is added to the store immediately so an in-flight
        trace is visible; ``Span.end`` just stamps the end time.
        """
        if ctx is None:
            ctx = current_trace()
        if ctx is None:
            ctx = TraceContext(trace_id=new_trace_id(), parent_span_id=None)
        span = Span(
            name=name,
            trace_id=ctx.trace_id,
            span_id=new_span_id(),
            parent_span_id=ctx.parent_span_id,
            started_at=time.time() if started_at is None else started_at,
            attrs=dict(attrs or {}),
        )
        if ctx.sampled:
            self.add(span)
        return span, ctx.child(span.span_id)


class TraceSampler:
    """Edge sampling decision: continue, force, or Bernoulli(rate)."""

    def __init__(self, rate: float = 0.0, seed: int | None = None):
        if not 0.0 <= rate <= 1.0:
            raise ValueError("trace sample rate must be in [0, 1]")
        self.rate = rate
        self._rng = random.Random(seed)

    def decide(
        self,
        incoming: TraceContext | None = None,
        forced: bool = False,
    ) -> TraceContext:
        """The context a new request should run under.

        A continued trace keeps its flag; a forced submit is always
        sampled; otherwise flip the coin once, here, for everything
        downstream.
        """
        if incoming is not None:
            if forced and not incoming.sampled:
                return TraceContext(
                    trace_id=incoming.trace_id,
                    parent_span_id=incoming.parent_span_id,
                    sampled=True,
                )
            return incoming
        sampled = forced or (
            self.rate > 0.0 and self._rng.random() < self.rate
        )
        return TraceContext(
            trace_id=new_trace_id(), parent_span_id=None, sampled=sampled
        )


# --------------------------------------------------------------------- #
# process-global store (one per daemon / coordinator / client process)
# --------------------------------------------------------------------- #

_store: SpanStore | None = None
_store_lock = threading.Lock()


def get_span_store() -> SpanStore:
    global _store
    if _store is None:
        with _store_lock:
            if _store is None:
                _store = SpanStore()
    return _store


def set_span_store(store: SpanStore | None) -> SpanStore | None:
    """Swap the process-global store (tests); returns the old one."""
    global _store
    with _store_lock:
        old, _store = _store, store
    return old


def spans_from_team_trace(
    trace_data: dict,
    region_report: dict,
    ctx: TraceContext,
) -> list[Span]:
    """Region + per-worker spans from a team's trace accumulation.

    ``trace_data`` is :meth:`repro.team.base.Team.take_trace` output
    (perf_counter extents per region and per worker rank);
    ``region_report`` is the matching ``RegionRecorder.report()`` whose
    dispatch/execute/barrier/wall totals are attached as span attrs --
    *reused*, never re-measured, so the span tree's numbers agree with
    the run record's region table by construction.

    Worker extents were stamped inside the workers themselves (for
    ProcessTeam: in the forked child), comparable across fork because
    ``perf_counter`` is CLOCK_MONOTONIC with a shared epoch on Linux.
    ``ctx`` is the *run* span's child context, so regions hang off the
    run span and ``worker.N`` spans off their region span.
    """
    offset = perf_to_epoch_offset()
    spans: list[Span] = []
    for region, entry in trace_data.items():
        stats = region_report.get(region, {})
        region_span = Span(
            name=f"region:{region}",
            trace_id=ctx.trace_id,
            span_id=new_span_id(),
            parent_span_id=ctx.parent_span_id,
            started_at=entry["first"] + offset,
            ended_at=entry["last"] + offset,
            status="ok",
            attrs={
                "calls": entry["calls"],
                "wall_seconds": stats.get("wall_seconds"),
                "dispatch_seconds": stats.get("dispatch_seconds"),
                "execute_seconds": stats.get("execute_seconds"),
                "barrier_seconds": stats.get("barrier_seconds"),
            },
        )
        spans.append(region_span)
        for rank in sorted(entry["workers"]):
            worker = entry["workers"][rank]
            spans.append(
                Span(
                    name=f"worker.{rank}",
                    trace_id=ctx.trace_id,
                    span_id=new_span_id(),
                    parent_span_id=region_span.span_id,
                    started_at=worker["first"] + offset,
                    ended_at=worker["last"] + offset,
                    status="error" if worker["errors"] else "ok",
                    attrs={
                        "rank": rank,
                        "busy_seconds": worker["busy"],
                        "calls": worker["calls"],
                    },
                )
            )
    return spans
