"""Plain-text table rendering for the harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.benchmark import BenchmarkResult
    from repro.harness.bench import Comparison


@dataclass
class Table:
    """A rendered experiment table."""

    title: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        self.rows.append([_fmt(c) for c in cells])


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN -> not measured / not applicable
            return "-"
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        if abs(cell) >= 0.1:
            return f"{cell:.2f}"
        return f"{cell:.2e}"
    return str(cell)


def region_profile_table(result: "BenchmarkResult",
                         plan_info: dict[str, int] | None = None) -> Table:
    """The ``npb profile`` breakdown: one row per instrumented region.

    Columns follow the runtime's dispatch accounting
    (:mod:`repro.runtime.region`): ``wall`` is master-side elapsed time in
    the region's dispatches; ``dispatch``/``execute``/``barrier`` are sums
    over workers; ``sync%`` is the region's synchronization overhead,
    ``(dispatch + barrier) / (dispatch + execute + barrier)`` -- the
    paper's per-phase overhead diagnosis (LU inner-loop synchronization,
    Table 1 start/notify cost) as first-class data.

    When the run traced allocations (``npb profile --alloc``), two more
    columns appear: ``alloc MB`` (gross bytes of temporary churn above
    each dispatch's entry footprint, summed over the region) and
    ``blocks`` (net allocator-block delta -- a leak signal when it keeps
    growing).
    """
    has_alloc = any(stats.get("alloc_bytes", 0) or stats.get("alloc_blocks", 0)
                    for stats in result.regions.values())
    columns = ["region", "calls", "wall s", "dispatch s", "execute s",
               "barrier s", "sync %"]
    if has_alloc:
        columns += ["alloc MB", "blocks"]
    table = Table(
        f"Region profile: {result.name}.{result.problem_class} "
        f"({result.backend} x{result.nworkers}, {result.niter} iterations)",
        columns,
    )
    totals = {"calls": 0, "wall": 0.0, "dispatch": 0.0, "execute": 0.0,
              "barrier": 0.0, "alloc_bytes": 0, "alloc_blocks": 0}
    for name, stats in result.regions.items():
        sync = stats["dispatch_seconds"] + stats["barrier_seconds"]
        busy = sync + stats["execute_seconds"]
        row = [name, stats["calls"], stats["wall_seconds"],
               stats["dispatch_seconds"], stats["execute_seconds"],
               stats["barrier_seconds"],
               100.0 * sync / busy if busy > 0 else 0.0]
        if has_alloc:
            row += [stats.get("alloc_bytes", 0) / 1e6,
                    stats.get("alloc_blocks", 0)]
        table.add_row(*row)
        totals["calls"] += int(stats["calls"])
        totals["wall"] += stats["wall_seconds"]
        totals["dispatch"] += stats["dispatch_seconds"]
        totals["execute"] += stats["execute_seconds"]
        totals["barrier"] += stats["barrier_seconds"]
        totals["alloc_bytes"] += int(stats.get("alloc_bytes", 0))
        totals["alloc_blocks"] += int(stats.get("alloc_blocks", 0))
    sync = totals["dispatch"] + totals["barrier"]
    busy = sync + totals["execute"]
    total_row = ["TOTAL", totals["calls"], totals["wall"],
                 totals["dispatch"], totals["execute"], totals["barrier"],
                 100.0 * sync / busy if busy > 0 else 0.0]
    if has_alloc:
        total_row += [totals["alloc_bytes"] / 1e6, totals["alloc_blocks"]]
    table.add_row(*total_row)
    table.notes.append(
        f"timed region {result.time_seconds:.4f}s; dispatch/execute/barrier "
        f"are summed over {result.nworkers} worker(s)")
    if has_alloc:
        table.notes.append(
            "alloc MB is gross temporary churn (tracemalloc peak rise per "
            "dispatch, summed); blocks is the net allocator-block delta")
    if plan_info is not None:
        table.notes.append(
            f"plan cache: {plan_info['entries']} partitions memoized, "
            f"{plan_info['hits']} hits / {plan_info['misses']} misses")
    return table


def bench_record_table(record: dict) -> Table:
    """One row per trajectory cell of a ``BENCH_*.json`` record."""
    env = record.get("environment", {})
    sequence = record.get("sequence", "-")
    table = Table(
        f"Bench trajectory record #{sequence} "
        f"(python {env.get('python', '?')}, numpy {env.get('numpy', '?')}, "
        f"git {str(env.get('git_sha', '?'))[:10]})",
        ["cell", "best s", "median s", "MAD s", "Mop/s", "verified",
         "faults"],
    )
    for cell in record.get("cells", []):
        table.add_row(
            cell["id"], cell["best_seconds"], cell["median_seconds"],
            cell["mad_seconds"], cell.get("mops", float("nan")),
            "yes" if cell.get("verified") else "NO",
            cell.get("faults", 0),
        )
    table.notes.append(
        f"min-of-{record.get('config', {}).get('repeat', '?')} timing; "
        f"MAD is the run-to-run noise bar")
    fault_cells = [cell["id"] for cell in record.get("cells", [])
                   if cell.get("faults")]
    if fault_cells:
        table.notes.append(
            "cells with fault-tolerance events (timings include "
            "respawn/degrade overhead): " + ", ".join(fault_cells))
    return table


def bench_compare_table(comparison: "Comparison") -> Table:
    """The comparator verdict table (``npb bench --compare``)."""
    table = Table(
        "Bench comparison: candidate vs baseline",
        ["cell", "base s", "cand s", "delta %", "allowed %", "verdict"],
    )
    for delta in comparison.deltas:
        table.add_row(
            delta.cell_id, delta.base_seconds, delta.cand_seconds,
            100.0 * (delta.ratio - 1.0), 100.0 * delta.threshold,
            delta.verdict,
        )
    if comparison.missing:
        table.notes.append(
            "cells only in baseline (not compared): "
            + ", ".join(comparison.missing))
    if comparison.added:
        table.notes.append(
            "cells only in candidate (no baseline yet): "
            + ", ".join(comparison.added))
    table.notes.append(
        f"{len(comparison.regressions)} regression(s), "
        f"{len(comparison.improvements)} improvement(s); a slowdown is a "
        f"regression only beyond max(tolerance, k*MAD/best)")
    return table


def format_table(table: Table) -> str:
    widths = [len(h) for h in table.headers]
    for row in table.rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells, pad=" "):
        return "  ".join(c.rjust(w) if i else c.ljust(w)
                         for i, (c, w) in enumerate(zip(cells, widths)))

    out = [table.title, "=" * len(table.title),
           line(table.headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in table.rows)
    for note in table.notes:
        out.append(f"  note: {note}")
    return "\n".join(out)
