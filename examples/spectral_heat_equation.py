"""Using the FT substrate as a library: a spectral heat-equation solver.

The FT benchmark's building blocks -- the from-scratch Stockham FFT and
the Gaussian damping factors -- form a general spectral solver for
u_t = alpha * laplace(u) on a periodic box.  This example evolves a
smooth initial condition whose exact solution is known and reports the
error, demonstrating the public API on a problem that is *not* the
benchmark's checksum workload.
"""

import numpy as np

from repro.ft.fft import fft3d

ALPHA = 0.5
GRID = 32
T_FINAL = 0.05


def signed_frequencies(n: int) -> np.ndarray:
    return (np.arange(n) + n // 2) % n - n // 2


def solve_heat(u0: np.ndarray, t: float, alpha: float) -> np.ndarray:
    """Evolve the periodic heat equation spectrally to time t."""
    nz, ny, nx = u0.shape
    kx = signed_frequencies(nx)
    ky = signed_frequencies(ny)
    kz = signed_frequencies(nz)
    k2 = ((kz ** 2)[:, None, None] + (ky ** 2)[None, :, None]
          + (kx ** 2)[None, None, :])
    damping = np.exp(-alpha * (2 * np.pi) ** 2 * k2 * t)
    u_hat = fft3d(u0.astype(complex), 1)
    evolved = fft3d(u_hat * damping, -1) / u0.size
    return evolved.real


def main() -> None:
    n = GRID
    x = np.arange(n) / n
    xx = x[None, None, :]
    yy = x[None, :, None]
    zz = x[:, None, None]
    # A pure Fourier mode: exact solution decays as exp(-alpha (2 pi)^2 |k|^2 t).
    u0 = np.sin(2 * np.pi * xx) * np.sin(2 * np.pi * 2 * yy) \
        * np.cos(2 * np.pi * zz)
    k2 = 1 + 4 + 1
    exact = u0 * np.exp(-ALPHA * (2 * np.pi) ** 2 * k2 * T_FINAL)

    computed = solve_heat(u0, T_FINAL, ALPHA)
    err = np.abs(computed - exact).max()
    energy0 = float(np.sum(u0 ** 2))
    energy_t = float(np.sum(computed ** 2))

    print(f"grid {n}^3, alpha={ALPHA}, t={T_FINAL}")
    print(f"  initial energy  : {energy0:.6f}")
    print(f"  final energy    : {energy_t:.6f} (diffusion dissipates)")
    print(f"  max error vs exact solution: {err:.3e}")
    assert err < 1e-12, "spectral solver must be exact for a Fourier mode"
    print("  spectral solution matches the analytic decay exactly.")


if __name__ == "__main__":
    main()
