"""Team reuse regression suite (the warm-pool contract).

Before the job service, a Team lived for exactly one benchmark; reusing
one silently accumulated recorder state -- the second run's region
report included the first run's fault events, and a stale region stack
could misattribute dispatches.  ``Team.reset()`` is the fix; these tests
pin the contract the :class:`~repro.service.pool.TeamPool` relies on.
"""

from __future__ import annotations

import pytest

from repro.core.registry import get_benchmark
from repro.runtime.dispatch import FaultEvent
from repro.team import make_team


def _verification_values(result):
    return [(name, float(computed))
            for name, computed, *_ in result.verification.checks]


class TestSequentialRunsOnOneTeam:
    @pytest.mark.parametrize("backend,workers", [
        ("serial", 1), ("threads", 2), ("process", 2),
    ])
    def test_two_runs_bit_identical_and_non_accumulating(self, backend,
                                                         workers):
        cls = get_benchmark("CG")
        with make_team(backend, workers) as team:
            first = cls("S", team).run()
            team.reset()
            second = cls("S", team).run()
        assert first.verified and second.verified
        # bit-identical: the same spec on the same team must produce the
        # exact same computed quantities (this is what makes the service
        # result cache sound)
        assert _verification_values(first) == _verification_values(second)
        # non-accumulating: same regions, same dispatch counts -- run 2
        # must not contain run 1's calls
        assert set(first.regions) == set(second.regions)
        for name in first.regions:
            assert first.regions[name]["calls"] == \
                second.regions[name]["calls"], name

    def test_reset_drops_fault_history(self):
        with make_team("serial") as team:
            team.recorder.record_fault(FaultEvent(
                kind="timeout", backend="serial", region="x"))
            assert team.recorder.fault_counts() == {"timeout": 1}
            team.reset()
            assert team.recorder.fault_counts() == {}
            result = get_benchmark("CG")("S", team).run()
        # a run after reset reports only its own (zero) faults
        assert result.faults == []

    def test_reset_drops_stale_region_stack(self):
        with make_team("serial") as team:
            team.recorder.push("leftover")
            team.reset()
            assert team.recorder.current_region != "leftover"

    def test_reset_keeps_plan_and_rewinds_arena(self):
        with make_team("threads", 2) as team:
            team.parallel_for(64, _touch_arena)
            cached_before = team.plan.cache_info()["entries"]
            generations = team.run_on_all(_read_generation)
            team.reset()
            # reset itself leaves the recorder empty...
            assert team.recorder.report() == {}
            # ...keeps the plan memoization (partitions depend only on
            # the worker count)...
            assert team.plan.cache_info()["entries"] >= cached_before
            # ...and moved each worker's arena to a strictly newer
            # generation (warm buffers retained, cursors rewound)
            after = team.run_on_all(_read_generation)
            assert all(g2 > g1 for g1, g2 in zip(generations, after))

    def test_reset_on_closed_team_raises(self):
        team = make_team("serial")
        team.close()
        with pytest.raises(RuntimeError):
            team.reset()


def _touch_arena(lo, hi):
    from repro.runtime.arena import worker_arena
    worker_arena().take((8,))
    return hi - lo


def _read_generation(rank, nworkers):
    from repro.runtime.arena import worker_arena
    return worker_arena().generation
