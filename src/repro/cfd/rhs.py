"""BT/SP right-hand side (``compute_rhs`` in bt.f/sp.f), slab-parallel.

Two phases, each a ``parallel_for`` over the outermost grid dimension k
(as in the OpenMP versions):

1. ``fields_slab`` -- pointwise derived fields (1/rho, velocities, dynamic
   pressure, and for SP the sound speed) over all planes;
2. ``rhs_slab`` -- central-difference fluxes in all three directions plus
   4th-order dissipation on the interior planes of the slab, finishing
   with the ``rhs *= dt`` scaling.

Phase 2 reads u and the derived fields at k +/- 2 (hence the barrier
between phases) but writes rhs only within its own slab planes.

Memory discipline: both phases are fused in-place ufunc chains writing
into output views and per-worker :class:`~repro.runtime.arena.ScratchArena`
buffers, replicating the left-associative grouping of the expression forms
statement by statement so results stay bit-identical (asserted by
``tests/kernels/test_fused_equivalence.py``).  The expression forms are
kept as ``*_reference`` for that cross-check.
"""

from __future__ import annotations

import numpy as np

from repro.cfd.constants import CFDConstants
from repro.kernels import registry
from repro.runtime.arena import worker_arena

_AXIS = {"x": 2, "y": 1, "z": 0}


def fields_slab_reference(lo: int, hi: int, u, rho_i, us, vs, ws, qs,
                          square, speed, c: CFDConstants) -> None:
    """Expression-form derived fields (the readable spec; allocates
    temporaries).  ``speed`` is None for BT."""
    if hi <= lo:
        return
    sl = slice(lo, hi)
    rho_inv = 1.0 / u[sl, :, :, 0]
    rho_i[sl] = rho_inv
    us[sl] = u[sl, :, :, 1] * rho_inv
    vs[sl] = u[sl, :, :, 2] * rho_inv
    ws[sl] = u[sl, :, :, 3] * rho_inv
    sq = 0.5 * (u[sl, :, :, 1] ** 2 + u[sl, :, :, 2] ** 2
                + u[sl, :, :, 3] ** 2) * rho_inv
    square[sl] = sq
    qs[sl] = sq * rho_inv
    if speed is not None:
        speed[sl] = np.sqrt(c.c1c2 * rho_inv * (u[sl, :, :, 4] - sq))


def fields_slab(lo: int, hi: int, u, rho_i, us, vs, ws, qs, square,
                speed, c: CFDConstants) -> None:
    """Derived pointwise fields for planes [lo, hi); speed is None for BT.

    Fused directly into the output field views (plus two arena scratch
    buffers); bit-identical to :func:`fields_slab_reference` -- note
    ``x ** 2`` lowers to ``x * x`` in NumPy, and scalar multiplies
    commute bitwise.
    """
    if hi <= lo:
        return
    sl = slice(lo, hi)
    arena = worker_arena()
    shape = u[sl, :, :, 0].shape
    t = arena.take(shape)
    t2 = arena.take(shape)

    rho_inv = rho_i[sl]
    np.divide(1.0, u[sl, :, :, 0], out=rho_inv)
    np.multiply(u[sl, :, :, 1], rho_inv, out=us[sl])
    np.multiply(u[sl, :, :, 2], rho_inv, out=vs[sl])
    np.multiply(u[sl, :, :, 3], rho_inv, out=ws[sl])
    sq = square[sl]
    np.multiply(u[sl, :, :, 1], u[sl, :, :, 1], out=t)
    np.multiply(u[sl, :, :, 2], u[sl, :, :, 2], out=t2)
    np.add(t, t2, out=t)
    np.multiply(u[sl, :, :, 3], u[sl, :, :, 3], out=t2)
    np.add(t, t2, out=t)
    np.multiply(t, 0.5, out=t)
    np.multiply(t, rho_inv, out=sq)
    np.multiply(sq, rho_inv, out=qs[sl])
    if speed is not None:
        np.multiply(rho_inv, c.c1c2, out=t)
        np.subtract(u[sl, :, :, 4], sq, out=t2)
        np.multiply(t, t2, out=t)
        np.sqrt(t, out=speed[sl])


def _view(f: np.ndarray, axis: int, offset: int, lo: int, hi: int):
    """Interior view of a scalar field: k in [1+lo, 1+hi), j and i interior,
    with ``axis`` displaced by ``offset``."""
    slices = [slice(1 + lo, 1 + hi), slice(1, -1), slice(1, -1)]
    base = slices[axis]
    stop = base.stop if base.stop > 0 else f.shape[axis] + base.stop
    slices[axis] = slice(base.start + offset, stop + offset)
    return f[tuple(slices)]


def rhs_slab_reference(lo: int, hi: int, u, rhs, forcing, rho_i, us, vs,
                       ws, qs, square, c: CFDConstants) -> None:
    """Expression-form fluxes + dissipation + dt scaling (the readable
    spec; allocates a temporary per sub-expression)."""
    if hi <= lo:
        return
    nz = u.shape[0]
    klo_copy = 0 if lo == 0 else 1 + lo
    khi_copy = nz if hi == nz - 2 else 1 + hi
    rhs[klo_copy:khi_copy] = forcing[klo_copy:khi_copy]

    def C(f, axis, o):
        return _view(f, axis, o, lo, hi)

    def CU(m, axis, o):
        return _view(u[..., m], axis, o, lo, hi)

    def D2(f, axis):
        return C(f, axis, 1) - 2.0 * C(f, axis, 0) + C(f, axis, -1)

    def D2U(m, axis):
        return CU(m, axis, 1) - 2.0 * CU(m, axis, 0) + CU(m, axis, -1)

    R = rhs[1 + lo : 1 + hi, 1:-1, 1:-1, :]
    vel_fields = {1: us, 2: vs, 3: ws}

    for direction, vel in (("x", 1), ("y", 2), ("z", 3)):
        axis = _AXIS[direction]
        t2 = getattr(c, f"t{direction}2")
        prefix = {"x": "xx", "y": "yy", "z": "zz"}[direction]
        con2 = getattr(c, f"{prefix}con2")
        con3 = getattr(c, f"{prefix}con3")
        con4 = getattr(c, f"{prefix}con4")
        con5 = getattr(c, f"{prefix}con5")
        d_t1 = [getattr(c, f"d{direction}{m}t{direction}1")
                for m in range(1, 6)]
        w = vel_fields[vel]
        wp1 = C(w, axis, 1)
        wc = C(w, axis, 0)
        wm1 = C(w, axis, -1)

        # continuity
        R[..., 0] += (d_t1[0] * D2U(0, axis)
                      - t2 * (CU(vel, axis, 1) - CU(vel, axis, -1)))
        # momentum
        for m in (1, 2, 3):
            if m == vel:
                R[..., m] += (d_t1[m] * D2U(m, axis)
                              + con2 * c.con43 * (wp1 - 2.0 * wc + wm1)
                              - t2 * (CU(m, axis, 1) * wp1
                                      - CU(m, axis, -1) * wm1
                                      + (CU(4, axis, 1) - C(square, axis, 1)
                                         - CU(4, axis, -1)
                                         + C(square, axis, -1)) * c.c2))
            else:
                R[..., m] += (d_t1[m] * D2U(m, axis)
                              + con2 * D2(vel_fields[m], axis)
                              - t2 * (CU(m, axis, 1) * wp1
                                      - CU(m, axis, -1) * wm1))
        # energy
        R[..., 4] += (d_t1[4] * D2U(4, axis)
                      + con3 * D2(qs, axis)
                      + con4 * (wp1 * wp1 - 2.0 * wc * wc + wm1 * wm1)
                      + con5 * (CU(4, axis, 1) * C(rho_i, axis, 1)
                                - 2.0 * CU(4, axis, 0) * C(rho_i, axis, 0)
                                + CU(4, axis, -1) * C(rho_i, axis, -1))
                      - t2 * ((c.c1 * CU(4, axis, 1)
                               - c.c2 * C(square, axis, 1)) * wp1
                              - (c.c1 * CU(4, axis, -1)
                                 - c.c2 * C(square, axis, -1)) * wm1))

        _dissipation_u_reference(rhs, u, axis, lo, hi, c.dssp)

    R *= c.dt


def rhs_slab(lo: int, hi: int, u, rhs, forcing, rho_i, us, vs, ws, qs,
             square, c: CFDConstants) -> None:
    """Fluxes + dissipation + dt scaling for interior planes [1+lo, 1+hi).

    ``lo``/``hi`` partition the interior k range 0..nz-3.  The k=0 and
    k=nz-1 boundary planes of rhs are copied from forcing by the slabs
    that touch them.

    Fused into four interior-shaped arena buffers (``acc`` accumulates a
    statement's right-hand side; ``s1``/``s2``/``s3`` hold
    sub-expressions); every chain is the left-associative grouping of the
    matching :func:`rhs_slab_reference` statement, so results are
    bit-identical.
    """
    if hi <= lo:
        return
    nz = u.shape[0]
    klo_copy = 0 if lo == 0 else 1 + lo
    khi_copy = nz if hi == nz - 2 else 1 + hi
    rhs[klo_copy:khi_copy] = forcing[klo_copy:khi_copy]

    def C(f, axis, o):
        return _view(f, axis, o, lo, hi)

    def CU(m, axis, o):
        return _view(u[..., m], axis, o, lo, hi)

    arena = worker_arena()
    interior = (hi - lo, u.shape[1] - 2, u.shape[2] - 2)
    acc = arena.take(interior)
    s1 = arena.take(interior)
    s2 = arena.take(interior)
    s3 = arena.take(interior)

    def d2u_into(m, axis, out, tmp):
        # CU(+1) - 2.0*CU(0) + CU(-1), left-associated
        np.multiply(CU(m, axis, 0), 2.0, out=tmp)
        np.subtract(CU(m, axis, 1), tmp, out=out)
        np.add(out, CU(m, axis, -1), out=out)

    def d2_into(f, axis, out, tmp):
        np.multiply(C(f, axis, 0), 2.0, out=tmp)
        np.subtract(C(f, axis, 1), tmp, out=out)
        np.add(out, C(f, axis, -1), out=out)

    R = rhs[1 + lo : 1 + hi, 1:-1, 1:-1, :]
    vel_fields = {1: us, 2: vs, 3: ws}

    for direction, vel in (("x", 1), ("y", 2), ("z", 3)):
        axis = _AXIS[direction]
        t2 = getattr(c, f"t{direction}2")
        prefix = {"x": "xx", "y": "yy", "z": "zz"}[direction]
        con2 = getattr(c, f"{prefix}con2")
        con3 = getattr(c, f"{prefix}con3")
        con4 = getattr(c, f"{prefix}con4")
        con5 = getattr(c, f"{prefix}con5")
        d_t1 = [getattr(c, f"d{direction}{m}t{direction}1")
                for m in range(1, 6)]
        w = vel_fields[vel]
        wp1 = C(w, axis, 1)
        wc = C(w, axis, 0)
        wm1 = C(w, axis, -1)

        # continuity: d_t1[0]*D2U(0) - t2*(CU(vel,+1) - CU(vel,-1))
        d2u_into(0, axis, acc, s1)
        np.multiply(acc, d_t1[0], out=acc)
        np.subtract(CU(vel, axis, 1), CU(vel, axis, -1), out=s1)
        np.multiply(s1, t2, out=s1)
        np.subtract(acc, s1, out=acc)
        Rm = R[..., 0]
        np.add(Rm, acc, out=Rm)

        # momentum
        for m in (1, 2, 3):
            d2u_into(m, axis, acc, s1)
            np.multiply(acc, d_t1[m], out=acc)
            if m == vel:
                # + con2*con43*((wp1 - 2.0*wc) + wm1)
                np.multiply(wc, 2.0, out=s1)
                np.subtract(wp1, s1, out=s1)
                np.add(s1, wm1, out=s1)
                np.multiply(s1, con2 * c.con43, out=s1)
                np.add(acc, s1, out=acc)
                # - t2*((CU(m,+1)*wp1 - CU(m,-1)*wm1)
                #       + (((CU(4,+1) - sq(+1)) - CU(4,-1)) + sq(-1))*c2)
                np.multiply(CU(m, axis, 1), wp1, out=s1)
                np.multiply(CU(m, axis, -1), wm1, out=s2)
                np.subtract(s1, s2, out=s1)
                np.subtract(CU(4, axis, 1), C(square, axis, 1), out=s2)
                np.subtract(s2, CU(4, axis, -1), out=s2)
                np.add(s2, C(square, axis, -1), out=s2)
                np.multiply(s2, c.c2, out=s2)
                np.add(s1, s2, out=s1)
            else:
                # + con2*D2(vel_fields[m])
                d2_into(vel_fields[m], axis, s1, s2)
                np.multiply(s1, con2, out=s1)
                np.add(acc, s1, out=acc)
                # - t2*(CU(m,+1)*wp1 - CU(m,-1)*wm1)
                np.multiply(CU(m, axis, 1), wp1, out=s1)
                np.multiply(CU(m, axis, -1), wm1, out=s2)
                np.subtract(s1, s2, out=s1)
            np.multiply(s1, t2, out=s1)
            np.subtract(acc, s1, out=acc)
            Rm = R[..., m]
            np.add(Rm, acc, out=Rm)

        # energy
        d2u_into(4, axis, acc, s1)
        np.multiply(acc, d_t1[4], out=acc)
        d2_into(qs, axis, s1, s2)
        np.multiply(s1, con3, out=s1)
        np.add(acc, s1, out=acc)
        # + con4*((wp1*wp1 - (2.0*wc)*wc) + wm1*wm1)
        np.multiply(wp1, wp1, out=s1)
        np.multiply(wc, 2.0, out=s2)
        np.multiply(s2, wc, out=s2)
        np.subtract(s1, s2, out=s1)
        np.multiply(wm1, wm1, out=s2)
        np.add(s1, s2, out=s1)
        np.multiply(s1, con4, out=s1)
        np.add(acc, s1, out=acc)
        # + con5*((CU(4,+1)*ri(+1) - (2.0*CU(4,0))*ri(0)) + CU(4,-1)*ri(-1))
        np.multiply(CU(4, axis, 1), C(rho_i, axis, 1), out=s1)
        np.multiply(CU(4, axis, 0), 2.0, out=s2)
        np.multiply(s2, C(rho_i, axis, 0), out=s2)
        np.subtract(s1, s2, out=s1)
        np.multiply(CU(4, axis, -1), C(rho_i, axis, -1), out=s2)
        np.add(s1, s2, out=s1)
        np.multiply(s1, con5, out=s1)
        np.add(acc, s1, out=acc)
        # - t2*((c1*CU(4,+1) - c2*sq(+1))*wp1 - (c1*CU(4,-1) - c2*sq(-1))*wm1)
        np.multiply(CU(4, axis, 1), c.c1, out=s1)
        np.multiply(C(square, axis, 1), c.c2, out=s2)
        np.subtract(s1, s2, out=s1)
        np.multiply(s1, wp1, out=s1)
        np.multiply(CU(4, axis, -1), c.c1, out=s2)
        np.multiply(C(square, axis, -1), c.c2, out=s3)
        np.subtract(s2, s3, out=s2)
        np.multiply(s2, wm1, out=s2)
        np.subtract(s1, s2, out=s1)
        np.multiply(s1, t2, out=s1)
        np.subtract(acc, s1, out=acc)
        Rm = R[..., 4]
        np.add(Rm, acc, out=Rm)

        _dissipation_u(rhs, u, axis, lo, hi, c.dssp)

    R *= c.dt


def _dissipation_u_reference(rhs, u, axis: int, lo: int, hi: int,
                             dssp: float) -> None:
    """Expression-form 4th-order dissipation (the readable spec)."""
    n = u.shape[axis]

    if axis != 0:
        def U(alo, ahi, off):
            slices = [slice(1 + lo, 1 + hi), slice(1, -1), slice(1, -1),
                      slice(None)]
            slices[axis] = slice(alo + off, ahi + off + 1)
            return u[tuple(slices)]

        def Rv(alo, ahi):
            slices = [slice(1 + lo, 1 + hi), slice(1, -1), slice(1, -1),
                      slice(None)]
            slices[axis] = slice(alo, ahi + 1)
            return rhs[tuple(slices)]

        Rv(1, 1)[...] -= dssp * (5.0 * U(1, 1, 0) - 4.0 * U(1, 1, 1)
                                 + U(1, 1, 2))
        Rv(2, 2)[...] -= dssp * (-4.0 * U(2, 2, -1) + 6.0 * U(2, 2, 0)
                                 - 4.0 * U(2, 2, 1) + U(2, 2, 2))
        alo, ahi = 3, n - 4
        if ahi >= alo:
            Rv(alo, ahi)[...] -= dssp * (
                U(alo, ahi, -2) - 4.0 * U(alo, ahi, -1)
                + 6.0 * U(alo, ahi, 0) - 4.0 * U(alo, ahi, 1)
                + U(alo, ahi, 2))
        i = n - 3
        Rv(i, i)[...] -= dssp * (U(i, i, -2) - 4.0 * U(i, i, -1)
                                 + 6.0 * U(i, i, 0) - 4.0 * U(i, i, 1))
        i = n - 2
        Rv(i, i)[...] -= dssp * (U(i, i, -2) - 4.0 * U(i, i, -1)
                                 + 5.0 * U(i, i, 0))
        return

    # Swept axis is k itself: per-plane stencils so the boundary-modified
    # rows land correctly for any slab bounds.
    for k in range(1 + lo, 1 + hi):
        target = rhs[k, 1:-1, 1:-1, :]

        def uk(o, _k=k):
            return u[_k + o, 1:-1, 1:-1, :]

        if k == 1:
            target -= dssp * (5.0 * uk(0) - 4.0 * uk(1) + uk(2))
        elif k == 2:
            target -= dssp * (-4.0 * uk(-1) + 6.0 * uk(0)
                              - 4.0 * uk(1) + uk(2))
        elif k == n - 3:
            target -= dssp * (uk(-2) - 4.0 * uk(-1) + 6.0 * uk(0)
                              - 4.0 * uk(1))
        elif k == n - 2:
            target -= dssp * (uk(-2) - 4.0 * uk(-1) + 5.0 * uk(0))
        else:
            target -= dssp * (uk(-2) - 4.0 * uk(-1) + 6.0 * uk(0)
                              - 4.0 * uk(1) + uk(2))


def _dissipation_u(rhs, u, axis: int, lo: int, hi: int, dssp: float) -> None:
    """Subtract the 4th-order dissipation of u from rhs on the slab
    interior, with one-sided stencils at the first/last two interior rows
    of the swept axis.  Fused into arena scratch, bit-identical to
    :func:`_dissipation_u_reference`."""
    n = u.shape[axis]
    arena = worker_arena()

    if axis != 0:
        def U(alo, ahi, off):
            slices = [slice(1 + lo, 1 + hi), slice(1, -1), slice(1, -1),
                      slice(None)]
            slices[axis] = slice(alo + off, ahi + off + 1)
            return u[tuple(slices)]

        def Rv(alo, ahi):
            slices = [slice(1 + lo, 1 + hi), slice(1, -1), slice(1, -1),
                      slice(None)]
            slices[axis] = slice(alo, ahi + 1)
            return rhs[tuple(slices)]

        # The four boundary bands are one row thick; reuse one scratch pair.
        b1 = arena.take(U(1, 1, 0).shape)
        b2 = arena.take(U(1, 1, 0).shape)

        # k=1: (5.0*U0 - 4.0*U1) + U2
        np.multiply(U(1, 1, 0), 5.0, out=b1)
        np.multiply(U(1, 1, 1), 4.0, out=b2)
        np.subtract(b1, b2, out=b1)
        np.add(b1, U(1, 1, 2), out=b1)
        np.multiply(b1, dssp, out=b1)
        rv = Rv(1, 1)
        np.subtract(rv, b1, out=rv)
        # k=2: ((-4.0*Um1 + 6.0*U0) - 4.0*U1) + U2
        np.multiply(U(2, 2, -1), -4.0, out=b1)
        np.multiply(U(2, 2, 0), 6.0, out=b2)
        np.add(b1, b2, out=b1)
        np.multiply(U(2, 2, 1), 4.0, out=b2)
        np.subtract(b1, b2, out=b1)
        np.add(b1, U(2, 2, 2), out=b1)
        np.multiply(b1, dssp, out=b1)
        rv = Rv(2, 2)
        np.subtract(rv, b1, out=rv)
        # central band: (((Um2 - 4.0*Um1) + 6.0*U0) - 4.0*U1) + U2
        alo, ahi = 3, n - 4
        if ahi >= alo:
            c1 = arena.take(U(alo, ahi, 0).shape)
            c2 = arena.take(U(alo, ahi, 0).shape)
            np.multiply(U(alo, ahi, -1), 4.0, out=c1)
            np.subtract(U(alo, ahi, -2), c1, out=c1)
            np.multiply(U(alo, ahi, 0), 6.0, out=c2)
            np.add(c1, c2, out=c1)
            np.multiply(U(alo, ahi, 1), 4.0, out=c2)
            np.subtract(c1, c2, out=c1)
            np.add(c1, U(alo, ahi, 2), out=c1)
            np.multiply(c1, dssp, out=c1)
            rv = Rv(alo, ahi)
            np.subtract(rv, c1, out=rv)
        # k=n-3: ((Um2 - 4.0*Um1) + 6.0*U0) - 4.0*U1
        i = n - 3
        np.multiply(U(i, i, -1), 4.0, out=b1)
        np.subtract(U(i, i, -2), b1, out=b1)
        np.multiply(U(i, i, 0), 6.0, out=b2)
        np.add(b1, b2, out=b1)
        np.multiply(U(i, i, 1), 4.0, out=b2)
        np.subtract(b1, b2, out=b1)
        np.multiply(b1, dssp, out=b1)
        rv = Rv(i, i)
        np.subtract(rv, b1, out=rv)
        # k=n-2: (Um2 - 4.0*Um1) + 5.0*U0
        i = n - 2
        np.multiply(U(i, i, -1), 4.0, out=b1)
        np.subtract(U(i, i, -2), b1, out=b1)
        np.multiply(U(i, i, 0), 5.0, out=b2)
        np.add(b1, b2, out=b1)
        np.multiply(b1, dssp, out=b1)
        rv = Rv(i, i)
        np.subtract(rv, b1, out=rv)
        return

    # Swept axis is k itself: per-plane stencils so the boundary-modified
    # rows land correctly for any slab bounds.  One scratch pair hoisted
    # out of the loop (a take() per plane would grow the pool).
    plane = u[0, 1:-1, 1:-1, :].shape
    b1 = arena.take(plane)
    b2 = arena.take(plane)
    for k in range(1 + lo, 1 + hi):
        target = rhs[k, 1:-1, 1:-1, :]

        def uk(o, _k=k):
            return u[_k + o, 1:-1, 1:-1, :]

        if k == 1:
            np.multiply(uk(0), 5.0, out=b1)
            np.multiply(uk(1), 4.0, out=b2)
            np.subtract(b1, b2, out=b1)
            np.add(b1, uk(2), out=b1)
        elif k == 2:
            np.multiply(uk(-1), -4.0, out=b1)
            np.multiply(uk(0), 6.0, out=b2)
            np.add(b1, b2, out=b1)
            np.multiply(uk(1), 4.0, out=b2)
            np.subtract(b1, b2, out=b1)
            np.add(b1, uk(2), out=b1)
        elif k == n - 3:
            np.multiply(uk(-1), 4.0, out=b1)
            np.subtract(uk(-2), b1, out=b1)
            np.multiply(uk(0), 6.0, out=b2)
            np.add(b1, b2, out=b1)
            np.multiply(uk(1), 4.0, out=b2)
            np.subtract(b1, b2, out=b1)
        elif k == n - 2:
            np.multiply(uk(-1), 4.0, out=b1)
            np.subtract(uk(-2), b1, out=b1)
            np.multiply(uk(0), 5.0, out=b2)
            np.add(b1, b2, out=b1)
        else:
            np.multiply(uk(-1), 4.0, out=b1)
            np.subtract(uk(-2), b1, out=b1)
            np.multiply(uk(0), 6.0, out=b2)
            np.add(b1, b2, out=b1)
            np.multiply(uk(1), 4.0, out=b2)
            np.subtract(b1, b2, out=b1)
            np.add(b1, uk(2), out=b1)
        np.multiply(b1, dssp, out=b1)
        np.subtract(target, b1, out=target)


def add_slab(lo: int, hi: int, u, rhs) -> None:
    """u += rhs on interior planes [1+lo, 1+hi) (the ``add`` routine)."""
    u[1 + lo : 1 + hi, 1:-1, 1:-1, :] += rhs[1 + lo : 1 + hi, 1:-1, 1:-1, :]


# --------------------------------------------------------------------- #
# kernel-tier registration (see repro.kernels.registry); the compiled
# flux+dissipation kernel lives in repro.kernels.compiled

registry.register("cfd.fields", "reference", fields_slab_reference)
registry.register("cfd.fields", "fused", fields_slab)
registry.register("cfd.rhs", "reference", rhs_slab_reference)
registry.register("cfd.rhs", "fused", rhs_slab)
