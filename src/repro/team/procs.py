"""Process backend: true parallelism over POSIX shared memory.

The reproduction notes for this paper flag the CPython GIL as the obstacle
to Java-style thread scalability, and call for a NumPy/multiprocessing
rework.  This backend is that rework: persistent forked worker processes,
benchmark arrays placed in ``multiprocessing.shared_memory`` segments, and
slab tasks shipped over pipes as (function, bounds, arguments) tuples with
shared arrays passed *by reference* (name + shape + dtype), never by value.

Constraints (enforced by convention across the suite):

* task functions must be module-level (picklable);
* mutable arrays must come from ``team.shared(...)``;
* other arguments are pickled by value and therefore treated as read-only.

The task/result/error bookkeeping lives in the shared dispatch core
(:meth:`repro.team.base.Team._dispatch`); this module provides only the
pipe transport.  Worker replies carry the worker's own ``perf_counter``
start/finish stamps (CLOCK_MONOTONIC, shared across processes on Linux),
so the core's dispatch/execute/barrier split works identically here.

Fault tolerance: the reply-gather loop multiplexes over the worker pipes
with ``multiprocessing.connection.wait`` so it can notice a dead worker
(pipe EOF, or ``Process.is_alive()`` false on a liveness probe) and an
expired ``FaultPolicy.dispatch_timeout`` while the survivors keep
computing.  Tasks and replies carry a dispatch sequence number so replies
from a generation the master already abandoned (after a timeout) are
discarded instead of corrupting the next dispatch.  Dead or hung workers
are respawned by forking a fresh process on the same rank -- shared-memory
segments re-attach by name, so a respawned worker sees the same arrays.
"""

from __future__ import annotations

import multiprocessing as mp
import multiprocessing.connection
import os
import time
import traceback
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Callable, Sequence

import numpy as np

from repro.runtime.arena import fresh_worker_arena
# Re-exported here for backwards compatibility; defined with the runtime's
# dispatch types.
from repro.runtime.dispatch import (DispatchTimeout, FaultPolicy,
                                    TransportFailure, WorkerDeath,
                                    WorkerError, WorkerReply)
from repro.runtime.plan import Bounds
from repro.team.base import Team

__all__ = ["ProcessTeam", "SharedArrayRef", "WorkerError"]

#: Idle interval between liveness probes while waiting for replies.
_PROBE_SECONDS = 0.1


@dataclass(frozen=True)
class SharedArrayRef:
    """Pickle-friendly handle to a team-shared array segment."""

    name: str
    shape: tuple[int, ...]
    dtype: str


def _worker_main(rank: int, conn) -> None:
    """Worker loop: resolve array refs, run the slab task, reply."""
    # Fork copied the master thread's TLS slot; start from an empty
    # arena so this worker's scratch pools are its own (a respawned
    # worker likewise starts fresh -- nothing to repair).
    arena = fresh_worker_arena()
    attached: dict[str, tuple[shared_memory.SharedMemory, None]] = {}

    def resolve(arg: Any) -> Any:
        if isinstance(arg, SharedArrayRef):
            entry = attached.get(arg.name)
            if entry is None:
                # The master started the resource tracker before forking, so
                # this register call lands in the shared tracker's cache
                # (idempotent) rather than spawning a per-worker tracker
                # that would unlink segments on worker exit (gh-82300).
                shm = shared_memory.SharedMemory(name=arg.name)
                attached[arg.name] = entry = (shm, None)
            shm = entry[0]
            return np.ndarray(arg.shape, dtype=np.dtype(arg.dtype),
                              buffer=shm.buf)
        return arg

    try:
        while True:
            msg = conn.recv()
            if msg is None:
                break
            seq, fn, a, b, args = msg
            # Mirror execute_task (remote tracebacks must be captured as
            # strings here): new arena generation, then run and stamp.
            arena.next_dispatch()
            started_at = time.perf_counter()
            try:
                args = tuple(resolve(x) for x in args)
                ok, result = True, fn(a, b, *args)
            except BaseException:
                ok, result = False, traceback.format_exc()
            finished_at = time.perf_counter()
            conn.send((seq, ok, result, started_at, finished_at))
    finally:
        for shm, _ in attached.values():
            shm.close()
        conn.close()


class ProcessTeam(Team):
    """Persistent forked workers sharing arrays through POSIX shared memory."""

    backend = "process"

    def __init__(self, nworkers: int, policy: FaultPolicy | None = None,
                 kernel_backend: str = "fused"):
        super().__init__(nworkers, policy=policy,
                         kernel_backend=kernel_backend)
        self._ctx = mp.get_context("fork")
        # Start the resource tracker now so every forked worker inherits it;
        # see the note in _worker_main's resolve().
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        self._segments: list[shared_memory.SharedMemory] = []
        self._array_ids: list[int] = []
        self._seq = 0
        self._pipes: list = []
        self._procs: list = []
        for rank in range(nworkers):
            parent, proc = self._spawn_worker(rank)
            self._pipes.append(parent)
            self._procs.append(proc)

    def _spawn_worker(self, rank: int):
        """Fork one worker; returns (master pipe end, process)."""
        parent, child = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main, args=(rank, child),
            daemon=True, name=f"npb-worker-{rank}",
        )
        proc.start()
        child.close()
        return parent, proc

    # ------------------------------------------------------------------ #

    def shared(self, shape: Sequence[int] | int, dtype=np.float64) -> np.ndarray:
        dtype = np.dtype(dtype)
        if isinstance(shape, int):
            shape = (shape,)
        shape = tuple(int(s) for s in shape)
        nbytes = max(1, int(np.prod(shape)) * dtype.itemsize)
        shm = shared_memory.SharedMemory(
            create=True, size=nbytes, name=f"npb_{os.getpid()}_{len(self._segments)}"
        )
        self._segments.append(shm)
        array = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
        array.fill(0)
        # Remember the segment name on the array so arguments can be
        # translated back to references when dispatching.
        _SHM_BY_ID[id(array)] = (shm.name, array)
        self._array_ids.append(id(array))
        return array

    def _translate(self, arg: Any) -> Any:
        if isinstance(arg, np.ndarray):
            entry = _SHM_BY_ID.get(id(arg))
            if entry is not None and entry[1] is arg:
                return SharedArrayRef(entry[0], arg.shape, arg.dtype.str)
            # Views of shared arrays must not be shipped: the worker could
            # not reconstruct them, and silently pickling them by value
            # would break write visibility.
            base = arg.base
            while base is not None:
                if isinstance(base, np.ndarray):
                    base_entry = _SHM_BY_ID.get(id(base))
                    if base_entry is not None and base_entry[1] is base:
                        raise ValueError(
                            "pass whole team-shared arrays to parallel "
                            "tasks, not views; slice inside the task function"
                        )
                    base = base.base
                else:
                    break
        return arg

    def _transport(self, fn: Callable, bounds: Bounds,
                   args: tuple) -> list[WorkerReply]:
        payload = tuple(self._translate(a) for a in args)
        self._seq += 1
        seq = self._seq
        for rank, pipe in enumerate(self._pipes):
            a, b = bounds[rank]
            try:
                pipe.send((seq, fn, a, b, payload))
            except (BrokenPipeError, OSError) as exc:
                raise WorkerDeath(
                    f"worker {rank} pipe closed on send "
                    f"({type(exc).__name__}); process "
                    f"{'alive' if self._procs[rank].is_alive() else 'dead'}",
                    ranks=[rank]) from None
        timeout = self.policy.dispatch_timeout
        deadline = (None if timeout is None
                    else time.perf_counter() + timeout)
        replies: list[WorkerReply | None] = [None] * self._nworkers
        pending = set(range(self._nworkers))
        pipe_rank = {id(self._pipes[r]): r for r in pending}
        while pending:
            chunk = _PROBE_SECONDS
            if deadline is not None:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    raise DispatchTimeout(
                        f"dispatch exceeded {timeout}s; worker(s) "
                        f"{sorted(pending)} did not reply",
                        ranks=sorted(pending))
                chunk = min(chunk, remaining)
            ready = mp.connection.wait(
                [self._pipes[r] for r in pending], timeout=chunk)
            for conn in ready:
                rank = pipe_rank[id(conn)]
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    # pipe EOF: the worker is gone (SIGKILL, OOM, crash)
                    raise WorkerDeath(
                        f"worker {rank} pipe hit EOF mid-dispatch "
                        f"(exitcode {self._procs[rank].exitcode})",
                        ranks=[rank]) from None
                rseq, ok, value, started_at, finished_at = msg
                if rseq != seq:
                    # stale reply from a generation the master abandoned
                    # after a timeout; drop it
                    continue
                replies[rank] = WorkerReply(rank, ok, value, started_at,
                                            finished_at)
                pending.discard(rank)
            if not ready:
                # idle probe: catch a worker that died without its pipe
                # reporting EOF yet
                dead = [r for r in sorted(pending)
                        if not self._procs[r].is_alive()]
                if dead:
                    raise WorkerDeath(
                        f"worker(s) {dead} found dead by liveness probe "
                        f"(exitcodes "
                        f"{[self._procs[r].exitcode for r in dead]})",
                        ranks=dead)
        return replies  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    # recovery

    def _respawn(self, rank: int, attempt: int) -> None:
        """Replace worker ``rank``: reap the old process, fork a new one."""
        proc = self._procs[rank]
        was_alive = proc.is_alive()
        if was_alive:
            # hung worker: escalate terminate -> kill
            proc.terminate()
            proc.join(timeout=1.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=1.0)
        else:
            proc.join(timeout=1.0)
        try:
            self._pipes[rank].close()
        except OSError:
            pass
        self._pipes[rank], self._procs[rank] = self._spawn_worker(rank)
        self._fault("respawn", rank=rank,
                    detail=f"respawned {'hung' if was_alive else 'dead'} "
                           f"worker (attempt {attempt}, new pid "
                           f"{self._procs[rank].pid})")

    def _try_recover(self, failure: TransportFailure, attempt: int) -> bool:
        if not failure.ranks:
            return False
        time.sleep(attempt * self.policy.backoff_seconds)
        for rank in failure.ranks:
            self._respawn(rank, attempt)
        return True

    def alive(self) -> bool:
        return not self._closed and all(
            proc.is_alive() for proc in self._procs
        )

    def close(self) -> None:
        if self._closed:
            return
        super().close()
        for pipe in self._pipes:
            try:
                pipe.send(None)
                pipe.close()
            except OSError:
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
        for array_id in self._array_ids:
            _SHM_BY_ID.pop(array_id, None)
        self._array_ids.clear()
        for shm in self._segments:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:
                pass
        self._segments.clear()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass


#: id(array) -> (segment name, owning array).  Keyed by object identity; the
#: owning-array reference keeps the ndarray alive so ids are never recycled
#: while registered.
_SHM_BY_ID: dict[int, tuple[str, np.ndarray]] = {}
