"""LU triangular sweeps (jacld/blts and jacu/buts), hyperplane-vectorized.

The SSOR lower solve updates each interior point from its already-updated
(i-1, j-1, k-1) neighbors; the upper solve from (i+1, j+1, k+1).  Points
on a hyperplane i+j+k = const are mutually independent, so each wavefront
is one batched NumPy step: gather neighbor values, build the 5x5 Jacobian
blocks, solve the stacked diagonal systems, scatter.  Per-point arithmetic
is identical to the Fortran k/j/i ordering because triangular solves are
order-independent along independent points.

Workers split each wavefront's point list; the barrier per wavefront is
the synchronization-in-inner-loop pattern the paper blames for LU's lower
thread scalability.
"""

from __future__ import annotations

import numpy as np

from repro.bt.solve import _jacobians
from repro.cfd.constants import CFDConstants

_T1 = {"x": "tx1", "y": "ty1", "z": "tz1"}
_T2 = {"x": "tx2", "y": "ty2", "z": "tz2"}


def hyperplanes(nx: int, ny: int, nz: int):
    """Interior points grouped by wavefront i+j+k.

    Returns (idx_k, idx_j, idx_i, offsets): three flat int64 index arrays
    containing every interior point sorted by wavefront (ties in scan
    order), and offsets[s]..offsets[s+1] delimiting wavefront s.
    """
    kk, jj, ii = np.meshgrid(
        np.arange(1, nz - 1), np.arange(1, ny - 1), np.arange(1, nx - 1),
        indexing="ij",
    )
    kk, jj, ii = kk.ravel(), jj.ravel(), ii.ravel()
    s = kk + jj + ii - 3  # wavefront number, 0-based
    order = np.argsort(s, kind="stable")
    counts = np.bincount(s, minlength=(nx - 2) + (ny - 2) + (nz - 2) - 2)
    offsets = np.concatenate(([0], np.cumsum(counts)))
    return (kk[order].astype(np.int64), jj[order].astype(np.int64),
            ii[order].astype(np.int64), offsets.astype(np.int64))


def plane_wavefronts(nx: int, ny: int, nz: int):
    """Interior points grouped the way the paper's Java LU sweeps them:
    k planes in order, and anti-diagonals i+j within each plane.

    Same return convention as :func:`hyperplanes`.  Point-for-point the
    arithmetic is identical to the hyperplane grouping (both are valid
    orderings of the same triangular solve); the difference is the group
    count -- (nz-2)*(2n-3)-ish barriers per sweep instead of ~3n, the
    "synchronization inside a loop over one grid dimension" the paper
    blames for LU's lower thread scalability.
    """
    kk, jj, ii = np.meshgrid(
        np.arange(1, nz - 1), np.arange(1, ny - 1), np.arange(1, nx - 1),
        indexing="ij",
    )
    kk, jj, ii = kk.ravel(), jj.ravel(), ii.ravel()
    diag = jj + ii - 2                 # in-plane wavefront, 0-based
    ndiag = (nx - 2) + (ny - 2) - 1
    group = (kk - 1) * ndiag + diag    # global group id, plane-major
    order = np.argsort(group, kind="stable")
    counts = np.bincount(group, minlength=(nz - 2) * ndiag)
    offsets = np.concatenate(([0], np.cumsum(counts)))
    return (kk[order].astype(np.int64), jj[order].astype(np.int64),
            ii[order].astype(np.int64), offsets.astype(np.int64))


def _gather_u(u, k, j, i):
    return u[k, j, i, :]


def _point_qs(ul):
    """(qs, square) in the convention of the shared Jacobian builder."""
    t1 = 1.0 / ul[..., 0]
    square = 0.5 * (ul[..., 1] ** 2 + ul[..., 2] ** 2
                    + ul[..., 3] ** 2) * t1
    return square * t1, square


def _offdiag_block(u_nb, direction: str, vel: int, sign: float,
                   c: CFDConstants):
    """Lower (sign=-1) or upper (sign=+1) block for one direction, built
    from the neighbor state ``u_nb``: sign*dt*t2*fjac - dt*t1*(njac + D)."""
    qsl, sql = _point_qs(u_nb)
    fjac, njac = _jacobians(u_nb, qsl, sql, vel, c)
    t1 = c.dt * getattr(c, _T1[direction])
    t2 = c.dt * getattr(c, _T2[direction])
    dvec = np.array([getattr(c, f"d{direction}{m}") for m in range(1, 6)])
    block = sign * t2 * fjac - t1 * njac
    block[..., range(5), range(5)] -= t1 * dvec
    return block


def _diag_block(ul, c: CFDConstants):
    """The jacld/jacu diagonal block:
    I + 2*dt*(tx1*Nx + ty1*Ny + tz1*Nz) + 2*dt*diag(t?1 . d?)."""
    qsl, sql = _point_qs(ul)
    d = np.zeros(ul.shape[:-1] + (5, 5))
    ddiag = np.zeros(5)
    for direction, vel in (("x", 1), ("y", 2), ("z", 3)):
        _, njac = _jacobians(ul, qsl, sql, vel, c)
        t1 = getattr(c, _T1[direction])
        d += (2.0 * c.dt * t1) * njac
        ddiag += (2.0 * c.dt * t1) * np.array(
            [getattr(c, f"d{direction}{m}") for m in range(1, 6)])
    d[..., range(5), range(5)] += 1.0 + ddiag
    return d


def blts_slab(lo: int, hi: int, rsd, u, idx_k, idx_j, idx_i,
              start: int, omega: float, c: CFDConstants) -> None:
    """Lower-triangular update for points [start+lo, start+hi) of a
    wavefront (jacld + blts)."""
    if hi <= lo:
        return
    sel = slice(start + lo, start + hi)
    k, j, i = idx_k[sel], idx_j[sel], idx_i[sel]

    acc = rsd[k, j, i, :].copy()
    for direction, vel, dk, dj, di in (("z", 3, -1, 0, 0),
                                       ("y", 2, 0, -1, 0),
                                       ("x", 1, 0, 0, -1)):
        u_nb = _gather_u(u, k + dk, j + dj, i + di)
        block = _offdiag_block(u_nb, direction, vel, -1.0, c)
        v_nb = rsd[k + dk, j + dj, i + di, :]
        acc -= omega * (block @ v_nb[..., None])[..., 0]

    d = _diag_block(u[k, j, i, :], c)
    rsd[k, j, i, :] = np.linalg.solve(d, acc[..., None])[..., 0]


def buts_slab(lo: int, hi: int, rsd, u, idx_k, idx_j, idx_i,
              start: int, omega: float, c: CFDConstants) -> None:
    """Upper-triangular update for points [start+lo, start+hi) of a
    wavefront (jacu + buts)."""
    if hi <= lo:
        return
    sel = slice(start + lo, start + hi)
    k, j, i = idx_k[sel], idx_j[sel], idx_i[sel]

    tv = np.zeros((len(k), 5))
    for direction, vel, dk, dj, di in (("z", 3, 1, 0, 0),
                                       ("y", 2, 0, 1, 0),
                                       ("x", 1, 0, 0, 1)):
        u_nb = _gather_u(u, k + dk, j + dj, i + di)
        block = _offdiag_block(u_nb, direction, vel, 1.0, c)
        v_nb = rsd[k + dk, j + dj, i + di, :]
        tv += omega * (block @ v_nb[..., None])[..., 0]

    d = _diag_block(u[k, j, i, :], c)
    rsd[k, j, i, :] -= np.linalg.solve(d, tv[..., None])[..., 0]
