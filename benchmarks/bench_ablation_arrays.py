"""Ablation: linearized vs dimension-preserving arrays (paper section 3).

The paper measured the dimension-preserving Java translation to be 2-3x
slower than the linearized one and adopted linearized arrays throughout.
This bench reproduces the comparison in the interpreted style: flat
buffer + index arithmetic vs nested lists.
"""

import pytest

from repro.core.basic_ops import OPERATIONS, make_workload, run_operation

GRID = (16, 16, 20)


@pytest.fixture(scope="module")
def workload():
    return make_workload(GRID)


@pytest.mark.parametrize("op", OPERATIONS)
def test_linearized(benchmark, workload, op):
    benchmark.extra_info["layout"] = "linearized"
    benchmark.pedantic(run_operation, args=(op, "python", workload),
                       rounds=3, iterations=1)


@pytest.mark.parametrize("op", OPERATIONS)
def test_multidimensional(benchmark, workload, op):
    benchmark.extra_info["layout"] = "multidimensional"
    benchmark.pedantic(run_operation,
                       args=(op, "python_multidim", workload),
                       rounds=3, iterations=1)
