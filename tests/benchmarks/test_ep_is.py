"""Tests for the EP and IS kernels."""

import numpy as np
import pytest

from repro.ep import EP
from repro.ep.benchmark import _batch_range, _batch_tallies
from repro.ep.params import MK
from repro.isort import IS
from repro.isort.benchmark import create_seq
from repro.isort.params import is_params
from repro.team import ProcessTeam, ThreadTeam


class TestEP:
    def test_class_s_verifies(self):
        result = EP("S").run()
        assert result.verified

    def test_batches_independent_of_partition(self):
        # Jumping the generator per batch must equal sequential tallying.
        sx_a, sy_a, counts_a = _batch_range(0, 4)
        partials = [_batch_range(k, k + 1) for k in range(4)]
        sx_b = sum(p[0] for p in partials)
        sy_b = sum(p[1] for p in partials)
        counts_b = np.sum([p[2] for p in partials], axis=0)
        assert sx_a == pytest.approx(sx_b, rel=1e-12)
        assert sy_a == pytest.approx(sy_b, rel=1e-12)
        assert np.array_equal(counts_a, counts_b)

    def test_acceptance_rate_near_pi_over_4(self):
        _, _, counts = _batch_tallies(0)
        rate = counts.sum() / (1 << MK)
        assert rate == pytest.approx(np.pi / 4, abs=0.01)

    def test_annulus_counts_decrease(self):
        # Gaussian tails: outer annuli must hold ever fewer pairs.
        _, _, counts = _batch_range(0, 8)
        nonzero = counts[counts > 0]
        assert np.all(np.diff(nonzero.astype(float)) < 0)

    def test_gaussian_moments(self):
        bench = EP("S")
        result = bench.run()
        assert result.verified
        # mean of ~2*pi/4*2^24 gaussians is ~0 within a loose bound
        n = bench.gaussian_count * 2
        assert abs(bench.sx) / n < 0.001
        assert abs(bench.sy) / n < 0.001

    def test_parallel_verifies(self):
        with ThreadTeam(3) as team:
            assert EP("S", team).run().verified


class TestISKeyGeneration:
    def test_keys_in_range(self):
        params = is_params("S")
        keys = create_seq(params.num_keys, params.max_key)
        assert keys.min() >= 0
        assert keys.max() < params.max_key

    def test_keys_deterministic(self):
        a = create_seq(1000, 1 << 11)
        b = create_seq(1000, 1 << 11)
        assert np.array_equal(a, b)

    def test_key_distribution_is_centered(self):
        # Sum of four uniforms -> mean 2, so keys center near max_key/2.
        params = is_params("S")
        keys = create_seq(params.num_keys, params.max_key)
        assert abs(keys.mean() / params.max_key - 0.5) < 0.01


class TestIS:
    def test_class_s_verifies(self):
        result = IS("S").run()
        assert result.verified

    def test_all_partial_checks_pass(self):
        bench = IS("S")
        bench.run()
        # 5 spot checks x 10 iterations + 1 full verification
        assert bench.passed_verification == 51

    def test_full_verify_detects_corruption(self):
        bench = IS("S")
        bench.setup()
        bench._iterate()
        assert bench.full_verify()
        bench._cumulative[100] = bench._cumulative[99] - 1  # corrupt
        assert not bench.full_verify()

    def test_process_backend_verifies(self):
        with ProcessTeam(2) as team:
            assert IS("S", team).run().verified
