"""LU: Lower-Upper symmetric Gauss-Seidel simulated CFD application.

Solves the same discrete Navier-Stokes system as BT/SP with an SSOR
scheme: the implicit operator is split into block lower and upper
triangular parts swept in opposite directions each pseudo-time step.
The triangular solves are vectorized over hyperplanes (i+j+k = const),
the standard wavefront formulation whose per-point arithmetic is
identical to the Fortran k/j/i ordering.

The paper singles LU out for its lower thread scalability: the Java
version synchronizes inside a loop over one grid dimension, which the
hyperplane decomposition makes explicit (one barrier per wavefront).
"""

from repro.lu.benchmark import LU
from repro.lu.params import LU_CLASSES, LUParams

__all__ = ["LU", "LUParams", "LU_CLASSES"]
