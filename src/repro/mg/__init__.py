"""MG: Multi-Grid benchmark.

Approximates the solution of the 3-D scalar Poisson equation with periodic
boundaries using a V-cycle multigrid with one smoothing pass per level.
The right-hand side is a set of +1/-1 point charges at the positions of
the ten largest and ten smallest values of an LCG-generated random field.

MG belongs to the paper's structured-grid group: its 27-point stencils are
exactly the "compact 3x3x3 filter" basic operation of Table 1, so its
Java/Fortran ratio tracks the stencil microbenchmark.
"""

from repro.mg.benchmark import MG
from repro.mg.params import MG_CLASSES, MGParams

__all__ = ["MG", "MGParams", "MG_CLASSES"]
