"""Tests for the CG benchmark and its sparse-matrix generator."""

import numpy as np
import pytest

from repro.cg import CG, makea
from repro.cg.params import cg_params
from repro.common.randdp import Randlc
from repro.team import ProcessTeam, SerialTeam, ThreadTeam


@pytest.fixture(scope="module")
def small_matrix():
    rng = Randlc(314159265)
    rng.next()
    return makea(200, 5, 0.1, 10.0, rng)


class TestMakea:
    def test_diagonal_present_every_row(self, small_matrix):
        m = small_matrix
        for i in range(m.n):
            cols = m.colidx[m.rowstr[i]:m.rowstr[i + 1]]
            assert i in cols

    def test_symmetric(self, small_matrix):
        dense = small_matrix.to_dense()
        assert np.abs(dense - dense.T).max() < 1e-15

    def test_positive_definite_after_shift_back(self, small_matrix):
        # A = M + (rcond - shift) I with M PSD-ish; adding shift back
        # must give a positive-definite matrix (eigenvalues ~ [rcond, 1]).
        dense = small_matrix.to_dense() + 10.0 * np.eye(small_matrix.n)
        eigenvalues = np.linalg.eigvalsh(dense)
        # smallest eigenvalue pinned near rcond by the +rcond*I term
        assert eigenvalues.min() == pytest.approx(0.1, rel=1e-2)
        assert eigenvalues.max() > 0

    def test_rowstr_monotone_and_consistent(self, small_matrix):
        m = small_matrix
        assert m.rowstr[0] == 0
        assert np.all(np.diff(m.rowstr) >= 1)  # diagonal guarantees >= 1
        assert m.rowstr[-1] == len(m.a) == len(m.colidx)

    def test_no_duplicate_columns_within_row(self, small_matrix):
        m = small_matrix
        for i in range(m.n):
            cols = m.colidx[m.rowstr[i]:m.rowstr[i + 1]]
            assert len(set(cols.tolist())) == len(cols)

    def test_matvec_matches_dense(self, small_matrix):
        m = small_matrix
        x = np.linspace(-1, 1, m.n)
        assert np.allclose(m.matvec(x), m.to_dense() @ x, atol=1e-12)

    def test_deterministic(self):
        def build():
            rng = Randlc(314159265)
            rng.next()
            return makea(100, 4, 0.1, 5.0, rng)

        a, b = build(), build()
        assert np.array_equal(a.a, b.a)
        assert np.array_equal(a.colidx, b.colidx)


class TestCGBenchmark:
    def test_class_s_verifies(self):
        result = CG("S").run()
        assert result.verified
        assert result.verification.checks[0][3] < 1e-12  # near bit-exact

    def test_class_s_zeta_value(self):
        bench = CG("S")
        bench.run()
        assert bench.zeta == pytest.approx(8.5971775078648, abs=1e-10)

    def test_history_recorded(self):
        bench = CG("S")
        bench.run()
        assert len(bench.history) == bench.niter
        rnorms = [r for r, _ in bench.history]
        assert rnorms[-1] < rnorms[0]  # residual decreases over outers

    def test_thread_backend_verifies(self):
        with ThreadTeam(3) as team:
            assert CG("S", team).run().verified

    def test_process_backend_verifies(self):
        with ProcessTeam(2) as team:
            assert CG("S", team).run().verified

    def test_single_worker_backends_bitwise_equal_serial(self):
        serial = CG("S", SerialTeam())
        serial.run()
        with ThreadTeam(1) as team:
            threaded = CG("S", team)
            threaded.run()
        assert serial.zeta == threaded.zeta

    def test_op_count_formula(self):
        params = cg_params("S")
        bench = CG("S")
        expected = (2.0 * params.niter * params.na
                    * (3.0 + params.nonzer * (params.nonzer + 1)
                       + 25.0 * (5.0 + params.nonzer * (params.nonzer + 1))
                       + 3.0))
        assert bench.op_count() == expected
