"""Kernel-backend registry package: named, selectable kernel tiers.

See :mod:`repro.kernels.registry` for the registry itself and
:mod:`repro.kernels.compiled` for the Numba tier.
"""

from repro.kernels.registry import (DEFAULT_TIER, REGISTRY, TIERS,
                                    KernelRegistry, KernelVariant,
                                    TierUnavailableError, UnknownKernelError,
                                    UnknownTierError, register, resolve,
                                    validate_tier)

__all__ = [
    "DEFAULT_TIER",
    "REGISTRY",
    "TIERS",
    "KernelRegistry",
    "KernelVariant",
    "TierUnavailableError",
    "UnknownKernelError",
    "UnknownTierError",
    "register",
    "resolve",
    "validate_tier",
]
