"""The LU benchmark driver (lu.f main program and ssor)."""

from __future__ import annotations

import numpy as np

from repro.cfd.constants import CFDConstants
from repro.cfd.exact import exact_field
from repro.common.verification import VerificationResult
from repro.core.benchmark import NPBenchmark
from repro.core.registry import register
from repro.lu.operator import apply_operator_slab, rhs_slab
from repro.lu.params import LU_EPSILON, OMEGA, lu_params
from repro.lu.setup import pintgr, setbv, setiv
from repro.lu.sweep import (blts_slab, buts_slab, hyperplanes,
                            plane_wavefronts)


def _scale_rsd_slab(lo: int, hi: int, rsd, dt: float) -> None:
    """rsd *= dt on interior planes (start of each SSOR step)."""
    rsd[1 + lo : 1 + hi, 1:-1, 1:-1, :] *= dt


def _update_u_slab(lo: int, hi: int, u, rsd, tmp: float) -> None:
    """u += tmp * rsd on interior planes (end of each SSOR step)."""
    u[1 + lo : 1 + hi, 1:-1, 1:-1, :] += (
        tmp * rsd[1 + lo : 1 + hi, 1:-1, 1:-1, :])


def _l2norm_slab(lo: int, hi: int, v) -> np.ndarray:
    """Partial interior sum of squares per component."""
    interior = v[1 + lo : 1 + hi, 1:-1, 1:-1, :]
    return np.sum(interior * interior, axis=(0, 1, 2))


@register
class LU(NPBenchmark):
    """Lower-Upper symmetric Gauss-Seidel simulated CFD application."""

    name = "LU"

    def __init__(self, problem_class, team=None, sweep_mode: str = "hyperplane"):
        """``sweep_mode``: "hyperplane" (3-D wavefronts, ~3n barriers per
        sweep) or "plane" (the paper's Java ordering: k planes with
        in-plane diagonals, O(n^2) barriers).  Both compute identical
        results; they differ only in synchronization structure."""
        super().__init__(problem_class, team)
        if sweep_mode not in ("hyperplane", "plane"):
            raise ValueError(f"unknown sweep_mode {sweep_mode!r}")
        self.sweep_mode = sweep_mode
        self.params = lu_params(self.problem_class)
        n = self.params.problem_size
        self.constants = CFDConstants(n, n, n, self.params.dt)
        self.rsdnm = np.zeros(5)
        self.frc = float("nan")

    @property
    def niter(self) -> int:
        return self.params.niter

    # ------------------------------------------------------------------ #

    def _setup(self) -> None:
        c = self.constants
        team = self.team
        shape = (c.nz, c.ny, c.nx, 5)
        self.u = team.shared(shape)
        self.rsd = team.shared(shape)
        self.frct = team.shared(shape)
        (self.idx_k, self.idx_j, self.idx_i,
         self._offsets) = self._shared_hyperplanes()

        setbv(self.u, c)
        setiv(self.u, c)
        self._erhs()
        self._ssor(1)           # untimed warm-up sweep (lu.f)
        setbv(self.u, c)
        setiv(self.u, c)
        self._rhs()             # initial residual, untimed

    def _shared_hyperplanes(self):
        c = self.constants
        grouping = (hyperplanes if self.sweep_mode == "hyperplane"
                    else plane_wavefronts)
        k, j, i, offsets = grouping(c.nx, c.ny, c.nz)
        team = self.team
        sk = team.shared(len(k), dtype=np.int64)
        sj = team.shared(len(j), dtype=np.int64)
        si = team.shared(len(i), dtype=np.int64)
        sk[:] = k
        sj[:] = j
        si[:] = i
        return sk, sj, si, offsets

    def _erhs(self) -> None:
        """Forcing term: the operator applied to the exact field (erhs)."""
        c = self.constants
        ue = exact_field(c.nx, c.ny, c.nz, c.dnxm1, c.dnym1, c.dnzm1)
        self.frct.fill(0.0)
        apply_operator_slab(0, c.nz - 2, ue, self.frct, c)

    def _rhs(self) -> None:
        c = self.constants
        self.team.parallel_for(c.nz - 2, rhs_slab, self.u, self.rsd,
                               self.frct, c)

    def _l2norm(self) -> np.ndarray:
        c = self.constants
        partials = self.team.parallel_for(c.nz - 2, _l2norm_slab, self.rsd)
        total = np.sum(partials, axis=0)
        denom = float((c.nx - 2) * (c.ny - 2) * (c.nz - 2))
        return np.sqrt(total / denom)

    def _ssor(self, niter: int) -> None:
        """The SSOR pseudo-time iteration (ssor in lu.f)."""
        c = self.constants
        team = self.team
        tmp = 1.0 / (OMEGA * (2.0 - OMEGA))
        offsets = self._offsets
        nplanes = len(offsets) - 1
        for _ in range(niter):
            with self.region("scale"):
                team.parallel_for(c.nz - 2, _scale_rsd_slab, self.rsd, c.dt)
            # Lower sweep: ascending wavefronts, one barrier per wavefront.
            with self.region("blts"):
                for s in range(nplanes):
                    start, end = int(offsets[s]), int(offsets[s + 1])
                    team.parallel_for(end - start, blts_slab, self.rsd,
                                      self.u, self.idx_k, self.idx_j,
                                      self.idx_i, start, OMEGA, c)
            # Upper sweep: descending wavefronts.
            with self.region("buts"):
                for s in range(nplanes - 1, -1, -1):
                    start, end = int(offsets[s]), int(offsets[s + 1])
                    team.parallel_for(end - start, buts_slab, self.rsd,
                                      self.u, self.idx_k, self.idx_j,
                                      self.idx_i, start, OMEGA, c)
            with self.region("add"):
                team.parallel_for(c.nz - 2, _update_u_slab, self.u,
                                  self.rsd, tmp)
            with self.region("rhs"):
                self._rhs()
        with self.region("l2norm"):
            self.rsdnm = self._l2norm()

    def _iterate(self) -> None:
        self._ssor(self.params.niter)

    # ------------------------------------------------------------------ #

    def _error_norm(self) -> np.ndarray:
        """Interior-only RMS error against the exact field (error in lu.f)."""
        c = self.constants
        ue = exact_field(c.nx, c.ny, c.nz, c.dnxm1, c.dnym1, c.dnzm1)
        diff = (self.u - ue)[1:-1, 1:-1, 1:-1, :]
        denom = float((c.nx - 2) * (c.ny - 2) * (c.nz - 2))
        return np.sqrt(np.sum(diff * diff, axis=(0, 1, 2)) / denom)

    def verify(self) -> VerificationResult:
        result = VerificationResult("LU", str(self.problem_class), True)
        errnm = self._error_norm()
        self.frc = pintgr(self.u, self.constants)
        for m in range(5):
            result.add(f"xcr[{m + 1}]", self.rsdnm[m],
                       self.params.xcrref[m], LU_EPSILON)
        for m in range(5):
            result.add(f"xce[{m + 1}]", errnm[m], self.params.xceref[m],
                       LU_EPSILON)
        result.add("xci", self.frc, self.params.xciref, LU_EPSILON)
        return result

    def op_count(self) -> float:
        """Official lu.f operation-count polynomial."""
        n = float(self.params.problem_size)
        per_iter = (1984.77 * n ** 3 - 10923.3 * n ** 2
                    + 27770.9 * n - 144010.0)
        return per_iter * self.params.niter
