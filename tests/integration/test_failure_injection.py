"""Failure injection: verification must actually detect wrong answers.

A verification harness that cannot fail is not evidence of correctness;
these tests corrupt each benchmark's state or parameters and assert the
official checks catch it.
"""

import pytest

from repro.bt import BT
from repro.cg import CG
from repro.ep import EP
from repro.ft import FT
from repro.isort import IS
from repro.lu import LU
from repro.mg import MG
from repro.sp import SP


class TestVerificationCatchesCorruption:
    def test_cg_wrong_seed_matrix(self):
        bench = CG("S")
        bench.setup()
        bench.a[:100] *= 1.0 + 1e-4  # perturb matrix entries
        bench._iterate()
        assert not bench.verify().verified

    def test_mg_corrupted_charge(self):
        bench = MG("S")
        bench.setup()
        bench.v[5, 5, 5] += 1e-4
        bench._iterate()
        assert not bench.verify().verified

    def test_ft_perturbed_initial_state(self):
        bench = FT("S")
        bench.setup()
        bench._iterate()
        bench.checksums[3] += 1e-8
        assert not bench.verify().verified

    def test_is_wrong_rank(self):
        bench = IS("S")
        bench.setup()
        bench.keys[12345] = 0  # move one key to the bottom bucket
        bench._iterate()
        result = bench.verify()
        assert not result.verified

    def test_ep_wrong_sum(self):
        bench = EP("S")
        bench.setup()
        bench._iterate()
        bench.sx *= 1.0 + 1e-6
        assert not bench.verify().verified

    @pytest.mark.parametrize("cls", [BT, SP])
    def test_adi_perturbed_solution(self, cls):
        bench = cls("S")
        bench.setup()
        bench._iterate()
        bench.u[4, 4, 4, 2] += 1e-5
        assert not bench.verify().verified

    def test_lu_perturbed_solution(self):
        bench = LU("S")
        bench.setup()
        bench._iterate()
        bench.u[3, 3, 3, 0] += 1e-5
        assert not bench.verify().verified

    def test_mg_wrong_cycle_count(self):
        bench = MG("S")
        bench.setup()
        # one cycle short of the official nit
        from repro.mg.operators import norm2u3, resid

        resid(bench.team, bench.u[bench.params.lt], bench.v,
              bench.r[bench.params.lt], bench.a)
        for _ in range(bench.params.nit - 1):
            bench._mg3p()
            resid(bench.team, bench.u[bench.params.lt], bench.v,
                  bench.r[bench.params.lt], bench.a)
        nx = bench.params.nx
        bench.rnm2, _ = norm2u3(bench.team, bench.r[bench.params.lt],
                                nx, nx, nx)
        assert not bench.verify().verified


class TestToleranceBoundaries:
    def test_just_inside_tolerance_passes(self):
        bench = CG("S")
        bench.run()
        bench.zeta = bench.params.zeta_verify * (1.0 + 0.5e-10)
        assert bench.verify().verified

    def test_just_outside_tolerance_fails(self):
        bench = CG("S")
        bench.run()
        bench.zeta = bench.params.zeta_verify * (1.0 + 2.0e-10)
        assert not bench.verify().verified
