"""MG right-hand side: the zran3 random charge field.

The interior of the grid is filled with LCG deviates in row/plane scan
order (the Fortran per-row ``vranlc`` calls with per-row/per-plane seed
jumps consume exactly one stream value per interior point, so the whole
fill is a single contiguous stream).  The field is then replaced by +1
charges at the ten largest values and -1 charges at the ten smallest,
zero elsewhere, with ties at the selection threshold broken toward the
earlier scan position exactly as the Fortran strict comparison does.
"""

from __future__ import annotations

import numpy as np

from repro.common.randdp import Randlc
from repro.mg.operators import comm3

#: Number of charges of each sign (mm in zran3).
CHARGES = 10


def _extreme_positions(values: np.ndarray, k: int, largest: bool) -> np.ndarray:
    """Flat indices of the k largest (or smallest) values, first-scan wins ties."""
    if largest:
        threshold = np.partition(values, len(values) - k)[len(values) - k]
        candidates = np.flatnonzero(values >= threshold)
        keys = -values[candidates]
    else:
        threshold = np.partition(values, k - 1)[k - 1]
        candidates = np.flatnonzero(values <= threshold)
        keys = values[candidates]
    order = np.lexsort((candidates, keys))
    return candidates[order[:k]]


def charge_positions(nx: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    """Compute the (+1, -1) charge positions as (i3, i2, i1) interior indices.

    Returns two (CHARGES, 3) arrays of 0-based *interior* coordinates
    (add 1 for the ghost offset).
    """
    rng = Randlc(seed)
    total = nx * nx * nx
    values = np.empty(total)
    chunk = 1 << 22  # bound the vranlc power-table size for class C
    filled = 0
    while filled < total:
        take = min(chunk, total - filled)
        values[filled : filled + take] = rng.batch(take)
        filled += take
    plus = _extreme_positions(values, CHARGES, largest=True)
    minus = _extreme_positions(values, CHARGES, largest=False)
    shape = (nx, nx, nx)
    return (np.column_stack(np.unravel_index(plus, shape)),
            np.column_stack(np.unravel_index(minus, shape)))


def zran3(z: np.ndarray, nx: int, seed: int,
          positions: tuple[np.ndarray, np.ndarray] | None = None
          ) -> tuple[np.ndarray, np.ndarray]:
    """Fill ``z`` with the charge field; returns the positions used.

    ``positions`` lets the caller reuse positions from a previous call
    (the benchmark calls zran3 twice with the same seed; the result is
    identical, so recomputing the random field is skipped).
    """
    if positions is None:
        positions = charge_positions(nx, seed)
    plus, minus = positions
    z.fill(0.0)
    z[plus[:, 0] + 1, plus[:, 1] + 1, plus[:, 2] + 1] = 1.0
    z[minus[:, 0] + 1, minus[:, 1] + 1, minus[:, 2] + 1] = -1.0
    comm3(z)
    return positions
