"""A from-scratch SPMD message-passing runtime (the MPI substrate).

``mpi_run(nprocs, fn, *args)`` forks ``nprocs`` ranks, each executing
``fn(comm, *args)`` SPMD-style, and returns the list of per-rank return
values.  Ranks communicate over pre-created pairwise OS pipes
(``multiprocessing.Pipe``), so the runtime has no daemon, no sockets and
no third-party dependency.

Deadlock discipline: all collectives are built from :meth:`Communicator.
sendrecv`, whose pairwise protocol orders the two sides (lower rank sends
first) so bounded pipe buffers can never deadlock, and from binomial
trees rooted at rank 0.

This is deliberately the minimal surface the NPB-MPI codes need:
send/recv, sendrecv, barrier, bcast, reduce, allreduce, alltoall,
gather.  Messages are arbitrary picklable objects; NumPy arrays ride the
pickle path (Connection.send handles chunking).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import traceback
from typing import Any, Callable


class MPIWorkerError(RuntimeError):
    """A rank raised during an SPMD run; carries the remote traceback."""


class Communicator:
    """Per-rank handle: identity plus the pairwise pipe mesh."""

    def __init__(self, rank: int, size: int, pipes: dict):
        self.rank = rank
        self.size = size
        self._pipes = pipes  # peer rank -> Connection

    # ------------------------------------------------------------ #
    # point to point

    def send(self, obj: Any, dest: int) -> None:
        if dest == self.rank:
            raise ValueError("self-send is not supported; keep the value")
        self._pipes[dest].send(obj)

    def recv(self, source: int) -> Any:
        if source == self.rank:
            raise ValueError("self-recv is not supported")
        return self._pipes[source].recv()

    def sendrecv(self, obj: Any, peer: int) -> Any:
        """Exchange with a peer; safe for arbitrarily large messages.

        The lower rank writes first while the higher rank drains, then
        roles swap -- pipe buffers can therefore never fill on both
        sides at once.
        """
        if peer == self.rank:
            return obj
        if self.rank < peer:
            self.send(obj, peer)
            return self.recv(peer)
        incoming = self.recv(peer)
        self.send(obj, peer)
        return incoming

    # ------------------------------------------------------------ #
    # collectives (binomial trees rooted at 0)

    def barrier(self) -> None:
        self.reduce(0, op=lambda a, b: 0)
        self.bcast(None)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Binomial-tree broadcast; every rank returns the value."""
        rel = (self.rank - root) % self.size
        mask = 1
        while mask < self.size:
            if rel < mask:
                peer_rel = rel + mask
                if peer_rel < self.size:
                    self.send(obj, (peer_rel + root) % self.size)
            elif rel < 2 * mask:
                obj = self.recv(((rel - mask) + root) % self.size)
            mask <<= 1
        return obj

    def reduce(self, value: Any, op: Callable[[Any, Any], Any],
               root: int = 0) -> Any:
        """Binomial-tree reduction; the result is valid on ``root`` only.

        ``op`` must be associative; partials combine as op(lower, higher)
        in rank order, matching a left fold.
        """
        rel = (self.rank - root) % self.size
        mask = 1
        acc = value
        while mask < self.size:
            if rel & mask:
                self.send(acc, ((rel - mask) + root) % self.size)
                break
            peer_rel = rel | mask
            if peer_rel < self.size:
                other = self.recv(((peer_rel) + root) % self.size)
                acc = op(acc, other)
            mask <<= 1
        return acc if self.rank == root else None

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any]) -> Any:
        return self.bcast(self.reduce(value, op))

    def gather(self, value: Any, root: int = 0) -> "list | None":
        """Gather per-rank values to ``root`` in rank order."""
        chunks = self.reduce({self.rank: value},
                             op=lambda a, b: {**a, **b}, root=root)
        if self.rank != root:
            return None
        return [chunks[r] for r in range(self.size)]

    def alltoall(self, chunks: list) -> list:
        """Personalized all-to-all: ``chunks[d]`` goes to rank d; returns
        the list of chunks received, indexed by source rank.

        Round-robin tournament schedule: in round t every rank pairs with
        ``(t - rank) mod size`` -- an involution, so both members of a
        pair exchange in the same round via the deadlock-safe sendrecv,
        and every ordered pair is covered exactly once across the
        ``size`` rounds (a rank sits a round out when paired with
        itself).
        """
        if len(chunks) != self.size:
            raise ValueError("alltoall needs exactly one chunk per rank")
        received: list = [None] * self.size
        received[self.rank] = chunks[self.rank]
        for round_number in range(self.size):
            partner = (round_number - self.rank) % self.size
            if partner == self.rank:
                continue
            received[partner] = self.sendrecv(chunks[partner], partner)
        return received


def _rank_main(rank: int, size: int, pipes: dict, result_conn,
               fn: Callable, args: tuple) -> None:
    try:
        comm = Communicator(rank, size, pipes)
        result = fn(comm, *args)
        result_conn.send(("ok", result))
    except BaseException:
        result_conn.send(("err", traceback.format_exc()))
    finally:
        result_conn.close()
        for conn in pipes.values():
            conn.close()


def mpi_run(nprocs: int, fn: Callable, *args: Any,
            timeout: float = 300.0) -> list:
    """Run ``fn(comm, *args)`` on ``nprocs`` forked ranks; returns the
    per-rank results in rank order."""
    if nprocs < 1:
        raise ValueError("nprocs must be >= 1")
    ctx = mp.get_context("fork")
    # pairwise mesh: mesh[i][j] is rank i's connection to rank j
    mesh: dict[int, dict[int, Any]] = {r: {} for r in range(nprocs)}
    for i in range(nprocs):
        for j in range(i + 1, nprocs):
            a, b = ctx.Pipe()
            mesh[i][j] = a
            mesh[j][i] = b
    result_pipes = []
    procs = []
    for rank in range(nprocs):
        parent, child = ctx.Pipe()
        result_pipes.append(parent)
        proc = ctx.Process(target=_rank_main,
                           args=(rank, nprocs, mesh[rank], child, fn, args),
                           daemon=True, name=f"npb-mpi-{rank}")
        proc.start()
        child.close()
        procs.append(proc)
    # The parent must close its copies of the mesh ends so EOF propagates.
    for i in mesh:
        for conn in mesh[i].values():
            conn.close()

    results = [None] * nprocs
    failure = None
    for rank, pipe in enumerate(result_pipes):
        if pipe.poll(timeout):
            status, value = pipe.recv()
            if status == "err" and failure is None:
                failure = value
            results[rank] = value
        elif failure is None:
            failure = f"rank {rank} timed out after {timeout}s"
    for proc in procs:
        proc.join(timeout=10.0)
        if proc.is_alive():
            proc.terminate()
    if failure is not None:
        raise MPIWorkerError(f"SPMD run failed:\n{failure}")
    return results


def cpu_friendly_nprocs(requested: int) -> int:
    """Clamp rank counts on tiny CI hosts (kept simple and explicit)."""
    return max(1, min(requested, (os.cpu_count() or 1) * 8))
