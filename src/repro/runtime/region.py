"""Named instrumentation regions for the parallel runtime.

A *region* is a named span of benchmark code (``rhs``, ``blts``,
``conj_grad``, ...).  While a region is active, every team dispatch
contributes three per-worker overhead components to that region's totals:

``dispatch``
    master publish -> worker task start (thread wake-up / pipe delivery
    latency; the paper's Table 1 start/notify cost).
``execute``
    worker task start -> worker task end (compute).
``barrier``
    worker task end -> all workers done (load-imbalance wait; the
    paper's LU synchronization-in-the-inner-loop diagnosis).

All three are *sums over workers*, so ``execute`` is cumulative worker
busy time (it can exceed the region's wall time), and for a perfectly
balanced region ``barrier`` approaches zero.  ``wall`` is master-side
elapsed dispatch time and is counted once per call.

When allocation tracking is on (``tracemalloc`` tracing, e.g. under
``npb profile --alloc``), every dispatch additionally charges two
allocation counters to its region (see :mod:`repro.runtime.arena`):
``alloc_bytes`` (gross temporary churn: the tracemalloc peak rise over
the dispatch) and ``alloc_blocks`` (net live-block growth, a leak
signal).  Both stay zero when tracking is off.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.common.timers import Timer
    from repro.runtime.dispatch import FaultEvent, WorkerReply

#: Region charged with dispatches that run outside any named region.
UNATTRIBUTED = "(unattributed)"


@dataclass
class RegionStats:
    """Accumulated dispatch accounting for one named region."""

    calls: int = 0
    wall_seconds: float = 0.0
    dispatch_seconds: float = 0.0
    execute_seconds: float = 0.0
    barrier_seconds: float = 0.0
    #: gross allocator churn (tracemalloc peak rise, summed per dispatch);
    #: zero unless allocation tracking was on
    alloc_bytes: int = 0
    #: net live small-object block growth (leak signal); can be negative
    alloc_blocks: int = 0

    @property
    def sync_seconds(self) -> float:
        """Pure runtime overhead: everything that is not task compute."""
        return self.dispatch_seconds + self.barrier_seconds

    @property
    def overhead_fraction(self) -> float:
        """sync / (sync + compute), the paper's overhead ratio per region."""
        busy = self.sync_seconds + self.execute_seconds
        return self.sync_seconds / busy if busy > 0 else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "calls": self.calls,
            "wall_seconds": self.wall_seconds,
            "dispatch_seconds": self.dispatch_seconds,
            "execute_seconds": self.execute_seconds,
            "barrier_seconds": self.barrier_seconds,
            "alloc_bytes": self.alloc_bytes,
            "alloc_blocks": self.alloc_blocks,
        }


class RegionRecorder:
    """Attributes every dispatch to the innermost active region.

    Owned by a :class:`~repro.team.base.Team`; benchmarks activate regions
    through :meth:`NPBenchmark.region`, and the team's dispatch core calls
    :meth:`record` once per ``parallel_for``/``run_on_all``.
    """

    def __init__(self, nworkers: int = 1):
        self.nworkers = nworkers
        self._stack: list[str] = []
        self._stats: "OrderedDict[str, RegionStats]" = OrderedDict()
        self._faults: "list[FaultEvent]" = []

    @property
    def current_region(self) -> str:
        return self._stack[-1] if self._stack else UNATTRIBUTED

    def push(self, name: str) -> None:
        self._stack.append(name)

    def pop(self) -> None:
        self._stack.pop()

    def clear(self) -> None:
        """Drop accumulated stats (active region names survive).

        Fault events are *not* cleared: a respawn during untimed setup is
        still part of the run's fault history, so the NPB timed-region
        reset must not erase it.
        """
        self._stats.clear()

    def reset(self) -> None:
        """Return the recorder to its freshly-constructed state.

        Unlike :meth:`clear` (the NPB timed-region reset, which keeps
        fault history within one run), ``reset`` drops *everything* --
        stats, fault events, and any stale region stack.  This is the
        between-jobs reset used by :meth:`repro.team.base.Team.reset`:
        a pooled team's second benchmark must start with the same
        recorder state a fresh team would have, or region stats and
        fault reports accumulate across unrelated jobs.
        """
        self._stack.clear()
        self._stats.clear()
        self._faults.clear()

    def record(self, published_at: float, done_at: float,
               replies: "Sequence[WorkerReply]",
               alloc: "tuple[int, int] | None" = None) -> None:
        """Charge one completed dispatch to the current region.

        ``alloc`` is the dispatch's ``(alloc_bytes, alloc_blocks)`` probe
        delta (:mod:`repro.runtime.arena`), or None when allocation
        tracking is off.
        """
        stats = self._stats.get(self.current_region)
        if stats is None:
            stats = self._stats[self.current_region] = RegionStats()
        stats.calls += 1
        stats.wall_seconds += done_at - published_at
        for reply in replies:
            stats.dispatch_seconds += reply.started_at - published_at
            stats.execute_seconds += reply.finished_at - reply.started_at
            stats.barrier_seconds += done_at - reply.finished_at
        if alloc is not None:
            stats.alloc_bytes += alloc[0]
            stats.alloc_blocks += alloc[1]

    def record_fault(self, event: "FaultEvent") -> None:
        """Append one fault-tolerance event (timeout/death/respawn/...)."""
        self._faults.append(event)

    @property
    def faults(self) -> "tuple[FaultEvent, ...]":
        """All fault events recorded over the recorder's lifetime."""
        return tuple(self._faults)

    def fault_counts(self) -> dict[str, int]:
        """Event counts by kind (``{}`` for a fault-free run)."""
        counts: dict[str, int] = {}
        for event in self._faults:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def fault_report(self) -> list[dict]:
        """All fault events as dicts, in occurrence order."""
        return [event.as_dict() for event in self._faults]

    def stats(self, name: str) -> RegionStats:
        """Stats for one region (empty stats if it never dispatched)."""
        return self._stats.get(name, RegionStats())

    def names(self) -> list[str]:
        return list(self._stats)

    def report(self) -> dict[str, dict[str, float]]:
        """All regions' accounting, in first-dispatch order."""
        return {name: s.as_dict() for name, s in self._stats.items()}


class ParallelRegion:
    """Context manager naming a phase: scopes the recorder and (optionally)
    drives the benchmark's NPB phase timer so ``timers`` and ``regions``
    stay consistent."""

    __slots__ = ("name", "_recorder", "_timer")

    def __init__(self, name: str, recorder: RegionRecorder,
                 timer: "Timer | None" = None):
        self.name = name
        self._recorder = recorder
        self._timer = timer

    def __enter__(self) -> "ParallelRegion":
        self._recorder.push(self.name)
        if self._timer is not None:
            self._timer.start()
        return self

    def __exit__(self, *exc) -> None:
        if self._timer is not None:
            self._timer.stop()
        self._recorder.pop()
