"""Quantitative targets that survive in the paper's text.

The available scan of the paper lost most numeric table cells; what
remains -- and what this reproduction treats as its quantitative targets
-- are the in-text anchors below.  Each constant cites its sentence in
the paper.
"""

# Section 3 / Table 1 ---------------------------------------------------
#: "The grid size is 81x81x100, the matrices are 5x5, and vectors are 5-D."
TABLE1_GRID = (81, 81, 100)

#: "Java serial code is a factor of 3.3 (Assignment) to 12.4 (Second
#: Order Stencil) slower than the corresponding Fortran operations."
JAVA_SERIAL_RATIO_MIN = 3.3
JAVA_SERIAL_RATIO_MAX = 12.4

#: "Java thread overhead (1 thread versus serial) contributes no more
#: than 20% to the execution time."
ONE_THREAD_OVERHEAD_MAX = 0.20

#: "The speedup with 16 threads is around 7 for the computationally
#: expensive operations (2-4) and is around 5-6 for less intensive
#: operations (1 and 5)."
SPEEDUP16_COMPUTE_OPS = (6.0, 9.5)
SPEEDUP16_MEMORY_OPS = (4.5, 7.0)

#: "The version that preserves the array dimension was [2-3] times slower
#: than the linearized version" (factor garbled in the scan; the decision
#: it motivated -- linearized arrays -- is unambiguous).
MULTIDIM_SLOWDOWN_MIN = 1.3

#: perfex: "the Java code executes twice as many floating point
#: instructions ... the JIT compiler does not use the madd instruction."
FP_INSTRUCTION_RATIO = 2.0

# Section 5.1 -----------------------------------------------------------
#: "On the p690, the ratio for this group is within interval [garbled]";
#: conclusions: "on IBM p690 ... the performance of Java codes is
#: typically within a factor of 3 of the performance of FORTRAN codes."
P690_RATIO_MAX = 3.0

#: Structured-grid group on the Origin2000 lies inside the basic-op
#: interval [3.3, 12.4]; the unstructured group (CG, IS) is much lower.
STRUCTURED_GROUP = ("BT", "SP", "LU", "FT", "MG")
UNSTRUCTURED_GROUP = ("IS", "CG")
UNSTRUCTURED_RATIO_MAX = 3.3

# Section 5.2 -----------------------------------------------------------
#: "Overall the multithreading introduces an overhead of about 10%-20%."
MULTITHREAD_OVERHEAD_RANGE = (0.05, 0.20)

#: "The speedup of BT, SP, and LU with 16 threads is in the range of
#: 6-12 (efficiency 0.38-0.75)."
BT_SP_LU_SPEEDUP16 = (6.0, 12.0)

#: "FT.A uses about 350 MB"; "inability of the JVM to use more than 4
#: processors to run applications requiring significant amounts of
#: memory" (SUN E10000).
FT_A_MEMORY_MB = 350.0
E10000_BIG_JOB_CPU_CAP = 4

#: "the JVM ran all the [CG] threads in 1-2 Posix threads ... by
#: initializing the thread load, we were able to get a visible speedup
#: of CG."
CG_COALESCED_CPUS = 2

#: "On the Linux PIII PC we did not obtain any speedup on any benchmark
#: when using 2 threads."
LINUX_PC_SPEEDUP2_MAX = 1.05

#: Conclusions: "Efficiency of parallelization with threads is about 0.5
#: for up to 16 threads."
THREAD_EFFICIENCY_16 = 0.5

# Table 7 ---------------------------------------------------------------
#: "the algorithm used in lufact benchmark performs poorly relative to
#: LINPACK" (DGETRF, BLAS3) and "our Assignment base operation ... about
#: the same Java/Fortran performance ratio as the lufact benchmark."
LUFACT_CLASSES = {"A": 500, "B": 1000, "C": 2000}
