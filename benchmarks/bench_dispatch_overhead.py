"""Ablation: per-call ``parallel_for`` dispatch overhead (plan memoization).

The plan-based runtime memoizes slab partitions per ``(n, nworkers)``
(:class:`repro.runtime.plan.ExecutionPlan`), so iteration loops that
dispatch the same shape thousands of times (25 CG steps per outer
iteration, one dispatch per LU wavefront) stop recomputing bounds on the
hot path.  These cases track that win in the perf trajectory:

* ``plan_cold`` clears the memo before every dispatch -- the
  pre-refactor behaviour of recomputing the partition each call;
* ``plan_warm`` dispatches through the primed cache;
* the ``*_team_dispatch`` cases measure the end-to-end per-call cost of
  an (almost) empty task under each backend, the floor every benchmark
  phase pays per barrier (the paper's Table 1 start/notify overhead).
"""

import pytest

from repro.runtime.plan import ExecutionPlan
from repro.team import ProcessTeam, SerialTeam, ThreadTeam
from nas_bench_util import attach_timing_summary

#: A loop extent typical of the suite's hot dispatches (CG.S rows).
EXTENT = 1400
WORKERS = 4


def noop_task(lo, hi):
    return None


class TestPlanMemoization:
    def test_plan_cold(self, benchmark):
        """Partition recomputed every call (pre-memoization behaviour)."""
        plan = ExecutionPlan(WORKERS)

        def cold():
            plan._bounds.clear()
            return plan.bounds(EXTENT)

        benchmark(cold)
        benchmark.extra_info["variant"] = "cold (recompute per call)"
        attach_timing_summary(benchmark)

    def test_plan_warm(self, benchmark):
        """Memoized lookup, the dispatch hot path after the refactor."""
        plan = ExecutionPlan(WORKERS)
        plan.bounds(EXTENT)  # prime
        benchmark(lambda: plan.bounds(EXTENT))
        benchmark.extra_info["variant"] = "warm (memoized)"
        attach_timing_summary(benchmark)
        assert plan.misses == 1


class TestDispatchFloor:
    """Per-call cost of dispatching a no-op: pure runtime overhead."""

    def test_serial_team_dispatch(self, benchmark):
        with SerialTeam() as team:
            team.parallel_for(EXTENT, noop_task)  # prime plan
            benchmark(lambda: team.parallel_for(EXTENT, noop_task))
            benchmark.extra_info["backend"] = "serial"
            attach_timing_summary(benchmark)

    def test_thread_team_dispatch(self, benchmark):
        with ThreadTeam(WORKERS) as team:
            team.parallel_for(EXTENT, noop_task)
            benchmark(lambda: team.parallel_for(EXTENT, noop_task))
            benchmark.extra_info["backend"] = f"threads x{WORKERS}"
            attach_timing_summary(benchmark)

    def test_process_team_dispatch(self, benchmark):
        with ProcessTeam(2) as team:
            team.parallel_for(EXTENT, noop_task)
            benchmark(lambda: team.parallel_for(EXTENT, noop_task))
            benchmark.extra_info["backend"] = "process x2"
            attach_timing_summary(benchmark)


@pytest.mark.parametrize("nworkers", [1, 2, 4])
def test_plan_scales_with_workers(benchmark, nworkers):
    """Warm lookups are O(1) in worker count; cold recompute is O(p)."""
    plan = ExecutionPlan(nworkers)
    plan.bounds(EXTENT)
    benchmark(lambda: plan.bounds(EXTENT))
    benchmark.extra_info["nworkers"] = nworkers
    attach_timing_summary(benchmark)
