"""The BT benchmark driver (bt.f main program and adi)."""

from __future__ import annotations

from repro.bt.params import BT_EPSILON, bt_params
from repro.bt.solve import x_solve_slab, y_solve_slab, z_solve_slab
from repro.cfd.constants import CFDConstants
from repro.cfd.exact_rhs import compute_forcing
from repro.cfd.initialize import initialize
from repro.cfd.norms import error_norm, rhs_norm
from repro.cfd.rhs import add_slab
from repro.common.verification import VerificationResult
from repro.core.benchmark import NPBenchmark
from repro.core.registry import register


@register
class BT(NPBenchmark):
    """Block Tridiagonal simulated CFD application."""

    name = "BT"

    def __init__(self, problem_class, team=None):
        super().__init__(problem_class, team)
        self.params = bt_params(self.problem_class)
        n = self.params.problem_size
        self.constants = CFDConstants(n, n, n, self.params.dt)

    @property
    def niter(self) -> int:
        return self.params.niter

    # ------------------------------------------------------------------ #

    def _setup(self) -> None:
        c = self.constants
        shape = (c.nz, c.ny, c.nx)
        team = self.team
        self.u = team.shared(shape + (5,))
        self.rhs = team.shared(shape + (5,))
        self.forcing = team.shared(shape + (5,))
        self.rho_i = team.shared(shape)
        self.us = team.shared(shape)
        self.vs = team.shared(shape)
        self.ws = team.shared(shape)
        self.qs = team.shared(shape)
        self.square = team.shared(shape)

        initialize(self.u, c)
        compute_forcing(self.forcing, c)
        self.adi()          # one untimed warm-up step (bt.f)
        initialize(self.u, c)

    def compute_rhs(self) -> None:
        c = self.constants
        team = self.team
        team.parallel_kernel("cfd.fields", c.nz, self.u, self.rho_i,
                             self.us, self.vs, self.ws, self.qs,
                             self.square, None, c)
        team.parallel_kernel("cfd.rhs", c.nz - 2, self.u, self.rhs,
                             self.forcing, self.rho_i, self.us, self.vs,
                             self.ws, self.qs, self.square, c)

    def adi(self) -> None:
        """One ADI time step: rhs, then x/y/z block solves, then add."""
        c = self.constants
        team = self.team
        nz2 = c.nz - 2
        ny2 = c.ny - 2
        with self.region("rhs"):
            self.compute_rhs()
        with self.region("xsolve"):
            team.parallel_for(nz2, x_solve_slab, self.rhs, self.u, self.qs,
                              self.square, c)
        with self.region("ysolve"):
            team.parallel_for(nz2, y_solve_slab, self.rhs, self.u, self.qs,
                              self.square, c)
        with self.region("zsolve"):
            team.parallel_for(ny2, z_solve_slab, self.rhs, self.u, self.qs,
                              self.square, c)
        with self.region("add"):
            team.parallel_for(nz2, add_slab, self.u, self.rhs)

    def _iterate(self) -> None:
        for _ in range(self.params.niter):
            self.adi()

    # ------------------------------------------------------------------ #

    def verify(self) -> VerificationResult:
        c = self.constants
        result = VerificationResult("BT", str(self.problem_class), True)
        xce = error_norm(self.u, c)
        self.compute_rhs()
        xcr = rhs_norm(self.rhs, c) / self.params.dt
        for m in range(5):
            result.add(f"xcr[{m + 1}]", xcr[m], self.params.xcrref[m],
                       BT_EPSILON)
        for m in range(5):
            result.add(f"xce[{m + 1}]", xce[m], self.params.xceref[m],
                       BT_EPSILON)
        return result

    def op_count(self) -> float:
        """Official bt.f operation-count polynomial."""
        n = float(self.params.problem_size)
        per_iter = 3478.8 * n ** 3 - 17655.7 * n ** 2 + 28023.7 * n
        return per_iter * self.params.niter
