"""Tests for the Table 1 basic operations (style equivalence)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.basic_ops import (
    OPERATIONS,
    STYLES,
    make_workload,
    numpy_assignment_slab,
    numpy_matvec5_slab,
    numpy_reduction_slab,
    numpy_stencil1_slab,
    numpy_stencil2_slab,
    run_operation,
)
from repro.team import ThreadTeam

GRID = (10, 9, 8)


@pytest.fixture(scope="module")
def workload():
    return make_workload(GRID)


class TestStyleEquivalence:
    """The paper compares translation styles; all must compute the same
    values (the performance, not the semantics, differs)."""

    @pytest.mark.parametrize("op", OPERATIONS)
    def test_python_matches_numpy(self, workload, op):
        ref = run_operation(op, "numpy", workload)
        got = run_operation(op, "python", workload)
        if op == "reduction":
            assert got == pytest.approx(ref, rel=1e-12)
        else:
            assert np.allclose(got, ref, atol=1e-12)

    @pytest.mark.parametrize("op", OPERATIONS)
    def test_multidim_matches_numpy(self, workload, op):
        ref = run_operation(op, "numpy", workload)
        got = run_operation(op, "python_multidim", workload)
        if op == "reduction":
            assert got == pytest.approx(ref, rel=1e-12)
        else:
            assert np.allclose(got, ref, atol=1e-12)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_equivalence_random_seeds(self, seed):
        w = make_workload((6, 6, 6), seed=seed)
        for op in ("stencil2", "matvec5"):
            ref = run_operation(op, "numpy", w)
            got = run_operation(op, "python", w)
            assert np.allclose(got, ref, atol=1e-12)

    def test_unknown_style_rejected(self, workload):
        with pytest.raises(ValueError):
            run_operation("stencil1", "rust", workload)


class TestSlabVariants:
    def test_slab_equals_full(self, workload):
        w = workload
        with ThreadTeam(3) as team:
            out = np.zeros_like(w.a)
            team.parallel_for(w.a.shape[0], numpy_assignment_slab, w.a, out)
            assert np.array_equal(out, w.a)

            out1 = np.zeros_like(w.a)
            team.parallel_for(w.a.shape[0], numpy_stencil1_slab, w.a, out1)
            assert np.allclose(out1, run_operation("stencil1", "numpy", w))

            out2 = np.zeros_like(w.a)
            team.parallel_for(w.a.shape[0], numpy_stencil2_slab, w.a, out2)
            assert np.allclose(out2, run_operation("stencil2", "numpy", w))

            outv = np.zeros_like(w.vectors)
            team.parallel_for(w.a.shape[0], numpy_matvec5_slab, w.matrices,
                              w.vectors, outv)
            assert np.allclose(outv, run_operation("matvec5", "numpy", w))

            total = team.reduce_sum(w.a.shape[0], numpy_reduction_slab,
                                    w.four_d)
            assert total == pytest.approx(w.four_d.sum(), rel=1e-12)

    def test_styles_enumerated(self):
        assert set(STYLES) == {"numpy", "python", "python_multidim"}
        assert len(OPERATIONS) == 5
