"""Per-benchmark workload profiles for the machine model.

A profile decomposes a benchmark's work into the basic-operation
categories of Table 1 (fixing its effective Java/Fortran ratio on a given
JVM), counts its synchronization events (fixing the threading overhead
shape -- the paper singles out LU's sync-inside-a-grid-loop), and states
its memory footprint (driving the E10000 big-job CPU cap, felt by FT.A
at ~350 MB).

Total operation counts come from the benchmarks' own official NPB
operation-count formulas (``op_count``), so the model and the real code
share one source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.common.params import ProblemClass
from repro.core.registry import get_benchmark
from repro.machines.spec import OpCategory


@dataclass(frozen=True)
class WorkloadProfile:
    """Machine-model-relevant structure of one benchmark."""

    name: str
    #: fraction of work per basic-op category (sums to 1)
    op_mix: dict[OpCategory, float]
    #: barriers per timed run, as a function of (grid/problem size, niter)
    syncs: Callable[[int, int], int]
    #: resident set in MB as a function of the problem-size parameter
    memory_mb: Callable[[int], float]
    #: benchmark-specific serial fraction override (None -> machine
    #: default).  IS is data-movement bound (paper: work per thread too
    #: small for the data movement it causes); CG parallelizes well once
    #: thread placement is fixed.
    serial_fraction: "float | None" = None

    def java_ratio(self, op_ratio: dict[OpCategory, float]) -> float:
        """Serial Java/Fortran ratio under a JVM's category ratios."""
        return sum(frac * op_ratio[cat] for cat, frac in self.op_mix.items())


def _grid_mb(n: int, fields: int) -> float:
    return n ** 3 * fields * 8.0 / 1e6


WORKLOADS: dict[str, WorkloadProfile] = {
    # BT: flux stencils + 5x5 block line solves; ~8 barriers per step.
    "BT": WorkloadProfile(
        "BT",
        {OpCategory.STENCIL: 0.35, OpCategory.BLOCKSOLVE: 0.55,
         OpCategory.COPY: 0.10},
        syncs=lambda n, niter: 8 * niter,
        memory_mb=lambda n: _grid_mb(n, 3 * 5 + 6),
    ),
    # SP: stencils dominate; scalar line solves; ~10 barriers per step.
    "SP": WorkloadProfile(
        "SP",
        {OpCategory.STENCIL: 0.50, OpCategory.BLOCKSOLVE: 0.40,
         OpCategory.COPY: 0.10},
        syncs=lambda n, niter: 10 * niter,
        memory_mb=lambda n: _grid_mb(n, 3 * 5 + 7),
    ),
    # LU: block arithmetic with synchronization inside the sweep over one
    # grid dimension: O(n) barriers per step (the paper's explanation of
    # LU's lower scalability).
    "LU": WorkloadProfile(
        "LU",
        {OpCategory.STENCIL: 0.35, OpCategory.BLOCKSOLVE: 0.55,
         OpCategory.COPY: 0.10},
        syncs=lambda n, niter: (4 * n + 4) * niter,
        memory_mb=lambda n: _grid_mb(n, 3 * 5),
    ),
    # FT: butterfly passes (regular strided compute) + transposed copies.
    "FT": WorkloadProfile(
        "FT",
        {OpCategory.STENCIL: 0.65, OpCategory.COPY: 0.30,
         OpCategory.REDUCTION: 0.05},
        syncs=lambda n, niter: 8 * niter,
        # three complex arrays + one real on nx*ny*nz points; n here is
        # the largest dimension, footprint filled in below per class.
        memory_mb=lambda n: float("nan"),
    ),
    # MG: pure 27-point stencils across the grid hierarchy.
    "MG": WorkloadProfile(
        "MG",
        {OpCategory.STENCIL: 0.90, OpCategory.COPY: 0.10},
        syncs=lambda n, niter: 12 * niter,
        memory_mb=lambda n: _grid_mb(n, 3) * 8.0 / 7.0,
    ),
    # CG: sparse matvec (irregular) + dot products; 25 CG iterations of
    # ~4 barriers per outer step.
    "CG": WorkloadProfile(
        "CG",
        {OpCategory.IRREGULAR: 0.85, OpCategory.REDUCTION: 0.15},
        syncs=lambda n, niter: 110 * niter,
        memory_mb=lambda n: n * 160.0 / 1e6 + n * 5 * 8.0 / 1e6,
        serial_fraction=0.04,
    ),
    # IS: histogram ranking -- irregular scatter plus copies.
    "IS": WorkloadProfile(
        "IS",
        {OpCategory.IRREGULAR: 0.70, OpCategory.COPY: 0.30},
        syncs=lambda n, niter: 3 * niter,
        memory_mb=lambda n: n * 8.0 * 2 / 1e6,
        serial_fraction=0.25,
    ),
    # EP: pure compute, one final reduction.
    "EP": WorkloadProfile(
        "EP",
        {OpCategory.BLOCKSOLVE: 0.95, OpCategory.REDUCTION: 0.05},
        syncs=lambda n, niter: 2,
        memory_mb=lambda n: 2.0,
    ),
}


#: Memory footprints in MB for the class-A runs of Tables 2-4 (FT.A is
#: the paper's ~350 MB problem child).
CLASS_A_MEMORY_MB = {
    "BT": 110.0, "SP": 116.0, "LU": 79.0, "FT": 350.0,
    "MG": 460.0, "CG": 28.0, "IS": 71.0, "EP": 2.0,
}


def workload(name: str) -> WorkloadProfile:
    try:
        return WORKLOADS[name.upper()]
    except KeyError:
        raise KeyError(
            f"no workload profile for {name!r}; known: {sorted(WORKLOADS)}"
        ) from None


def total_ops(name: str, problem_class: "str | ProblemClass") -> float:
    """Official NPB operation count via the benchmark's own formula."""
    cls = get_benchmark(name)
    return cls(problem_class).op_count()


def benchmark_size_and_iters(name: str,
                             problem_class: "str | ProblemClass"
                             ) -> tuple[int, int]:
    """(characteristic size, niter) for the sync-count formulas."""
    bench = get_benchmark(name)(problem_class)
    params = bench.params
    size = getattr(params, "problem_size", None)
    if size is None:
        size = getattr(params, "nx", None)
    if size is None:
        size = getattr(params, "na", None)
    if size is None:
        size = getattr(params, "num_keys", None)
    if size is None:
        size = getattr(params, "m", 0)
    return int(size), bench.niter
