"""BT problem-class parameters and verification constants (bt.f verify)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.params import ProblemClass, lookup_class


@dataclass(frozen=True)
class BTParams:
    problem_size: int
    dt: float
    niter: int
    xcrref: tuple[float, ...]
    xceref: tuple[float, ...]


BT_CLASSES: dict[ProblemClass, BTParams] = {
    # Class S note: xceref[4] could not be transcribed reliably; it is a
    # regression value computed by this implementation, whose other nine
    # class-S norms match the NPB constants to ~1e-13.  See EXPERIMENTS.md.
    ProblemClass.S: BTParams(
        12, 0.010, 60,
        (1.7034283709541311e-01, 1.2975252070034097e-02,
         3.2527926989486055e-02, 2.6436421275166801e-02,
         1.9211784131744430e-01),
        (4.9976913345811579e-04, 4.5195666782961927e-05,
         7.3973765172921357e-05, 7.3821238632439731e-05,
         8.926963098749145e-04),
    ),
    ProblemClass.W: BTParams(
        24, 0.0008, 200,
        (0.1125590409344e03, 0.1180007595731e02, 0.2710329767846e02,
         0.2469174937669e02, 0.2638427874317e03),
        (0.4419655736008e01, 0.4638531260002e00, 0.1011551749967e01,
         0.9235878729944e00, 0.1018045837718e02),
    ),
    ProblemClass.A: BTParams(
        64, 0.0008, 200,
        (1.0806346714637264e02, 1.1319730901220813e01,
         2.5974354511582465e01, 2.3665622544678910e01,
         2.5278963211748344e02),
        (4.2348416040525025e00, 4.4390282496995698e-01,
         9.6692480136345650e-01, 8.8302063039765474e-01,
         9.7379901770829535e00),
    ),
    ProblemClass.B: BTParams(
        102, 0.0003, 200,
        (0.1423359722929e04, 0.9933052259015e02, 0.3564602564454e03,
         0.3248544795908e03, 0.3270754125466e04),
        (0.5296984714094e02, 0.4463289611567e01, 0.1312257334221e02,
         0.1200692532356e02, 0.1245957615104e03),
    ),
    ProblemClass.C: BTParams(
        162, 0.0001, 200,
        (0.6239811513330e05, 0.5068118708843e04, 0.1983386605421e05,
         0.1790733213202e05, 0.1838632233602e06),
        (0.1644753110752e03, 0.1318629352828e02, 0.4631175164746e02,
         0.4259584308854e02, 0.4092419548511e03),
    ),
}

#: Relative tolerance of each norm comparison (bt.f).
BT_EPSILON = 1.0e-8


def bt_params(problem_class) -> BTParams:
    return lookup_class(BT_CLASSES, problem_class, "BT")
