"""Serial backend: the reference implementation of the Team interface."""

from __future__ import annotations

from typing import Callable

from repro.runtime.dispatch import FaultPolicy, WorkerReply, execute_task
from repro.runtime.plan import Bounds
from repro.team.base import Team


class SerialTeam(Team):
    """No workers; every task runs inline on the master.

    This is the baseline against which the paper measures thread overhead
    (its "Serial" column), and the correctness reference for the parallel
    backends.  Its transport is a direct call, so a serial region's
    ``dispatch``/``barrier`` overhead is (nearly) zero by construction --
    and it cannot suffer transport failures, so the fault policy is inert.
    """

    backend = "serial"

    def __init__(self, policy: FaultPolicy | None = None,
                 kernel_backend: str = "fused"):
        super().__init__(1, policy=policy, kernel_backend=kernel_backend)

    def _transport(self, fn: Callable, bounds: Bounds,
                   args: tuple) -> list[WorkerReply]:
        a, b = bounds[0]
        return [execute_task(0, fn, a, b, args)]
