"""Make the shared helper importable from the benchmark modules."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
