"""Trace context creation and HTTP propagation.

A trace is identified by a 128-bit id; every span within it by a
64-bit id.  Context travels two ways:

* **in-process** through a :mod:`contextvars` variable, so the
  scheduler thread that executes a job can activate the job's context
  around ``benchmark.run()`` and everything below (team dispatch,
  chaos seams) finds it without plumbing arguments through ten layers;
* **across processes** through a W3C-``traceparent``-style header
  (``00-<32 hex trace id>-<16 hex parent span id>-<2 hex flags>``),
  injected by :class:`~repro.service.api.ServiceClient` and the shard
  coordinator's forwarding client, extracted by both front ends.

Flag ``01`` means *sampled*: a continued trace keeps its parent's
sampling decision, so one decision at the edge governs the whole
request no matter how many processes it crosses.

The hot-path contract ("tracing must be free when off") is enforced
with a module-global boolean that is flipped only while at least one
sampled context is active in the process.  ``Team._dispatch`` checks
that single global before touching the contextvar, so the untraced
cost is one dict-free load and branch.
"""

from __future__ import annotations

import contextvars
import secrets
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

TRACEPARENT_HEADER = "traceparent"
_VERSION = "00"
_FLAG_SAMPLED = 0x01


def new_trace_id() -> str:
    """A fresh 128-bit trace id as 32 lowercase hex chars."""
    return secrets.token_hex(16)


def new_span_id() -> str:
    """A fresh 64-bit span id as 16 lowercase hex chars."""
    return secrets.token_hex(8)


@dataclass(frozen=True)
class TraceContext:
    """The identity a span inherits: trace id, parent span, sampling.

    Immutable -- starting a child span creates a *new* context with
    ``parent_span_id`` advanced, never mutates this one, so contexts
    can be shared across threads (queue -> dispatcher) safely.
    """

    trace_id: str
    parent_span_id: str | None = None
    sampled: bool = True
    #: wall-clock epoch at which this process first saw the trace;
    #: informational only (spans carry their own times).
    seen_at: float = field(default_factory=time.time, compare=False)

    def child(self, span_id: str) -> "TraceContext":
        """The context a child of ``span_id`` should inherit."""
        return TraceContext(
            trace_id=self.trace_id,
            parent_span_id=span_id,
            sampled=self.sampled,
        )


def format_traceparent(ctx: TraceContext) -> str:
    """Render ``ctx`` as an outgoing ``traceparent`` header value."""
    flags = _FLAG_SAMPLED if ctx.sampled else 0
    parent = ctx.parent_span_id or new_span_id()
    return f"{_VERSION}-{ctx.trace_id}-{parent}-{flags:02x}"


def parse_traceparent(value: str | None) -> TraceContext | None:
    """Parse an incoming header; None when absent or malformed.

    Malformed headers are dropped rather than raised: a bad client
    must not be able to 500 the submit path just by sending garbage.
    """
    if not value:
        return None
    parts = value.strip().split("-")
    if len(parts) != 4:
        return None
    version, trace_id, span_id, flags = parts
    if len(version) != 2 or len(trace_id) != 32 or len(span_id) != 16:
        return None
    try:
        int(trace_id, 16)
        int(span_id, 16)
        flag_bits = int(flags, 16)
    except ValueError:
        return None
    if trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    return TraceContext(
        trace_id=trace_id,
        parent_span_id=span_id,
        sampled=bool(flag_bits & _FLAG_SAMPLED),
    )


# --------------------------------------------------------------------- #
# in-process propagation
# --------------------------------------------------------------------- #

_current: contextvars.ContextVar[TraceContext | None] = contextvars.ContextVar(
    "repro_trace_context", default=None
)

#: Fast-path flag: > 0 iff at least one *sampled* context is active in
#: this process.  ``Team._dispatch`` reads this (via
#: :func:`tracing_active`) before anything else, so untraced dispatch
#: pays one global load + branch and nothing more.
_active_sampled = 0


def tracing_active() -> bool:
    """True when some thread in this process has a sampled context."""
    return _active_sampled > 0


def current_trace() -> TraceContext | None:
    """The context active on this thread, or None."""
    return _current.get()


@contextmanager
def use_trace(ctx: TraceContext | None):
    """Activate ``ctx`` for the duration of the ``with`` block."""
    global _active_sampled
    token = _current.set(ctx)
    bump = ctx is not None and ctx.sampled
    if bump:
        _active_sampled += 1
    try:
        yield ctx
    finally:
        if bump:
            _active_sampled -= 1
        _current.reset(token)


# --------------------------------------------------------------------- #
# clock alignment
# --------------------------------------------------------------------- #

def perf_to_epoch_offset() -> float:
    """Offset such that ``perf_counter() + offset ~= time.time()``.

    ``time.perf_counter`` is CLOCK_MONOTONIC on Linux and shares its
    epoch across fork, which is why ProcessTeam worker reply stamps
    are directly comparable to master-side stamps; this offset turns
    any of those stamps into wall-clock for export.
    """
    return time.time() - time.perf_counter()
