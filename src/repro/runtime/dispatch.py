"""Shared dispatch-core types.

The dispatch *logic* lives in :meth:`repro.team.base.Team._dispatch`; this
module holds the data types the core and the backend transports exchange.
A transport delivers one task per worker and returns one
:class:`WorkerReply` per worker, stamped with the worker's own
``perf_counter`` readings.  On Linux ``perf_counter`` is CLOCK_MONOTONIC,
which shares an epoch across processes, so the stamps are comparable to
the master's publish/return times under every backend.

Fault model
-----------
The paper's master--worker scheme assumes every worker survives every
wait()/notify() cycle; a production dispatch core cannot.  Two kinds of
failure are distinguished:

*application errors*
    the task function raised.  The transport captures the exception into
    a failed :class:`WorkerReply` and the core re-raises it on the master
    (:func:`raise_reply_error`).  Never retried: the task is broken, not
    the transport.

*transport failures*
    the worker itself died (SIGKILL, OOM) or stopped responding past the
    configured deadline.  Transports raise :class:`WorkerDeath` /
    :class:`DispatchTimeout`; the core records a :class:`FaultEvent`,
    respawns the affected workers with bounded backoff
    (:class:`FaultPolicy`), and re-dispatches.  Because every task in the
    suite is an idempotent slab computation (pure writes to disjoint
    slabs, or a returned partial), re-dispatching the whole bounds set is
    bit-identical to a clean run.  When retries are exhausted the team
    *degrades*: the master runs each slab inline (serial semantics, same
    bounds, same results) for the rest of the team's life.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.runtime.arena import worker_arena


class WorkerError(RuntimeError):
    """A worker raised in a context that cannot re-raise the original
    exception object (the process backend); carries the remote traceback."""


@dataclass(frozen=True)
class FaultPolicy:
    """How the dispatch core reacts to transport failures.

    ``dispatch_timeout``
        Seconds one dispatch may take before the non-responding workers
        are declared hung (``None`` = wait forever; worker *death* is
        still detected via liveness probing).
    ``max_retries``
        Transport failures tolerated per dispatch before the team
        degrades to inline (serial) execution.
    ``backoff_seconds``
        Base of the linear respawn backoff: attempt ``k`` sleeps
        ``k * backoff_seconds`` before respawning.
    """

    dispatch_timeout: float | None = None
    max_retries: int = 2
    backoff_seconds: float = 0.05

    def __post_init__(self):
        if self.dispatch_timeout is not None and self.dispatch_timeout <= 0:
            raise ValueError("dispatch_timeout must be positive or None")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_seconds < 0:
            raise ValueError("backoff_seconds must be >= 0")


@dataclass(frozen=True)
class FaultEvent:
    """One structured fault-tolerance event, attributed to a region.

    ``kind`` is one of ``timeout`` (dispatch deadline exceeded),
    ``worker_death`` (liveness probe / pipe EOF), ``respawn`` (a dead or
    hung worker was replaced), ``degrade`` (retries exhausted; the team
    fell back to inline serial execution), ``join_timeout`` (a worker
    failed to join during ``close()``).
    """

    kind: str
    backend: str
    region: str
    rank: int | None = None
    detail: str = ""

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "backend": self.backend,
            "region": self.region,
            "rank": self.rank,
            "detail": self.detail,
        }


class TransportFailure(RuntimeError):
    """The transport (not the task) failed: workers died or went silent.

    ``ranks`` identifies the affected workers so recovery can respawn
    exactly those.  Subclasses set :attr:`kind` to the FaultEvent kind
    they map to.
    """

    kind = "transport_failure"

    def __init__(self, message: str, ranks: "tuple[int, ...] | list[int]" = ()):
        super().__init__(message)
        self.ranks: tuple[int, ...] = tuple(ranks)


class DispatchTimeout(TransportFailure):
    """A dispatch exceeded ``FaultPolicy.dispatch_timeout``."""

    kind = "timeout"


class WorkerDeath(TransportFailure):
    """A worker process/thread died mid-dispatch (SIGKILL, pipe EOF)."""

    kind = "worker_death"


@dataclass(frozen=True)
class WorkerReply:
    """One worker's answer to one dispatched task.

    ``value`` is the task's return value when ``ok``; otherwise it is the
    exception object (thread/serial transports) or the formatted remote
    traceback string (process transport).
    """

    rank: int
    ok: bool
    value: Any
    started_at: float
    finished_at: float

    @property
    def execute_seconds(self) -> float:
        return self.finished_at - self.started_at


def execute_task(rank: int, fn: Callable, a: int, b: int,
                 args: tuple) -> WorkerReply:
    """Run one slab task on the calling worker and stamp the reply.

    This is the single execution path shared by the serial transport,
    the thread workers and the degraded inline fallback (the process
    workers replicate it with remote-traceback capture).  It owns the
    arena hand-off: a new :mod:`~repro.runtime.arena` generation starts
    *before* the task, so every scratch buffer the previous dispatch
    took from this worker's arena is reusable by this one.
    """
    worker_arena().next_dispatch()
    started_at = time.perf_counter()
    try:
        ok, value = True, fn(a, b, *args)
    except BaseException as exc:
        ok, value = False, exc
    finished_at = time.perf_counter()
    return WorkerReply(rank, ok, value, started_at, finished_at)


def raise_reply_error(reply: WorkerReply) -> None:
    """Re-raise a failed reply: the original exception when we have it,
    a :class:`WorkerError` wrapping the remote traceback otherwise."""
    if isinstance(reply.value, BaseException):
        raise reply.value
    raise WorkerError(f"worker {reply.rank} failed:\n{reply.value}")
