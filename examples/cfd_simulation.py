"""The simulated CFD applications as a library: step-by-step time stepping.

Rather than calling ``run()``, this example drives the BT, SP and LU
solvers manually: it initializes the flow field, advances a few implicit
time steps, and watches the residual and solution-error norms evolve --
the workflow of a user embedding the solvers rather than benchmarking
them.
"""

import numpy as np

from repro.bt import BT
from repro.cfd.norms import error_norm, rhs_norm
from repro.lu import LU
from repro.lu.setup import pintgr
from repro.sp import SP


def drive_adi(bench, steps: int) -> None:
    """Advance an ADI solver (BT or SP) step by step, reporting norms."""
    bench.setup()
    c = bench.constants
    print(f"\n{bench.name} class {bench.problem_class}: "
          f"{c.nx}^3 grid, dt={c.dt}")
    print(f"  {'step':>4}  {'residual-rms':>14}  {'error-rms':>14}")
    for step in range(1, steps + 1):
        bench.adi()
        bench.compute_rhs()
        residual = float(np.sqrt(np.mean(rhs_norm(bench.rhs, c) ** 2)))
        error = float(np.sqrt(np.mean(error_norm(bench.u, c) ** 2)))
        if step in (1, 2, 3) or step % 10 == 0:
            print(f"  {step:>4}  {residual / c.dt:>14.6e}  {error:>14.6e}")


def drive_ssor(bench: LU, steps: int) -> None:
    """Advance the LU SSOR solver, reporting its own residual norms."""
    bench.setup()
    print(f"\nLU class {bench.problem_class}: SSOR with omega=1.2")
    print(f"  {'step':>4}  {'rsd[1]':>12}  {'rsd[5]':>12}")
    for step in range(1, steps + 1):
        bench._ssor(1)
        if step in (1, 2, 3) or step % 10 == 0:
            print(f"  {step:>4}  {bench.rsdnm[0]:>12.6e}  "
                  f"{bench.rsdnm[4]:>12.6e}")
    frc = pintgr(bench.u, bench.constants)
    print(f"  surface integral so far: {frc:.6f}")


def main() -> None:
    drive_adi(BT("S"), steps=20)
    drive_adi(SP("S"), steps=20)
    drive_ssor(LU("S"), steps=20)
    print("\nNote: full runs (60-100 steps) reproduce the official "
          "verification values; see examples/quickstart.py.")


if __name__ == "__main__":
    main()
