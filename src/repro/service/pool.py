"""Warm team pool: pre-spawned Teams reused across jobs.

One-shot ``npb run`` pays team spawn (thread/process creation, shared
memory setup), plan construction, and arena warm-up on every invocation,
then throws it all away.  The pool keeps a fixed set of live
:class:`~repro.team.base.Team` s of one configuration (backend x workers,
chosen at service start) and leases them to jobs; between jobs a team is
:meth:`~repro.team.base.Team.reset` -- recorder and fault history
dropped, arena generations rewound with the warm buffer pools *kept*,
memoized :class:`~repro.runtime.plan.ExecutionPlan` intact -- so the
second job on a team starts with everything the first one warmed up.

Jobs whose spec does not match the pool configuration still run: they
get a cold one-shot team (counted in ``cold_spawns``) that is closed on
release.  Teams that come back degraded (fault-tolerance retries
exhausted: their transport is permanently bypassed) or that fail to
reset are *replaced* with fresh ones rather than recycled -- a pool must
hand out healthy teams, and a degraded team, while still bit-identical,
has lost its parallelism.  The same rule covers teams that die while
*idle* (a worker SIGKILLed between jobs): ``lease`` probes
:meth:`~repro.team.base.Team.alive` before handing a team out and
back-fills the slot on failure, so a pooled death costs one respawn,
never a doomed dispatch.

``close()`` implements the pool's half of graceful drain: wait for
leased teams to come home, then close everything.
"""

from __future__ import annotations

import threading
import time

from repro.runtime.dispatch import FaultPolicy
from repro.team import make_team
from repro.team.base import Team


class PoolClosed(RuntimeError):
    """Lease attempted on a closed (drained) pool."""


class TeamPool:
    """Fixed-size pool of warm teams of one (backend, workers) shape."""

    def __init__(
        self,
        backend: str = "serial",
        workers: int = 1,
        size: int = 2,
        policy: FaultPolicy | None = None,
    ):
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.backend = backend
        self.workers = workers
        self.size = size
        self.policy = policy
        self._cond = threading.Condition()
        self._closed = False
        self._in_use = 0
        self.leases = 0
        self.cold_spawns = 0
        self.replacements = 0
        #: optional ChaosInjector (fault-injection tests); None = off
        self.chaos = None
        self._idle: list[Team] = [self._spawn() for _ in range(size)]

    def _spawn(self) -> Team:
        return make_team(self.backend, self.workers, policy=self.policy)

    def matches(self, backend: str, workers: int) -> bool:
        """Whether a spec can be served by a warm pooled team."""
        if backend != self.backend:
            return False
        # The serial backend ignores worker counts (always 1 master).
        return backend == "serial" or workers == self.workers

    # ------------------------------------------------------------------ #

    def lease(
        self,
        backend: str | None = None,
        workers: int | None = None,
        timeout: float | None = None,
    ) -> tuple[Team, bool]:
        """Borrow a team for one job: ``(team, pooled)``.

        A spec matching the pool configuration blocks until a warm team
        is idle (the scheduler runs exactly ``size`` dispatchers, so the
        wait is bounded by one job's runtime); any other spec gets a
        cold one-shot team immediately.
        """
        backend = self.backend if backend is None else backend
        workers = self.workers if workers is None else workers
        if not self.matches(backend, workers):
            with self._cond:
                if self._closed:
                    raise PoolClosed("pool is closed")
                self.cold_spawns += 1
                self.leases += 1
            return make_team(backend, workers, policy=self.policy), False
        with self._cond:
            while not self._idle and not self._closed:
                if not self._cond.wait(timeout):
                    raise TimeoutError(
                        f"no pooled team became idle within {timeout}s"
                    )
            if self._closed:
                raise PoolClosed("pool is closed")
            team = self._idle.pop()
            if not team.alive():
                # An idle team can die between jobs (a worker SIGKILLed
                # while pooled) -- dispatch-time fault handling would
                # only find out mid-job.  Replace it, never recycle.
                try:
                    team.close()
                except Exception:
                    pass
                team = self._spawn()
                self.replacements += 1
            self._in_use += 1
            self.leases += 1
        if self.chaos is not None:
            self.chaos.on_lease(team)
        return team, True

    def release(self, team: Team, pooled: bool) -> None:
        """Return a leased team; reset (or replace) pooled teams."""
        if not pooled:
            team.close()
            return
        healthy = not team.closed and not team.degraded
        if healthy:
            try:
                team.reset()
            except Exception:
                healthy = False
        if not healthy:
            # Never recycle a degraded or unresettable team: close it
            # (best effort) and back-fill the slot with a fresh one.
            try:
                team.close()
            except Exception:
                pass
            team = self._spawn()
            with self._cond:
                self.replacements += 1
        with self._cond:
            self._in_use -= 1
            if self._closed:
                team.close()
            else:
                self._idle.append(team)
            self._cond.notify()

    # ------------------------------------------------------------------ #

    def occupancy(self) -> dict:
        with self._cond:
            return {
                "backend": self.backend,
                "workers": self.workers,
                "size": self.size,
                "idle": len(self._idle),
                "in_use": self._in_use,
                "leases": self.leases,
                "cold_spawns": self.cold_spawns,
                "replacements": self.replacements,
            }

    def close(self, timeout: float | None = 30.0) -> None:
        """Drain: wait for leased teams to come home, close everything."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
            deadline = None if timeout is None else time.monotonic() + timeout
            while self._in_use > 0:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    break
                self._cond.wait(remaining)
            idle, self._idle = self._idle, []
        for team in idle:
            team.close()

    def __enter__(self) -> "TeamPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
