"""Analytical time predictions for the paper's machines.

The model::

    t_f77_serial  = ops / (fortran_mops * 1e6)
    t_java_serial = t_f77_serial * sum(mix_c * jvm.op_ratio[c])
    t(p) = t_serial * (f + (1 - f)/p_eff) * (1 + runtime_overhead)
           + nsyncs * sync_cost * (1 + log2(p))

with ``p_eff`` the number of CPUs the threads actually land on after the
JVM scheduler quirks (idle-thread coalescing, big-heap CPU cap, the Linux
JVM's single-CPU placement) and ``f`` the machine's serial fraction.

The same formula with the OpenMP runtime constants (and no JVM quirks)
produces the f77-OpenMP rows of Tables 2-3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.counters import profile_operation
from repro.core.basic_ops import PAPER_GRID
from repro.machines.spec import MachineSpec, OpCategory
from repro.machines.workloads import (
    CLASS_A_MEMORY_MB,
    benchmark_size_and_iters,
    total_ops,
    workload,
)

#: Work per timestep below which the paper's JVMs coalesced a job's
#: threads onto few CPUs (observed for CG and IS, whose per-step work is
#: 1-2 orders of magnitude below the structured-grid codes').
LOW_WORK_THRESHOLD = 1.5e8


@dataclass(frozen=True)
class Prediction:
    """Predicted wall-clock seconds for one configuration."""

    machine: str
    benchmark: str
    problem_class: str
    language: str        # "java" or "f77"
    nthreads: int        # 0 means serial (no threading runtime at all)
    seconds: float
    effective_cpus: int


def _effective_cpus(spec: MachineSpec, nthreads: int, memory_mb: float,
                    work_per_step: float, warmup_load: bool) -> int:
    jvm = spec.jvm
    p = min(nthreads, spec.ncpus)
    if jvm.parallel_cpu_limit is not None:
        p = min(p, jvm.parallel_cpu_limit)
    if jvm.big_job_cpu_cap is not None:
        threshold, cap = jvm.big_job_cpu_cap
        if memory_mb > threshold:
            p = min(p, cap)
    if (jvm.coalesces_idle_threads and not warmup_load
            and work_per_step < LOW_WORK_THRESHOLD):
        p = min(p, jvm.low_work_cpu_limit)
    return max(1, p)


def _parallel_time(serial_seconds: float, p_eff: int, nthreads: int,
                   serial_fraction: float, overhead: float,
                   nsyncs: int, sync_us: float) -> float:
    amdahl = serial_fraction + (1.0 - serial_fraction) / p_eff
    sync_cost = nsyncs * sync_us * 1e-6 * (1.0 + math.log2(max(1, nthreads)))
    return serial_seconds * amdahl * (1.0 + overhead) + sync_cost


def predict_benchmark(spec: MachineSpec, name: str, problem_class: str,
                      language: str = "java", nthreads: int = 0,
                      warmup_load: bool = False) -> Prediction:
    """Predict one table cell.

    ``nthreads=0`` is the serial program (no master-worker machinery);
    ``nthreads=1`` is the threaded program with one worker (the paper's
    <= 20% overhead column).  ``warmup_load`` applies the paper's fix for
    the thread-coalescing pathology (heavy per-thread initialization).
    """
    profile = workload(name)
    ops = total_ops(name, problem_class)
    size, niter = benchmark_size_and_iters(name, problem_class)
    t_f77 = ops / (spec.fortran_mops * 1e6)

    if language == "f77":
        if nthreads == 0:
            seconds = t_f77
            p_eff = 1
        else:
            p_eff = min(nthreads, spec.ncpus)
            f = (profile.serial_fraction
                 if profile.serial_fraction is not None
                 else spec.serial_fraction)
            seconds = _parallel_time(
                t_f77, p_eff, nthreads, f,
                spec.openmp_overhead, profile.syncs(size, niter),
                spec.openmp_sync_us)
    elif language == "java":
        ratio = profile.java_ratio(spec.jvm.op_ratio)
        t_java = t_f77 * ratio
        if nthreads == 0:
            seconds = t_java
            p_eff = 1
        else:
            memory = CLASS_A_MEMORY_MB.get(name.upper(), 10.0)
            if str(problem_class) != "A":
                memory = memory * {"S": 0.01, "W": 0.1, "A": 1.0,
                                   "B": 4.0, "C": 16.0}.get(
                                       str(problem_class), 1.0)
            work_per_step = ops / max(1, niter)
            p_eff = _effective_cpus(spec, nthreads, memory,
                                    work_per_step, warmup_load)
            f = (profile.serial_fraction
                 if profile.serial_fraction is not None
                 else spec.serial_fraction)
            seconds = _parallel_time(
                t_java, p_eff, nthreads, f,
                spec.jvm.thread_overhead, profile.syncs(size, niter),
                spec.jvm.sync_us)
    else:
        raise ValueError(f"unknown language {language!r}")

    return Prediction(machine=spec.name, benchmark=name.upper(),
                      problem_class=str(problem_class), language=language,
                      nthreads=nthreads, seconds=seconds,
                      effective_cpus=p_eff)


def speedup_curve(spec: MachineSpec, name: str, problem_class: str,
                  language: str = "java",
                  warmup_load: bool = False) -> dict[int, float]:
    """Speedup vs the serial program for each power-of-two thread count."""
    serial = predict_benchmark(spec, name, problem_class, language, 0)
    curve = {}
    for p in spec.worker_counts():
        t = predict_benchmark(spec, name, problem_class, language, p,
                              warmup_load)
        curve[p] = serial.seconds / t.seconds
    return curve


# --------------------------------------------------------------------- #
# Basic operations (Table 1)

#: Parallel characteristics of the basic ops: (serial fraction) -- the
#: memory-bound ops (assignment, reduction) saturate earlier, giving the
#: paper's 16-thread speedups of 5-6 vs ~7 for the compute ops.
_BASIC_OP_SERIAL_FRACTION = {
    "assignment": 0.085,
    "stencil1": 0.045,
    "stencil2": 0.045,
    "matvec5": 0.045,
    "reduction": 0.075,
}

_BASIC_OP_CATEGORY = {
    "assignment": OpCategory.COPY,
    "stencil1": OpCategory.STENCIL,
    "stencil2": OpCategory.STENCIL,
    "matvec5": OpCategory.BLOCKSOLVE,
    "reduction": OpCategory.REDUCTION,
}

#: Anchor Java/Fortran ratios for Table 1 on the Origin2000 (paper text:
#: 3.3 for assignment ... 12.4 for the second-order stencil).
_TABLE1_RATIO_ANCHORS = {
    "assignment": 3.3,
    "stencil1": 7.0,
    "stencil2": 12.4,
    "matvec5": 7.5,
    "reduction": 5.0,
}


def predict_basic_op(spec: MachineSpec, op: str, language: str = "java",
                     nthreads: int = 0,
                     grid: tuple[int, int, int] = PAPER_GRID) -> float:
    """Predicted seconds for one Table 1 basic operation."""
    profile = profile_operation(op, grid)
    t_f77 = profile.fortran_instructions / (spec.fortran_mops * 1e6)
    if language == "f77":
        if nthreads:
            raise ValueError("Table 1 reports Fortran serial only")
        return t_f77
    anchor = _TABLE1_RATIO_ANCHORS[op]
    category = _BASIC_OP_CATEGORY[op]
    # Scale the anchor by the machine's JVM quality relative to the O2K.
    scale = spec.jvm.op_ratio[category] / {
        OpCategory.COPY: 3.3, OpCategory.STENCIL: 9.0,
        OpCategory.BLOCKSOLVE: 7.5, OpCategory.REDUCTION: 5.0,
        OpCategory.IRREGULAR: 2.0,
    }[category]
    t_java = t_f77 * anchor * scale
    if nthreads == 0:
        return t_java
    f = _BASIC_OP_SERIAL_FRACTION[op]
    p_eff = min(nthreads, spec.ncpus)
    return _parallel_time(t_java, p_eff, nthreads, f,
                          spec.jvm.thread_overhead, 2, spec.jvm.sync_us)
