"""Benchmark job service: queued scheduler, warm team pool, result cache.

The paper (and ``npb run``) treats each benchmark as a one-shot program:
spawn a team, build its plan, warm its arenas, run, throw it all away.
This package turns the suite into a long-lived *service* that accepts
many benchmark requests concurrently and amortizes all of that warm
state across them:

:mod:`~repro.service.jobs`
    job model (content-addressable :class:`JobSpec` fingerprints, the
    submitted -> queued -> running -> done/failed/cached state machine)
    and the bounded admission queue with priority lanes.
:mod:`~repro.service.pool`
    fixed-size pool of pre-spawned, resettable
    :class:`~repro.team.base.Team` s reused across jobs.
:mod:`~repro.service.cache`
    content-addressed on-disk result cache (LRU-bounded) keyed by the
    spec fingerprint.
:mod:`~repro.service.scheduler`
    dispatcher threads joining the three, with graceful drain.
:mod:`~repro.service.api`
    the in-process :class:`BenchService` facade, the ``npb serve`` HTTP
    daemon, and the ``npb submit``/``npb jobs`` client.
:mod:`~repro.service.async_api`
    the asyncio front end (``npb serve --async``): in-flight request
    coalescing keyed by routing key, idempotency-key replays, and
    deficit-round-robin fair admission across tenants -- same execution
    core, event-driven waiting.
:mod:`~repro.service.shard`
    consistent-hash :class:`ShardCoordinator` scaling the service *out*
    across N worker daemons (``npb shard-serve``), with health probes,
    route-around failover, and aggregated status.
:mod:`~repro.service.loadgen`
    closed/open-loop traffic harness (``npb loadgen``) appending
    schema-versioned ``LOADGEN_<seq>.json`` records with an SLO verdict
    and a noise-aware baseline comparator.
:mod:`~repro.service.chaos`
    deterministic fault injection (``npb chaos``): seeded
    :class:`ChaosPlan` s compiled into per-seam fault schedules, a
    :class:`ChaosInjector` hooked into pool/cache/scheduler/coordinator,
    and an :class:`InvariantChecker` gating the admitted-jobs invariant
    (every admitted job terminal, zero lost, completions bit-identical).
"""

from repro.service.api import (
    BenchService,
    ServiceClient,
    ServiceUnavailable,
    make_server,
)
from repro.service.async_api import (
    AsyncFrontEnd,
    AsyncServerThread,
    FairAdmission,
    TenantQuotaExceeded,
    serve_async,
)
from repro.service.cache import ResultCache
from repro.service.chaos import (
    ChaosInjector,
    ChaosPlan,
    ChaosSpec,
    FaultRule,
    InvariantChecker,
)
from repro.service.jobs import (
    JOB_STATES,
    PRIORITIES,
    AdmissionRejected,
    Job,
    JobQueue,
    JobSpec,
    routing_key,
)
from repro.service.pool import PoolClosed, TeamPool
from repro.service.scheduler import Scheduler
from repro.service.shard import HashRing, ShardCoordinator, make_shard_server

__all__ = [
    "BenchService",
    "ServiceClient",
    "ServiceUnavailable",
    "make_server",
    "AsyncFrontEnd",
    "AsyncServerThread",
    "FairAdmission",
    "TenantQuotaExceeded",
    "serve_async",
    "ResultCache",
    "ChaosInjector",
    "ChaosPlan",
    "ChaosSpec",
    "FaultRule",
    "InvariantChecker",
    "AdmissionRejected",
    "Job",
    "JobQueue",
    "JobSpec",
    "routing_key",
    "JOB_STATES",
    "PRIORITIES",
    "PoolClosed",
    "TeamPool",
    "Scheduler",
    "HashRing",
    "ShardCoordinator",
    "make_shard_server",
]
