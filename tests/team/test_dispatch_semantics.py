"""Shared dispatch-semantics suite: every backend, same contract.

The dispatch core (``Team._dispatch``) owns closed-team checks, error
propagation, rank-ordered results, plan memoization, and instrumentation;
these tests pin that contract across the serial, thread, and process
transports, including the lifecycle paths the per-backend suites used to
cover unevenly (exception propagation leaves the team reusable; any
dispatch after ``close()`` raises ``RuntimeError``).
"""

import threading
import warnings

import numpy as np
import pytest

from repro.runtime.dispatch import WorkerError
from repro.runtime.region import UNATTRIBUTED
from repro.team import ThreadTeam, make_team

BACKENDS = ["serial", "threads", "process"]


def _make(backend):
    return make_team(backend, 1 if backend == "serial" else 2)


# Module-level task functions (picklable for the process backend).

def fill_slab(lo, hi, out, value):
    out[lo:hi] = value


def slab_bounds(lo, hi):
    return (lo, hi)


def failing_task(lo, hi):
    raise ValueError("deliberate failure")


def failing_for_first_rank(lo, hi, flags):
    if lo == 0:
        raise ValueError("deliberate failure")
    flags[lo:hi] = 1.0


@pytest.fixture(params=BACKENDS)
def team(request):
    with _make(request.param) as t:
        yield t


class TestExceptionPropagation:
    def test_worker_error_reaches_master(self, team):
        with pytest.raises((ValueError, WorkerError),
                           match="deliberate failure"):
            team.parallel_for(10, failing_task)

    def test_run_on_all_error_reaches_master(self, team):
        with pytest.raises((ValueError, WorkerError),
                           match="deliberate failure"):
            team.run_on_all(failing_task)

    def test_team_reusable_after_error(self, team):
        with pytest.raises((ValueError, WorkerError)):
            team.parallel_for(10, failing_task)
        out = team.shared(10)
        team.parallel_for(10, fill_slab, out, 2.0)
        assert np.all(out == 2.0)

    def test_partial_failure_still_propagates(self, team):
        flags = team.shared(16)
        with pytest.raises((ValueError, WorkerError)):
            team.parallel_for(16, failing_for_first_rank, flags)
        # ...and the team stays usable afterwards.
        team.parallel_for(16, fill_slab, flags, 3.0)
        assert np.all(flags == 3.0)


class TestClosedTeam:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_parallel_for_after_close_raises(self, backend):
        team = _make(backend)
        team.close()
        with pytest.raises(RuntimeError, match="closed"):
            team.parallel_for(4, slab_bounds)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_run_on_all_after_close_raises(self, backend):
        team = _make(backend)
        team.close()
        with pytest.raises(RuntimeError, match="closed"):
            team.run_on_all(slab_bounds)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_close_idempotent(self, backend):
        team = _make(backend)
        team.close()
        team.close()
        assert team.closed


class TestInstrumentation:
    def test_dispatch_records_into_recorder(self, team):
        out = team.shared(32)
        team.parallel_for(32, fill_slab, out, 1.0)
        stats = team.recorder.stats(UNATTRIBUTED)
        assert stats.calls == 1
        assert stats.execute_seconds > 0.0
        assert stats.wall_seconds >= 0.0

    def test_named_region_attribution(self, team):
        out = team.shared(32)
        team.recorder.push("phase")
        try:
            team.parallel_for(32, fill_slab, out, 1.0)
            team.parallel_for(32, fill_slab, out, 2.0)
        finally:
            team.recorder.pop()
        assert team.recorder.stats("phase").calls == 2

    def test_worker_timing_is_consistent(self, team):
        out = team.shared(8)
        team.parallel_for(8, fill_slab, out, 1.0)
        stats = team.recorder.stats(UNATTRIBUTED)
        # Per-worker components are non-negative and bounded by the
        # master's wall time per worker.
        assert stats.dispatch_seconds >= 0.0
        assert stats.barrier_seconds >= 0.0
        assert stats.execute_seconds <= stats.wall_seconds * team.nworkers + 1e-6


class TestPlanMemoization:
    def test_repeated_extents_hit_cache(self, team):
        out = team.shared(100)
        for _ in range(5):
            team.parallel_for(100, fill_slab, out, 1.0)
        info = team.plan.cache_info()
        assert info["misses"] == 1
        assert info["hits"] == 4

    def test_run_on_all_uses_precomputed_ranks(self, team):
        team.run_on_all(slab_bounds)
        # rank pairs are precomputed at construction, never via bounds()
        assert team.plan.cache_info()["entries"] == 0


class TestThreadTeamClose:
    def test_close_warns_when_worker_cannot_join(self):
        release = threading.Event()
        started = threading.Event()

        def stuck_task_signalling(lo, hi):
            started.set()
            release.wait(timeout=10.0)

        team = ThreadTeam(1, join_timeout=0.05)
        dispatcher = threading.Thread(
            target=lambda: team.parallel_for(1, stuck_task_signalling),
            daemon=True)
        dispatcher.start()
        # Wait until the worker is actually inside the task, so close()'s
        # join must time out.
        assert started.wait(timeout=5.0)
        with pytest.warns(RuntimeWarning, match="failed to join"):
            team.close()
        release.set()
        dispatcher.join(timeout=5.0)

    def test_close_without_stuck_workers_is_silent(self):
        team = ThreadTeam(2)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            team.close()
