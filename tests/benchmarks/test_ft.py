"""Tests for the Stockham FFT and the FT benchmark."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ft import FT, fft3d, fft_along_axis
from repro.ft.fft import fft_rows
from repro.team import ProcessTeam, ThreadTeam


def _random_complex(shape, seed=0):
    rng = np.random.default_rng(seed)
    return rng.random(shape) + 1j * rng.random(shape)


class TestFFTRows:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 64, 256])
    def test_matches_numpy(self, n):
        x = _random_complex((5, n))
        # our sign=-1 == numpy forward fft
        assert np.allclose(fft_rows(x, -1), np.fft.fft(x, axis=1),
                           atol=1e-10)
        assert np.allclose(fft_rows(x, 1), np.fft.ifft(x, axis=1) * n,
                           atol=1e-10)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            fft_rows(_random_complex((2, 12)), 1)

    def test_roundtrip(self):
        x = _random_complex((3, 128))
        back = fft_rows(fft_rows(x, 1), -1) / 128
        assert np.allclose(back, x, atol=1e-12)

    @given(st.integers(min_value=0, max_value=5))
    @settings(max_examples=10, deadline=None)
    def test_linearity(self, seed):
        x = _random_complex((2, 32), seed)
        y = _random_complex((2, 32), seed + 100)
        lhs = fft_rows(2.0 * x + 3.0j * y, 1)
        rhs = 2.0 * fft_rows(x, 1) + 3.0j * fft_rows(y, 1)
        assert np.allclose(lhs, rhs, atol=1e-10)

    def test_parseval(self):
        x = _random_complex((1, 64))
        transformed = fft_rows(x, 1)
        assert (np.sum(np.abs(transformed) ** 2)
                == pytest.approx(64 * np.sum(np.abs(x) ** 2), rel=1e-12))

    def test_delta_gives_constant(self):
        x = np.zeros((1, 16), dtype=complex)
        x[0, 0] = 1.0
        assert np.allclose(fft_rows(x, 1), 1.0)


class TestFFT3D:
    def test_matches_numpy_each_axis(self):
        x = _random_complex((4, 8, 16))
        for axis in range(3):
            mine = fft_along_axis(x, axis, -1)
            ref = np.fft.fft(x, axis=axis)
            assert np.allclose(mine, ref, atol=1e-10)

    def test_full_3d_roundtrip(self):
        x = _random_complex((8, 8, 8))
        assert np.allclose(fft3d(fft3d(x, 1), -1) / x.size, x, atol=1e-12)

    def test_matches_numpy_fftn(self):
        x = _random_complex((4, 8, 16))
        assert np.allclose(fft3d(x, -1), np.fft.fftn(x), atol=1e-9)


class TestFTBenchmark:
    def test_class_s_verifies(self):
        result = FT("S").run()
        assert result.verified
        worst = max(c[3] for c in result.verification.checks)
        assert worst < 1e-12

    def test_checksum_count(self):
        bench = FT("S")
        bench.run()
        assert len(bench.checksums) == 6

    def test_thread_backend_matches_serial(self):
        serial = FT("S")
        serial.run()
        with ThreadTeam(3) as team:
            threaded = FT("S", team)
            threaded.run()
        assert threaded.checksums == pytest.approx(serial.checksums,
                                                   rel=1e-12)

    def test_process_backend_verifies(self):
        with ProcessTeam(2) as team:
            assert FT("S", team).run().verified
