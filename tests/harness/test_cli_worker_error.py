"""The CLI must surface remote worker tracebacks, not swallow them.

Satellite of the fault-tolerance PR: a ``WorkerError`` raised by the
process transport carries the worker's formatted traceback; ``npb``
turns it into a readable error message on stderr and a distinct exit
code instead of dumping a master-side stack trace.
"""

import pytest

from repro.harness import cli
from repro.runtime.dispatch import WorkerError
from repro.team import ProcessTeam


def explode_remotely(lo, hi):
    raise RuntimeError("CLI-CHAOS-MARKER-42 remote explosion")


def test_transport_to_cli_error_message_end_to_end(monkeypatch, capsys):
    """Drive a real process dispatch failure, then hand the resulting
    WorkerError through the CLI's error path: the remote traceback text
    must be visible in the CLI message, unmodified."""
    captured = {}

    def failing_run_benchmark(*args, **kwargs):
        with ProcessTeam(2) as team:
            try:
                team.parallel_for(8, explode_remotely)
            except WorkerError as exc:
                captured["error"] = exc
                raise

    monkeypatch.setattr(cli, "run_benchmark", failing_run_benchmark)
    code = cli.main(["run", "CG", "-c", "S", "-b", "process", "-w", "2"])
    assert code == 3
    err = capsys.readouterr().err
    assert "unrecoverable worker failure" in err
    # the worker's own traceback, frame names and all, reached stderr
    assert "CLI-CHAOS-MARKER-42" in err
    assert "explode_remotely" in err
    assert "Traceback (most recent call last)" in err
    # and it is the exact text the transport captured
    assert str(captured["error"]) in err


def test_verify_surfaces_worker_error_too(monkeypatch, capsys):
    def failing_run_benchmark(*args, **kwargs):
        raise WorkerError("worker 1 failed:\nTraceback ...\n"
                          "ValueError: VERIFY-CHAOS-MARKER")

    monkeypatch.setattr(cli, "run_benchmark", failing_run_benchmark)
    code = cli.main(["verify", "-c", "S"])
    assert code == 3
    assert "VERIFY-CHAOS-MARKER" in capsys.readouterr().err


def test_worker_error_exit_code_distinct_from_verification_failure():
    """Exit codes: 0 ok, 1 unverified, 3 worker failure -- CI can tell a
    wrong answer from a dead worker."""
    with pytest.raises(SystemExit):
        cli.main(["run", "--definitely-not-a-flag"])
