"""Tests for the ParallelRegion instrumentation layer."""

import pytest

from repro.common.timers import Timer
from repro.runtime.dispatch import WorkerReply
from repro.runtime.region import (
    UNATTRIBUTED,
    ParallelRegion,
    RegionRecorder,
    RegionStats,
)


def replies(*spans):
    """WorkerReplies from (started_at, finished_at) pairs."""
    return [WorkerReply(rank, True, None, s, f)
            for rank, (s, f) in enumerate(spans)]


class TestRegionRecorder:
    def test_default_region_is_unattributed(self):
        rec = RegionRecorder(2)
        rec.record(0.0, 1.0, replies((0.1, 0.5), (0.2, 0.9)))
        assert rec.names() == [UNATTRIBUTED]

    def test_push_pop_attribution(self):
        rec = RegionRecorder(1)
        rec.push("rhs")
        rec.record(0.0, 1.0, replies((0.0, 1.0)))
        rec.pop()
        rec.record(0.0, 1.0, replies((0.0, 1.0)))
        assert rec.names() == ["rhs", UNATTRIBUTED]
        assert rec.stats("rhs").calls == 1

    def test_nested_regions_charge_innermost(self):
        rec = RegionRecorder(1)
        rec.push("outer")
        rec.push("inner")
        rec.record(0.0, 1.0, replies((0.0, 1.0)))
        rec.pop()
        rec.pop()
        assert rec.stats("inner").calls == 1
        assert rec.stats("outer").calls == 0

    def test_component_accounting(self):
        rec = RegionRecorder(2)
        rec.push("r")
        # publish at 0.0, all done at 1.0; worker 0 runs [0.1, 0.5],
        # worker 1 runs [0.2, 0.9].
        rec.record(0.0, 1.0, replies((0.1, 0.5), (0.2, 0.9)))
        s = rec.stats("r")
        assert s.calls == 1
        assert s.wall_seconds == pytest.approx(1.0)
        assert s.dispatch_seconds == pytest.approx(0.1 + 0.2)
        assert s.execute_seconds == pytest.approx(0.4 + 0.7)
        assert s.barrier_seconds == pytest.approx(0.5 + 0.1)

    def test_stats_accumulate_across_calls(self):
        rec = RegionRecorder(1)
        rec.push("r")
        rec.record(0.0, 1.0, replies((0.0, 1.0)))
        rec.record(2.0, 4.0, replies((2.0, 4.0)))
        s = rec.stats("r")
        assert s.calls == 2
        assert s.wall_seconds == pytest.approx(3.0)

    def test_clear_keeps_active_region(self):
        rec = RegionRecorder(1)
        rec.push("r")
        rec.record(0.0, 1.0, replies((0.0, 1.0)))
        rec.clear()
        assert rec.names() == []
        rec.record(0.0, 1.0, replies((0.0, 1.0)))
        assert rec.names() == ["r"]

    def test_report_round_trips(self):
        rec = RegionRecorder(1)
        rec.push("a")
        rec.record(0.0, 1.0, replies((0.2, 0.7)))
        rec.pop()
        report = rec.report()
        assert set(report["a"]) == {"calls", "wall_seconds",
                                    "dispatch_seconds", "execute_seconds",
                                    "barrier_seconds",
                                    "alloc_bytes", "alloc_blocks"}
        assert report["a"]["calls"] == 1


class TestRegionStats:
    def test_sync_and_overhead(self):
        s = RegionStats(calls=1, wall_seconds=1.0, dispatch_seconds=0.25,
                        execute_seconds=1.0, barrier_seconds=0.75)
        assert s.sync_seconds == pytest.approx(1.0)
        assert s.overhead_fraction == pytest.approx(0.5)

    def test_overhead_of_empty_stats_is_zero(self):
        assert RegionStats().overhead_fraction == 0.0


class TestParallelRegion:
    def test_scopes_recorder_and_timer(self):
        rec = RegionRecorder(1)
        timer = Timer()
        with ParallelRegion("phase", rec, timer):
            assert rec.current_region == "phase"
            assert timer.running
        assert rec.current_region == UNATTRIBUTED
        assert not timer.running
        assert timer.count == 1

    def test_timer_optional(self):
        rec = RegionRecorder(1)
        with ParallelRegion("phase", rec):
            assert rec.current_region == "phase"

    def test_pops_on_exception(self):
        rec = RegionRecorder(1)
        with pytest.raises(ValueError):
            with ParallelRegion("phase", rec):
                raise ValueError("boom")
        assert rec.current_region == UNATTRIBUTED
