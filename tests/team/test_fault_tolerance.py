"""Chaos suite: the dispatch core must survive real worker failures.

The paper's master--worker scheme silently assumes every worker survives
every wait()/notify() cycle.  These tests inject the failures that
assumption hides -- SIGKILL mid-dispatch, a task hanging past the
deadline, a task raising on one rank only -- and assert the run still
completes with bit-identical results, the recovery path is visible as
structured FaultEvents, and exhausted retries degrade to inline serial
execution instead of hanging forever.

All chaos tasks are module-level (picklable) and *idempotent*: the
failure is gated on shared-memory control words the first execution
flips, so the retried dispatch runs clean and the final arrays are
exactly what a healthy run produces.

Control-word layout for ``ctl = team.shared(4)``:

``ctl[0]``  "armed" flag: 0 = inject the fault, 1 = behave
``ctl[1]``  victim's pid, advertised so the test can SIGKILL it
"""

import os
import signal
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.cg import CG
from repro.runtime.dispatch import FaultPolicy, WorkerError
from repro.team import ProcessTeam, SerialTeam, ThreadTeam

# Enforced by pytest-timeout where installed (the CI chaos job); inert
# elsewhere -- the marker is registered in pyproject.toml either way.
pytestmark = pytest.mark.timeout(120)


# --------------------------------------------------------------------- #
# module-level chaos tasks (picklable for the process backend)

def fill_iota(lo, hi, out):
    out[lo:hi] = np.arange(lo, hi)


def sigkill_self_once(lo, hi, ctl, out):
    """Rank 0's first execution kills its own worker process."""
    if lo == 0 and ctl[0] == 0:
        ctl[0] = 1  # shared-memory write lands before the signal
        os.kill(os.getpid(), signal.SIGKILL)
    out[lo:hi] = np.arange(lo, hi)


def advertise_pid_and_hang(lo, hi, ctl, out):
    """Rank 0's first execution advertises its pid and hangs so the test
    can SIGKILL it while the dispatch is genuinely in flight."""
    if lo == 0 and ctl[0] == 0:
        ctl[1] = os.getpid()
        time.sleep(60.0)  # killed long before this elapses
    out[lo:hi] = np.arange(lo, hi)


def hang_once(lo, hi, ctl, out):
    """Rank 0's first execution hangs past any reasonable deadline."""
    if lo == 0 and ctl[0] == 0:
        ctl[0] = 1
        time.sleep(60.0)
    out[lo:hi] = np.arange(lo, hi)


def sigkill_unless_master(lo, hi, master_pid, out):
    """Dies in every worker process; only the master can run it inline."""
    if os.getpid() != master_pid:
        os.kill(os.getpid(), signal.SIGKILL)
    out[lo:hi] = np.arange(lo, hi)


def poison_on_first_rank(lo, hi, out):
    """Application error on rank 0 only: must propagate, never retry."""
    if lo == 0:
        raise ValueError("poison task on rank 0")
    out[lo:hi] = 1.0


def hang_in_worker_threads(lo, hi, out):
    """Hangs in any non-main thread; only inline execution completes."""
    if threading.current_thread() is not threading.main_thread():
        time.sleep(60.0)
    out[lo:hi] = 5.0


#: Policy used across the chaos tests: tight deadline, fast backoff.
CHAOS = FaultPolicy(dispatch_timeout=5.0, max_retries=2,
                    backoff_seconds=0.01)


def expected_iota(n):
    return np.arange(n, dtype=np.float64)


class TestProcessWorkerDeath:
    def test_sigkill_self_mid_dispatch_respawns_and_completes(self):
        with ProcessTeam(2, policy=CHAOS) as team:
            ctl = team.shared(4)
            out = team.shared(64)
            team.parallel_for(64, sigkill_self_once, ctl, out)
            assert np.array_equal(out, expected_iota(64))
            counts = team.recorder.fault_counts()
            assert counts.get("worker_death", 0) >= 1
            assert counts.get("respawn", 0) >= 1
            assert not team.degraded
            # the respawned worker is a full team member again
            out2 = team.shared(32)
            team.parallel_for(32, fill_iota, out2)
            assert np.array_equal(out2, expected_iota(32))

    def test_external_sigkill_while_computing(self):
        """SIGKILL from outside lands while the worker is mid-task."""
        with ProcessTeam(2, policy=CHAOS) as team:
            ctl = team.shared(4)
            out = team.shared(48)

            def killer():
                # wait until the victim advertises it is inside the task
                while ctl[1] == 0:
                    time.sleep(0.005)
                ctl[0] = 1  # disarm before killing: the retry must pass
                os.kill(int(ctl[1]), signal.SIGKILL)

            assassin = threading.Thread(target=killer, daemon=True)
            assassin.start()
            team.parallel_for(48, advertise_pid_and_hang, ctl, out)
            assassin.join(timeout=10.0)
            assert np.array_equal(out, expected_iota(48))
            counts = team.recorder.fault_counts()
            assert counts.get("respawn", 0) >= 1
            assert not team.degraded

    def test_sigkill_while_idle_detected_on_next_dispatch(self):
        with ProcessTeam(2, policy=CHAOS) as team:
            out = team.shared(16)
            team.parallel_for(16, fill_iota, out)
            os.kill(team._procs[1].pid, signal.SIGKILL)
            team._procs[1].join(timeout=5.0)
            out2 = team.shared(16)
            team.parallel_for(16, fill_iota, out2)
            assert np.array_equal(out2, expected_iota(16))
            assert team.recorder.fault_counts().get("respawn", 0) >= 1


class TestHungTaskTimeout:
    def test_process_hung_task_times_out_and_recovers(self):
        policy = FaultPolicy(dispatch_timeout=0.5, max_retries=2,
                             backoff_seconds=0.01)
        with ProcessTeam(2, policy=policy) as team:
            ctl = team.shared(4)
            out = team.shared(40)
            start = time.perf_counter()
            team.parallel_for(40, hang_once, ctl, out)
            elapsed = time.perf_counter() - start
            assert np.array_equal(out, expected_iota(40))
            counts = team.recorder.fault_counts()
            assert counts.get("timeout", 0) >= 1
            assert counts.get("respawn", 0) >= 1
            assert not team.degraded
            # recovery must come from the deadline, not the 60s sleep
            assert elapsed < 30.0

    def test_threads_hung_task_times_out_and_recovers(self):
        policy = FaultPolicy(dispatch_timeout=0.3, max_retries=2,
                             backoff_seconds=0.01)
        team = ThreadTeam(2, policy=policy)
        try:
            ctl = team.shared(4)
            out = team.shared(40)
            team.parallel_for(40, hang_once, ctl, out)
            assert np.array_equal(out, expected_iota(40))
            counts = team.recorder.fault_counts()
            assert counts.get("timeout", 0) >= 1
            assert counts.get("respawn", 0) >= 1
            assert not team.degraded
        finally:
            # the hung predecessor thread is retired but still sleeping;
            # close() must not block on it longer than its join timeout
            team._join_timeout = 0.1
            with pytest.warns(RuntimeWarning, match="failed to join"):
                team.close()


class TestDegradation:
    def test_process_exhausted_retries_degrade_to_serial(self):
        policy = FaultPolicy(dispatch_timeout=5.0, max_retries=1,
                             backoff_seconds=0.01)
        with ProcessTeam(2, policy=policy) as team:
            out = team.shared(24)
            team.parallel_for(24, sigkill_unless_master, os.getpid(), out)
            assert np.array_equal(out, expected_iota(24))
            assert team.degraded
            counts = team.recorder.fault_counts()
            assert counts.get("degrade", 0) == 1
            assert counts.get("respawn", 0) >= 1  # it did try
            # degraded team keeps serving dispatches, inline
            out2 = team.shared(12)
            team.parallel_for(12, fill_iota, out2)
            assert np.array_equal(out2, expected_iota(12))

    def test_threads_exhausted_retries_degrade_to_serial(self):
        policy = FaultPolicy(dispatch_timeout=0.2, max_retries=1,
                             backoff_seconds=0.01)
        team = ThreadTeam(2, policy=policy, join_timeout=0.1)
        try:
            out = team.shared(8)
            team.parallel_for(8, hang_in_worker_threads, out)
            assert np.all(out == 5.0)
            assert team.degraded
            assert team.recorder.fault_counts().get("degrade", 0) == 1
        finally:
            with pytest.warns(RuntimeWarning, match="failed to join"):
                team.close()

    def test_degrade_events_carry_region_attribution(self):
        policy = FaultPolicy(dispatch_timeout=5.0, max_retries=0,
                             backoff_seconds=0.01)
        with ProcessTeam(2, policy=policy) as team:
            out = team.shared(8)
            team.recorder.push("chaos_phase")
            try:
                team.parallel_for(8, sigkill_unless_master, os.getpid(), out)
            finally:
                team.recorder.pop()
            kinds = {e.kind for e in team.recorder.faults}
            assert "degrade" in kinds
            assert all(e.region == "chaos_phase"
                       for e in team.recorder.faults)


class TestPoisonTaskIsNotRetried:
    """An application error is the task's fault, not the transport's."""

    @pytest.mark.parametrize("team_factory", [
        lambda: SerialTeam(policy=CHAOS),
        lambda: ThreadTeam(2, policy=CHAOS),
        lambda: ProcessTeam(2, policy=CHAOS),
    ], ids=["serial", "threads", "process"])
    def test_poison_rank_propagates_without_respawn(self, team_factory):
        with team_factory() as team:
            out = team.shared(16)
            with pytest.raises(Exception, match="poison task on rank 0"):
                team.parallel_for(16, poison_on_first_rank, out)
            # no transport fault, no retry, no degradation
            assert team.recorder.fault_counts() == {}
            assert not team.degraded
            # and the team stays usable
            team.parallel_for(16, fill_iota, out)
            assert np.array_equal(out, expected_iota(16))


class TestThreadCloseEscalation:
    def test_stuck_worker_close_records_join_timeout_fault(self):
        team = ThreadTeam(1, join_timeout=0.05)
        release = threading.Event()
        started = threading.Event()

        def stuck(lo, hi):
            started.set()
            release.wait(timeout=30.0)

        dispatcher = threading.Thread(
            target=lambda: team.parallel_for(1, stuck), daemon=True)
        dispatcher.start()
        assert started.wait(timeout=5.0)
        with pytest.warns(RuntimeWarning, match="failed to join"):
            team.close()
        # the warning is now *also* a structured, machine-readable event
        events = [e for e in team.recorder.faults
                  if e.kind == "join_timeout"]
        assert len(events) == 1
        assert events[0].rank == 0
        assert events[0].backend == "threads"
        assert "npb-worker-0" in events[0].detail
        release.set()
        dispatcher.join(timeout=5.0)

    def test_stuck_worker_cannot_hang_interpreter_exit(self):
        """A worker stuck in a task forever must not block process exit:
        run the scenario in a real interpreter and require prompt exit."""
        script = (
            "import sys, threading, time, warnings\n"
            "from repro.team import ThreadTeam\n"
            "def stuck(lo, hi):\n"
            "    time.sleep(600)\n"
            "team = ThreadTeam(1, join_timeout=0.1)\n"
            "threading.Thread(target=lambda: team.parallel_for(1, stuck),\n"
            "                 daemon=True).start()\n"
            "time.sleep(0.3)  # let the worker enter the task\n"
            "with warnings.catch_warnings():\n"
            "    warnings.simplefilter('ignore')\n"
            "    team.close()\n"
            "assert team.recorder.fault_counts()['join_timeout'] == 1\n"
            "sys.exit(0)\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + \
            env.get("PYTHONPATH", "")
        proc = subprocess.run([sys.executable, "-c", script], env=env,
                              timeout=60, capture_output=True, text=True)
        assert proc.returncode == 0, proc.stderr


def raise_deep_marker(lo, hi):
    """Raises through a helper frame so the remote traceback has depth."""
    def inner_frame():
        raise ValueError("CHAOS-MARKER-7f3a deliberate remote failure")
    inner_frame()


class TestRemoteTracebackPreserved:
    """WorkerError must carry the worker's traceback text end-to-end."""

    def test_process_worker_error_carries_remote_traceback(self):
        with ProcessTeam(2) as team:
            with pytest.raises(WorkerError) as excinfo:
                team.parallel_for(8, raise_deep_marker)
        message = str(excinfo.value)
        # the original exception text, the remote frames, and the rank
        # all survive the pipe crossing
        assert "CHAOS-MARKER-7f3a" in message
        assert "raise_deep_marker" in message
        assert "inner_frame" in message
        assert "Traceback (most recent call last)" in message
        assert "worker 0 failed" in message


class TestBenchmarkUnderChaos:
    """The ISSUE's acceptance scenario: a real benchmark run whose
    process worker is SIGKILLed mid-region completes verified, with the
    respawn visible in the run record."""

    def test_cg_survives_worker_sigkill_and_verifies(self):
        with ProcessTeam(2, policy=CHAOS) as team:
            bench = CG("S", team)
            bench.setup()
            # kill a worker between setup and the timed region: the death
            # is detected by the first in-region dispatch, so the fault
            # lands inside conj_grad and survives the timed-region reset
            os.kill(team._procs[1].pid, signal.SIGKILL)
            team._procs[1].join(timeout=5.0)
            result = bench.run()
        assert result.verified
        counts = result.fault_counts
        assert counts.get("respawn", 0) >= 1
        assert counts.get("worker_death", 0) >= 1
        record = result.to_dict()
        assert record["fault_counts"]["respawn"] >= 1
        assert any(e["kind"] == "respawn" for e in record["faults"])
        # fault events carry the region they interrupted
        assert any(e["region"] != "(unattributed)"
                   for e in record["faults"])

    def test_cg_degraded_run_still_verifies(self):
        """With retries exhausted the run degrades to serial -- and still
        produces a verified result instead of hanging."""
        policy = FaultPolicy(dispatch_timeout=5.0, max_retries=0,
                             backoff_seconds=0.01)
        with ProcessTeam(2, policy=policy) as team:
            bench = CG("S", team)
            bench.setup()
            out = team.shared(4)
            # poison the transport permanently before the run
            team.parallel_for(4, sigkill_unless_master, os.getpid(), out)
            assert team.degraded
            result = bench.run()
        assert result.verified
        assert result.backend == "process"  # identity preserved...
        assert result.fault_counts.get("degrade", 0) == 1  # ...but audited
