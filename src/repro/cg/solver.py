"""The CG inner solver and its slab-parallel worker functions.

Each worker function operates on a contiguous row block ``[lo, hi)`` --
the row-block decomposition of the OpenMP CG that the paper's Java version
mirrors.  All functions are module-level so the process backend can ship
them to workers.

Memory discipline: the hot per-iteration kernels (mat-vec, z/r update,
final norm) are fused in-place chains into per-worker
:class:`~repro.runtime.arena.ScratchArena` buffers, bit-identical to the
``*_reference`` expression forms (asserted by
``tests/kernels/test_fused_equivalence.py``).  The mat-vec additionally
takes the ``reduceat`` row offsets precomputed once per execution plan
(:func:`compute_reduceat_offsets`) instead of rebuilding
``rowstr[lo:hi] - start`` on all 26 calls of every outer iteration.
"""

from __future__ import annotations

import math

import numpy as np

from repro.kernels import registry
from repro.runtime.arena import worker_arena
from repro.team.base import Team

#: CG inner iterations per outer step (cgitmax in cg.f).
CG_ITERATIONS = 25


def _init_slab(lo: int, hi: int, x, r, p, q, z) -> None:
    """q = z = 0, r = p = x on the slab (start of conj_grad)."""
    q[lo:hi] = 0.0
    z[lo:hi] = 0.0
    r[lo:hi] = x[lo:hi]
    p[lo:hi] = x[lo:hi]


def _dot_slab(lo: int, hi: int, u, v) -> float:
    """Partial inner product over the slab (BLAS dot on views; already
    allocation-free)."""
    return float(u[lo:hi] @ v[lo:hi])


def compute_reduceat_offsets(bounds, rowstr, out) -> None:
    """Per-slab ``reduceat`` row offsets, precomputed once per plan.

    For every slab ``(lo, hi)`` in ``bounds``, ``out[lo:hi]`` receives
    ``rowstr[lo:hi] - rowstr[lo]`` -- the row starts relative to that
    slab's first nonzero, exactly what :func:`_matvec_slab` recomputed on
    every call.  Valid for any dispatch using the same plan bounds, which
    the degraded inline fallback also does.
    """
    for lo, hi in bounds:
        if hi > lo:
            out[lo:hi] = rowstr[lo:hi] - rowstr[lo]


def _matvec_slab_reference(lo: int, hi: int, rowstr, colidx, a, x,
                           out, offsets=None) -> None:
    """Expression-form CSR mat-vec restricted to rows ``[lo, hi)`` (no
    empty rows assumed); allocates the gather and products temporaries.
    ``offsets`` (the fused tier's reduceat precomputation) is accepted
    for signature compatibility across tiers and ignored."""
    if hi <= lo:
        return
    start = int(rowstr[lo])
    end = int(rowstr[hi])
    products = a[start:end] * x[colidx[start:end]]
    out[lo:hi] = np.add.reduceat(products, rowstr[lo:hi] - start)


def _matvec_slab(lo: int, hi: int, rowstr, colidx, a, x, out,
                 offsets=None) -> None:
    """CSR mat-vec restricted to rows ``[lo, hi)`` (no empty rows assumed).

    Fused: gather ``x`` with ``np.take(..., out=)`` into one arena buffer,
    multiply by ``a`` in place, ``reduceat`` straight into ``out[lo:hi]``.
    Bit-identical to :func:`_matvec_slab_reference`.  ``offsets`` is the
    :func:`compute_reduceat_offsets` array; when None the offsets are
    rebuilt per call (reference behavior).
    """
    if hi <= lo:
        return
    start = int(rowstr[lo])
    end = int(rowstr[hi])
    gathered = worker_arena().take((end - start,))
    np.take(x, colidx[start:end], out=gathered)
    np.multiply(a[start:end], gathered, out=gathered)
    idx = offsets[lo:hi] if offsets is not None else rowstr[lo:hi] - start
    np.add.reduceat(gathered, idx, out=out[lo:hi])


def _update_zr_slab_reference(lo: int, hi: int, z, r, p, q,
                              alpha: float) -> None:
    """Expression form of the z/r update (allocates ``alpha * p`` and
    ``alpha * q`` temporaries)."""
    z[lo:hi] += alpha * p[lo:hi]
    r[lo:hi] -= alpha * q[lo:hi]


def _update_zr_slab(lo: int, hi: int, z, r, p, q, alpha: float) -> None:
    """z += alpha p; r -= alpha q on the slab, fused into one arena
    buffer; bit-identical to :func:`_update_zr_slab_reference`."""
    if hi <= lo:
        return
    t = worker_arena().take((hi - lo,))
    zv = z[lo:hi]
    np.multiply(p[lo:hi], alpha, out=t)
    np.add(zv, t, out=zv)
    rv = r[lo:hi]
    np.multiply(q[lo:hi], alpha, out=t)
    np.subtract(rv, t, out=rv)


def _update_p_slab(lo: int, hi: int, p, r, beta: float) -> None:
    """p = r + beta p on the slab (already in-place; no temporaries)."""
    p[lo:hi] *= beta
    p[lo:hi] += r[lo:hi]


def _norm_diff_slab_reference(lo: int, hi: int, x, r) -> float:
    """Expression form of the final-residual partial (allocates ``d``)."""
    d = x[lo:hi] - r[lo:hi]
    return float(d @ d)


def _norm_diff_slab(lo: int, hi: int, x, r) -> float:
    """Partial sum of (x - r)**2 over the slab, difference fused into an
    arena buffer; bit-identical to :func:`_norm_diff_slab_reference` (the
    dot runs over the same contiguous values)."""
    if hi <= lo:
        return 0.0
    d = worker_arena().take((hi - lo,))
    np.subtract(x[lo:hi], r[lo:hi], out=d)
    return float(d @ d)


def _fill_slab(lo: int, hi: int, x, value: float) -> None:
    x[lo:hi] = value


def _scale_into_x_slab(lo: int, hi: int, x, z, factor: float) -> None:
    """x = factor * z on the slab (outer-iteration normalization)."""
    np.multiply(z[lo:hi], factor, out=x[lo:hi])


def conj_grad(team: Team, n: int, rowstr, colidx, a,
              x, z, p, q, r, offsets=None) -> float:
    """One outer step: 25 CG iterations solving ``A z = x``.

    Returns ``rnorm = ||x - A z||_2``, the quantity the Fortran code prints
    each outer iteration.  ``offsets`` is the optional precomputed
    :func:`compute_reduceat_offsets` array (team-shared in the CG
    benchmark driver).
    """
    team.parallel_for(n, _init_slab, x, r, p, q, z)
    rho = team.reduce_sum(n, _dot_slab, r, r)

    for _ in range(CG_ITERATIONS):
        team.parallel_kernel("cg.matvec", n, rowstr, colidx, a, p, q,
                             offsets)
        d = team.reduce_sum(n, _dot_slab, p, q)
        alpha = rho / d
        team.parallel_kernel("cg.update_zr", n, z, r, p, q, alpha)
        rho0 = rho
        rho = team.reduce_sum(n, _dot_slab, r, r)
        beta = rho / rho0
        team.parallel_for(n, _update_p_slab, p, r, beta)

    team.parallel_kernel("cg.matvec", n, rowstr, colidx, a, z, r, offsets)
    return math.sqrt(team.reduce_kernel("cg.norm_diff", n, x, r))


# --------------------------------------------------------------------- #
# kernel-tier registration (see repro.kernels.registry); the compiled
# mat-vec lives in repro.kernels.compiled

registry.register("cg.matvec", "reference", _matvec_slab_reference)
registry.register("cg.matvec", "fused", _matvec_slab)
registry.register("cg.update_zr", "reference", _update_zr_slab_reference)
registry.register("cg.update_zr", "fused", _update_zr_slab)
registry.register("cg.norm_diff", "reference", _norm_diff_slab_reference)
registry.register("cg.norm_diff", "fused", _norm_diff_slab)
