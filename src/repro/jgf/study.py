"""The JGF-vs-NPB discrepancy, quantified.

Each JGF kernel is classified into the machine model's operation
categories; the modeled Java/Fortran ratio of the JGF mix on a given JVM
can then be compared with the NPB structured-grid mix on the same JVM --
reproducing the paper's resolution of the Java Grande Group's more
Java-favorable numbers: *the JGF workload mix simply avoids the
regular-stride categories where Fortran compilers win big*.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.jgf.series import series_loops, series_numpy
from repro.jgf.sor import sor_loops, sor_numpy
from repro.jgf.sparsematmult import (
    make_sparse_system,
    sparsematmult_loops,
    sparsematmult_numpy,
)
from repro.machines.spec import MachineSpec, OpCategory


@dataclass(frozen=True)
class JGFKernel:
    """A JGF kernel and its operation-category mix for the machine model.

    TRANSCENDENTAL work is modeled with the IRREGULAR ratio: both are
    regimes where compiled regular-stride optimization buys little (the
    time goes to libm or to cache misses, equally for both languages).
    """

    name: str
    op_mix: dict[OpCategory, float]

    def modeled_ratio(self, spec: MachineSpec) -> float:
        return sum(frac * spec.jvm.op_ratio[cat]
                   for cat, frac in self.op_mix.items())


JGF_KERNELS: dict[str, JGFKernel] = {
    # transcendental-library bound
    "series": JGFKernel("series", {OpCategory.IRREGULAR: 0.9,
                                   OpCategory.REDUCTION: 0.1}),
    # 4 loads + 1 store per 5 flops: data movement
    "sor": JGFKernel("sor", {OpCategory.COPY: 0.6,
                             OpCategory.STENCIL: 0.4}),
    # indirect gather/scatter
    "sparsematmult": JGFKernel("sparsematmult",
                               {OpCategory.IRREGULAR: 0.9,
                                OpCategory.REDUCTION: 0.1}),
    # BLAS1 LU: memory bound (the paper's own Table 7 analysis)
    "lufact": JGFKernel("lufact", {OpCategory.COPY: 0.8,
                                   OpCategory.REDUCTION: 0.2}),
}


def jgf_ratio_band(spec: MachineSpec) -> tuple[float, float]:
    """(min, max) modeled Java/Fortran ratio over the JGF kernels."""
    ratios = [k.modeled_ratio(spec) for k in JGF_KERNELS.values()]
    return min(ratios), max(ratios)


def measured_ratios(scale: float = 1.0) -> dict[str, float]:
    """Interpreted/vectorized time ratio per kernel on this host.

    ``scale`` shrinks problem sizes for fast test runs.  (In CPython the
    interpreter overhead applies to transcendental kernels too, unlike a
    JIT; the *modeled* ratios carry the JVM-era comparison, these
    measured ones document the CPython analogue.)
    """
    n_series = max(4, int(20 * scale))
    n_sor = max(64, int(120 * scale))
    n_sparse = max(100, int(2000 * scale))
    results = {}

    t0 = time.perf_counter()
    series_numpy(n_series)
    fast = time.perf_counter() - t0
    t0 = time.perf_counter()
    series_loops(n_series)
    results["series"] = (time.perf_counter() - t0) / fast

    rng = np.random.default_rng(5)
    grid = rng.random((n_sor, n_sor))
    sor_numpy(grid, 1)  # warm-up (allocator, cache)
    t0 = time.perf_counter()
    sor_numpy(grid, 20)
    fast = time.perf_counter() - t0
    t0 = time.perf_counter()
    sor_loops(grid, 20)
    results["sor"] = (time.perf_counter() - t0) / fast

    system = make_sparse_system(n_sparse)
    t0 = time.perf_counter()
    sparsematmult_numpy(*system, iterations=20)
    fast = time.perf_counter() - t0
    t0 = time.perf_counter()
    sparsematmult_loops(*system, iterations=20)
    results["sparsematmult"] = (time.perf_counter() - t0) / fast
    return results
