"""Service front end: in-process facade, HTTP daemon, and client.

:class:`BenchService` is the whole job service as one in-process object
-- queue, pool, cache, scheduler, and a job registry -- which is how
tests exercise every concurrency path without opening a socket.  The
HTTP layer (:func:`make_server`, serving ``npb serve``) is a thin JSON
shim over it on a stdlib ``ThreadingHTTPServer``:

``POST /jobs``
    Submit a job.  Body: ``{"benchmark": "CG", "problem_class": "S",
    "backend": "serial", "workers": 1, "priority": "normal",
    "no_cache": false, "dispatch_timeout": null, "max_retries": null,
    "kernel_backend": "fused", "job_key": null, "tenant": null,
    "wait": false}``.
    Returns 202 with the job dict (or 200 with the terminal job when
    ``wait`` is true); 429 when admission is rejected (queue full or
    draining); 400 on a malformed spec.  A repeated ``job_key``
    (idempotency key) returns the already-admitted job instead of a
    duplicate.  An ``Idempotency-Key`` request header is shorthand for
    ``job_key``, and ``X-NPB-Tenant`` for ``tenant``; an explicit body
    field wins over its header.
``GET /jobs`` / ``GET /jobs/<id>``
    Job listing / one job (404 when unknown).
``GET /status``
    Queue depth, pool occupancy, cache hit rate, scheduler counters
    (including aggregated fault counts), jobs by state, and the
    ``dedup`` counters (``coalesced`` / ``idempotent_replays`` /
    ``duplicate_executions``).

:class:`ServiceClient` is the stdlib client used by ``npb submit`` /
``npb jobs`` and the load generator (:mod:`repro.service.loadgen`).  It
keeps one ``http.client.HTTPConnection`` alive per thread (both service
front ends speak HTTP/1.1 keep-alive), so a closed-loop worker pays
connection setup once, not per request -- reconnecting per call was
polluting the latency percentiles the loadgen SLO gate reads.
``submit(..., retries=N)`` honors the ``Retry-After`` header on 429 with
bounded retries, so a briefly-full queue reads as backpressure instead
of a hard failure.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.metrics import (CONTENT_TYPE as METRICS_CONTENT_TYPE,
                               MetricsRegistry, process_rss_bytes)
from repro.obs.spans import TraceSampler, get_span_store
from repro.obs.trace import (TRACEPARENT_HEADER, TraceContext, current_trace,
                             format_traceparent, parse_traceparent)
from repro.runtime.dispatch import FaultPolicy
from repro.service.cache import ResultCache
from repro.service.jobs import AdmissionRejected, Job, JobQueue, JobSpec
from repro.service.pool import TeamPool
from repro.service.scheduler import Scheduler

#: Default on-disk location of the content-addressed result cache.
DEFAULT_CACHE_DIR = ".npb-service-cache"

#: Seconds a 429 tells the client to wait before resubmitting.
RETRY_AFTER_SECONDS = 1.0

#: Longest single backoff ``ServiceClient.submit`` will sleep, however
#: large a Retry-After the server (or a proxy) sends.
MAX_RETRY_AFTER_SECONDS = 10.0


class BenchService:
    """The benchmark job service as one in-process object."""

    def __init__(
        self,
        backend: str = "serial",
        workers: int = 1,
        pool_size: int = 2,
        queue_depth: int = 64,
        cache_dir: str = DEFAULT_CACHE_DIR,
        cache_entries: int = 256,
        policy: FaultPolicy | None = None,
        kernel_backend: str = "fused",
        chaos=None,
        autostart: bool = True,
        trace_sample: float = 0.0,
    ):
        #: default kernel tier for submissions that don't name one
        self.default_kernel_backend = kernel_backend
        #: edge sampling decision for submissions that carry no
        #: traceparent (``--trace-sample RATE``; explicit traced submits
        #: are always on)
        self.sampler = TraceSampler(trace_sample)
        self.trace_sample = float(trace_sample)
        #: per-service metric registry (the /metrics exposition body);
        #: per-instance rather than process-global so tests that build
        #: many services never read each other's counters
        self.metrics = MetricsRegistry()
        self.queue = JobQueue(maxdepth=queue_depth)
        self.pool = TeamPool(backend, workers, size=pool_size, policy=policy)
        self.cache = ResultCache(cache_dir, max_entries=cache_entries)
        self.scheduler = Scheduler(
            self.queue, self.pool, self.cache, on_update=self._on_update
        )
        #: optional ChaosInjector wired into every seam (fault-injection
        #: tests and ``npb serve --chaos-seed``); None = off
        self.chaos = chaos
        if chaos is not None:
            chaos.install(self)
        self._jobs: dict[str, Job] = {}
        self._by_key: dict[str, Job] = {}
        self._cond = threading.Condition()
        self._counter = 0
        self._draining = False
        #: dedup counters (schema v6 status block): replays of an
        #: idempotency key, and waiters the async front end attached to
        #: an in-flight job instead of re-queueing
        self.idempotent_replays = 0
        self.coalesced = 0
        #: external observers of job state changes (the async front end
        #: registers one to resolve waiter futures); called outside the
        #: service lock from dispatcher threads, must be cheap
        self._listeners: list = []
        self.started_at = time.time()
        self._register_metrics()
        if autostart:
            self.scheduler.start()

    # ------------------------------------------------------------------ #

    def _register_metrics(self) -> None:
        """Wire the registry onto live service state.

        Gauges are callback-backed -- a scrape reads the queue, pool,
        cache, and scheduler directly instead of the service mirroring
        every change -- so metrics cost nothing between scrapes.  Only
        the per-job counter/histogram pair is push-style, fed by a
        state-change listener on terminal transitions.
        """
        reg = self.metrics
        reg.gauge("npb_queue_depth", "jobs waiting in the admission queue",
                  callback=lambda: self.queue.depth)
        reg.gauge("npb_queue_capacity", "admission queue bound",
                  callback=lambda: self.queue.maxdepth)
        reg.gauge("npb_pool_teams", "team pool occupancy",
                  callback=lambda: {
                      "idle": self.pool.occupancy()["idle"],
                      "in_use": self.pool.occupancy()["in_use"],
                  }, label_name="state")
        reg.gauge("npb_pool_leases_total", "pool leases since start",
                  callback=lambda: self.pool.occupancy()["leases"])
        reg.gauge("npb_cache_events_total", "result cache activity",
                  callback=lambda: {
                      key: self.cache.stats()[key]
                      for key in ("hits", "misses", "evictions",
                                  "corruption_healed")
                  }, label_name="event")
        reg.gauge("npb_dedup_total", "requests absorbed without executing",
                  callback=lambda: {
                      "coalesced": self.coalesced,
                      "idempotent_replays": self.idempotent_replays,
                      "duplicate_executions":
                          self.scheduler.duplicate_executions,
                  }, label_name="kind")
        reg.gauge("npb_fault_events_total", "runtime fault events by kind",
                  callback=lambda: self.scheduler.stats()["fault_counts"],
                  label_name="kind")
        if self.chaos is not None:
            reg.gauge("npb_chaos_injected_total", "injected faults by kind",
                      callback=lambda: self.chaos.summary()["kinds"],
                      label_name="kind")
        reg.gauge("npb_process_rss_bytes", "peak resident set (getrusage)",
                  callback=process_rss_bytes)
        reg.gauge("npb_uptime_seconds", "seconds since service start",
                  callback=lambda: time.time() - self.started_at)
        self._jobs_total = reg.counter(
            "npb_jobs_total", "terminal jobs by state and benchmark")
        self._http_responses = reg.counter(
            "npb_http_responses_total", "front-end responses by status code")
        self._job_latency = reg.histogram(
            "npb_job_latency_seconds",
            "submit-to-terminal latency by benchmark")
        self.add_listener(self._observe_job)

    def _observe_job(self, job: Job) -> None:
        if not job.terminal:
            return
        benchmark = job.spec.benchmark
        self._jobs_total.inc(state=job.state, benchmark=benchmark)
        if job.finished_at is not None:
            self._job_latency.observe(
                job.finished_at - job.submitted_at, benchmark=benchmark
            )

    def note_http_response(self, code: int) -> None:
        """Count one front-end response (both front ends call this)."""
        self._http_responses.inc(code=str(code))

    def _on_update(self, job: Job) -> None:
        with self._cond:
            self._cond.notify_all()
            listeners = list(self._listeners)
        for listener in listeners:
            try:
                listener(job)
            except Exception:
                # A broken observer must never take a dispatcher down.
                pass

    def add_listener(self, listener) -> None:
        """Register ``listener(job)`` to run after every state change."""
        with self._cond:
            self._listeners.append(listener)

    def remove_listener(self, listener) -> None:
        with self._cond:
            if listener in self._listeners:
                self._listeners.remove(listener)

    def note_coalesced(self, count: int = 1) -> None:
        """Count waiters a front end attached to an in-flight job."""
        with self._cond:
            self.coalesced += count

    def submit(
        self,
        benchmark: str,
        problem_class: str = "S",
        backend: str | None = None,
        workers: int | None = None,
        priority: str = "normal",
        no_cache: bool = False,
        dispatch_timeout: float | None = None,
        max_retries: int | None = None,
        kernel_backend: str | None = None,
        job_key: str | None = None,
        tenant: str | None = None,
        trace: TraceContext | None = None,
    ) -> Job:
        """Admit one job (raises :class:`AdmissionRejected` when full).

        ``backend``/``workers`` default to the pool configuration, which
        is the warm path; overriding them still works but runs on a cold
        one-shot team.  ``kernel_backend`` selects the kernel tier for
        the run; the scheduler swaps it onto the leased team per job, so
        pooled teams stay warm across tiers.

        ``job_key`` makes the submission idempotent: a repeated key
        returns the job already admitted under it (whatever state it has
        reached) instead of queueing a duplicate.  This is what lets the
        shard coordinator resubmit after an ambiguous transport failure
        without double-running the work.  ``tenant`` is provenance for
        fair admission (and the v6 record); it does not affect the run.

        ``trace`` is the request's trace context (the front ends pass
        the continued/minted one); when None the service's own sampler
        decides, so ``--trace-sample`` also covers in-process submits.
        """
        if trace is None:
            trace = self.sampler.decide()
        if job_key is not None:
            job_key = str(job_key)
            with self._cond:
                existing = self._by_key.get(job_key)
                if existing is not None:
                    self.idempotent_replays += 1
            if existing is not None:
                return existing
        spec = JobSpec.create(
            benchmark,
            problem_class,
            backend=self.pool.backend if backend is None else backend,
            workers=self.pool.workers if workers is None else workers,
            dispatch_timeout=dispatch_timeout,
            max_retries=max_retries,
            kernel_backend=(
                self.default_kernel_backend
                if kernel_backend is None
                else kernel_backend
            ),
        )
        with self._cond:
            if job_key is not None:
                # Re-check under the lock: a concurrent duplicate may
                # have registered the key while the spec was validated.
                existing = self._by_key.get(job_key)
                if existing is not None:
                    self.idempotent_replays += 1
                    return existing
            self._counter += 1
            job = Job(
                job_id=f"job-{self._counter:06d}",
                spec=spec,
                priority=priority,
                no_cache=bool(no_cache),
                job_key=job_key,
                tenant=None if tenant is None else str(tenant),
                trace=trace,
            )
            if job_key is not None:
                self._by_key[job_key] = job
        try:
            self.queue.put(job)  # may raise AdmissionRejected
        except AdmissionRejected:
            with self._cond:
                if job_key is not None and self._by_key.get(job_key) is job:
                    del self._by_key[job_key]
            raise
        with self._cond:
            self._jobs[job.job_id] = job
        return job

    def job(self, job_id: str) -> Job | None:
        with self._cond:
            return self._jobs.get(job_id)

    def replay(self, job_key: str) -> Job | None:
        """The job admitted under ``job_key``, counted as a replay.

        Front ends use this as the admission pre-check: a hit means the
        request is an idempotent replay and must bypass fair-queueing
        (replaying a key adds no work, so it must not consume quota).
        """
        with self._cond:
            job = self._by_key.get(str(job_key))
            if job is not None:
                self.idempotent_replays += 1
            return job

    def jobs(self) -> list[Job]:
        with self._cond:
            return list(self._jobs.values())

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until the job reaches a terminal state."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                job = self._jobs.get(job_id)
                if job is None:
                    raise KeyError(f"unknown job {job_id!r}")
                if job.terminal:
                    return job
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(
                        f"job {job_id} not terminal within {timeout}s "
                        f"(state {job.state})"
                    )
                self._cond.wait(remaining)

    # ------------------------------------------------------------------ #

    def status(self) -> dict:
        with self._cond:
            by_state: dict[str, int] = {}
            for job in self._jobs.values():
                by_state[job.state] = by_state.get(job.state, 0) + 1
            draining = self._draining
            coalesced = self.coalesced
            idempotent_replays = self.idempotent_replays
        status = {
            "service": "npb-bench-service",
            "uptime_seconds": time.time() - self.started_at,
            #: peak resident set (satellite of the obs PR): lets the
            #: loadgen/chaos leak checks read memory from the service
            #: instead of shelling out to ``ps``
            "rss_bytes": process_rss_bytes(),
            "trace_sample": self.trace_sample,
            "draining": draining,
            "queue": {
                "depth": self.queue.depth,
                "capacity": self.queue.maxdepth,
                "closed": self.queue.closed,
            },
            "pool": self.pool.occupancy(),
            "cache": self.cache.stats(),
            "scheduler": self.scheduler.stats(),
            "jobs": by_state,
            # duplicate-work ledger: requests absorbed without executing
            # (coalesced waiters, idempotent replays) vs duplicate work
            # that actually ran (in-flight twins the threaded front end
            # cannot deduplicate)
            "dedup": {
                "coalesced": coalesced,
                "idempotent_replays": idempotent_replays,
                "duplicate_executions": self.scheduler.duplicate_executions,
            },
        }
        if self.chaos is not None:
            status["chaos"] = self.chaos.summary()
        return status

    def drain(self, timeout: float | None = 30.0) -> bool:
        """Graceful shutdown: finish admitted jobs, reject new ones,
        close every team.  Returns True on a clean drain."""
        with self._cond:
            if self._draining:
                return True
            self._draining = True
        return self.scheduler.drain(timeout)

    def __enter__(self) -> "BenchService":
        return self

    def __exit__(self, *exc) -> None:
        self.drain()


# ===================================================================== #
# HTTP layer
# ===================================================================== #


def begin_submit_trace(
    service: BenchService, payload: dict, header_value: str | None,
    front_end: str,
):
    """Edge tracing for one submit request (both front ends).

    Pops the explicit ``trace`` flag from the payload, continues an
    incoming ``traceparent`` (or lets the sampler decide), and -- when
    sampled -- opens the front end's ``http.submit`` span.  Returns
    ``(span_or_None, context_to_submit_with)``; the caller ends the
    span when the response goes out and passes the context to
    ``service.submit(trace=...)`` so the scheduler's spans nest under
    the HTTP one.
    """
    forced = bool(payload.pop("trace", False))
    incoming = parse_traceparent(header_value)
    ctx = service.sampler.decide(incoming, forced=forced)
    if not ctx.sampled:
        return None, ctx
    span, child = get_span_store().start_span(
        "http.submit", ctx=ctx, attrs={"front_end": front_end}
    )
    return span, child


def job_trace_response(service: BenchService, job_id: str) -> tuple[int, dict]:
    """``GET /jobs/<id>/trace`` body: this process's spans of the job's
    trace (the coordinator merges its own on top when proxying)."""
    job = service.job(job_id)
    if job is None:
        return 404, {"error": "unknown job"}
    trace_id = job.trace_id
    if trace_id is None:
        return 404, {"error": f"job {job_id!r} was not traced"}
    spans = get_span_store().trace(trace_id)
    return 200, {
        "trace_id": trace_id,
        "job_id": job_id,
        "spans": [span.to_dict() for span in spans],
    }


class _ServiceHandler(BaseHTTPRequestHandler):
    """JSON shim: translates HTTP verbs onto the BenchService facade."""

    server: "ServiceHTTPServer"
    protocol_version = "HTTP/1.1"
    #: the handler writes headers and body as separate small segments;
    #: with Nagle on, a keep-alive client stalls ~40ms per response in
    #: the delayed-ACK window, which would swamp every latency record
    disable_nagle_algorithm = True

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.verbose:
            super().log_message(format, *args)

    def _send_bytes(
        self,
        code: int,
        body: bytes,
        content_type: str,
        headers: dict | None = None,
    ) -> None:
        self.server.service.note_http_response(code)
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send(
        self, code: int, payload: dict, headers: dict | None = None
    ) -> None:
        body = (json.dumps(payload, indent=2) + "\n").encode()
        self._send_bytes(code, body, "application/json", headers)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        service = self.server.service
        path = self.path.rstrip("/") or "/"
        if path == "/status":
            self._send(200, service.status())
        elif path == "/metrics":
            self._send_bytes(
                200, service.metrics.render().encode(), METRICS_CONTENT_TYPE
            )
        elif path == "/jobs":
            self._send(200, {"jobs": [j.as_dict() for j in service.jobs()]})
        elif path.startswith("/jobs/") and path.endswith("/trace"):
            job_id = path[len("/jobs/") : -len("/trace")]
            self._send(*job_trace_response(service, job_id))
        elif path.startswith("/jobs/"):
            job = service.job(path[len("/jobs/") :])
            if job is None:
                self._send(404, {"error": "unknown job"})
            else:
                self._send(200, job.as_dict())
        else:
            self._send(404, {"error": f"no such resource {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        service = self.server.service
        if self.path.rstrip("/") != "/jobs":
            self._send(404, {"error": f"no such resource {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            payload = json.loads(self.rfile.read(length) or b"{}")
            if not isinstance(payload, dict):
                raise ValueError("body must be a JSON object")
            wait = bool(payload.pop("wait", False))
            wait_timeout = payload.pop("wait_timeout", None)
            # Header shorthands (body fields win): same contract as the
            # async front end, so clients can switch front ends freely.
            idem = self.headers.get("Idempotency-Key")
            if idem is not None and payload.get("job_key") is None:
                payload["job_key"] = idem
            tenant = self.headers.get("X-NPB-Tenant")
            if tenant is not None and payload.get("tenant") is None:
                payload["tenant"] = tenant
            span, ctx = begin_submit_trace(
                service, payload,
                self.headers.get(TRACEPARENT_HEADER), "threaded",
            )
            try:
                job = service.submit(**payload, trace=ctx)
            except BaseException:
                if span is not None:
                    span.end("error")
                raise
        except AdmissionRejected as exc:
            self._send(
                429,
                {"error": str(exc), "depth": exc.depth, "capacity": exc.capacity},
                headers={"Retry-After": f"{RETRY_AFTER_SECONDS:g}"},
            )
            return
        except (TypeError, ValueError, json.JSONDecodeError) as exc:
            self._send(400, {"error": f"bad job spec: {exc}"})
            return
        if span is not None:
            span.attrs["job_id"] = job.job_id
        if wait:
            try:
                job = service.wait(job.job_id, timeout=wait_timeout)
            except TimeoutError as exc:
                if span is not None:
                    span.end("error")
                self._send(504, {"error": str(exc), "job": job.as_dict()})
                return
            finally:
                if span is not None:
                    span.end()
            self._send(200, job.as_dict())
        else:
            if span is not None:
                span.end()
            self._send(202, job.as_dict())


class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the BenchService for its handlers."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: BenchService,
        verbose: bool = False,
    ):
        super().__init__(address, _ServiceHandler)
        self.service = service
        self.verbose = verbose


def make_server(
    service: BenchService,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
) -> ServiceHTTPServer:
    """Bind the service to a socket (``port=0`` picks a free one)."""
    return ServiceHTTPServer((host, port), service, verbose=verbose)


# ===================================================================== #
# client (used by ``npb submit`` / ``npb jobs`` / ``npb loadgen``)
# ===================================================================== #


class ServiceUnavailable(RuntimeError):
    """The daemon could not be reached at the given URL."""


def _retry_after_seconds(headers) -> float:
    """Parse a Retry-After header (seconds form) with a safe default."""
    value = headers.get("Retry-After") if headers is not None else None
    try:
        seconds = float(value)
    except (TypeError, ValueError):
        return RETRY_AFTER_SECONDS
    return min(max(seconds, 0.0), MAX_RETRY_AFTER_SECONDS)


class ServiceClient:
    """Stdlib HTTP client with one keep-alive connection per thread.

    Both front ends speak HTTP/1.1 with persistent connections, so the
    client holds one ``http.client.HTTPConnection`` per thread (clients
    are shared across loadgen workers) and reuses it across requests.
    A reused connection can go stale -- the server may have closed it
    between requests -- so exactly one transparent retry on a fresh
    connection covers that case; a failure on a *fresh* connection is a
    real :class:`ServiceUnavailable`.

    ``keep_alive=False`` opens a fresh connection per request instead.
    Health probes need this: a kept-alive connection outlives its
    server's *listener* (the handler thread keeps serving it), so a
    probe over one would report a shard healthy when no new client can
    connect.  Liveness means connectability, not an old socket's luck.
    """

    def __init__(
        self, url: str, timeout: float = 600.0, keep_alive: bool = True
    ):
        self.url = url.rstrip("/")
        self.timeout = timeout
        self.keep_alive = keep_alive
        parsed = urllib.parse.urlsplit(self.url)
        if parsed.scheme not in ("http", ""):
            raise ValueError(f"only http:// URLs are supported, got {url!r}")
        self._host = parsed.hostname or "127.0.0.1"
        self._port = parsed.port or 80
        self._local = threading.local()

    def _connection(self) -> tuple[http.client.HTTPConnection, bool]:
        """This thread's connection and whether it is being reused."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            return conn, True
        conn = http.client.HTTPConnection(
            self._host, self._port, timeout=self.timeout
        )
        if self.keep_alive:
            self._local.conn = conn
        return conn, False

    def _drop_connection(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            self._local.conn = None
            try:
                conn.close()
            except OSError:
                pass

    def close(self) -> None:
        """Close this thread's kept-alive connection (if any)."""
        self._drop_connection()

    def _request_full(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        headers: dict | None = None,
        parse_json: bool = True,
    ) -> tuple[int, dict | str, dict]:
        """One request: ``(status, body, headers)``.

        Every method (GET included) shares the same stale-keep-alive
        retry: a failure on a *reused* connection gets exactly one
        transparent retry on a fresh one.  With ``parse_json=False``
        the body is returned as decoded text (the /metrics exposition
        is not JSON).
        """
        data = None if payload is None else json.dumps(payload).encode()
        send_headers = {"Content-Type": "application/json"}
        send_headers.update(headers or {})
        if TRACEPARENT_HEADER not in send_headers:
            # propagate an ambient trace context (npb submit --trace,
            # traced loadgen) on every request automatically
            ctx = current_trace()
            if ctx is not None:
                send_headers[TRACEPARENT_HEADER] = format_traceparent(ctx)
        for _ in range(2):
            conn, reused = self._connection()
            try:
                conn.request(method, path, body=data, headers=send_headers)
                response = conn.getresponse()
                raw = response.read()
            except (
                http.client.HTTPException,
                ConnectionError,
                OSError,
                TimeoutError,
            ) as exc:
                self._drop_connection()
                conn.close()
                if reused:
                    # Stale keep-alive connection; retry once fresh.
                    continue
                raise ServiceUnavailable(
                    f"cannot reach {self.url}: {exc}"
                ) from exc
            if not self.keep_alive:
                conn.close()
            elif response.will_close:
                self._drop_connection()
            if not parse_json:
                return (
                    response.status,
                    raw.decode(errors="replace"),
                    dict(response.headers),
                )
            try:
                body = json.loads(raw or b"{}")
            except json.JSONDecodeError:
                body = {"error": raw.decode(errors="replace")}
            return response.status, body, dict(response.headers)
        raise ServiceUnavailable(f"cannot reach {self.url}")  # unreachable

    def _request(
        self, method: str, path: str, payload: dict | None = None
    ) -> tuple[int, dict]:
        code, body, _ = self._request_full(method, path, payload)
        return code, body

    def submit(
        self, payload: dict, retries: int = 0, headers: dict | None = None
    ) -> tuple[int, dict]:
        """POST the job, honoring Retry-After on 429 up to ``retries``
        resubmissions.

        A 429 is backpressure, not failure: the server names its own
        backoff in the Retry-After header, and a client that sleeps it
        off usually gets admitted on the next attempt.  With the default
        ``retries=0`` the first response is returned as-is.
        """
        attempts = max(0, int(retries)) + 1
        code, body, response_headers = 429, {}, {}
        for attempt in range(attempts):
            code, body, response_headers = self._request_full(
                "POST", "/jobs", payload, headers=headers
            )
            if code != 429 or attempt == attempts - 1:
                return code, body
            time.sleep(_retry_after_seconds(response_headers))
        return code, body

    def job(self, job_id: str) -> tuple[int, dict]:
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> tuple[int, dict]:
        return self._request("GET", "/jobs")

    def status(self) -> tuple[int, dict]:
        return self._request("GET", "/status")

    def trace(self, job_id: str) -> tuple[int, dict]:
        """``GET /jobs/<id>/trace``: the server-side span tree."""
        return self._request("GET", f"/jobs/{job_id}/trace")

    def metrics(self) -> tuple[int, str]:
        """``GET /metrics``: the raw Prometheus exposition text."""
        code, body, _ = self._request_full(
            "GET", "/metrics", parse_json=False
        )
        return code, body
