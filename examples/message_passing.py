"""The message-passing NPB implementations (the javampi comparison point).

The paper's related work cites MPI-based Java NPB ports; this example
runs this package's own message-passing runtime: a distributed-transpose
FT, a bucketed IS, a row-block CG and an allreduce EP, all on forked
ranks over OS pipes, verified against the same official values as the
shared-memory versions.
"""

from repro.cg.params import cg_params
from repro.ep.params import ep_params
from repro.ft.params import ft_params
from repro.mpi import (
    cg_mpi_zeta,
    ep_mpi_sums,
    ft_mpi_checksums,
    is_mpi_verify,
)

NPROCS = 4


def main() -> None:
    print(f"Running MPI-style kernels on {NPROCS} ranks (class S)\n")

    checksums = ft_mpi_checksums("S", NPROCS)
    reference = ft_params("S").checksums[0]
    print("FT: distributed-transpose 3-D FFT")
    print(f"  checksum[1] = {checksums[0]:.12g}")
    print(f"  reference   = {reference:.12g}")

    zeta = cg_mpi_zeta("S", NPROCS)
    print("\nCG: row-block sparse solver with allreduced dot products")
    print(f"  zeta      = {zeta:.13f}")
    print(f"  reference = {cg_params('S').zeta_verify:.13f}")

    ok = is_mpi_verify("S", NPROCS)
    print(f"\nIS: bucketed ranking -- all partial+full checks pass: {ok}")

    sx, sy, counts = ep_mpi_sums("S", NPROCS)
    params = ep_params("S")
    print("\nEP: embarrassingly parallel tallies")
    print(f"  sx = {sx:.9f} (reference {params.sx_verify:.9f})")
    print(f"  sy = {sy:.9f} (reference {params.sy_verify:.9f})")
    print(f"  accepted Gaussian pairs: {counts.sum():,}")


if __name__ == "__main__":
    main()
