"""Shard coordinator: consistent-hash routing across worker daemons.

One ``npb serve`` daemon is one warm pool on one host -- the scaling
ceiling of PR 5.  This module scales the service *out*: a
:class:`ShardCoordinator` fronts N independent worker daemons (shards)
and routes every submission by consistent hashing on the job's
:func:`~repro.service.jobs.routing_key`:

* **Cache locality.**  Identical specs always land on the same shard,
  so each shard's content-addressed result cache keeps working exactly
  as in the single-daemon case -- a resubmission through the coordinator
  is a cache hit on whichever shard owns the key.
* **Minimal resharding.**  The ring hashes each shard to
  ``DEFAULT_REPLICAS`` virtual points; adding a shard (N -> N+1) moves
  only the keys that fall into the new shard's arcs, ~1/(N+1) of the
  key space, so almost every cached fingerprint stays where it is.
  ``tests/service/test_shard.py`` asserts both properties as bounds:
  balance within :data:`BALANCE_BOUND` of the mean and migration at
  most ``2/N`` of the keys.
* **Health and route-around.**  A background prober marks shards
  unreachable; submissions to a dead shard fail over along the ring's
  preference order and come back with a structured *degraded* routing
  verdict (``routing.degraded``, with the attempt trail) instead of an
  error -- admitted work completes even while a shard is down.
  Failover resubmission is idempotent: the coordinator stamps a
  ``job_key`` on every forwarded submission, so a retry after an
  ambiguous transport failure attaches to the already-admitted job
  rather than double-running it.

The coordinator's own HTTP front end (:func:`make_shard_server`, served
by ``npb shard-serve``) mirrors the single-daemon API -- ``POST /jobs``,
``GET /jobs[/<id>]``, ``GET /status`` -- so every existing client
(``npb submit``, ``npb loadgen``) points at a coordinator unchanged.
Job ids are namespaced ``<shard>:<job_id>`` on the way out and parsed
back on lookup, which is the only thing a client can observe.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.metrics import (CONTENT_TYPE as METRICS_CONTENT_TYPE,
                               MetricsRegistry, process_rss_bytes)
from repro.obs.spans import TraceSampler, get_span_store
from repro.obs.trace import (TRACEPARENT_HEADER, TraceContext,
                             format_traceparent, parse_traceparent)
from repro.service.api import (
    RETRY_AFTER_SECONDS,
    ServiceClient,
    ServiceUnavailable,
)
from repro.service.jobs import routing_key

#: Virtual points per shard on the hash ring.  More replicas smooth the
#: arc lengths: at 128 the per-shard load over random keys stays within
#: :data:`BALANCE_BOUND` of the mean (asserted by the property tests).
DEFAULT_REPLICAS = 128

#: Declared balance bound: with DEFAULT_REPLICAS virtual points, every
#: shard's share of uniformly random keys is within +/- this fraction of
#: the perfectly even share.
BALANCE_BOUND = 0.40

#: Seconds between background health probes of each shard.
DEFAULT_HEALTH_INTERVAL = 2.0

#: Per-probe HTTP timeout -- a hung shard must not wedge the prober.
DEFAULT_PROBE_TIMEOUT = 5.0


def _hash_point(key: str) -> int:
    """Position of ``key`` on the ring (first 8 bytes of sha256)."""
    return int.from_bytes(hashlib.sha256(key.encode()).digest()[:8], "big")


class HashRing:
    """Consistent-hash ring mapping keys to named nodes.

    Each node owns ``replicas`` pseudo-random points; a key routes to
    the first point clockwise from its own hash.  Removing or adding a
    node therefore only remaps the arcs adjacent to that node's points
    -- the property that keeps per-shard result caches warm across
    resharding.
    """

    def __init__(self, nodes, replicas: int = DEFAULT_REPLICAS):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._nodes: list[str] = []
        self._points: list[int] = []
        self._owners: list[str] = []
        for node in nodes:
            self.add(str(node))
        if not self._nodes:
            raise ValueError("a HashRing needs at least one node")

    @property
    def nodes(self) -> tuple[str, ...]:
        return tuple(self._nodes)

    def add(self, node: str) -> None:
        if node in self._nodes:
            raise ValueError(f"node {node!r} already on the ring")
        self._nodes.append(node)
        for replica in range(self.replicas):
            point = _hash_point(f"{node}#{replica}")
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, node)

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            raise ValueError(f"node {node!r} not on the ring")
        self._nodes.remove(node)
        kept = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != node
        ]
        self._points = [point for point, _ in kept]
        self._owners = [owner for _, owner in kept]

    def route(self, key: str, exclude=frozenset()) -> str:
        """First node clockwise from ``key`` not in ``exclude``."""
        for node in self.preference(key):
            if node not in exclude:
                return node
        raise LookupError(f"every node excluded for key {key!r}")

    def preference(self, key: str) -> list[str]:
        """All nodes in ring walk order from ``key`` (each once).

        Index 0 is the owner; the rest is the failover order, which is
        deterministic per key -- two coordinators (or one coordinator
        before and after a crash) fail the same key over to the same
        replacement shard.
        """
        start = bisect.bisect(self._points, _hash_point(key))
        order: list[str] = []
        seen: set[str] = set()
        for offset in range(len(self._points)):
            owner = self._owners[(start + offset) % len(self._points)]
            if owner not in seen:
                seen.add(owner)
                order.append(owner)
                if len(order) == len(self._nodes):
                    break
        return order


@dataclass
class ShardState:
    """Live view of one worker daemon behind the coordinator."""

    name: str
    url: str
    healthy: bool = True
    consecutive_failures: int = 0
    last_error: str | None = None
    last_checked: float | None = None
    #: most recent GET /status body (None until the first probe lands)
    last_status: dict | None = None
    submissions: int = 0

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "url": self.url,
            "healthy": self.healthy,
            "consecutive_failures": self.consecutive_failures,
            "last_error": self.last_error,
            "last_checked": self.last_checked,
            "submissions": self.submissions,
            "status": self.last_status,
        }


class ShardCoordinator:
    """Routes jobs across worker daemons; aggregates their status.

    ``shards`` maps shard name to base URL.  The coordinator holds no
    job state of its own -- every job lives on exactly one shard, and
    the namespaced job id (``<shard>:<job_id>``) is all a client needs
    to find it again.
    """

    def __init__(
        self,
        shards: dict[str, str],
        replicas: int = DEFAULT_REPLICAS,
        health_interval: float = DEFAULT_HEALTH_INTERVAL,
        probe_timeout: float = DEFAULT_PROBE_TIMEOUT,
        client_timeout: float = 600.0,
        default_kernel_backend: str = "fused",
        trace_sample: float = 0.0,
    ):
        if not shards:
            raise ValueError("a coordinator needs at least one shard")
        self.default_kernel_backend = default_kernel_backend
        #: edge sampling for submissions arriving without a traceparent
        self.sampler = TraceSampler(trace_sample)
        self.trace_sample = float(trace_sample)
        self.health_interval = health_interval
        self._ring = HashRing(shards, replicas=replicas)
        self._states = {
            name: ShardState(name=name, url=url.rstrip("/"))
            for name, url in shards.items()
        }
        self._clients = {
            name: ServiceClient(url, timeout=client_timeout)
            for name, url in shards.items()
        }
        # Probes measure connectability, so no keep-alive: a persistent
        # connection outlives a dead listener (its handler thread keeps
        # answering) and would report the shard healthy forever.
        self._probers = {
            name: ServiceClient(url, timeout=probe_timeout, keep_alive=False)
            for name, url in shards.items()
        }
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._health_thread: threading.Thread | None = None
        #: optional ChaosInjector (fault-injection tests); None = off
        self.chaos = None
        self._seq = 0
        self.routed = 0
        self.failovers = 0
        self.unroutable = 0
        self.started_at = time.time()
        self.metrics = MetricsRegistry()
        self._register_metrics()

    def _register_metrics(self) -> None:
        reg = self.metrics
        reg.gauge(
            "npb_shard_healthy", "1 when the shard's last probe succeeded",
            callback=lambda: {
                name: 1.0 if state.healthy else 0.0
                for name, state in self._states.items()
            }, label_name="shard")
        reg.gauge(
            "npb_shard_submissions_total", "submissions served per shard",
            callback=lambda: {
                name: state.submissions
                for name, state in self._states.items()
            }, label_name="shard")
        reg.gauge(
            "npb_routing_total", "coordinator routing outcomes",
            callback=lambda: {
                "submitted": self.routed,
                "failovers": self.failovers,
                "unroutable": self.unroutable,
            }, label_name="outcome")
        # chaos is attached after construction (coordinator.chaos = ...),
        # so the callback re-checks at every scrape
        reg.gauge("npb_chaos_injected_total", "injected faults by kind",
                  callback=lambda: (
                      self.chaos.summary()["kinds"]
                      if self.chaos is not None
                      else {}
                  ), label_name="kind")
        reg.gauge("npb_process_rss_bytes", "peak resident set (getrusage)",
                  callback=process_rss_bytes)
        reg.gauge("npb_uptime_seconds", "seconds since coordinator start",
                  callback=lambda: time.time() - self.started_at)
        self._http_responses = reg.counter(
            "npb_http_responses_total", "front-end responses by status code")

    def note_http_response(self, code: int) -> None:
        self._http_responses.inc(code=str(code))

    # ------------------------------------------------------------------ #
    # health
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Probe once synchronously, then keep probing in the background."""
        self.check_all()
        if self._health_thread is not None:
            return
        self._health_thread = threading.Thread(
            target=self._health_loop, daemon=True, name="npb-shard-health"
        )
        self._health_thread.start()

    def _health_loop(self) -> None:
        while not self._stop.wait(self.health_interval):
            self.check_all()

    def check_all(self) -> None:
        for name in self._states:
            self.check_shard(name)

    def check_shard(self, name: str) -> bool:
        """Probe one shard's /status; update its health state."""
        state = self._states[name]
        try:
            if self.chaos is not None:
                self.chaos.on_probe(name)
            code, status = self._probers[name].status()
        except ServiceUnavailable as exc:
            with self._lock:
                state.healthy = False
                state.consecutive_failures += 1
                state.last_error = str(exc)
                state.last_checked = time.time()
            return False
        with self._lock:
            state.healthy = code == 200
            if state.healthy:
                state.consecutive_failures = 0
                state.last_error = None
                state.last_status = status
            else:
                state.consecutive_failures += 1
                state.last_error = f"HTTP {code} from /status"
            state.last_checked = time.time()
        return state.healthy

    def _mark_unreachable(self, name: str, error: str) -> None:
        with self._lock:
            state = self._states[name]
            state.healthy = False
            state.consecutive_failures += 1
            state.last_error = error
            state.last_checked = time.time()

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #

    def route(self, payload: dict) -> str:
        """Owning shard of a submission payload (ignoring health)."""
        return self._ring.route(
            routing_key(payload, self.default_kernel_backend)
        )

    def _attempt_order(self, key: str) -> list[str]:
        """Preference order with unhealthy shards demoted, not dropped.

        A shard the prober last saw dead is still tried *last*: probes
        race with recoveries, and a wrongly-condemned shard serving its
        own keys is strictly better than a failover.
        """
        order = self._ring.preference(key)
        with self._lock:
            healthy = [n for n in order if self._states[n].healthy]
            unhealthy = [n for n in order if not self._states[n].healthy]
        return healthy + unhealthy

    def submit(
        self, payload: dict, trace: "TraceContext | None" = None
    ) -> tuple[int, dict]:
        """Route one submission; fail over around unreachable shards.

        Returns the shard's response with the job id namespaced and a
        ``routing`` block appended.  When the owning shard could not
        serve, ``routing.degraded`` is true and ``routing.attempts``
        lists every shard tried with the error that moved us on -- a
        structured verdict, not a guess, so callers (and the loadgen
        SLO) can tell a clean run from a survived outage.

        ``trace`` is the edge sampling decision (made by the HTTP
        handler from the incoming ``traceparent``); when sampled, the
        route is recorded as a ``coordinator.route`` span whose child
        context is forwarded to the chosen shard, so a failover keeps
        the same trace id and shows up as a ``failover`` span event
        rather than a fresh trace.
        """
        payload = dict(payload)
        key = routing_key(payload, self.default_kernel_backend)
        with self._lock:
            self._seq += 1
            sequence = self._seq
        # One idempotency key for every attempt of this submission: if
        # shard A admitted the job but the connection died before the
        # response, a retry (on A after recovery) attaches to that job
        # instead of admitting a duplicate.  A client-supplied key wins
        # -- end-to-end idempotency through the coordinator.
        if payload.get("job_key") is None:
            payload["job_key"] = f"{key[:16]}-{sequence:08d}"
        intended = self._ring.route(key)
        if trace is None:
            trace = self.sampler.decide(
                forced=bool(payload.get("trace", False))
            )
        route_span = None
        fwd_headers = None
        if trace.sampled:
            route_span, child_ctx = get_span_store().start_span(
                "coordinator.route",
                ctx=trace,
                attrs={"routing_key": key, "intended": intended},
            )
            fwd_headers = {TRACEPARENT_HEADER: format_traceparent(child_ctx)}
        attempts: list[dict] = []
        for name in self._attempt_order(key):
            try:
                # A chaos injector may drop the attempt (raising what a
                # dead socket would), stall it, or substitute a synthetic
                # 429 -- all inside the existing failover machinery.
                synthetic = (
                    self.chaos.on_submit(name)
                    if self.chaos is not None
                    else None
                )
                if synthetic is not None:
                    code, body = synthetic
                else:
                    code, body = self._clients[name].submit(
                        payload, headers=fwd_headers
                    )
            except ServiceUnavailable as exc:
                self._mark_unreachable(name, str(exc))
                attempts.append({"shard": name, "error": str(exc)})
                if route_span is not None:
                    route_span.add_event(
                        "failover", shard=name, error=str(exc)
                    )
                continue
            with self._lock:
                self.routed += 1
                self._states[name].submissions += 1
                if attempts:
                    self.failovers += 1
            degraded = name != intended
            body = self._namespace_job(name, body)
            body["routing"] = {
                "key": key,
                "intended": intended,
                "served_by": name,
                "degraded": degraded,
                "reason": (
                    f"shard {intended!r} unreachable; "
                    f"routed around to {name!r}"
                    if degraded
                    else None
                ),
                "attempts": attempts,
            }
            if route_span is not None:
                route_span.attrs["served_by"] = name
                route_span.attrs["degraded"] = degraded
                route_span.end("error" if code >= 400 else "ok")
            return code, body
        with self._lock:
            self.unroutable += 1
        if route_span is not None:
            route_span.attrs["served_by"] = None
            route_span.end("error")
        return 503, {
            "error": "no shard reachable",
            "routing": {
                "key": key,
                "intended": intended,
                "served_by": None,
                "degraded": True,
                "reason": "every shard unreachable",
                "attempts": attempts,
            },
        }

    @staticmethod
    def _namespace_job(shard: str, body: dict) -> dict:
        body = dict(body)
        if isinstance(body.get("job_id"), str):
            body["shard"] = shard
            body["job_id"] = f"{shard}:{body['job_id']}"
        # coalesced_with names a shard-local job id (async front end);
        # namespace it the same way so clients can GET it back.
        if isinstance(body.get("coalesced_with"), str):
            body["coalesced_with"] = f"{shard}:{body['coalesced_with']}"
        result = body.get("result")
        if isinstance(result, dict) and isinstance(
            result.get("coalesced_with"), str
        ):
            result = dict(result)
            result["coalesced_with"] = f"{shard}:{result['coalesced_with']}"
            body["result"] = result
        return body

    def job(self, namespaced_id: str) -> tuple[int, dict]:
        """Look one job up by its ``<shard>:<job_id>`` id."""
        shard, _, job_id = namespaced_id.partition(":")
        if not job_id or shard not in self._clients:
            return 404, {
                "error": f"malformed or unknown shard job id {namespaced_id!r}"
            }
        try:
            code, body = self._clients[shard].job(job_id)
        except ServiceUnavailable as exc:
            self._mark_unreachable(shard, str(exc))
            return 503, {"error": f"shard {shard!r} unreachable: {exc}"}
        if code == 200:
            body = self._namespace_job(shard, body)
        return code, body

    def trace(self, namespaced_id: str) -> tuple[int, dict]:
        """``GET /jobs/<id>/trace`` through the coordinator: the owning
        shard's spans merged with the coordinator's own (the
        ``coordinator.route`` span and its ``failover`` events live in
        this process, not the shard's)."""
        shard, _, job_id = namespaced_id.partition(":")
        if not job_id or shard not in self._clients:
            return 404, {
                "error": f"malformed or unknown shard job id {namespaced_id!r}"
            }
        try:
            code, body = self._clients[shard].trace(job_id)
        except ServiceUnavailable as exc:
            self._mark_unreachable(shard, str(exc))
            return 503, {"error": f"shard {shard!r} unreachable: {exc}"}
        if code != 200:
            return code, body
        body = dict(body)
        body["job_id"] = namespaced_id
        trace_id = body.get("trace_id")
        if trace_id:
            own = get_span_store().trace(trace_id)
            if own:
                # In-process fleets (tests, embedded shards) share the
                # process-global store with their shards, so the proxied
                # body may already hold our spans -- dedupe by span id.
                shard_spans = list(body.get("spans", []))
                seen = {span["span_id"] for span in shard_spans}
                body["spans"] = [
                    span.to_dict()
                    for span in own
                    if span.span_id not in seen
                ] + shard_spans
        return code, body

    def jobs(self) -> tuple[int, dict]:
        """Aggregated job listing across every reachable shard."""
        listing: list[dict] = []
        unreachable: list[str] = []
        for name, client in self._clients.items():
            try:
                code, body = client.jobs()
            except ServiceUnavailable as exc:
                self._mark_unreachable(name, str(exc))
                unreachable.append(name)
                continue
            if code == 200:
                listing.extend(
                    self._namespace_job(name, job)
                    for job in body.get("jobs", [])
                )
        return 200, {"jobs": listing, "unreachable_shards": unreachable}

    # ------------------------------------------------------------------ #
    # status
    # ------------------------------------------------------------------ #

    def status(self) -> dict:
        """Aggregated view: per-shard detail plus fleet-wide rollups."""
        self.check_all()
        with self._lock:
            shards = {
                name: state.as_dict() for name, state in self._states.items()
            }
            routed = self.routed
            failovers = self.failovers
            unroutable = self.unroutable
        totals = {
            "queue_depth": 0,
            "queue_capacity": 0,
            "pool_size": 0,
            "pool_in_use": 0,
            "cache_entries": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "cache_corruption_healed": 0,
            "executed": 0,
            "cached": 0,
            "failed": 0,
            "coalesced": 0,
            "idempotent_replays": 0,
            "duplicate_executions": 0,
            "rss_bytes": 0,
        }
        for shard in shards.values():
            status = shard["status"]
            if not shard["healthy"] or not status:
                continue
            totals["queue_depth"] += status["queue"]["depth"]
            totals["queue_capacity"] += status["queue"]["capacity"]
            totals["pool_size"] += status["pool"]["size"]
            totals["pool_in_use"] += status["pool"]["in_use"]
            totals["cache_entries"] += status["cache"]["entries"]
            totals["cache_hits"] += status["cache"]["hits"]
            totals["cache_misses"] += status["cache"]["misses"]
            totals["cache_corruption_healed"] += status["cache"].get(
                "corruption_healed", 0
            )
            totals["executed"] += status["scheduler"]["executed"]
            totals["cached"] += status["scheduler"]["cached"]
            totals["failed"] += status["scheduler"]["failed"]
            # dedup counters (absent from pre-v6 shards: .get keeps a
            # mixed-version fleet aggregating)
            dedup = status.get("dedup", {})
            totals["coalesced"] += dedup.get("coalesced", 0)
            totals["idempotent_replays"] += dedup.get("idempotent_replays", 0)
            totals["duplicate_executions"] += status["scheduler"].get(
                "duplicate_executions", 0
            )
            # pre-obs shards do not report rss_bytes; .get keeps a
            # mixed-version fleet aggregating
            totals["rss_bytes"] += status.get("rss_bytes", 0)
        healthy = sum(1 for shard in shards.values() if shard["healthy"])
        return {
            "service": "npb-shard-coordinator",
            "uptime_seconds": time.time() - self.started_at,
            "rss_bytes": process_rss_bytes(),
            "trace_sample": self.trace_sample,
            "shard_count": len(shards),
            "healthy_shards": healthy,
            "degraded": healthy < len(shards),
            "ring": {
                "replicas": self._ring.replicas,
                "shards": list(self._ring.nodes),
            },
            "routing": {
                "submitted": routed,
                "failovers": failovers,
                "unroutable": unroutable,
            },
            "totals": totals,
            "shards": shards,
        }

    def close(self) -> None:
        """Stop the health prober (shards are not owned and stay up)."""
        self._stop.set()
        if self._health_thread is not None:
            self._health_thread.join(self.health_interval + 5.0)
            self._health_thread = None

    def __enter__(self) -> "ShardCoordinator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ===================================================================== #
# HTTP front end (``npb shard-serve``)
# ===================================================================== #


class _CoordinatorHandler(BaseHTTPRequestHandler):
    """JSON shim mirroring the single-daemon API onto the coordinator."""

    server: "CoordinatorHTTPServer"
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.verbose:
            super().log_message(format, *args)

    def _send_bytes(
        self,
        code: int,
        body: bytes,
        content_type: str,
        headers: dict | None = None,
    ) -> None:
        self.server.coordinator.note_http_response(code)
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send(
        self, code: int, payload: dict, headers: dict | None = None
    ) -> None:
        body = (json.dumps(payload, indent=2) + "\n").encode()
        self._send_bytes(code, body, "application/json", headers=headers)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        coordinator = self.server.coordinator
        path = self.path.rstrip("/") or "/"
        if path == "/status":
            self._send(200, coordinator.status())
        elif path == "/metrics":
            self._send_bytes(
                200,
                coordinator.metrics.render().encode(),
                METRICS_CONTENT_TYPE,
            )
        elif path == "/jobs":
            code, body = coordinator.jobs()
            self._send(code, body)
        elif path.startswith("/jobs/") and path.endswith("/trace"):
            job_id = path[len("/jobs/") : -len("/trace")]
            code, body = coordinator.trace(job_id)
            self._send(code, body)
        elif path.startswith("/jobs/"):
            code, body = coordinator.job(path[len("/jobs/") :])
            self._send(code, body)
        else:
            self._send(404, {"error": f"no such resource {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        coordinator = self.server.coordinator
        if self.path.rstrip("/") != "/jobs":
            self._send(404, {"error": f"no such resource {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            payload = json.loads(self.rfile.read(length) or b"{}")
            if not isinstance(payload, dict):
                raise ValueError("body must be a JSON object")
        except (ValueError, json.JSONDecodeError) as exc:
            self._send(400, {"error": f"bad job payload: {exc}"})
            return
        # Header shorthands (body fields win), forwarded into the
        # payload so shards see them regardless of front-end mode.
        idem = self.headers.get("Idempotency-Key")
        if idem is not None and payload.get("job_key") is None:
            payload["job_key"] = idem
        tenant = self.headers.get("X-NPB-Tenant")
        if tenant is not None and payload.get("tenant") is None:
            payload["tenant"] = tenant
        # Edge sampling decision: a sampled incoming traceparent (or an
        # explicit "trace": true) makes this submission traced through
        # routing, shard, scheduler, and kernel regions alike.
        trace = coordinator.sampler.decide(
            incoming=parse_traceparent(
                self.headers.get(TRACEPARENT_HEADER)
            ),
            forced=bool(payload.get("trace", False)),
        )
        code, body = coordinator.submit(payload, trace=trace)
        headers = None
        if code == 429:
            # The shard's Retry-After does not survive the client hop;
            # re-issue the standard backoff hint at the coordinator edge.
            headers = {"Retry-After": f"{RETRY_AFTER_SECONDS:g}"}
        self._send(code, body, headers=headers)


class CoordinatorHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the coordinator for its handlers."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        coordinator: ShardCoordinator,
        verbose: bool = False,
    ):
        super().__init__(address, _CoordinatorHandler)
        self.coordinator = coordinator
        self.verbose = verbose


def make_shard_server(
    coordinator: ShardCoordinator,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
) -> CoordinatorHTTPServer:
    """Bind the coordinator to a socket (``port=0`` picks a free one)."""
    return CoordinatorHTTPServer((host, port), coordinator, verbose=verbose)
