"""JGF SparseMatmult: repeated sparse matrix-vector products.

The kernel multiplies a random NxN sparse matrix (nnz ~ N*5) by a dense
vector 200 times, accumulating into the result -- pure irregular gather
arithmetic, the category where the paper's own CG sits and where the
Java/Fortran gap nearly closes.
"""

from __future__ import annotations

import numpy as np

ITERATIONS = 200


def make_sparse_system(n: int, nnz_per_row: int = 5,
                       seed: int = 101) -> tuple:
    """Random COO matrix (row, col, val) plus a dense input vector."""
    rng = np.random.default_rng(seed)
    rows = np.repeat(np.arange(n, dtype=np.int64), nnz_per_row)
    cols = rng.integers(0, n, size=n * nnz_per_row, dtype=np.int64)
    vals = rng.random(n * nnz_per_row) - 0.5
    x = rng.random(n)
    return rows, cols, vals, x


def sparsematmult_numpy(rows, cols, vals, x,
                        iterations: int = ITERATIONS) -> np.ndarray:
    """y accumulated over repeated products, vectorized scatter-add."""
    y = np.zeros(len(x))
    for _ in range(iterations):
        np.add.at(y, rows, vals * x[cols])
    return y


def sparsematmult_loops(rows, cols, vals, x,
                        iterations: int = ITERATIONS) -> np.ndarray:
    """Same computation with interpreted per-entry loops."""
    row_list = rows.tolist()
    col_list = cols.tolist()
    val_list = vals.tolist()
    x_list = x.tolist()
    y = [0.0] * len(x_list)
    nnz = len(row_list)
    for _ in range(iterations):
        for p in range(nnz):
            y[row_list[p]] += val_list[p] * x_list[col_list[p]]
    return np.asarray(y)
