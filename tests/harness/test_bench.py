"""Tests for the bench trajectory subsystem (records + comparator)."""

import json
import threading
from pathlib import Path

import pytest

from repro.harness import bench, records
from repro.harness.cli import main
from repro.harness.stats import mad, median, summarize, time_callable

REPO_ROOT = Path(__file__).resolve().parents[2]

CELL_TIMING_KEYS = {
    "repeats",
    "times_seconds",
    "best_seconds",
    "median_seconds",
    "mad_seconds",
}

ENVIRONMENT_KEYS = {
    "python",
    "implementation",
    "numpy",
    "platform",
    "machine",
    "cpu_count",
    "hostname",
    "git_sha",
}


def make_cell(cell_id, best, madv=0.0, repeats=3):
    """Synthetic trajectory cell for comparator tests."""
    return {
        "id": cell_id,
        "kind": "benchmark",
        "verified": True,
        "repeats": repeats,
        "times_seconds": [best] * repeats,
        "best_seconds": best,
        "median_seconds": best,
        "mad_seconds": madv,
    }


def make_record(cells):
    return {
        "kind": bench.RECORD_KIND,
        "schema_version": bench.SCHEMA_VERSION,
        "created_at": "2026-01-01T00:00:00Z",
        "environment": {"python": "3.11.7"},
        "config": {"repeat": 3, "quick": True, "cells": [], "kernels": []},
        "cells": cells,
    }


class TestStats:
    def test_median_and_mad(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5
        assert mad([1.0, 2.0, 3.0]) == 1.0
        assert mad([5.0, 5.0, 5.0]) == 0.0

    def test_summarize_is_min_of_k(self):
        summary = summarize([0.5, 0.3, 0.4])
        assert summary.best == 0.3
        assert summary.median == 0.4
        assert summary.repeats == 3
        assert set(summary.as_dict()) == CELL_TIMING_KEYS

    def test_time_callable_runs_setup_untimed(self):
        calls = []
        summary = time_callable(lambda: calls.append("fn"), repeat=3)
        assert summary.repeats == 3
        assert calls == ["fn"] * 3
        assert all(t >= 0 for t in summary.times)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestRecordSchema:
    def test_suite_record_round_trips(self, tmp_path):
        record = bench.run_suite(
            cells=[bench.BenchCell("CG", "S", "serial", 1)],
            kernels=[bench.KernelCell("reduction", "numpy", (8, 8, 10))],
            repeat=2,
        )
        path = bench.write_record(record, directory=str(tmp_path))
        loaded = bench.load_record(path)
        assert loaded["kind"] == bench.RECORD_KIND
        assert loaded["schema_version"] == bench.SCHEMA_VERSION
        assert loaded["sequence"] == 1
        assert ENVIRONMENT_KEYS <= set(loaded["environment"])
        cg, kernel = loaded["cells"]
        assert cg["id"] == "CG.S.serial.x1"
        assert CELL_TIMING_KEYS <= set(cg)
        assert cg["verified"] is True
        assert cg["repeats"] == 2
        # The per-region dispatch/execute/barrier split rides along.
        assert "conj_grad" in cg["regions"]
        assert cg["regions"]["conj_grad"]["execute_seconds"] > 0
        assert kernel["id"] == "basic_op.reduction.numpy.8x8x10"
        assert kernel["best_seconds"] > 0

    def test_sequence_numbering_continues(self, tmp_path):
        record = make_record([make_cell("X", 1.0)])
        first = bench.write_record(record, directory=str(tmp_path))
        second = bench.write_record(record, directory=str(tmp_path))
        assert first.endswith("BENCH_0001.json")
        assert second.endswith("BENCH_0002.json")
        assert bench.load_record(second)["sequence"] == 2
        assert bench.latest_record_path(str(tmp_path)) == second

    def test_foreign_json_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(ValueError, match="not an npb-bench-record"):
            bench.load_record(str(path))

    def test_future_schema_rejected(self, tmp_path):
        record = make_record([])
        record["schema_version"] = bench.SCHEMA_VERSION + 1
        path = tmp_path / "future.json"
        path.write_text(json.dumps(record))
        with pytest.raises(ValueError, match="schema_version"):
            bench.load_record(str(path))

    def test_v2_record_migrates_to_v3_in_memory(self, tmp_path):
        """A pre-allocation-accounting record (BENCH_0001.json vintage)
        loads with zeroed alloc fields so the comparator still works."""
        cell = make_cell("CG.S.serial.x1", 0.1)
        cell["kind"] = "benchmark"
        cell["faults"] = 0
        cell["regions"] = {
            "conj_grad": {"calls": 25, "wall_seconds": 0.05,
                          "dispatch_seconds": 0.01,
                          "execute_seconds": 0.03,
                          "barrier_seconds": 0.01},
        }
        record = make_record([cell])
        record["schema_version"] = 2
        path = tmp_path / "v2.json"
        path.write_text(json.dumps(record))
        loaded = bench.load_record(str(path))
        assert loaded["schema_version"] == bench.SCHEMA_VERSION
        stats = loaded["cells"][0]["regions"]["conj_grad"]
        assert stats["alloc_bytes"] == 0
        assert stats["alloc_blocks"] == 0
        assert stats["calls"] == 25  # untouched fields survive
        # the on-disk file is never rewritten
        assert json.loads(path.read_text())["schema_version"] == 2

    def test_v1_record_migrates_through_both_steps(self, tmp_path):
        cell = make_cell("CG.S.serial.x1", 0.1)
        cell["regions"] = {"conj_grad": {"calls": 25}}
        record = make_record([cell])
        record["schema_version"] = 1
        path = tmp_path / "v1.json"
        path.write_text(json.dumps(record))
        loaded = bench.load_record(str(path))
        assert loaded["schema_version"] == bench.SCHEMA_VERSION
        migrated = loaded["cells"][0]
        assert migrated["faults"] == 0
        assert migrated["fault_counts"] == {}
        assert migrated["regions"]["conj_grad"]["alloc_bytes"] == 0

    def test_traced_suite_records_alloc_fields(self):
        record = bench.run_suite(
            cells=[bench.BenchCell("CG", "S", "serial", 1)],
            kernels=[], repeat=1, trace_alloc=True,
        )
        assert record["config"]["trace_alloc"] is True
        regions = record["cells"][0]["regions"]
        assert all("alloc_bytes" in stats for stats in regions.values())
        # the CG run allocates at least something per conj_grad call
        # (reduction partials, python floats) even when kernels are fused
        assert any(stats["alloc_bytes"] >= 0 for stats in regions.values())


def make_versioned_record(version):
    """Synthetic record as ``npb bench`` wrote it at schema ``version``."""
    cell = make_cell("CG.S.serial.x1", 0.1)
    cell["regions"] = {
        "conj_grad": {
            "calls": 25,
            "wall_seconds": 0.05,
            "dispatch_seconds": 0.01,
            "execute_seconds": 0.03,
            "barrier_seconds": 0.01,
        }
    }
    if version >= 2:
        cell["faults"] = 0
        cell["fault_counts"] = {}
    if version >= 3:
        for stats in cell["regions"].values():
            stats["alloc_bytes"] = 0
            stats["alloc_blocks"] = 0
    if version >= 4:
        cell["job_id"] = None
        cell["cache_hit"] = False
        cell["queue_wait_seconds"] = 0.0
    if version >= 5:
        cell["kernel_backend"] = "fused"
    if version >= 6:
        cell["tenant"] = None
        cell["coalesced_with"] = None
    record = make_record([cell])
    record["schema_version"] = version
    return record


class TestMigrationChain:
    """Every historical schema version migrates to the current one, and
    migration is idempotent: migrating twice equals migrating once."""

    VERSIONS = list(range(1, bench.SCHEMA_VERSION + 1))

    @pytest.mark.parametrize("version", VERSIONS)
    def test_every_version_migrates_to_current(self, tmp_path, version):
        path = tmp_path / f"v{version}.json"
        path.write_text(json.dumps(make_versioned_record(version)))
        loaded = bench.load_record(str(path))
        assert loaded["schema_version"] == bench.SCHEMA_VERSION
        cell = loaded["cells"][0]
        assert cell["faults"] == 0
        assert cell["fault_counts"] == {}
        assert cell["job_id"] is None
        assert cell["cache_hit"] is False
        assert cell["queue_wait_seconds"] == 0.0
        assert cell["kernel_backend"] == "fused"
        assert cell["tenant"] is None
        assert cell["coalesced_with"] is None
        stats = cell["regions"]["conj_grad"]
        assert stats["alloc_bytes"] == 0
        assert stats["alloc_blocks"] == 0
        assert stats["calls"] == 25  # pre-existing fields survive

    @pytest.mark.parametrize("version", VERSIONS)
    def test_migrating_twice_equals_migrating_once(self, tmp_path, version):
        path = tmp_path / f"v{version}.json"
        path.write_text(json.dumps(make_versioned_record(version)))
        once = bench.load_record(str(path))
        again = bench._migrate_record(
            json.loads(json.dumps(once)), once["schema_version"]
        )
        assert again == once

    @pytest.mark.parametrize("version", VERSIONS)
    def test_round_trip_through_disk_is_stable(self, tmp_path, version):
        """Writing a migrated record back out and reloading is a no-op."""
        path = tmp_path / f"v{version}.json"
        path.write_text(json.dumps(make_versioned_record(version)))
        once = bench.load_record(str(path))
        rewritten = tmp_path / "rewritten.json"
        rewritten.write_text(json.dumps(once))
        assert bench.load_record(str(rewritten)) == once

    def test_each_step_adds_only_its_own_fields(self):
        """Adjacent synthetic fixtures differ exactly by the fields the
        intervening migration step backfills (no silent schema drift)."""
        step_fields = {
            2: {"faults", "fault_counts"},
            3: set(),  # v3 added *region* fields, not cell fields
            4: {"job_id", "cache_hit", "queue_wait_seconds"},
            5: {"kernel_backend"},
            6: {"tenant", "coalesced_with"},
        }
        for version in self.VERSIONS[:-1]:
            old = make_versioned_record(version)["cells"][0]
            new = make_versioned_record(version + 1)["cells"][0]
            assert set(new) - set(old) == step_fields[version + 1]
            region_added = set(new["regions"]["conj_grad"]) - set(
                old["regions"]["conj_grad"]
            )
            expected = (
                {"alloc_bytes", "alloc_blocks"} if version + 1 == 3 else set()
            )
            assert region_added == expected


class TestCommittedRecord:
    """The repo's committed seed trajectory record stays loadable."""

    def test_bench_0001_migrates_cleanly(self):
        path = REPO_ROOT / "BENCH_0001.json"
        assert path.exists()  # committed at the repo root
        raw = json.loads(path.read_text())
        assert raw["schema_version"] == 1  # the vintage stays frozen on disk
        loaded = bench.load_record(str(path))
        assert loaded["schema_version"] == bench.SCHEMA_VERSION
        benchmark_cells = [
            c for c in loaded["cells"] if c.get("kind") == "benchmark"
        ]
        assert benchmark_cells
        for cell in benchmark_cells:
            assert cell["faults"] == 0
            assert cell["fault_counts"] == {}
            assert cell["job_id"] is None
            assert cell["cache_hit"] is False
            assert cell["queue_wait_seconds"] == 0.0
            assert cell["kernel_backend"] == "fused"
            for stats in cell["regions"].values():
                assert stats["alloc_bytes"] == 0
                assert stats["alloc_blocks"] == 0

    def test_bench_0001_migration_is_idempotent(self, tmp_path):
        loaded = bench.load_record(str(REPO_ROOT / "BENCH_0001.json"))
        rewritten = tmp_path / "migrated.json"
        rewritten.write_text(json.dumps(loaded))
        assert bench.load_record(str(rewritten)) == loaded


class TestSequenceAllocation:
    """``records.reserve_record_path`` closes the scan-then-write race
    shared by the BENCH, LOADGEN, and CHAOS trajectory writers."""

    def test_concurrent_appends_never_collide(self, tmp_path):
        nthreads, per_thread = 8, 4
        paths = []
        lock = threading.Lock()

        def writer(worker):
            for n in range(per_thread):
                path = records.append_record(
                    {"kind": "race", "worker": worker, "n": n},
                    str(tmp_path),
                    "BENCH",
                )
                with lock:
                    paths.append(path)

        pool = [
            threading.Thread(target=writer, args=(i,))
            for i in range(nthreads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert len(paths) == nthreads * per_thread
        assert len(set(paths)) == len(paths)  # no slot claimed twice
        sequences = sorted(
            json.loads(Path(p).read_text())["sequence"] for p in paths
        )
        assert sequences == list(range(1, nthreads * per_thread + 1))

    def test_reserve_claims_the_slot_immediately(self, tmp_path):
        sequence, path = records.reserve_record_path(str(tmp_path), "BENCH")
        assert sequence == 1
        assert Path(path).exists()  # placeholder blocks other claimants
        assert records.next_sequence(str(tmp_path), "BENCH") == 2

    def test_prefixes_sequence_independently(self, tmp_path):
        for prefix in ("BENCH", "LOADGEN", "CHAOS"):
            first = records.append_record(
                {"kind": "x"}, str(tmp_path), prefix
            )
            assert first.endswith(f"{prefix}_0001.json")


class TestComparator:
    def test_detects_2x_slowdown(self):
        base = make_record([make_cell("CG.S.serial.x1", 0.100, 0.002)])
        cand = make_record([make_cell("CG.S.serial.x1", 0.200, 0.002)])
        comparison = bench.compare_records(base, cand)
        assert [d.verdict for d in comparison.deltas] == ["regression"]
        assert comparison.regressions[0].ratio == pytest.approx(2.0)

    def test_no_false_positive_within_tolerance(self):
        base = make_record([make_cell("CG.S.serial.x1", 0.100, 0.001)])
        cand = make_record([make_cell("CG.S.serial.x1", 0.105, 0.001)])
        comparison = bench.compare_records(base, cand, tolerance=0.10)
        assert [d.verdict for d in comparison.deltas] == ["ok"]
        assert not comparison.regressions

    def test_no_false_positive_within_noise_band(self):
        # 25% slower, but the baseline's own MAD is 10% of best and
        # k = 3, so the noise band (30%) absorbs it.
        base = make_record([make_cell("FT.S.serial.x1", 0.400, 0.040)])
        cand = make_record([make_cell("FT.S.serial.x1", 0.500, 0.002)])
        comparison = bench.compare_records(base, cand, tolerance=0.10)
        assert [d.verdict for d in comparison.deltas] == ["ok"]

    def test_sub_10ms_cells_get_absolute_slack(self):
        # 2x slower but only 1 ms absolute: below the 5 ms slack that
        # shields scheduler-quantum jitter on tiny cells.
        base = make_record([make_cell("IS.S.serial.x1", 0.001)])
        cand = make_record([make_cell("IS.S.serial.x1", 0.002)])
        comparison = bench.compare_records(base, cand)
        assert [d.verdict for d in comparison.deltas] == ["ok"]

    def test_improvement_flagged(self):
        base = make_record([make_cell("LU.S.serial.x1", 1.0, 0.01)])
        cand = make_record([make_cell("LU.S.serial.x1", 0.5, 0.01)])
        comparison = bench.compare_records(base, cand)
        assert [d.verdict for d in comparison.deltas] == ["improved"]
        assert comparison.improvements and not comparison.regressions

    def test_unmatched_cells_reported_not_fatal(self):
        base = make_record([make_cell("CG.S.serial.x1", 0.1), make_cell("OLD", 0.1)])
        cand = make_record([make_cell("CG.S.serial.x1", 0.1), make_cell("NEW", 0.1)])
        comparison = bench.compare_records(base, cand)
        assert comparison.missing == ("OLD",)
        assert comparison.added == ("NEW",)
        assert not comparison.regressions

    def test_as_dict_shape(self):
        base = make_record([make_cell("CG.S.serial.x1", 0.1)])
        cand = make_record([make_cell("CG.S.serial.x1", 0.3)])
        payload = bench.compare_records(base, cand).as_dict()
        assert payload["regressions"] == 1
        assert payload["cells"][0]["verdict"] == "regression"
        assert payload["cells"][0]["ratio"] == pytest.approx(3.0)


class TestBenchCli:
    def test_quick_json_smoke(self, tmp_path, capsys):
        out = tmp_path / "BENCH_smoke.json"
        code = main(
            [
                "bench",
                "--quick",
                "--repeat",
                "1",
                "--json",
                "--out",
                str(out),
                "--dir",
                str(tmp_path),
            ]
        )
        assert code == 0
        record = json.loads(capsys.readouterr().out)
        assert record["schema_version"] == bench.SCHEMA_VERSION
        assert record["config"]["quick"] is True
        ids = {cell["id"] for cell in record["cells"]}
        assert "CG.S.serial.x1" in ids
        assert "CG.S.threads.x2" in ids
        assert any(i.startswith("basic_op.") for i in ids)
        assert all(cell["verified"] for cell in record["cells"])
        assert out.exists()

    def test_compare_gate_exits_nonzero(self, tmp_path, capsys):
        base = make_record([make_cell("CG.S.serial.x1", 0.100, 0.001)])
        cand = make_record([make_cell("CG.S.serial.x1", 0.250, 0.001)])
        base_path = tmp_path / "BENCH_0001.json"
        cand_path = tmp_path / "BENCH_0002.json"
        base_path.write_text(json.dumps(base))
        cand_path.write_text(json.dumps(cand))
        code = main(["bench", "--compare", str(base_path), str(cand_path)])
        assert code == 1
        assert "regression" in capsys.readouterr().out

    def test_compare_defaults_to_latest_record(self, tmp_path, capsys):
        base = make_record([make_cell("CG.S.serial.x1", 0.100, 0.001)])
        bench.write_record(base, directory=str(tmp_path))
        bench.write_record(base, directory=str(tmp_path))
        base_path = tmp_path / "BENCH_0001.json"
        code = main(["bench", "--compare", str(base_path), "--dir", str(tmp_path)])
        assert code == 0
        assert "ok" in capsys.readouterr().out

    def test_compare_generous_ci_tolerance(self, tmp_path):
        base = make_record([make_cell("CG.S.serial.x1", 0.100, 0.001)])
        cand = make_record([make_cell("CG.S.serial.x1", 0.250, 0.001)])
        blowup = make_record([make_cell("CG.S.serial.x1", 0.450, 0.001)])
        paths = {}
        for name, record in [
            ("base", base),
            ("cand", cand),
            ("blowup", blowup),
        ]:
            path = tmp_path / f"{name}.json"
            path.write_text(json.dumps(record))
            paths[name] = str(path)
        args = ["bench", "--compare", paths["base"], "--tolerance", "2.0"]
        assert main(args + [paths["cand"]]) == 0
        assert main(args + [paths["blowup"]]) == 1
