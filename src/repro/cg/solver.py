"""The CG inner solver and its slab-parallel worker functions.

Each worker function operates on a contiguous row block ``[lo, hi)`` --
the row-block decomposition of the OpenMP CG that the paper's Java version
mirrors.  All functions are module-level so the process backend can ship
them to workers.
"""

from __future__ import annotations

import math

import numpy as np

from repro.team.base import Team

#: CG inner iterations per outer step (cgitmax in cg.f).
CG_ITERATIONS = 25


def _init_slab(lo: int, hi: int, x, r, p, q, z) -> None:
    """q = z = 0, r = p = x on the slab (start of conj_grad)."""
    q[lo:hi] = 0.0
    z[lo:hi] = 0.0
    r[lo:hi] = x[lo:hi]
    p[lo:hi] = x[lo:hi]


def _dot_slab(lo: int, hi: int, u, v) -> float:
    """Partial inner product over the slab."""
    return float(u[lo:hi] @ v[lo:hi])


def _matvec_slab(lo: int, hi: int, rowstr, colidx, a, x, out) -> None:
    """CSR mat-vec restricted to rows ``[lo, hi)`` (no empty rows assumed)."""
    if hi <= lo:
        return
    start = int(rowstr[lo])
    end = int(rowstr[hi])
    products = a[start:end] * x[colidx[start:end]]
    out[lo:hi] = np.add.reduceat(products, rowstr[lo:hi] - start)


def _update_zr_slab(lo: int, hi: int, z, r, p, q, alpha: float) -> None:
    """z += alpha p; r -= alpha q on the slab."""
    z[lo:hi] += alpha * p[lo:hi]
    r[lo:hi] -= alpha * q[lo:hi]


def _update_p_slab(lo: int, hi: int, p, r, beta: float) -> None:
    """p = r + beta p on the slab."""
    p[lo:hi] *= beta
    p[lo:hi] += r[lo:hi]


def _norm_diff_slab(lo: int, hi: int, x, r) -> float:
    """Partial sum of (x - r)**2 over the slab."""
    d = x[lo:hi] - r[lo:hi]
    return float(d @ d)


def _fill_slab(lo: int, hi: int, x, value: float) -> None:
    x[lo:hi] = value


def _scale_into_x_slab(lo: int, hi: int, x, z, factor: float) -> None:
    """x = factor * z on the slab (outer-iteration normalization)."""
    x[lo:hi] = factor * z[lo:hi]


def conj_grad(team: Team, n: int, rowstr, colidx, a,
              x, z, p, q, r) -> float:
    """One outer step: 25 CG iterations solving ``A z = x``.

    Returns ``rnorm = ||x - A z||_2``, the quantity the Fortran code prints
    each outer iteration.
    """
    team.parallel_for(n, _init_slab, x, r, p, q, z)
    rho = team.reduce_sum(n, _dot_slab, r, r)

    for _ in range(CG_ITERATIONS):
        team.parallel_for(n, _matvec_slab, rowstr, colidx, a, p, q)
        d = team.reduce_sum(n, _dot_slab, p, q)
        alpha = rho / d
        team.parallel_for(n, _update_zr_slab, z, r, p, q, alpha)
        rho0 = rho
        rho = team.reduce_sum(n, _dot_slab, r, r)
        beta = rho / rho0
        team.parallel_for(n, _update_p_slab, p, r, beta)

    team.parallel_for(n, _matvec_slab, rowstr, colidx, a, z, r)
    return math.sqrt(team.reduce_sum(n, _norm_diff_slab, x, r))
