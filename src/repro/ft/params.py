"""FT problem-class parameters and reference checksums (ft.f).

The class B and C checksum lists are transcribed with lower confidence
than S/W/A (the test suite exercises S and W, and A in the slow tier);
see EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.params import ProblemClass, lookup_class


@dataclass(frozen=True)
class FTParams:
    """Grid dims (nx, ny, nz), time steps, and per-step reference checksums."""

    nx: int
    ny: int
    nz: int
    niter: int
    checksums: tuple[complex, ...]

    @property
    def ntotal(self) -> int:
        return self.nx * self.ny * self.nz


FT_CLASSES: dict[ProblemClass, FTParams] = {
    ProblemClass.S: FTParams(
        64, 64, 64, 6,
        (
            5.546087004964e02 + 4.845363331978e02j,
            5.546385409189e02 + 4.865304269511e02j,
            5.546148406171e02 + 4.883910722336e02j,
            5.545423607415e02 + 4.901273169046e02j,
            5.544255039624e02 + 4.917475857993e02j,
            5.542683411902e02 + 4.932597244941e02j,
        ),
    ),
    ProblemClass.W: FTParams(
        128, 128, 32, 6,
        (
            5.673612178944e02 + 5.293246849175e02j,
            5.631436885271e02 + 5.282149986629e02j,
            5.594024089970e02 + 5.270996558037e02j,
            5.560698047020e02 + 5.260027904925e02j,
            5.530898991250e02 + 5.249400845633e02j,
            5.504159734538e02 + 5.239212247086e02j,
        ),
    ),
    ProblemClass.A: FTParams(
        256, 256, 128, 6,
        (
            5.046735008193e02 + 5.114047905510e02j,
            5.059412319734e02 + 5.098809666433e02j,
            5.069376896287e02 + 5.098144042213e02j,
            5.077892868474e02 + 5.101336130759e02j,
            5.085233095391e02 + 5.104914655194e02j,
            5.091487099959e02 + 5.107917842803e02j,
        ),
    ),
    ProblemClass.B: FTParams(
        512, 256, 256, 20,
        (
            5.177643571579e02 + 5.077803458597e02j,
            5.154521291263e02 + 5.088249431599e02j,
            5.146409228649e02 + 5.096208912659e02j,
            5.142378756213e02 + 5.101023387619e02j,
            5.139626667737e02 + 5.103976610617e02j,
            5.137423460082e02 + 5.105948019802e02j,
            5.135547056878e02 + 5.107404165783e02j,
            5.133910925466e02 + 5.108576573661e02j,
            5.132470705390e02 + 5.109577278523e02j,
            5.131197729984e02 + 5.110460304483e02j,
            5.130070319283e02 + 5.111252433800e02j,
            5.129070537032e02 + 5.111968077718e02j,
            5.128182883502e02 + 5.112616233064e02j,
            5.127393733383e02 + 5.113203605551e02j,
            5.126691062020e02 + 5.113735928093e02j,
            5.126064276004e02 + 5.114218460548e02j,
            5.125504076570e02 + 5.114656139760e02j,
            5.125002331720e02 + 5.115053595966e02j,
            5.124551951846e02 + 5.115415130407e02j,
            5.124146770029e02 + 5.115744692211e02j,
        ),
    ),
    ProblemClass.C: FTParams(
        512, 512, 512, 20,
        (
            5.195078707457e02 + 5.149019699238e02j,
            5.155422171134e02 + 5.127578201997e02j,
            5.144678022222e02 + 5.122251847514e02j,
            5.140150594328e02 + 5.121090289018e02j,
            5.137550426810e02 + 5.121143685824e02j,
            5.135811056728e02 + 5.121496764568e02j,
            5.134569343165e02 + 5.121870921893e02j,
            5.133651975661e02 + 5.122193250322e02j,
            5.132955192805e02 + 5.122454735794e02j,
            5.132410471738e02 + 5.122663649603e02j,
            5.131971141679e02 + 5.122830879827e02j,
            5.131605205716e02 + 5.122965784633e02j,
            5.131290734194e02 + 5.123075927445e02j,
            5.131012720314e02 + 5.123166486553e02j,
            5.130760908195e02 + 5.123241541685e02j,
            5.130528295923e02 + 5.123304037599e02j,
            5.130310107773e02 + 5.123356167976e02j,
            5.130103090133e02 + 5.123399592211e02j,
            5.129905029333e02 + 5.123435588985e02j,
            5.129714421109e02 + 5.123465164008e02j,
        ),
    ),
}

#: Diffusivity (alpha in ft.f).
ALPHA = 1.0e-6

#: Relative tolerance of each checksum component (ft.f).
FT_EPSILON = 1.0e-12

#: LCG seed for the initial conditions.
FT_SEED = 314159265


def ft_params(problem_class) -> FTParams:
    return lookup_class(FT_CLASSES, problem_class, "FT")
