"""Warm team pool unit tests."""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro import run_benchmark
from repro.core.registry import get_benchmark
from repro.service.pool import PoolClosed, TeamPool


class TestTeamPool:
    def test_prespawns_the_pool(self):
        with TeamPool("serial", 1, size=3) as pool:
            occupancy = pool.occupancy()
            assert occupancy["size"] == 3
            assert occupancy["idle"] == 3
            assert occupancy["in_use"] == 0

    def test_warm_lease_reuses_the_same_team(self):
        with TeamPool("serial", 1, size=1) as pool:
            team1, pooled1 = pool.lease()
            pool.release(team1, pooled1)
            team2, pooled2 = pool.lease()
            pool.release(team2, pooled2)
        assert pooled1 and pooled2
        assert team1 is team2  # the warm state is literally the same team

    def test_release_resets_the_team(self):
        with TeamPool("serial", 1, size=1) as pool:
            team, pooled = pool.lease()
            team.parallel_for(8, _identity)
            assert team.recorder.report() != {}
            pool.release(team, pooled)
            again, _ = pool.lease()
            assert again is team
            assert again.recorder.report() == {}
            pool.release(again, True)

    def test_mismatched_spec_gets_cold_team(self):
        with TeamPool("serial", 1, size=1) as pool:
            team, pooled = pool.lease(backend="threads", workers=2)
            assert not pooled
            assert team.backend == "threads"
            assert team.nworkers == 2
            pool.release(team, pooled)
            assert team.closed  # cold teams are one-shot
            assert pool.occupancy()["cold_spawns"] == 1

    def test_serial_pool_ignores_worker_count(self):
        with TeamPool("serial", 1, size=1) as pool:
            # serial is always one master; any worker count is warm
            _, pooled = pool.lease(backend="serial", workers=4)
            assert pooled

    def test_degraded_team_is_replaced_not_recycled(self):
        with TeamPool("serial", 1, size=1) as pool:
            team, pooled = pool.lease()
            team._degraded = True  # simulate exhausted fault retries
            pool.release(team, pooled)
            fresh, _ = pool.lease()
            assert fresh is not team
            assert not fresh.degraded
            assert team.closed
            assert pool.occupancy()["replacements"] == 1
            pool.release(fresh, True)

    def test_lease_timeout(self):
        with TeamPool("serial", 1, size=1) as pool:
            team, pooled = pool.lease()
            with pytest.raises(TimeoutError):
                pool.lease(timeout=0.05)
            pool.release(team, pooled)

    def test_close_rejects_further_leases(self):
        pool = TeamPool("serial", 1, size=1)
        pool.close()
        with pytest.raises(PoolClosed):
            pool.lease()

    def test_close_closes_all_teams(self):
        pool = TeamPool("serial", 1, size=2)
        team, pooled = pool.lease()
        pool.release(team, pooled)
        pool.close()
        assert team.closed

    def test_release_after_close_closes_the_team(self):
        pool = TeamPool("serial", 1, size=1)
        team, pooled = pool.lease()
        pool.close(timeout=0.05)
        pool.release(team, pooled)
        assert team.closed


class TestPoolKillRecovery:
    """A pooled team whose workers die *between* jobs must be replaced
    at the next lease -- never recycled -- and the job that lands on the
    replacement must be bit-identical to a direct run."""

    @pytest.mark.parametrize("backend", ["serial", "threads", "process"])
    def test_idle_death_is_replaced_and_second_job_bit_identical(
        self, backend
    ):
        workers = 1 if backend == "serial" else 2
        clean = run_benchmark("CG", "S", backend, workers).to_dict()
        with TeamPool(backend, workers, size=1) as pool:
            first, pooled = pool.lease()
            result = get_benchmark("CG")("S", first).run()
            assert result.to_dict()["verification"] == clean["verification"]
            pool.release(first, pooled)

            # Kill the idle team the way its backend can die: SIGKILL
            # real worker processes, force the degraded flag otherwise
            # (threads cannot be killed from outside the interpreter).
            procs = list(getattr(first, "_procs", []))
            if procs:
                for proc in procs:
                    os.kill(proc.pid, signal.SIGKILL)
                deadline = time.time() + 5.0
                while time.time() < deadline and first.alive():
                    time.sleep(0.05)
                assert not first.alive()
            else:
                first._degraded = True
                pool.release(*pool.lease())  # degraded: replaced here

            second, pooled = pool.lease()
            assert second is not first  # replaced, never recycled
            assert second.alive() and not second.degraded
            assert pool.occupancy()["replacements"] == 1
            result = get_benchmark("CG")("S", second).run()
            assert result.verified
            assert result.to_dict()["verification"] == clean["verification"]
            assert result.to_dict()["faults"] == []  # a fresh team: clean
            pool.release(second, pooled)

    def test_alive_probe_detects_idle_worker_death(self):
        from repro.team.procs import ProcessTeam

        team = ProcessTeam(2)
        try:
            assert team.alive()
            os.kill(team._procs[0].pid, signal.SIGKILL)
            deadline = time.time() + 5.0
            while time.time() < deadline and team.alive():
                time.sleep(0.05)
            assert not team.alive()  # one dead worker is enough
        finally:
            team.close()


def _identity(lo, hi):
    return hi - lo
