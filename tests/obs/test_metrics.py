"""Prometheus text exposition: instrument semantics and format shape."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    CONTENT_TYPE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
    process_rss_bytes,
)


class TestCounter:
    def test_inc_accumulates_per_label_set(self):
        counter = Counter("jobs_total", "jobs")
        counter.inc(state="done")
        counter.inc(state="done")
        counter.inc(state="failed")
        assert counter.value(state="done") == 2
        assert counter.value(state="failed") == 1
        lines = counter.collect()
        assert 'jobs_total{state="done"} 2' in lines
        assert 'jobs_total{state="failed"} 1' in lines

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("c", "").inc(-1)

    def test_unlabelled_counter_renders_zero_before_first_inc(self):
        assert Counter("c", "").collect() == ["c 0"]


class TestGauge:
    def test_set_and_collect(self):
        gauge = Gauge("depth", "queue depth")
        gauge.set(3)
        assert gauge.collect() == ["depth 3"]

    def test_callback_reads_live_state_at_scrape_time(self):
        state = {"value": 1.0}
        gauge = Gauge("g", "", callback=lambda: state["value"])
        assert gauge.collect() == ["g 1"]
        state["value"] = 7.5
        assert gauge.collect() == ["g 7.5"]

    def test_dict_callback_becomes_a_label_family(self):
        gauge = Gauge("pool", "", callback=lambda: {"idle": 2, "in_use": 1},
                      label_name="state")
        assert gauge.collect() == [
            'pool{state="idle"} 2',
            'pool{state="in_use"} 1',
        ]

    def test_raising_callback_never_breaks_a_scrape(self):
        def boom():
            raise RuntimeError("pool torn down mid-scrape")
        assert Gauge("g", "", callback=boom).collect() == []

    def test_label_values_escaped(self):
        gauge = Gauge("g", "")
        gauge.set(1, name='we"ird\nvalue')
        (line,) = gauge.collect()
        assert '\\"' in line and "\\n" in line


class TestHistogram:
    def test_cumulative_buckets_sum_and_count(self):
        histogram = Histogram("lat", "", buckets=[0.1, 1.0])
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        lines = histogram.collect()
        assert 'lat_bucket{le="0.1"} 1' in lines
        assert 'lat_bucket{le="1"} 2' in lines
        assert 'lat_bucket{le="+Inf"} 3' in lines
        assert "lat_count 3" in lines
        (sum_line,) = [line for line in lines if line.startswith("lat_sum")]
        assert float(sum_line.split()[1]) == pytest.approx(5.55)

    def test_log_buckets_cover_ms_to_minutes(self):
        buckets = log_buckets()
        assert buckets[0] == pytest.approx(0.001)
        assert buckets[-1] > 60

    def test_labelled_series_kept_separate(self):
        histogram = Histogram("lat", "", buckets=[1.0])
        histogram.observe(0.5, benchmark="cg")
        histogram.observe(2.0, benchmark="mg")
        assert histogram.snapshot(benchmark="cg")["count"] == 1
        assert histogram.snapshot(benchmark="mg")["count"] == 1


class TestRegistry:
    def test_render_emits_help_and_type_per_family(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "things").inc()
        registry.gauge("b", "level").set(2)
        text = registry.render()
        assert "# HELP a_total things" in text
        assert "# TYPE a_total counter" in text
        assert "# TYPE b gauge" in text
        assert text.endswith("\n")

    def test_reregistration_returns_the_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_content_type_names_prometheus_text_format(self):
        assert "text/plain" in CONTENT_TYPE and "0.0.4" in CONTENT_TYPE


def test_process_rss_is_positive_and_plausible():
    rss = process_rss_bytes()
    assert rss > 1024 * 1024       # a Python process is > 1 MiB
    assert rss < 1 << 40           # and < 1 TiB
