"""Property-style cross-backend equivalence: every backend, same bits.

The related work's lesson (automatically vs manually parallelized NPB)
is that a parallel variant is only as trustworthy as the harness that
checks it against the serial reference.  This suite draws randomized
``(extent, worker count)`` cases from a fixed seed and asserts, for both
parallel backends, that

* the slab partition is exactly the serial reference partition
  (contiguous, disjoint, covering, in rank order), and
* array results and rank-ordered reduction partials are *bit-identical*
  to inline serial execution -- not approximately equal.

Element-wise slab tasks make bit-identity a fair demand: each element's
value depends only on its own index, so the backend can only get it
exactly right or visibly wrong.
"""

import random

import numpy as np
import pytest

from repro.team import make_team
from repro.team.partition import partition_bounds

#: Fixed-seed random cases: (extent, workers).  Extents deliberately
#: include n < workers (idle ranks), n == workers, primes, and
#: non-divisible splits.
_rng = random.Random(20260805)
CASES = sorted({(_rng.randint(1, 197), _rng.choice([1, 2, 3, 4, 5, 8]))
                for _ in range(12)})

PARALLEL_BACKENDS = ["threads", "process"]


# Module-level tasks (picklable for the process backend).

def scaled_fill(lo, hi, out, scale):
    """Element-wise fill with irrational-ish values: out[i] = f(i)."""
    i = np.arange(lo, hi, dtype=np.float64)
    out[lo:hi] = np.sqrt(i + 1.0) * scale + np.sin(i)


def slab_checksum(lo, hi, values):
    """Per-slab partial for a reduction (returned, not written)."""
    return float(np.sum(values[lo:hi] * 1.000000119))


def slab_bounds(lo, hi):
    return (lo, hi)


def reference_fill(n, scale):
    """The serial reference, computed inline with the same element math."""
    out = np.zeros(n, dtype=np.float64)
    scaled_fill(0, n, out, scale)
    return out


@pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
@pytest.mark.parametrize("n,workers", CASES,
                         ids=[f"n{n}w{w}" for n, w in CASES])
class TestCrossBackendEquivalence:
    def test_partition_matches_serial_reference(self, backend, n, workers):
        with make_team(backend, workers) as team:
            bounds = team.plan.bounds(n)
            reported = team.parallel_for(n, slab_bounds)
        expected = tuple(partition_bounds(n, workers, rank)
                         for rank in range(workers))
        assert bounds == expected
        assert tuple(reported) == expected
        # contiguous, disjoint, covering, rank-ordered
        cursor = 0
        for lo, hi in bounds:
            assert lo == cursor
            assert hi >= lo
            cursor = hi
        assert cursor == n

    def test_array_results_bit_identical_to_serial(self, backend, n, workers):
        scale = 1.0 + n / 1000.0
        expected = reference_fill(n, scale)
        with make_team(backend, workers) as team:
            out = team.shared(n)
            team.parallel_for(n, scaled_fill, out, scale)
            assert out.tobytes() == expected.tobytes()

    def test_reduction_partials_bit_identical_to_serial(self, backend, n,
                                                        workers):
        scale = 2.0 + workers / 10.0
        values = reference_fill(n, scale)
        expected_partials = [slab_checksum(lo, hi, values)
                             for lo, hi in
                             (partition_bounds(n, workers, rank)
                              for rank in range(workers))]
        with make_team(backend, workers) as team:
            shared_values = team.shared(n)
            shared_values[:] = values
            partials = team.parallel_for(n, slab_checksum, shared_values)
            assert partials == expected_partials  # bit-identical floats
            # ...and the master-side combination is the same sum in the
            # same rank order, hence also bit-identical
            assert (team.reduce_sum(n, slab_checksum, shared_values)
                    == float(sum(expected_partials)))


@pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
def test_repeated_dispatches_stay_deterministic(backend):
    """Same dispatch, ten times: identical bytes every time (no rank
    scrambling, no stale-reply contamination)."""
    n, workers = 173, 4
    expected = reference_fill(n, 3.5)
    with make_team(backend, workers) as team:
        out = team.shared(n)
        for _ in range(10):
            out[:] = 0.0
            team.parallel_for(n, scaled_fill, out, 3.5)
            assert out.tobytes() == expected.tobytes()
