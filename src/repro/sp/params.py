"""SP problem-class parameters and verification constants (sp.f verify).

xcrref = reference residual RMS norms (rhs / dt), xceref = reference
solution-error RMS norms, five components each.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.params import ProblemClass, lookup_class


@dataclass(frozen=True)
class SPParams:
    problem_size: int
    dt: float
    niter: int
    xcrref: tuple[float, ...]
    xceref: tuple[float, ...]


SP_CLASSES: dict[ProblemClass, SPParams] = {
    ProblemClass.S: SPParams(
        12, 0.015, 100,
        (2.7470315451339479e-02, 1.0360746705285417e-02,
         1.6235745065095532e-02, 1.5840557224455615e-02,
         3.4849040609362460e-02),
        (2.7289258557377227e-05, 1.0364446640837285e-05,
         1.6154798287166471e-05, 1.5750704994480102e-05,
         3.4177666183390531e-05),
    ),
    # Class W note: all five xcrref values and xceref[0..1] are NPB
    # constants verified to ~1e-13 against this implementation; the last
    # three xceref entries could not be transcribed reliably and are
    # regression values computed by this (otherwise verified)
    # implementation.  See EXPERIMENTS.md.
    ProblemClass.W: SPParams(
        36, 0.0015, 400,
        (0.1893253733584e-02, 0.1717075447775e-03,
         0.2778153350936e-03, 0.2887475409984e-03,
         0.3143611161242e-02),
        (0.7542088599534e-04, 0.6512852253086e-05,
         1.049092285688991e-05, 1.128838671535277e-05,
         1.212845639772971e-04),
    ),
    # Class A note: xceref[3] could not be transcribed reliably; it is a
    # regression value from this implementation (the other nine class-A
    # norms match the NPB constants to ~1e-12).  See EXPERIMENTS.md.
    ProblemClass.A: SPParams(
        64, 0.0015, 400,
        (2.4799822399300195e00, 1.1276337964368832e00,
         1.5028977767094052e00, 1.4217816211695179e00,
         2.1292113035138280e00),
        (1.0900140297820550e-04, 3.7343951769282091e-05,
         5.0092785406541633e-05, 4.767109393953335e-05,
         1.3621613399213001e-04),
    ),
    ProblemClass.B: SPParams(
        102, 0.001, 400,
        (0.6903293579998e02, 0.3095134488084e01,
         0.9905181464052e01, 0.8999483408167e01,
         0.9784554642910e02),
        (0.1398976748620e-01, 0.8188950122502e-03,
         0.2421925981614e-02, 0.2224292093397e-02,
         0.1183620865939e-01),
    ),
    ProblemClass.C: SPParams(
        162, 0.00067, 400,
        (0.5881691581829e03, 0.2454417603569e03,
         0.3293829191851e03, 0.3081924971891e03,
         0.4597223799176e03),
        (0.2598120500183e00, 0.2590888922315e-01,
         0.5132886416320e-01, 0.4806073419454e-01,
         0.5483377491301e00),
    ),
}

#: Relative tolerance of each norm comparison (sp.f).
SP_EPSILON = 1.0e-8


def sp_params(problem_class) -> SPParams:
    return lookup_class(SP_CLASSES, problem_class, "SP")
