"""Live findings report: evaluates every surviving paper claim against
the current models and (optionally) measured runs, and renders the
result as markdown (``npb report``).

This is the executable companion to EXPERIMENTS.md: where that file is a
curated snapshot, this module recomputes each claim so drift between the
code and its documentation is impossible.
"""

from __future__ import annotations

import io

from repro.harness import paper_data
from repro.harness.report import format_table
from repro.harness.tables import TABLES, generate_table
from repro.machines import (
    machine,
    predict_basic_op,
    predict_benchmark,
    speedup_curve,
)


class _Report:
    def __init__(self) -> None:
        self._out = io.StringIO()
        self.passed = 0
        self.failed = 0

    def line(self, text: str = "") -> None:
        self._out.write(text + "\n")

    def claim(self, description: str, holds: bool, detail: str) -> None:
        mark = "PASS" if holds else "FAIL"
        if holds:
            self.passed += 1
        else:
            self.failed += 1
        self.line(f"- [{mark}] {description}: {detail}")

    def text(self) -> str:
        return self._out.getvalue()


def _ratio(spec, name, language_pair=("java", "f77")) -> float:
    a = predict_benchmark(spec, name, "A", language_pair[0], 0).seconds
    b = predict_benchmark(spec, name, "A", language_pair[1], 0).seconds
    return a / b


def generate_report(include_tables: bool = True) -> str:
    """Markdown report of all claims; see module docstring."""
    r = _Report()
    o2k = machine("origin2000")
    p690 = machine("p690")
    e10k = machine("e10000")
    pc = machine("linux-pc")

    r.line("# NPB-Java reproduction: live findings")
    r.line()
    r.line("## Section 3 / Table 1 claims")

    ops = ("assignment", "stencil1", "stencil2", "matvec5", "reduction")
    ratios = {op: predict_basic_op(o2k, op, "java")
              / predict_basic_op(o2k, op, "f77") for op in ops}
    r.claim("Java/f77 band is 3.3 (assignment) .. 12.4 (2nd-order stencil)",
            abs(ratios["assignment"] - paper_data.JAVA_SERIAL_RATIO_MIN)
            < 0.1 and abs(ratios["stencil2"]
                          - paper_data.JAVA_SERIAL_RATIO_MAX) < 0.1,
            f"band [{min(ratios.values()):.1f}, {max(ratios.values()):.1f}]")
    overheads = [predict_basic_op(o2k, op, "java", 1)
                 / predict_basic_op(o2k, op, "java") - 1 for op in ops]
    r.claim("1-thread overhead <= 20%",
            max(overheads) <= paper_data.ONE_THREAD_OVERHEAD_MAX,
            f"max {max(overheads) * 100:.0f}%")
    s16 = {op: predict_basic_op(o2k, op, "java")
           / predict_basic_op(o2k, op, "java", 16) for op in ops}
    r.claim("16-thread speedup ~7 (compute ops), 5-6 (memory ops)",
            s16["matvec5"] > s16["assignment"],
            f"compute {s16['stencil2']:.1f}, memory {s16['assignment']:.1f}")

    r.line()
    r.line("## Section 5.1 claims (serial ratios, class A)")
    structured = [(_ratio(o2k, n), n) for n in paper_data.STRUCTURED_GROUP]
    lo, hi = min(structured)[0], max(structured)[0]
    r.claim("structured group inside the basic-op band on the O2K",
            paper_data.JAVA_SERIAL_RATIO_MIN <= lo
            and hi <= paper_data.JAVA_SERIAL_RATIO_MAX,
            f"[{lo:.1f}, {hi:.1f}]")
    unstructured = [_ratio(o2k, n) for n in paper_data.UNSTRUCTURED_GROUP]
    r.claim("unstructured group (IS, CG) shows a much smaller gap",
            max(unstructured) < paper_data.UNSTRUCTURED_RATIO_MAX,
            f"[{min(unstructured):.1f}, {max(unstructured):.1f}]")
    p690_ratios = [_ratio(p690, n) for n in paper_data.STRUCTURED_GROUP]
    r.claim("p690 within a factor of 3 of Fortran",
            max(p690_ratios) <= paper_data.P690_RATIO_MAX,
            f"max {max(p690_ratios):.1f}")

    r.line()
    r.line("## Section 5.2 claims (threads)")
    for name in ("BT", "SP", "LU"):
        s = speedup_curve(o2k, name, "A")[16]
        lo16, hi16 = paper_data.BT_SP_LU_SPEEDUP16
        r.claim(f"{name} 16-thread speedup in 6-12 on the O2K",
                lo16 <= s <= hi16, f"{s:.1f}")
    lu16 = speedup_curve(o2k, "LU", "A")[16]
    bt16 = speedup_curve(o2k, "BT", "A")[16]
    r.claim("LU scales worse than BT (sync inside grid loop)",
            lu16 < bt16, f"LU {lu16:.1f} vs BT {bt16:.1f}")
    ft = predict_benchmark(e10k, "FT", "A", "java", 16)
    r.claim("FT.A capped at 4 CPUs on the E10000 (big-heap JVM limit)",
            ft.effective_cpus == paper_data.E10000_BIG_JOB_CPU_CAP,
            f"effective CPUs {ft.effective_cpus}")
    cg_plain = speedup_curve(o2k, "CG", "A")[16]
    cg_fixed = speedup_curve(o2k, "CG", "A", warmup_load=True)[16]
    r.claim("CG coalesced without the warm-up load; visible speedup with it",
            cg_plain < 2.0 < cg_fixed,
            f"{cg_plain:.1f} -> {cg_fixed:.1f}")
    pc2 = max(speedup_curve(pc, n, "A")[2]
              for n in ("BT", "SP", "LU", "FT", "MG", "CG", "IS"))
    r.claim("no speedup with 2 threads on the Linux PC",
            pc2 <= paper_data.LINUX_PC_SPEEDUP2_MAX, f"best {pc2:.2f}")

    r.line()
    r.line("## Section 5.1 discrepancy: Java Grande vs NPB")
    from repro.jgf import jgf_ratio_band

    jgf_o2k = jgf_ratio_band(o2k)
    jgf_p690 = jgf_ratio_band(p690)
    npb_o2k = [(_ratio(o2k, n)) for n in paper_data.STRUCTURED_GROUP]
    r.claim("JGF kernel mix sits below the NPB structured band (same JVM)",
            jgf_o2k[1] < min(npb_o2k),
            f"JGF [{jgf_o2k[0]:.1f}, {jgf_o2k[1]:.1f}] vs NPB "
            f"[{min(npb_o2k):.1f}, {max(npb_o2k):.1f}] on the O2K")
    r.claim("JGF 'within a factor of ~2' reproduced on the era's best JVM",
            jgf_p690[1] <= 2.3,
            f"JGF band [{jgf_p690[0]:.1f}, {jgf_p690[1]:.1f}] on the p690")

    r.line()
    r.line(f"**{r.passed} claims reproduced, {r.failed} failed.**")

    if include_tables:
        r.line()
        r.line("## Simulated tables")
        for number in TABLES:
            r.line()
            r.line("```")
            r.line(format_table(generate_table(number, "simulated")))
            r.line("```")
    return r.text()
