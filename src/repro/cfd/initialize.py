"""BT/SP initial state (``initialize`` in bt.f/sp.f).

The interior is a transfinite (Boolean-sum) interpolation of the exact
solution on the six faces; the faces themselves then receive the exact
solution, so the initial error lives strictly in the interior.
"""

from __future__ import annotations

import numpy as np

from repro.cfd.constants import CFDConstants
from repro.cfd.exact import exact_solution, grid_coordinates


def initialize(u: np.ndarray, c: CFDConstants) -> None:
    """Fill ``u`` (shape (nz, ny, nx, 5)) with the NPB initial state."""
    nx, ny, nz = c.nx, c.ny, c.nz
    xi = grid_coordinates(nx, c.dnxm1)[None, None, :, None]
    eta = grid_coordinates(ny, c.dnym1)[None, :, None, None]
    zeta = grid_coordinates(nz, c.dnzm1)[:, None, None, None]

    # Face values of the exact solution, one pair per coordinate direction.
    x0 = exact_solution(0.0, eta[..., 0], zeta[..., 0])
    x1 = exact_solution(1.0, eta[..., 0], zeta[..., 0])
    y0 = exact_solution(xi[..., 0], 0.0, zeta[..., 0])
    y1 = exact_solution(xi[..., 0], 1.0, zeta[..., 0])
    z0 = exact_solution(xi[..., 0], eta[..., 0], 0.0)
    z1 = exact_solution(xi[..., 0], eta[..., 0], 1.0)

    pxi = xi * x1 + (1.0 - xi) * x0
    peta = eta * y1 + (1.0 - eta) * y0
    pzeta = zeta * z1 + (1.0 - zeta) * z0
    u[:] = (pxi + peta + pzeta
            - pxi * peta - pxi * pzeta - peta * pzeta
            + pxi * peta * pzeta)

    # Exact solution on the six boundary faces (order immaterial: faces
    # agree on shared edges).
    xirow = grid_coordinates(nx, c.dnxm1)[None, :]
    etarow = grid_coordinates(ny, c.dnym1)[None, :]
    zetacol = grid_coordinates(nz, c.dnzm1)[:, None]
    u[:, :, 0, :] = exact_solution(0.0, etarow, zetacol)
    u[:, :, nx - 1, :] = exact_solution(1.0, etarow, zetacol)
    u[:, 0, :, :] = exact_solution(xirow, 0.0, zetacol)
    u[:, ny - 1, :, :] = exact_solution(xirow, 1.0, zetacol)
    u[0, :, :, :] = exact_solution(xirow, etarow.T, 0.0)
    u[nz - 1, :, :, :] = exact_solution(xirow, etarow.T, 1.0)
