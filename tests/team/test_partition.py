"""Tests for block partitioning."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.team.partition import block_partition, partition_bounds


class TestPartitionBounds:
    def test_even_split(self):
        assert block_partition(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_goes_first(self):
        assert block_partition(10, 4) == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_more_workers_than_work(self):
        blocks = block_partition(2, 5)
        assert blocks[0] == (0, 1)
        assert blocks[1] == (1, 2)
        assert all(lo == hi for lo, hi in blocks[2:])

    def test_zero_iterations(self):
        assert all(lo == hi for lo, hi in block_partition(0, 3))

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            partition_bounds(4, 0, 0)
        with pytest.raises(ValueError):
            partition_bounds(4, 2, 2)
        with pytest.raises(ValueError):
            partition_bounds(-1, 2, 0)

    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=1, max_value=64))
    def test_blocks_tile_range_exactly(self, n, nworkers):
        blocks = block_partition(n, nworkers)
        # contiguous and complete
        cursor = 0
        for lo, hi in blocks:
            assert lo == cursor
            assert hi >= lo
            cursor = hi
        assert cursor == n
        # balanced: sizes differ by at most one, larger first
        sizes = [hi - lo for lo, hi in blocks]
        assert max(sizes) - min(sizes) <= 1
        assert sizes == sorted(sizes, reverse=True)
