"""Shared dispatch-core types.

The dispatch *logic* lives in :meth:`repro.team.base.Team._dispatch`; this
module holds the data types the core and the backend transports exchange.
A transport delivers one task per worker and returns one
:class:`WorkerReply` per worker, stamped with the worker's own
``perf_counter`` readings.  On Linux ``perf_counter`` is CLOCK_MONOTONIC,
which shares an epoch across processes, so the stamps are comparable to
the master's publish/return times under every backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


class WorkerError(RuntimeError):
    """A worker raised in a context that cannot re-raise the original
    exception object (the process backend); carries the remote traceback."""


@dataclass(frozen=True)
class WorkerReply:
    """One worker's answer to one dispatched task.

    ``value`` is the task's return value when ``ok``; otherwise it is the
    exception object (thread/serial transports) or the formatted remote
    traceback string (process transport).
    """

    rank: int
    ok: bool
    value: Any
    started_at: float
    finished_at: float

    @property
    def execute_seconds(self) -> float:
        return self.finished_at - self.started_at


def raise_reply_error(reply: WorkerReply) -> None:
    """Re-raise a failed reply: the original exception when we have it,
    a :class:`WorkerError` wrapping the remote traceback otherwise."""
    if isinstance(reply.value, BaseException):
        raise reply.value
    raise WorkerError(f"worker {reply.rank} failed:\n{reply.value}")
