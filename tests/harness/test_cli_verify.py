"""End-to-end CLI tests (verify command, report, exit-code table)."""

import threading

from repro.harness import cli
from repro.harness.cli import main


class TestVerifyCommand:
    def test_whole_suite_class_s(self, capsys):
        assert main(["verify", "-c", "S"]) == 0
        out = capsys.readouterr().out
        assert out.count("[ok  ]") == 8
        for name in ("BT", "SP", "LU", "FT", "MG", "CG", "IS", "EP"):
            assert f"{name}.S" in out

    def test_run_verbose_prints_checks(self, capsys):
        assert main(["run", "MG", "-c", "S", "-v"]) == 0
        out = capsys.readouterr().out
        assert "rnm2" in out

    def test_run_with_process_backend(self, capsys):
        assert main(["run", "EP", "-c", "S", "-b", "process",
                     "-w", "2"]) == 0
        assert "process x2" in capsys.readouterr().out


class TestExitCodeTable:
    """The authoritative exit-code table (cli.py module docstring).

    Every subcommand returns one of these five codes; anything new must
    extend the table, the docstring, and this test together.
    """

    def test_the_table(self):
        assert cli.EXIT_OK == 0
        assert cli.EXIT_FAILURE == 1
        assert cli.EXIT_USAGE == 2
        assert cli.EXIT_WORKER_FAILURE == 3
        assert cli.EXIT_REJECTED == 4

    def test_table_is_documented_in_one_place(self):
        doc = cli.__doc__
        for name in ("EXIT_OK", "EXIT_FAILURE", "EXIT_USAGE",
                     "EXIT_WORKER_FAILURE", "EXIT_REJECTED"):
            assert name in doc, f"{name} missing from the cli docstring"

    def test_success_is_exit_ok(self, capsys):
        assert main(["run", "CG", "-c", "S"]) == cli.EXIT_OK
        capsys.readouterr()

    def test_unreachable_service_is_exit_usage(self, capsys):
        # nothing listens on this port (reserved port 47 is never bound)
        code = main(["submit", "CG", "-c", "S",
                     "--url", "http://127.0.0.1:47", "--timeout", "2"])
        assert code == cli.EXIT_USAGE
        assert "cannot reach" in capsys.readouterr().err

    def test_admission_rejection_is_exit_rejected(self, capsys, tmp_path):
        from repro.service import BenchService, make_server

        # queue of depth 1 and no scheduler: the second submission must
        # be rejected with HTTP 429 -> CLI exit 4
        service = BenchService(pool_size=1, queue_depth=1,
                               cache_dir=str(tmp_path / "cache"),
                               autostart=False)
        httpd = make_server(service, port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        host, port = httpd.server_address[:2]
        url = f"http://{host}:{port}"
        try:
            assert main(["submit", "CG", "-c", "S", "--url", url,
                         "--no-wait"]) == cli.EXIT_OK
            assert main(["submit", "MG", "-c", "S", "--url", url,
                         "--no-wait"]) == cli.EXIT_REJECTED
            assert "admission rejected" in capsys.readouterr().err
        finally:
            httpd.shutdown()
            thread.join(5)
            httpd.server_close()
            service.drain(timeout=5)


class TestReportCommand:
    def test_report_no_tables(self, capsys):
        assert main(["report", "--no-tables"]) == 0
        out = capsys.readouterr().out
        assert "0 failed" in out
        assert "[FAIL]" not in out

    def test_tables_command_all(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        for n in range(1, 8):
            assert f"Table {n}" in out
