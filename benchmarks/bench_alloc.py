"""Naive vs fused kernel allocation microbenchmark and CI growth gate.

Measures, for each hot slab kernel, the bytes of temporary churn per call
(tracemalloc peak rise) and the wall time per call for the
expression-form ``*_reference`` kernel against its fused arena rewrite
(:mod:`repro.runtime.arena`).  Run from the repo root:

    PYTHONPATH=src python benchmarks/bench_alloc.py           # table
    PYTHONPATH=src python benchmarks/bench_alloc.py --check   # CI gate

``--check`` is the perf-smoke assertion: after a one-call warm-up every
fused kernel must run with **zero steady-state arena growth** (the
arena's ``allocations`` counter stays flat while ``reuses`` climbs), and
the resid/psinv/rhs kernels must allocate at least 5x less than their
references (the PR's acceptance floor).  Exits nonzero on violation.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
import tracemalloc

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import numpy as np  # noqa: E402

from repro.cfd import rhs as cfd_rhs  # noqa: E402
from repro.cfd.constants import CFDConstants  # noqa: E402
from repro.cg import solver as cg  # noqa: E402
from repro.core import basic_ops  # noqa: E402
from repro.mg import operators as mg  # noqa: E402
from repro.runtime.arena import (  # noqa: E402
    allocation_probe_start,
    allocation_probe_stop,
    worker_arena,
)

#: NPB MG class-S/W coefficient vectors.
A = (-8.0 / 3.0, 0.0, 1.0 / 6.0, 1.0 / 12.0)
C = (-3.0 / 8.0, 1.0 / 32.0, -1.0 / 64.0, 0.0)

#: Kernels the acceptance criterion pins at a >=5x allocation drop.
GATED = ("mg.resid", "mg.psinv", "cfd.rhs")


def _mg_arrays(m, seed):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal((m, m, m)) for _ in range(3))


def make_cases(m=50, cfd_n=26, cg_n=30_000):
    """[(name, naive_fn, fused_fn)] over paper-scale slab extents."""
    cases = []

    u, v, r = _mg_arrays(m, 1)
    cases.append((
        "mg.resid",
        lambda: mg._resid_slab_reference(0, m - 2, u, v, r, A),
        lambda: mg._resid_slab(0, m - 2, u, v, r, A),
    ))

    r2, u2, _ = _mg_arrays(m, 2)
    cases.append((
        "mg.psinv",
        lambda: mg._psinv_slab_reference(0, m - 2, r2, u2, C),
        lambda: mg._psinv_slab(0, m - 2, r2, u2, C),
    ))

    n = cfd_n
    c = CFDConstants(n, n, n, 0.001)
    rng = np.random.default_rng(3)
    uc = 0.1 * rng.standard_normal((n, n, n, 5))
    uc[..., 0] = 1.0 + 0.2 * rng.random((n, n, n))
    uc[..., 4] = 5.0 + rng.random((n, n, n))
    rho_i, us, vs, ws, qs, square = (np.empty((n, n, n)) for _ in range(6))
    cfd_rhs.fields_slab_reference(0, n, uc, rho_i, us, vs, ws, qs,
                                  square, None, c)
    forcing = rng.standard_normal((n, n, n, 5))
    rhs_out = np.zeros((n, n, n, 5))
    cases.append((
        "cfd.rhs",
        lambda: cfd_rhs.rhs_slab_reference(0, n - 2, uc, rhs_out, forcing,
                                           rho_i, us, vs, ws, qs, square, c),
        lambda: cfd_rhs.rhs_slab(0, n - 2, uc, rhs_out, forcing,
                                 rho_i, us, vs, ws, qs, square, c),
    ))

    rng = np.random.default_rng(4)
    counts = rng.integers(4, 12, size=cg_n)
    rowstr = np.zeros(cg_n + 1, dtype=np.int64)
    rowstr[1:] = np.cumsum(counts)
    nnz = int(rowstr[cg_n])
    colidx = rng.integers(0, cg_n, size=nnz).astype(np.int64)
    am = rng.standard_normal(nnz)
    x = rng.standard_normal(cg_n)
    out = np.empty(cg_n)
    offsets = np.empty(cg_n, dtype=np.int64)
    cg.compute_reduceat_offsets([(0, cg_n)], rowstr, offsets)
    cases.append((
        "cg.matvec",
        lambda: cg._matvec_slab_reference(0, cg_n, rowstr, colidx, am, x,
                                          out),
        lambda: cg._matvec_slab(0, cg_n, rowstr, colidx, am, x, out,
                                offsets),
    ))

    rng = np.random.default_rng(5)
    a3 = rng.standard_normal((m, m, m))
    out3 = np.zeros((m, m, m))
    cases.append((
        "basic.stencil2",
        lambda: basic_ops.numpy_stencil2_slab_reference(0, m, a3, out3),
        lambda: basic_ops.numpy_stencil2_slab(0, m, a3, out3),
    ))
    return cases


def _call(fn, fused):
    """One kernel call, opening a new arena generation for fused kernels
    exactly as the dispatch core does before every task execution."""
    if fused:
        worker_arena().next_dispatch()
    fn()


def measure(fn, fused, repeat=5):
    """(bytes_per_call, seconds_per_call) for one kernel variant."""
    _call(fn, fused)  # warm up caches and (for fused) the arena pools
    tracemalloc.start()
    try:
        probe = allocation_probe_start()
        _call(fn, fused)
        alloc_bytes, _ = allocation_probe_stop(probe)
    finally:
        tracemalloc.stop()
    start = time.perf_counter()
    for _ in range(repeat):
        _call(fn, fused)
    seconds = (time.perf_counter() - start) / repeat
    return alloc_bytes, seconds


def run(check=False):
    failures = []
    rows = []
    for name, naive, fused in make_cases():
        naive_bytes, naive_s = measure(naive, fused=False)
        arena = worker_arena()
        fused_bytes, fused_s = measure(fused, fused=True)
        before = arena.stats()
        steady_calls = 10
        for _ in range(steady_calls):
            _call(fused, fused=True)
        after = arena.stats()
        grew = after["allocations"] - before["allocations"]
        ratio = naive_bytes / max(fused_bytes, 1)
        rows.append((name, naive_bytes / 1e6, fused_bytes / 1e6, ratio,
                     naive_s * 1e3, fused_s * 1e3, grew))
        if grew:
            failures.append(
                f"{name}: arena allocated {grew} new buffer(s) over "
                f"{steady_calls} warm calls (steady state must be "
                f"allocation-free)")
        if check and name in GATED and ratio < 5.0:
            failures.append(
                f"{name}: fused kernel allocates only {ratio:.1f}x less "
                f"than the reference (acceptance floor is 5x)")

    header = (f"{'kernel':<15} {'naive MB':>9} {'fused MB':>9} "
              f"{'alloc x':>8} {'naive ms':>9} {'fused ms':>9} {'grew':>5}")
    print(header)
    print("-" * len(header))
    for name, nm, fm, ratio, ns, fs, grew in rows:
        print(f"{name:<15} {nm:>9.2f} {fm:>9.3f} {ratio:>8.0f} "
              f"{ns:>9.2f} {fs:>9.2f} {grew:>5d}")
    stats = worker_arena().stats()
    print(f"\narena: {stats['buffers']} buffers, "
          f"{stats['nbytes'] / 1e6:.1f} MB pooled, "
          f"{stats['allocations']} allocations / {stats['reuses']} reuses "
          f"over {stats['generation']} generations")
    if failures:
        print("\nFAIL:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    if check:
        print("\nOK: zero steady-state arena growth; gated kernels "
              ">=5x less allocation than naive")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="CI gate: fail on steady-state arena growth or a gated "
             "kernel allocating less than 5x below its reference")
    args = parser.parse_args(argv)
    return run(check=args.check)


if __name__ == "__main__":
    sys.exit(main())
