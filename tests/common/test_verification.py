"""Tests for the verification record."""

from repro.common.verification import VerificationResult, within_epsilon


class TestWithinEpsilon:
    def test_relative(self):
        assert within_epsilon(1.0 + 1e-9, 1.0, 1e-8)
        assert not within_epsilon(1.0 + 1e-7, 1.0, 1e-8)

    def test_zero_reference_uses_absolute(self):
        assert within_epsilon(1e-9, 0.0, 1e-8)
        assert not within_epsilon(1e-7, 0.0, 1e-8)


class TestVerificationResult:
    def test_add_pass_and_fail(self):
        r = VerificationResult("XX", "S", True)
        assert r.add("good", 1.0, 1.0, 1e-8)
        assert not r.add("bad", 2.0, 1.0, 1e-8)
        assert not r.verified
        assert len(r.checks) == 2

    def test_summary_mentions_status(self):
        r = VerificationResult("XX", "S", True)
        r.add("q", 1.0, 1.0, 1e-8)
        assert "SUCCESSFUL" in r.summary()
        r.add("bad", 5.0, 1.0, 1e-8)
        assert "UNSUCCESSFUL" in r.summary()
        assert "FAIL" in r.summary()

    def test_reason_in_summary(self):
        r = VerificationResult("XX", "C", False,
                               reason="no reference constants")
        assert "no reference constants" in r.summary()
