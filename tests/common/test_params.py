"""Tests for problem-class machinery."""

import pytest

from repro.common.params import (
    CLASS_ORDER,
    ProblemClass,
    UnknownClassError,
    lookup_class,
)


class TestProblemClass:
    def test_parse_lowercase(self):
        assert ProblemClass.parse("s") is ProblemClass.S

    def test_parse_identity(self):
        assert ProblemClass.parse(ProblemClass.A) is ProblemClass.A

    def test_parse_unknown(self):
        with pytest.raises(UnknownClassError):
            ProblemClass.parse("X")

    def test_str(self):
        assert str(ProblemClass.B) == "B"

    def test_order(self):
        assert [str(c) for c in CLASS_ORDER] == ["S", "W", "A", "B", "C"]


class TestLookup:
    def test_found(self):
        table = {ProblemClass.S: 1, ProblemClass.A: 2}
        assert lookup_class(table, "a", "XX") == 2

    def test_missing_class_mentions_available(self):
        table = {ProblemClass.S: 1}
        with pytest.raises(UnknownClassError, match="available: S"):
            lookup_class(table, "C", "XX")
