"""Tests for the table harness and CLI."""

import pytest

from repro.harness import TABLES, format_table, generate_table
from repro.harness.cli import build_parser, main
from repro.harness.report import Table


class TestReport:
    def test_format_basic(self):
        t = Table("Demo", ["A", "B"])
        t.add_row("x", 1.234567)
        t.add_row("yy", 1234.8)
        text = format_table(t)
        assert "Demo" in text and "1.23" in text and "1235" in text

    def test_nan_renders_dash(self):
        t = Table("Demo", ["A"])
        t.add_row(float("nan"))
        assert "-" in format_table(t)


class TestSimulatedTables:
    @pytest.mark.parametrize("number", TABLES)
    def test_all_tables_render(self, number):
        table = generate_table(number, "simulated")
        text = format_table(table)
        assert table.title in text
        assert len(table.rows) > 0
        for row in table.rows:
            assert len(row) == len(table.headers)

    def test_table3_has_openmp_rows(self):
        table = generate_table(3, "simulated")
        labels = [row[0] for row in table.rows]
        assert any("f77-OpenMP" in lab for lab in labels)
        assert any("C-OpenMP" in lab for lab in labels)  # IS row

    def test_table4_java_only(self):
        table = generate_table(4, "simulated")
        assert all("Java" in row[0] for row in table.rows)

    def test_table5_no_speedup_at_2_threads(self):
        table = generate_table(5, "simulated")
        for row in table.rows:
            serial, one, two = (float(c) for c in row[1:4])
            assert two >= serial * 0.99  # Linux JVM: no speedup

    def test_unknown_table(self):
        with pytest.raises(ValueError):
            generate_table(9)

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            generate_table(1, "guessed")


class TestMeasuredTables:
    def test_table1_measured_tiny_grid(self):
        table = generate_table(1, "measured", grid=(8, 8, 8))
        assert len(table.rows) == 5
        # the interpreted style must be slower than numpy on every op
        for row in table.rows:
            assert float(row[3]) > 1.0  # python/numpy ratio

    def test_table7_measured_small(self):
        table = generate_table(7, "measured", max_n=500)
        assert len(table.rows) >= 1


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "BT" in out and "Classes" in out

    def test_run_cg_s(self, capsys):
        assert main(["run", "CG", "-c", "S"]) == 0
        assert "SUCCESSFUL" in capsys.readouterr().out

    def test_table_command(self, capsys):
        assert main(["table", "1"]) == 0
        assert "Origin2000" in capsys.readouterr().out

    def test_parser_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "QQ"])
