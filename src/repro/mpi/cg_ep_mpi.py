"""CG and EP over message passing: the two ends of the communication
spectrum.

CG: 1-D row-block decomposition of the sparse matrix; every CG iteration
performs one local sparse mat-vec on the owned row block, two allreduced
dot products, and an allgather of the updated direction vector -- the
communication structure of the NPB CG-MPI code (collapsed to 1-D).

EP: each rank tallies a block of Gaussian batches; three allreduces at
the end.  Near-zero communication, the scalability upper bound.
"""

from __future__ import annotations

import math

import numpy as np

from repro.cg.makea import makea
from repro.cg.params import cg_params
from repro.cg.solver import CG_ITERATIONS
from repro.common.randdp import A_DEFAULT, Randlc
from repro.ep.benchmark import _batch_range
from repro.ep.params import MK, ep_params
from repro.mpi.comm import Communicator, mpi_run
from repro.team.partition import partition_bounds

CG_SEED = 314159265


def _allgather_vector(comm: Communicator, local: np.ndarray,
                      n: int) -> np.ndarray:
    chunks = comm.alltoall([local] * comm.size)
    return np.concatenate(chunks)


def _cg_rank_program(comm: Communicator, problem_class: str) -> float:
    params = cg_params(problem_class)
    n = params.na
    # Deterministic generation: every rank builds the matrix and keeps
    # its row block (the reference code distributes generation; the
    # result is identical).
    rng = Randlc(CG_SEED, A_DEFAULT)
    rng.next()
    matrix = makea(n, params.nonzer, params.rcond, params.shift, rng)
    lo, hi = partition_bounds(n, comm.size, comm.rank)
    row_start = matrix.rowstr[lo:hi + 1]
    base = row_start[0]
    local_a = matrix.a[row_start[0]:row_start[-1]]
    local_cols = matrix.colidx[row_start[0]:row_start[-1]]
    local_ptr = row_start - base

    def local_matvec(x: np.ndarray) -> np.ndarray:
        if hi <= lo:
            return np.empty(0)
        products = local_a * x[local_cols]
        return np.add.reduceat(products, local_ptr[:-1])

    def dot(u_local: np.ndarray, v_local: np.ndarray) -> float:
        return comm.allreduce(float(u_local @ v_local),
                              op=lambda a, b: a + b)

    x = np.ones(n)
    zeta = 0.0
    for _ in range(params.niter):
        # conj_grad
        z_local = np.zeros(hi - lo)
        r_local = x[lo:hi].copy()
        p = x.copy()
        rho = dot(r_local, r_local)
        for _ in range(CG_ITERATIONS):
            q_local = local_matvec(p)
            d = dot(p[lo:hi], q_local)
            alpha = rho / d
            z_local += alpha * p[lo:hi]
            r_local -= alpha * q_local
            rho0 = rho
            rho = dot(r_local, r_local)
            beta = rho / rho0
            p_local = r_local + beta * p[lo:hi]
            p = _allgather_vector(comm, p_local, n)
        norm_xz = dot(x[lo:hi], z_local)
        norm_zz = dot(z_local, z_local)
        zeta = params.shift + 1.0 / norm_xz
        x = _allgather_vector(comm, z_local / math.sqrt(norm_zz), n)
    return zeta


def cg_mpi_zeta(problem_class: str = "S", nprocs: int = 4) -> float:
    """Distributed CG; returns the final zeta (compare with
    cg_params(...).zeta_verify)."""
    return mpi_run(nprocs, _cg_rank_program, problem_class)[0]


def _ep_rank_program(comm: Communicator, problem_class: str):
    params = ep_params(problem_class)
    nbatches = 1 << (params.m - MK)
    lo, hi = partition_bounds(nbatches, comm.size, comm.rank)
    sx, sy, counts = _batch_range(lo, hi)
    sx = comm.allreduce(sx, op=lambda a, b: a + b)
    sy = comm.allreduce(sy, op=lambda a, b: a + b)
    counts = comm.allreduce(counts, op=lambda a, b: a + b)
    return sx, sy, counts


def ep_mpi_sums(problem_class: str = "S", nprocs: int = 4):
    """Distributed EP; returns (sx, sy, annulus counts)."""
    return mpi_run(nprocs, _ep_rank_program, problem_class)[0]
