"""Problem-class machinery shared by all benchmarks.

The NPB define problem classes S (sample), W (workstation), A/B/C
(increasing production sizes).  Each benchmark package declares a table
mapping class letters to its own parameter record; this module provides the
common plumbing: the class enumeration, lookup with a good error message,
and the canonical ordering used by the harness.
"""

from __future__ import annotations

from enum import Enum
from typing import Mapping, TypeVar


class UnknownClassError(KeyError):
    """Raised when a benchmark does not define the requested problem class."""


class ProblemClass(str, Enum):
    """NPB problem classes in increasing-size order (S < W < A < B < C)."""

    S = "S"
    W = "W"
    A = "A"
    B = "B"
    C = "C"

    @classmethod
    def parse(cls, value: "str | ProblemClass") -> "ProblemClass":
        if isinstance(value, ProblemClass):
            return value
        try:
            return cls(str(value).upper())
        except ValueError as exc:
            valid = ", ".join(c.value for c in cls)
            raise UnknownClassError(
                f"unknown problem class {value!r}; valid classes: {valid}"
            ) from exc

    def __str__(self) -> str:  # "A" rather than "ProblemClass.A"
        return self.value


#: Canonical harness ordering.
CLASS_ORDER = [
    ProblemClass.S,
    ProblemClass.W,
    ProblemClass.A,
    ProblemClass.B,
    ProblemClass.C,
]

P = TypeVar("P")


def lookup_class(table: Mapping[ProblemClass, P], value: "str | ProblemClass",
                 benchmark: str) -> P:
    """Fetch a benchmark's parameter record for a class, with a clear error."""
    cls = ProblemClass.parse(value)
    try:
        return table[cls]
    except KeyError as exc:
        available = ", ".join(str(c) for c in table)
        raise UnknownClassError(
            f"benchmark {benchmark} does not define class {cls}; "
            f"available: {available}"
        ) from exc
