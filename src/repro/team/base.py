"""Abstract Team interface and the shared dispatch core.

A *team* is one master plus ``nworkers`` workers.  Benchmarks express their
parallel structure exclusively through this interface so that the same code
runs under all backends:

``parallel_for(n, fn, *args)``
    The workhorse.  ``range(n)`` (the outermost grid dimension, as in the
    OpenMP NPB) is block-partitioned; each worker calls
    ``fn(lo, hi, *args)`` on its block.  Returns the list of per-worker
    return values in rank order, which is how reductions are expressed
    (each worker returns its partial, the master combines).  The return of
    ``parallel_for`` is a full barrier: all workers have finished.

``run_on_all(fn, *args)``
    Every worker calls ``fn(rank, nworkers, *args)`` once -- used for
    worker-private setup such as the paper's CG "initialization load"
    warm-up fix.

``shared(shape, dtype)``
    Allocate an array visible to master and all workers.  Plain ``np.zeros``
    for serial/threads; POSIX shared memory for the process backend.

For the process backend, ``fn`` must be a module-level (picklable) function
and array arguments must be team-shared arrays; the serial and thread
backends accept anything callable.  Benchmarks in this suite follow the
stricter convention throughout.

Dispatch core
-------------
``Team`` itself owns everything the three backends used to duplicate:
closed-team checks, slab-bound computation (memoized in an
:class:`~repro.runtime.plan.ExecutionPlan`), rank-ordered result
collection, error propagation, and per-dispatch instrumentation (a
:class:`~repro.runtime.region.RegionRecorder`).  Subclasses implement one
hook, :meth:`_transport`, which delivers one ``fn(a, b, *args)`` task per
worker and returns the per-worker :class:`~repro.runtime.dispatch.WorkerReply`
list -- inline call (serial), condition-variable hand-off (threads), or
process pipe (process).
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import Any, Callable, Sequence

import numpy as np

from repro.runtime.dispatch import WorkerReply, raise_reply_error
from repro.runtime.plan import Bounds, ExecutionPlan
from repro.runtime.region import RegionRecorder


class Team(ABC):
    """One master plus ``nworkers`` workers executing slab tasks."""

    #: backend name, set by subclasses
    backend: str = "abstract"

    def __init__(self, nworkers: int):
        if nworkers < 1:
            raise ValueError("nworkers must be >= 1")
        self._nworkers = nworkers
        #: memoized slab partitions for this worker count
        self.plan = ExecutionPlan(nworkers)
        #: per-region dispatch/execute/barrier accounting
        self.recorder = RegionRecorder(nworkers)
        self._closed = False

    @property
    def nworkers(self) -> int:
        """Number of workers (1 for the serial backend)."""
        return self._nworkers

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------ #
    # transport hook

    @abstractmethod
    def _transport(self, fn: Callable, bounds: Bounds,
                   args: tuple) -> list[WorkerReply]:
        """Deliver ``fn(a, b, *args)`` to every worker; gather replies.

        ``bounds[rank]`` is worker ``rank``'s ``(a, b)`` pair -- slab
        bounds for ``parallel_for``, ``(rank, nworkers)`` for
        ``run_on_all``.  Must return one reply per worker, rank order,
        only after all workers finished (this is the barrier).  Worker
        exceptions are captured into replies, never raised here.
        """

    # ------------------------------------------------------------------ #
    # dispatch core (shared bookkeeping)

    def _dispatch(self, fn: Callable, bounds: Bounds,
                  args: tuple) -> list[Any]:
        if self._closed:
            raise RuntimeError("team is closed")
        published_at = time.perf_counter()
        replies = self._transport(fn, bounds, args)
        done_at = time.perf_counter()
        self.recorder.record(published_at, done_at, replies)
        for reply in replies:
            if not reply.ok:
                raise_reply_error(reply)
        return [reply.value for reply in replies]

    def parallel_for(self, n: int, fn: Callable, *args: Any) -> list[Any]:
        """Block-partition ``range(n)``; worker ``r`` runs ``fn(lo_r, hi_r, *args)``.

        Implicit barrier on return.  Returns per-worker results in rank order.
        """
        return self._dispatch(fn, self.plan.bounds(n), args)

    def run_on_all(self, fn: Callable, *args: Any) -> list[Any]:
        """Every worker runs ``fn(rank, nworkers, *args)`` once; barrier."""
        return self._dispatch(fn, self.plan.ranks, args)

    def shared(self, shape: Sequence[int] | int, dtype=np.float64) -> np.ndarray:
        """Allocate a zero-initialized array visible to all team members."""
        return np.zeros(shape, dtype=dtype)

    def reduce_sum(self, n: int, fn: Callable, *args: Any) -> float:
        """Sum of per-worker partials from ``fn(lo, hi, *args)``."""
        return float(sum(self.parallel_for(n, fn, *args)))

    def close(self) -> None:
        """Shut workers down and release shared resources (idempotent).

        After ``close()`` every backend rejects further dispatches with
        ``RuntimeError``.  Subclasses must call ``super().close()``.
        """
        self._closed = True

    def __enter__(self) -> "Team":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def team_worker_counts(max_workers: int) -> list[int]:
    """Thread counts used in the paper's tables: 1, 2, 4, ... up to the limit."""
    counts = []
    w = 1
    while w <= max_workers:
        counts.append(w)
        w *= 2
    return counts
