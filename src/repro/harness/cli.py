"""Command-line interface (``npb`` console script / ``python -m repro``).

Subcommands::

    npb run BT -c S -b process -w 4    run one benchmark (--json for a
                                       structured run record)
    npb verify -c S                    run + verify the whole suite
    npb profile LU -c S                per-region overhead breakdown
    npb bench --quick --repeat 3       append a BENCH_<seq>.json record
                                       to the perf trajectory
    npb bench --compare BASE.json      noise-aware regression gate
    npb table 3 [--measured] [-c A]    regenerate a paper table
    npb tables [--measured]            regenerate all seven tables
    npb list                           list benchmarks and classes
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import available_benchmarks, run_benchmark
from repro.common.params import CLASS_ORDER
from repro.harness.bench import (DEFAULT_ABS_SLACK, DEFAULT_MAD_MULTIPLIER,
                                 DEFAULT_TOLERANCE)
from repro.harness.report import format_table, region_profile_table
from repro.harness.tables import TABLES, generate_table
from repro.runtime.dispatch import FaultPolicy, WorkerError


def _fault_policy(args) -> FaultPolicy | None:
    """Build a FaultPolicy from --dispatch-timeout/--max-retries, if given."""
    timeout = getattr(args, "dispatch_timeout", None)
    retries = getattr(args, "max_retries", None)
    if timeout is None and retries is None:
        return None
    kwargs = {}
    if timeout is not None:
        kwargs["dispatch_timeout"] = timeout
    if retries is not None:
        kwargs["max_retries"] = retries
    return FaultPolicy(**kwargs)


def _fault_lines(result) -> str:
    """Per-event fault report lines for the text output."""
    return "\n".join(
        f"  fault: {e['kind']} backend={e['backend']} "
        f"region={e['region']} rank={e['rank']}: {e['detail']}"
        for e in result.faults)


def _cmd_run(args) -> int:
    result = run_benchmark(args.benchmark.upper(), args.problem_class,
                           args.backend, args.workers,
                           policy=_fault_policy(args))
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(result.banner())
        if args.verbose:
            print(result.verification.summary())
        if result.faults:
            print(_fault_lines(result), file=sys.stderr)
    return 0 if result.verified else 1


def _cmd_verify(args) -> int:
    failures = 0
    records = []
    for name in available_benchmarks():
        result = run_benchmark(name, args.problem_class, args.backend,
                               args.workers, policy=_fault_policy(args))
        if args.json:
            records.append(result.to_dict())
        else:
            status = "ok  " if result.verified else "FAIL"
            faults = (f"  [{len(result.faults)} fault(s)]"
                      if result.faults else "")
            print(f"[{status}] {name}.{args.problem_class}  "
                  f"{result.time_seconds:8.2f}s  {result.mops:10.1f} Mop/s"
                  f"{faults}")
            if not result.verified:
                print(result.verification.summary())
        if not result.verified:
            failures += 1
    if args.json:
        print(json.dumps(records, indent=2))
    return 1 if failures else 0


def _cmd_profile(args) -> int:
    import tracemalloc

    from repro.core.registry import get_benchmark
    from repro.team import make_team

    cls = get_benchmark(args.benchmark.upper())
    if args.alloc and not tracemalloc.is_tracing():
        tracemalloc.start()
    try:
        with make_team(args.backend, args.workers,
                       policy=_fault_policy(args)) as team:
            result = cls(args.problem_class, team).run()
            plan_info = team.plan.cache_info()
    finally:
        if args.alloc and tracemalloc.is_tracing():
            tracemalloc.stop()
    if args.json:
        record = result.to_dict()
        record["plan_cache"] = plan_info
        print(json.dumps(record, indent=2))
    else:
        print(format_table(region_profile_table(result, plan_info)))
        if result.faults:
            print(_fault_lines(result), file=sys.stderr)
    return 0 if result.verified else 1


def _cmd_bench(args) -> int:
    from repro.harness import bench
    from repro.harness.report import bench_compare_table, bench_record_table

    if args.compare:
        baseline = bench.load_record(args.compare)
        candidate_path = args.candidate or bench.latest_record_path(args.dir)
        if candidate_path is None:
            print(f"no BENCH_*.json candidate found in {args.dir!r}; "
                  f"run 'npb bench' first or pass a candidate path",
                  file=sys.stderr)
            return 2
        candidate = bench.load_record(candidate_path)
        comparison = bench.compare_records(
            baseline, candidate, tolerance=args.tolerance,
            mad_multiplier=args.mad_multiplier, abs_slack=args.abs_slack)
        if args.json:
            print(json.dumps(comparison.as_dict(), indent=2))
        else:
            print(format_table(bench_compare_table(comparison)))
        return 1 if comparison.regressions else 0

    if args.cells:
        cells = [bench.BenchCell.parse(spec)
                 for spec in args.cells.split(",")]
        kernels = []
    elif args.quick:
        cells = bench.QUICK_CELLS
        kernels = bench.QUICK_KERNELS
    else:
        cells = bench.FULL_CELLS
        kernels = bench.FULL_KERNELS
    if args.no_kernels:
        kernels = []
    progress = None if args.json else print
    record = bench.run_suite(cells, kernels, repeat=args.repeat,
                             quick=args.quick, progress=progress,
                             trace_alloc=args.alloc)
    path = bench.write_record(record, directory=args.dir, path=args.out)
    if args.json:
        print(json.dumps(bench.load_record(path), indent=2))
    else:
        print(format_table(bench_record_table(bench.load_record(path))))
        print(f"wrote {path}")
    unverified = [cell["id"] for cell in record["cells"]
                  if not cell["verified"]]
    if unverified:
        print("UNVERIFIED cells: " + ", ".join(unverified), file=sys.stderr)
        return 1
    return 0


def _cmd_table(args) -> int:
    mode = "measured" if args.measured else "simulated"
    numbers = [args.number] if args.number else list(TABLES)
    for n in numbers:
        table = generate_table(n, mode, args.problem_class)
        print(format_table(table))
        print()
    return 0


def _cmd_speedup(args) -> int:
    import time

    from repro.core.registry import get_benchmark
    from repro.harness.report import Table
    from repro.machines import MACHINES, speedup_curve
    from repro.team import make_team
    from repro.team.base import team_worker_counts

    name = args.benchmark.upper()
    cls = get_benchmark(name)
    counts = team_worker_counts(args.max_workers)

    rows = Table(
        f"Speedup study: {name}.{args.problem_class}",
        ["Configuration", "seconds", "speedup"],
    )
    bench = cls(args.problem_class)
    bench.setup()
    t0 = time.perf_counter()
    bench._iterate()
    serial = time.perf_counter() - t0
    rows.add_row("serial (this host)", serial, 1.0)
    for workers in counts:
        with make_team(args.backend, workers) as team:
            parallel = cls(args.problem_class, team)
            parallel.setup()
            t0 = time.perf_counter()
            parallel._iterate()
            elapsed = time.perf_counter() - t0
            verification = parallel.verify()
        if not verification.verified:
            print(format_table(rows))
            print(verification.summary())
            print(f"FAIL: {name}.{args.problem_class} under "
                  f"{args.backend} x{workers} did not verify; "
                  f"speedups above are not trustworthy", file=sys.stderr)
            return 1
        rows.add_row(f"{args.backend} x{workers} (this host)", elapsed,
                     serial / elapsed)
    print(format_table(rows))
    print()
    modeled = Table(
        f"Modeled {name}.A Java speedups on the paper's machines",
        ["Machine"] + [f"{p}thr" for p in (1, 2, 4, 8, 16, 32)],
    )
    for key, spec in MACHINES.items():
        curve = speedup_curve(spec, name, "A", warmup_load=True)
        modeled.add_row(key, *[curve.get(p, float("nan"))
                               for p in (1, 2, 4, 8, 16, 32)])
    print(format_table(modeled))
    return 0


def _cmd_report(args) -> int:
    from repro.harness.findings import generate_report

    print(generate_report(include_tables=not args.no_tables))
    return 0


def _cmd_list(args) -> int:
    print("Benchmarks:", ", ".join(available_benchmarks()))
    print("Classes:   ", ", ".join(str(c) for c in CLASS_ORDER))
    print("Backends:   serial, threads, process")
    print("Tables:    ", ", ".join(str(t) for t in TABLES))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="npb",
        description="NAS Parallel Benchmarks in Python "
                    "(reproduction of Frumkin et al., IPPS 2003)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one benchmark")
    run.add_argument("benchmark", choices=available_benchmarks(),
                     type=str.upper)
    _common(run)
    run.add_argument("-v", "--verbose", action="store_true")
    run.add_argument("--json", action="store_true",
                     help="emit a structured run record (timers + "
                          "per-region dispatch/execute/barrier split)")
    run.set_defaults(fn=_cmd_run)

    verify = sub.add_parser("verify", help="run and verify the whole suite")
    _common(verify)
    verify.add_argument("--json", action="store_true",
                        help="emit one structured run record per benchmark")
    verify.set_defaults(fn=_cmd_verify)

    profile = sub.add_parser(
        "profile", help="run one benchmark and report the per-region "
                        "overhead breakdown (dispatch/execute/barrier)")
    profile.add_argument("benchmark", choices=available_benchmarks(),
                         type=str.upper)
    _common(profile)
    profile.add_argument("--alloc", action="store_true",
                         help="trace allocations (tracemalloc) and report "
                              "per-region allocated bytes/blocks; slows "
                              "the run, and with -b process only "
                              "master-side allocation is visible")
    profile.add_argument("--json", action="store_true",
                         help="emit the run record plus plan-cache stats "
                              "as JSON")
    profile.set_defaults(fn=_cmd_profile)

    bench = sub.add_parser(
        "bench", help="append a BENCH_<seq>.json record to the perf "
                      "trajectory, or gate a candidate record against a "
                      "baseline (--compare)")
    bench.add_argument("candidate", nargs="?", default=None,
                       help="candidate record for --compare (default: the "
                            "latest BENCH_*.json in --dir)")
    bench.add_argument("--quick", action="store_true",
                       help="small class-S cell set for shared CI runners")
    bench.add_argument("-r", "--repeat", type=int, default=3,
                       help="repeats per cell; best-of-k is recorded "
                            "(default 3)")
    bench.add_argument("--cells", default=None,
                       help="comma-separated BENCH:CLASS:BACKEND:WORKERS "
                            "specs overriding the cell set "
                            "(e.g. CG:S:threads:2,LU:S:serial:1)")
    bench.add_argument("--no-kernels", action="store_true",
                       help="skip the Table-1 basic-operation kernels")
    bench.add_argument("--dir", default=".",
                       help="trajectory directory for BENCH_<seq>.json "
                            "numbering (default .)")
    bench.add_argument("--out", default=None,
                       help="explicit output path (skips sequence "
                            "numbering; useful in CI)")
    bench.add_argument("--compare", metavar="BASELINE.json", default=None,
                       help="compare a candidate record against this "
                            "baseline instead of running; exits 1 on "
                            "regression")
    bench.add_argument("--tolerance", type=float,
                       default=DEFAULT_TOLERANCE,
                       help="relative slowdown tolerated before the noise "
                            "term (default 0.10; CI uses 2.0 to gate only "
                            ">3x blowups)")
    bench.add_argument("--mad-multiplier", type=float,
                       default=DEFAULT_MAD_MULTIPLIER,
                       help="k in the max(tolerance, k*MAD/best) noise "
                            "band (default 3.0)")
    bench.add_argument("--abs-slack", type=float, default=DEFAULT_ABS_SLACK,
                       help="absolute seconds of slowdown always tolerated "
                            "(widens the band for sub-10ms cells; "
                            "default 0.005)")
    bench.add_argument("--alloc", action="store_true",
                       help="run the suite under tracemalloc so region "
                            "alloc_bytes/alloc_blocks are populated; "
                            "traced records are slower -- only compare "
                            "them against other traced records")
    bench.add_argument("--json", action="store_true",
                       help="print the record (or comparison) as JSON")
    bench.set_defaults(fn=_cmd_bench)

    table = sub.add_parser("table", help="regenerate one paper table")
    table.add_argument("number", type=int, choices=TABLES)
    table.add_argument("--measured", action="store_true",
                       help="measure on this host instead of simulating "
                            "the paper's machines")
    table.add_argument("-c", "--problem-class", default="A",
                       help="problem class for tables 2-6 (default A "
                            "simulated; use S/W for measured runs)")
    table.set_defaults(fn=_cmd_table)

    tables = sub.add_parser("tables", help="regenerate all seven tables")
    tables.add_argument("--measured", action="store_true")
    tables.add_argument("-c", "--problem-class", default="A")
    tables.set_defaults(fn=_cmd_table, number=None)

    speedup = sub.add_parser(
        "speedup", help="measured host speedups + modeled paper-machine "
                        "speedup curves for one benchmark")
    speedup.add_argument("benchmark", choices=available_benchmarks(),
                         type=str.upper)
    speedup.add_argument("-c", "--problem-class", default="S")
    speedup.add_argument("-b", "--backend", default="process",
                         choices=["threads", "process"])
    speedup.add_argument("-w", "--max-workers", type=int, default=4)
    speedup.set_defaults(fn=_cmd_speedup)

    report = sub.add_parser(
        "report", help="evaluate every paper claim against the models "
                       "and print a markdown findings report")
    report.add_argument("--no-tables", action="store_true",
                        help="omit the simulated tables")
    report.set_defaults(fn=_cmd_report)

    lst = sub.add_parser("list", help="list benchmarks, classes, tables")
    lst.set_defaults(fn=_cmd_list)
    return parser


def _common(sub_parser) -> None:
    sub_parser.add_argument("-c", "--problem-class", default="S")
    sub_parser.add_argument("-b", "--backend", default="serial",
                            choices=["serial", "threads", "process"])
    sub_parser.add_argument("-w", "--workers", type=int, default=1)
    sub_parser.add_argument("--dispatch-timeout", type=float, default=None,
                            metavar="SECONDS",
                            help="per-dispatch deadline; hung workers are "
                                 "respawned and the dispatch retried "
                                 "(default: no deadline; worker death is "
                                 "still detected and recovered)")
    sub_parser.add_argument("--max-retries", type=int, default=None,
                            metavar="N",
                            help="transport failures tolerated per dispatch "
                                 "before degrading to inline serial "
                                 "execution (default 2)")


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except WorkerError as exc:
        # A worker failed in a way the dispatch core could not recover or
        # translate (the remote traceback rides along verbatim).
        print(f"npb: unrecoverable worker failure\n{exc}", file=sys.stderr)
        return 3


if __name__ == "__main__":
    sys.exit(main())
