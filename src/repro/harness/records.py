"""Shared trajectory-record IO: race-free sequence allocation.

``npb bench``, ``npb loadgen``, and ``npb chaos`` all append
schema-versioned JSON records to a trajectory directory as
``<PREFIX>_<seq>.json``.  The original scan-then-write allocation
(list the directory, take highest+1, ``open(path, "w")``) races when
two runs append concurrently: both see the same highest sequence and
the slower writer silently overwrites the faster one's record.

:func:`reserve_record_path` closes the race with ``O_CREAT | O_EXCL``:
creating the file *is* the allocation, the kernel arbitrates ties, and
the loser retries at the next sequence number.  The record body is then
written to a temp file and :func:`os.replace` d onto the reserved name,
so readers never observe a half-written record either.
"""

from __future__ import annotations

import json
import os
import re
import threading

#: Zero-padding width of the sequence number in record file names.
SEQUENCE_WIDTH = 4


def sequence_pattern(prefix: str) -> re.Pattern:
    """Compiled ``^<PREFIX>_(\\d{4})\\.json$`` matcher for ``prefix``."""
    return re.compile(
        rf"^{re.escape(prefix)}_(\d{{{SEQUENCE_WIDTH}}})\.json$"
    )


def next_sequence(directory: str, prefix: str) -> int:
    """1 + the highest ``<prefix>_<seq>.json`` already in ``directory``."""
    pattern = sequence_pattern(prefix)
    highest = 0
    try:
        names = os.listdir(directory)
    except OSError:
        names = []
    for name in names:
        match = pattern.match(name)
        if match:
            highest = max(highest, int(match.group(1)))
    return highest + 1


def latest_record_path(directory: str, prefix: str) -> str | None:
    """Path of the highest-sequence ``<prefix>_<seq>.json``, if any."""
    pattern = sequence_pattern(prefix)
    best = None
    best_seq = 0
    try:
        names = os.listdir(directory)
    except OSError:
        return None
    for name in names:
        match = pattern.match(name)
        if match and int(match.group(1)) >= best_seq:
            best_seq = int(match.group(1))
            best = os.path.join(directory, name)
    return best


def reserve_record_path(
    directory: str, prefix: str, max_attempts: int = 10000
) -> tuple[int, str]:
    """Atomically claim the next free sequence: ``(sequence, path)``.

    The returned path exists (as an empty file) the moment this returns,
    so no concurrent writer -- thread or process -- can claim the same
    sequence number.  On ``FileExistsError`` (someone else won the race
    for that number) the scan-and-create is simply retried.
    """
    for _ in range(max_attempts):
        sequence = next_sequence(directory, prefix)
        path = os.path.join(
            directory, f"{prefix}_{sequence:0{SEQUENCE_WIDTH}d}.json"
        )
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue  # lost the race; rescan and try the next number
        os.close(fd)
        return sequence, path
    raise RuntimeError(
        f"could not reserve a {prefix}_<seq>.json slot in {directory!r} "
        f"after {max_attempts} attempts"
    )


def write_json_record(record: dict, path: str) -> str:
    """Write ``record`` to ``path`` atomically (tmp + rename)."""
    tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
    with open(tmp, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    os.replace(tmp, path)
    return path


def append_record(record: dict, directory: str, prefix: str) -> str:
    """Append ``record`` to the trajectory under the next free sequence.

    Stamps the allocated ``sequence`` into the record before writing.
    """
    sequence, path = reserve_record_path(directory, prefix)
    return write_json_record(dict(record, sequence=sequence), path)
