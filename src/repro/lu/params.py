"""LU problem-class parameters and verification constants (lu.f verify).

xcrref = reference residual norms, xceref = reference error norms,
xciref = reference surface integral.  Classes W, B and C are transcribed
with lower confidence than S/A (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.params import ProblemClass, lookup_class


@dataclass(frozen=True)
class LUParams:
    problem_size: int
    dt: float
    niter: int
    xcrref: tuple[float, ...]
    xceref: tuple[float, ...]
    xciref: float


LU_CLASSES: dict[ProblemClass, LUParams] = {
    ProblemClass.S: LUParams(
        12, 0.5, 50,
        (1.6196343210976702e-02, 2.1976745164821318e-03,
         1.5179927653399185e-03, 1.5029584435994323e-03,
         3.4264073155896461e-02),
        (6.4223319957960924e-04, 8.4144342047347926e-05,
         5.8588269616485186e-05, 5.8474222595157350e-05,
         1.3103347914111294e-03),
        7.8418928865937083e00,
    ),
    ProblemClass.W: LUParams(
        33, 1.5e-3, 300,
        (0.1236511638192e02, 0.1317228477799e01, 0.2550120713095e01,
         0.2326187750252e01, 0.2826799444189e02),
        (0.4867877144216e00, 0.5064652880982e-01, 0.9281818101960e-01,
         0.8570126542733e-01, 0.1084277417792e01),
        0.1161399311023e02,
    ),
    ProblemClass.A: LUParams(
        64, 2.0, 250,
        (7.7902107606689367e02, 6.3402765259692413e01,
         1.9499249727292479e02, 1.7845301160418537e02,
         1.8384760349464247e03),
        (2.9964085685471943e01, 2.8194576365003349e00,
         7.3473412698774742e00, 6.7139225687777051e00,
         7.0715315688392578e01),
        2.6030925604886277e01,
    ),
    ProblemClass.B: LUParams(
        102, 2.0, 250,
        (0.3553267296599e04, 0.2621475079531e03, 0.8833372185095e03,
         0.7781277473943e03, 0.6519435425530e04),
        (0.1142368232542e03, 0.1154577714343e02, 0.2427237191410e02,
         0.2129619988461e02, 0.3618687605869e03),
        0.6334565710256e02,
    ),
    ProblemClass.C: LUParams(
        162, 2.0, 250,
        (0.1036218059210e05, 0.9112227813931e03, 0.2886457274248e04,
         0.2578388445913e04, 0.2135744342983e05),
        (0.6298388882073e00, 0.6298388882073e00, 0.6298388882073e00,
         0.6298388882073e00, 0.6298388882073e00),
        0.6649818118e02,
    ),
}

#: SSOR relaxation parameter (omega in lu.f).
OMEGA = 1.2

#: Relative tolerance of each comparison (lu.f).
LU_EPSILON = 1.0e-8


def lu_params(problem_class) -> LUParams:
    return lookup_class(LU_CLASSES, problem_class, "LU")
