"""Daemon lifecycle test: real ``npb serve`` process, mid-job SIGTERM.

The in-process suite (test_service.py) covers every concurrency path
without sockets; this file covers the one thing that needs a real
process -- the SIGTERM handler's graceful drain: finish every admitted
job, refuse new ones, close all teams, exit 0, leak nothing.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request

import pytest

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def _read_url(process, deadline=30.0) -> str:
    """Parse the listen address from the daemon's startup line."""
    end = time.monotonic() + deadline
    line = ""
    while time.monotonic() < end:
        line = process.stdout.readline()
        if "listening on" in line:
            return line.split("listening on ")[1].split()[0]
        if process.poll() is not None:
            break
        time.sleep(0.05)
    raise AssertionError(f"daemon never announced its address: {line!r}")


def _post(url: str, payload: dict) -> dict:
    request = urllib.request.Request(
        f"{url}/jobs", data=json.dumps(payload).encode(), method="POST",
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


@pytest.mark.timeout(120)
def test_sigterm_mid_job_drains_cleanly(tmp_path):
    cache_dir = tmp_path / "cache"
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    # Process backend so the drain also has real forked workers to shut
    # down -- a leak would outlive the daemon and be visible in ps.
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--pool", "1", "-b", "process", "-w", "2",
         "--cache-dir", str(cache_dir), "--drain-timeout", "60"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env, cwd=str(tmp_path))
    try:
        url = _read_url(process)
        # Admit work asynchronously, then TERM while it is in flight:
        # the drain contract is that every admitted job still finishes.
        jobs = [_post(url, {"benchmark": "CG", "problem_class": "S",
                            "no_cache": True})
                for _ in range(3)]
        assert all(job["state"] in ("queued", "running", "done")
                   for job in jobs)
        process.send_signal(signal.SIGTERM)
        out, _ = process.communicate(timeout=90)
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate(timeout=10)
    assert process.returncode == 0, out
    assert "drained cleanly" in out
    # every admitted job ran to completion: the records are in the
    # content-addressed cache (same spec -> one fingerprint)
    stored = list(cache_dir.glob("*.json"))
    assert len(stored) == 1
    record = json.loads(stored[0].read_text())
    assert record["benchmark"] == "CG"
    assert record["verified"] is True
    # no orphan worker processes: forked ProcessTeam workers share the
    # daemon's cmdline, so any survivor would still show "repro serve"
    ps = subprocess.run(["ps", "-eo", "args"], capture_output=True,
                        text=True).stdout
    leaked = [line for line in ps.splitlines()
              if "repro" in line and "serve" in line
              and "ps -eo" not in line]
    assert leaked == [], leaked
