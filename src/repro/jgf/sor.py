"""JGF SOR: successive over-relaxation on a 2-D grid.

The reference kernel runs 100 Gauss-Seidel SOR sweeps over an NxN grid.
Here both styles use the red-black ordering (the standard vectorizable
equivalent; lexicographic Gauss-Seidel cannot be expressed as whole-array
operations), so the two implementations are comparable point for point.
The kernel is memory-bandwidth bound -- four loads and one store per
five flops -- the other regime where the Java Grande study found a small
language gap.
"""

from __future__ import annotations

import numpy as np

OMEGA = 1.25


def _relax_sublattice(g: np.ndarray, i0: int, j0: int, factor: float,
                      one_minus: float) -> None:
    """Relax the interior sub-lattice starting at (i0, j0) with stride 2."""
    n, m = g.shape
    ni = len(range(i0, n - 1, 2))
    nj = len(range(j0, m - 1, 2))
    if ni == 0 or nj == 0:
        return
    rows = slice(i0, i0 + 2 * ni, 2)
    cols = slice(j0, j0 + 2 * nj, 2)
    up = g[i0 - 1 : i0 - 1 + 2 * ni : 2, cols]
    down = g[i0 + 1 : i0 + 1 + 2 * ni : 2, cols]
    left = g[rows, j0 - 1 : j0 - 1 + 2 * nj : 2]
    right = g[rows, j0 + 1 : j0 + 1 + 2 * nj : 2]
    g[rows, cols] = (factor * (up + down + left + right)
                     + one_minus * g[rows, cols])


def sor_numpy(grid_in: np.ndarray, iterations: int = 100) -> np.ndarray:
    """Red-black SOR, vectorized over strided sub-lattices.

    Each color splits into two stride-2 sub-lattices (odd and even rows);
    the four relaxations per iteration are whole-array expressions.
    Neighbours of a color always carry the other color, so in-place
    updates reproduce the Gauss-Seidel semantics exactly.
    """
    g = grid_in.copy()
    factor = OMEGA * 0.25
    one_minus = 1.0 - OMEGA
    for _ in range(iterations):
        for parity in (0, 1):
            for i0 in (1, 2):
                # first interior column with (i0 + j0) % 2 == parity
                j0 = 1 + ((i0 + 1 + parity) % 2)
                _relax_sublattice(g, i0, j0, factor, one_minus)
    return g


def sor_loops(grid_in: np.ndarray, iterations: int = 100) -> np.ndarray:
    """Red-black SOR with interpreted per-point loops."""
    n, m = grid_in.shape
    g = [row[:] for row in grid_in.tolist()]
    factor = OMEGA * 0.25
    one_minus = 1.0 - OMEGA
    for _ in range(iterations):
        for parity in (0, 1):
            for i in range(1, n - 1):
                gi = g[i]
                gim = g[i - 1]
                gip = g[i + 1]
                start = 1 + ((i + 1 + parity) % 2)
                for j in range(start, m - 1, 2):
                    gi[j] = (factor * (gim[j] + gip[j] + gi[j - 1]
                                       + gi[j + 1]) + one_minus * gi[j])
    return np.asarray(g)


def sor_residual(g: np.ndarray) -> float:
    """Max |laplacian| over the interior; SOR drives this toward zero
    for the homogeneous problem (used by the validation tests)."""
    lap = (g[:-2, 1:-1] + g[2:, 1:-1] + g[1:-1, :-2] + g[1:-1, 2:]
           - 4.0 * g[1:-1, 1:-1])
    return float(np.abs(lap).max())
