"""LU factorization in three styles (see package docstring).

All three factorizations use partial pivoting and produce the same
in-place L\\U layout with a pivot vector, so they are interchangeable in
:func:`lu_solve` and validated by the same LINPACK-style residual check.
"""

from __future__ import annotations

import numpy as np

#: Java Grande lufact class sizes (Table 7: A/B/C = 500/1000/2000).
LU_CLASSES_TABLE7 = {"A": 500, "B": 1000, "C": 2000}


def make_system(n: int, seed: int = 7) -> tuple[np.ndarray, np.ndarray]:
    """Random dense system (A, b) as in the Java Grande generator:
    entries uniform in (-0.5, 0.5), b = row sums so x ~ ones."""
    rng = np.random.default_rng(seed)
    a = rng.random((n, n)) - 0.5
    b = a.sum(axis=1)
    return a, b


def lufact_ops(n: int) -> float:
    """LINPACK flop count: 2/3 n^3 + 2 n^2."""
    return 2.0 * n ** 3 / 3.0 + 2.0 * n ** 2


# --------------------------------------------------------------------- #
# Style 1: interpreted loops (the Java role)

def lufact_loops(a_in: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """DGEFA translated to per-element Python loops over a linearized
    row-major buffer (the paper's literal-translation style)."""
    n = a_in.shape[0]
    a = a_in.ravel().tolist()  # linearized, row-major
    ipvt = np.zeros(n, dtype=np.int64)
    for k in range(n - 1):
        # find pivot: index of max |a[i, k]| for i >= k
        col = k
        pivot_row = k
        pivot_val = abs(a[k * n + col])
        for i in range(k + 1, n):
            v = abs(a[i * n + col])
            if v > pivot_val:
                pivot_val = v
                pivot_row = i
        ipvt[k] = pivot_row
        if a[pivot_row * n + k] == 0.0:
            continue
        if pivot_row != k:
            for j in range(k, n):
                a[k * n + j], a[pivot_row * n + j] = (
                    a[pivot_row * n + j], a[k * n + j])
        inv_pivot = -1.0 / a[k * n + k]
        for i in range(k + 1, n):
            a[i * n + k] *= inv_pivot
        # daxpy trailing update, row by row
        for i in range(k + 1, n):
            m = a[i * n + k]
            if m != 0.0:
                base_i = i * n
                base_k = k * n
                for j in range(k + 1, n):
                    a[base_i + j] += m * a[base_k + j]
    ipvt[n - 1] = n - 1
    return np.asarray(a).reshape(n, n), ipvt


# --------------------------------------------------------------------- #
# Style 2: vectorized BLAS1 (the Fortran role)

def lufact_numpy(a_in: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """DGEFA with vectorized daxpy column updates -- the same BLAS1
    algorithm, compiled inner loops, still O(n) memory passes per step
    (poor cache reuse, the crux of the paper's Table 7 analysis)."""
    a = a_in.copy()
    n = a.shape[0]
    ipvt = np.zeros(n, dtype=np.int64)
    for k in range(n - 1):
        pivot_row = k + int(np.argmax(np.abs(a[k:, k])))
        ipvt[k] = pivot_row
        if a[pivot_row, k] == 0.0:
            continue
        if pivot_row != k:
            a[[k, pivot_row], k:] = a[[pivot_row, k], k:]
        multipliers = a[k + 1 :, k] / (-a[k, k])
        a[k + 1 :, k] = multipliers
        # rank-1 trailing update expressed as daxpy per column would be
        # the literal DGEFA; the outer product form is its vectorized
        # equivalent with identical operation count.
        a[k + 1 :, k + 1 :] += np.outer(multipliers, a[k, k + 1 :])
    ipvt[n - 1] = n - 1
    return a, ipvt


# --------------------------------------------------------------------- #
# Style 3: blocked BLAS3 (the LINPACK DGETRF role)

def dgetrf_blocked(a_in: np.ndarray, block: int = 64
                   ) -> tuple[np.ndarray, np.ndarray]:
    """Blocked right-looking LU: panel factorization + triangular solve
    + matrix-matrix trailing update (good cache reuse via MMULT, as the
    paper notes for DGETRF)."""
    a = a_in.copy()
    n = a.shape[0]
    ipvt = np.arange(n, dtype=np.int64)
    for k0 in range(0, n, block):
        k1 = min(k0 + block, n)
        # panel factorization (unblocked, on columns k0:k1)
        for k in range(k0, k1):
            pivot_row = k + int(np.argmax(np.abs(a[k:, k])))
            ipvt[k] = pivot_row
            if a[pivot_row, k] == 0.0:
                continue
            if pivot_row != k:
                # LAPACK-style pivoting: swap full rows so the deferred
                # panel updates (forward substitution + BLAS3 trailing
                # update) see multipliers and data in consistent rows.
                # Consequence: solve with lu_solve_lapack, which applies
                # all pivots to b up front.
                a[[k, pivot_row], :] = a[[pivot_row, k], :]
            a[k + 1 :, k] /= -a[k, k]
            if k + 1 < k1:
                a[k + 1 :, k + 1 : k1] += np.outer(a[k + 1 :, k],
                                                   a[k, k + 1 : k1])
        if k1 < n:
            # U block: solve the unit-lower panel against columns k1:
            u_block = a[k0:k1, k1:]
            for k in range(k0, k1):  # forward substitution, vectorized rows
                u_block[k - k0 + 1 :] += np.outer(
                    a[k + 1 : k1, k], u_block[k - k0])
            # trailing update: BLAS3 matmul
            a[k1:, k1:] += a[k1:, k0:k1] @ u_block
    return a, ipvt


# --------------------------------------------------------------------- #
# Solve and validation

def lu_solve(a: np.ndarray, ipvt: np.ndarray, b_in: np.ndarray) -> np.ndarray:
    """DGESL: solve with the in-place L\\U factors (negated multipliers)."""
    n = a.shape[0]
    b = np.asarray(b_in, dtype=np.float64).copy()
    for k in range(n - 1):
        p = ipvt[k]
        if p != k:
            b[k], b[p] = b[p], b[k]
        b[k + 1 :] += b[k] * a[k + 1 :, k]
    for k in range(n - 1, -1, -1):
        b[k] /= a[k, k]
        b[:k] -= b[k] * a[:k, k]
    return b


def lu_solve_lapack(a: np.ndarray, ipvt: np.ndarray,
                    b_in: np.ndarray) -> np.ndarray:
    """Solve with LAPACK-convention factors (full-row pivoting, negated
    multipliers): apply all row swaps to b, then the triangular solves."""
    n = a.shape[0]
    b = np.asarray(b_in, dtype=np.float64).copy()
    for k in range(n):
        p = ipvt[k]
        if p != k:
            b[k], b[p] = b[p], b[k]
    for k in range(n - 1):
        b[k + 1 :] += b[k] * a[k + 1 :, k]
    for k in range(n - 1, -1, -1):
        b[k] /= a[k, k]
        b[:k] -= b[k] * a[:k, k]
    return b


def residual_check(a: np.ndarray, x: np.ndarray, b: np.ndarray) -> float:
    """LINPACK normalized residual ||Ax - b|| / (n ||A|| ||x|| eps);
    values below ~10 validate the factorization."""
    n = a.shape[0]
    eps = np.finfo(np.float64).eps
    resid = np.max(np.abs(a @ x - b))
    norm_a = np.max(np.abs(a))
    norm_x = np.max(np.abs(x))
    return resid / (n * norm_a * norm_x * eps)
