"""The paper's basic CFD operations (Table 1), in multiple language styles.

Section 3 of the paper benchmarks five operations on an 81x81x100 grid to
calibrate the cost of Fortran-to-Java translation choices:

1. array assignment (10 iterations),
2. first-order star stencil filter,
3. second-order star stencil filter,
4. multiplication of a 3-D array of 5x5 matrices by 5-D vectors,
5. reduction sum of a 4-D array.

Each operation is implemented here in the styles the paper compares:

``numpy``
    Vectorized NumPy over linearized buffers -- the compiled,
    regular-stride machine code role that f77 plays in the paper.  The
    stencil and matvec kernels are fused in-place ufunc chains into
    per-worker :class:`~repro.runtime.arena.ScratchArena` buffers
    (bit-identical to the ``*_reference`` expression forms, which are kept
    as the readable spec and for the equivalence suite).

``python``
    Interpreted per-element loops over a *linearized* 1-D buffer with
    explicit index arithmetic -- the JIT-handicapped Java role (the paper's
    chosen translation style).

``python_multidim``
    Interpreted loops over nested lists, preserving array dimensions --
    the translation option the paper measured to be 2-3x slower than
    linearized arrays and rejected.

The numpy style also has a slab variant for team parallelism, mirroring
the paper's multithreaded basic-op measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.runtime.arena import worker_arena

#: Grid used by the paper's Table 1 (nx x ny x nz).
PAPER_GRID = (81, 81, 100)

#: Default grid for quick runs of the interpreted styles.
SMALL_GRID = (18, 18, 22)

#: Stencil coefficients (arbitrary fixed values; identical across styles).
C0, C1, C2 = 0.5, 1.0 / 6.0, 1.0 / 12.0

#: Iterations of the assignment operation (as in Table 1).
ASSIGN_ITERS = 10


@dataclass(frozen=True)
class Workload:
    """Input arrays for the basic operations on an (nx, ny, nz) grid."""

    nx: int
    ny: int
    nz: int
    a: np.ndarray          # (nz, ny, nx) scalar field
    matrices: np.ndarray   # (nz, ny, nx, 5, 5)
    vectors: np.ndarray    # (nz, ny, nx, 5)
    four_d: np.ndarray     # (nz, ny, nx, 5)

    @property
    def shape(self) -> tuple[int, int, int]:
        return (self.nz, self.ny, self.nx)


def make_workload(grid: tuple[int, int, int] = SMALL_GRID,
                  seed: int = 12345) -> Workload:
    """Deterministic random inputs for all five operations."""
    nx, ny, nz = grid
    rng = np.random.default_rng(seed)
    return Workload(
        nx=nx, ny=ny, nz=nz,
        a=rng.random((nz, ny, nx)),
        matrices=rng.random((nz, ny, nx, 5, 5)),
        vectors=rng.random((nz, ny, nx, 5)),
        four_d=rng.random((nz, ny, nx, 5)),
    )


# ===================================================================== #
# numpy ("Fortran") style
# ===================================================================== #

def numpy_assignment(w: Workload, out: np.ndarray) -> None:
    """out = a, ASSIGN_ITERS times."""
    for _ in range(ASSIGN_ITERS):
        out[...] = w.a


def numpy_stencil1_reference(w: Workload, out: np.ndarray) -> None:
    """Expression-form 7-point filter (allocates one temporary per
    operator)."""
    a = w.a
    out[1:-1, 1:-1, 1:-1] = (
        C0 * a[1:-1, 1:-1, 1:-1]
        + C1 * (a[1:-1, 1:-1, :-2] + a[1:-1, 1:-1, 2:]
                + a[1:-1, :-2, 1:-1] + a[1:-1, 2:, 1:-1]
                + a[:-2, 1:-1, 1:-1] + a[2:, 1:-1, 1:-1])
    )


def numpy_stencil1(w: Workload, out: np.ndarray) -> None:
    """7-point first-order star filter on the interior, fused into the
    output interior plus one arena buffer; bit-identical to
    :func:`numpy_stencil1_reference`.  An entry point, not a slab task,
    so it opens its own arena generation."""
    a = w.a
    arena = worker_arena()
    arena.next_dispatch()
    t = arena.take(a[1:-1, 1:-1, 1:-1].shape)
    np.add(a[1:-1, 1:-1, :-2], a[1:-1, 1:-1, 2:], out=t)
    np.add(t, a[1:-1, :-2, 1:-1], out=t)
    np.add(t, a[1:-1, 2:, 1:-1], out=t)
    np.add(t, a[:-2, 1:-1, 1:-1], out=t)
    np.add(t, a[2:, 1:-1, 1:-1], out=t)
    np.multiply(t, C1, out=t)
    ov = out[1:-1, 1:-1, 1:-1]
    np.multiply(a[1:-1, 1:-1, 1:-1], C0, out=ov)
    np.add(ov, t, out=ov)


def numpy_stencil2_reference(w: Workload, out: np.ndarray) -> None:
    """Expression-form 13-point filter (allocates one temporary per
    operator)."""
    a = w.a
    out[2:-2, 2:-2, 2:-2] = (
        C0 * a[2:-2, 2:-2, 2:-2]
        + C1 * (a[2:-2, 2:-2, 1:-3] + a[2:-2, 2:-2, 3:-1]
                + a[2:-2, 1:-3, 2:-2] + a[2:-2, 3:-1, 2:-2]
                + a[1:-3, 2:-2, 2:-2] + a[3:-1, 2:-2, 2:-2])
        + C2 * (a[2:-2, 2:-2, :-4] + a[2:-2, 2:-2, 4:]
                + a[2:-2, :-4, 2:-2] + a[2:-2, 4:, 2:-2]
                + a[:-4, 2:-2, 2:-2] + a[4:, 2:-2, 2:-2])
    )


def numpy_stencil2(w: Workload, out: np.ndarray) -> None:
    """13-point second-order star filter on the deep interior, fused;
    bit-identical to :func:`numpy_stencil2_reference`."""
    a = w.a
    arena = worker_arena()
    arena.next_dispatch()
    t = arena.take(a[2:-2, 2:-2, 2:-2].shape)
    ov = out[2:-2, 2:-2, 2:-2]
    np.multiply(a[2:-2, 2:-2, 2:-2], C0, out=ov)
    np.add(a[2:-2, 2:-2, 1:-3], a[2:-2, 2:-2, 3:-1], out=t)
    np.add(t, a[2:-2, 1:-3, 2:-2], out=t)
    np.add(t, a[2:-2, 3:-1, 2:-2], out=t)
    np.add(t, a[1:-3, 2:-2, 2:-2], out=t)
    np.add(t, a[3:-1, 2:-2, 2:-2], out=t)
    np.multiply(t, C1, out=t)
    np.add(ov, t, out=ov)
    np.add(a[2:-2, 2:-2, :-4], a[2:-2, 2:-2, 4:], out=t)
    np.add(t, a[2:-2, :-4, 2:-2], out=t)
    np.add(t, a[2:-2, 4:, 2:-2], out=t)
    np.add(t, a[:-4, 2:-2, 2:-2], out=t)
    np.add(t, a[4:, 2:-2, 2:-2], out=t)
    np.multiply(t, C2, out=t)
    np.add(ov, t, out=ov)


def numpy_matvec5_reference(w: Workload, out: np.ndarray) -> None:
    """Expression-form pointwise 5x5 mat-vec (allocates the matmul
    result)."""
    out[...] = (w.matrices @ w.vectors[..., None])[..., 0]


def numpy_matvec5(w: Workload, out: np.ndarray) -> None:
    """out[p] = M[p] @ x[p] at every grid point, matmul routed into an
    arena buffer; bit-identical to :func:`numpy_matvec5_reference`."""
    arena = worker_arena()
    arena.next_dispatch()
    t = arena.take(w.vectors.shape + (1,))
    np.matmul(w.matrices, w.vectors[..., None], out=t)
    out[...] = t[..., 0]


def numpy_reduction(w: Workload) -> float:
    """Sum of all 4-D array elements."""
    return float(w.four_d.sum())


# slab variants for team parallelism (over the z axis) ----------------- #

def numpy_assignment_slab(lo: int, hi: int, a, out) -> None:
    for _ in range(ASSIGN_ITERS):
        out[lo:hi] = a[lo:hi]


def numpy_stencil1_slab_reference(lo: int, hi: int, a, out) -> None:
    lo1 = max(lo, 1)
    hi1 = min(hi, a.shape[0] - 1)
    if hi1 <= lo1:
        return
    out[lo1:hi1, 1:-1, 1:-1] = (
        C0 * a[lo1:hi1, 1:-1, 1:-1]
        + C1 * (a[lo1:hi1, 1:-1, :-2] + a[lo1:hi1, 1:-1, 2:]
                + a[lo1:hi1, :-2, 1:-1] + a[lo1:hi1, 2:, 1:-1]
                + a[lo1 - 1:hi1 - 1, 1:-1, 1:-1]
                + a[lo1 + 1:hi1 + 1, 1:-1, 1:-1])
    )


def numpy_stencil1_slab(lo: int, hi: int, a, out) -> None:
    """Slab 7-point filter, fused; bit-identical to
    :func:`numpy_stencil1_slab_reference`."""
    lo1 = max(lo, 1)
    hi1 = min(hi, a.shape[0] - 1)
    if hi1 <= lo1:
        return
    t = worker_arena().take((hi1 - lo1,) + a[0, 1:-1, 1:-1].shape)
    np.add(a[lo1:hi1, 1:-1, :-2], a[lo1:hi1, 1:-1, 2:], out=t)
    np.add(t, a[lo1:hi1, :-2, 1:-1], out=t)
    np.add(t, a[lo1:hi1, 2:, 1:-1], out=t)
    np.add(t, a[lo1 - 1:hi1 - 1, 1:-1, 1:-1], out=t)
    np.add(t, a[lo1 + 1:hi1 + 1, 1:-1, 1:-1], out=t)
    np.multiply(t, C1, out=t)
    ov = out[lo1:hi1, 1:-1, 1:-1]
    np.multiply(a[lo1:hi1, 1:-1, 1:-1], C0, out=ov)
    np.add(ov, t, out=ov)


def numpy_stencil2_slab_reference(lo: int, hi: int, a, out) -> None:
    lo2 = max(lo, 2)
    hi2 = min(hi, a.shape[0] - 2)
    if hi2 <= lo2:
        return
    out[lo2:hi2, 2:-2, 2:-2] = (
        C0 * a[lo2:hi2, 2:-2, 2:-2]
        + C1 * (a[lo2:hi2, 2:-2, 1:-3] + a[lo2:hi2, 2:-2, 3:-1]
                + a[lo2:hi2, 1:-3, 2:-2] + a[lo2:hi2, 3:-1, 2:-2]
                + a[lo2 - 1:hi2 - 1, 2:-2, 2:-2]
                + a[lo2 + 1:hi2 + 1, 2:-2, 2:-2])
        + C2 * (a[lo2:hi2, 2:-2, :-4] + a[lo2:hi2, 2:-2, 4:]
                + a[lo2:hi2, :-4, 2:-2] + a[lo2:hi2, 4:, 2:-2]
                + a[lo2 - 2:hi2 - 2, 2:-2, 2:-2]
                + a[lo2 + 2:hi2 + 2, 2:-2, 2:-2])
    )


def numpy_stencil2_slab(lo: int, hi: int, a, out) -> None:
    """Slab 13-point filter, fused; bit-identical to
    :func:`numpy_stencil2_slab_reference`."""
    lo2 = max(lo, 2)
    hi2 = min(hi, a.shape[0] - 2)
    if hi2 <= lo2:
        return
    t = worker_arena().take((hi2 - lo2,) + a[0, 2:-2, 2:-2].shape)
    ov = out[lo2:hi2, 2:-2, 2:-2]
    np.multiply(a[lo2:hi2, 2:-2, 2:-2], C0, out=ov)
    np.add(a[lo2:hi2, 2:-2, 1:-3], a[lo2:hi2, 2:-2, 3:-1], out=t)
    np.add(t, a[lo2:hi2, 1:-3, 2:-2], out=t)
    np.add(t, a[lo2:hi2, 3:-1, 2:-2], out=t)
    np.add(t, a[lo2 - 1:hi2 - 1, 2:-2, 2:-2], out=t)
    np.add(t, a[lo2 + 1:hi2 + 1, 2:-2, 2:-2], out=t)
    np.multiply(t, C1, out=t)
    np.add(ov, t, out=ov)
    np.add(a[lo2:hi2, 2:-2, :-4], a[lo2:hi2, 2:-2, 4:], out=t)
    np.add(t, a[lo2:hi2, :-4, 2:-2], out=t)
    np.add(t, a[lo2:hi2, 4:, 2:-2], out=t)
    np.add(t, a[lo2 - 2:hi2 - 2, 2:-2, 2:-2], out=t)
    np.add(t, a[lo2 + 2:hi2 + 2, 2:-2, 2:-2], out=t)
    np.multiply(t, C2, out=t)
    np.add(ov, t, out=ov)


def numpy_matvec5_slab_reference(lo: int, hi: int, matrices, vectors,
                                 out) -> None:
    out[lo:hi] = (matrices[lo:hi] @ vectors[lo:hi, ..., None])[..., 0]


def numpy_matvec5_slab(lo: int, hi: int, matrices, vectors, out) -> None:
    """Slab pointwise mat-vec, matmul routed into an arena buffer;
    bit-identical to :func:`numpy_matvec5_slab_reference`."""
    if hi <= lo:
        return
    t = worker_arena().take((hi - lo,) + vectors.shape[1:] + (1,))
    np.matmul(matrices[lo:hi], vectors[lo:hi, ..., None], out=t)
    out[lo:hi] = t[..., 0]


def numpy_reduction_slab(lo: int, hi: int, four_d) -> float:
    return float(four_d[lo:hi].sum())


# ===================================================================== #
# interpreted linearized ("Java") style
# ===================================================================== #

def _linearize(array: np.ndarray) -> list[float]:
    return array.ravel().tolist()


def python_assignment(a: list, out: list, n: int) -> None:
    for _ in range(ASSIGN_ITERS):
        for p in range(n):
            out[p] = a[p]


def python_stencil1(a: list, out: list, nx: int, ny: int, nz: int) -> None:
    sxy = nx * ny
    for k in range(1, nz - 1):
        for j in range(1, ny - 1):
            base = k * sxy + j * nx
            for i in range(1, nx - 1):
                p = base + i
                out[p] = (C0 * a[p]
                          + C1 * (a[p - 1] + a[p + 1]
                                  + a[p - nx] + a[p + nx]
                                  + a[p - sxy] + a[p + sxy]))


def python_stencil2(a: list, out: list, nx: int, ny: int, nz: int) -> None:
    sxy = nx * ny
    for k in range(2, nz - 2):
        for j in range(2, ny - 2):
            base = k * sxy + j * nx
            for i in range(2, nx - 2):
                p = base + i
                out[p] = (C0 * a[p]
                          + C1 * (a[p - 1] + a[p + 1]
                                  + a[p - nx] + a[p + nx]
                                  + a[p - sxy] + a[p + sxy])
                          + C2 * (a[p - 2] + a[p + 2]
                                  + a[p - 2 * nx] + a[p + 2 * nx]
                                  + a[p - 2 * sxy] + a[p + 2 * sxy]))


def python_matvec5(m: list, x: list, out: list, npoints: int) -> None:
    for p in range(npoints):
        mbase = p * 25
        xbase = p * 5
        for row in range(5):
            rbase = mbase + row * 5
            acc = 0.0
            for col in range(5):
                acc += m[rbase + col] * x[xbase + col]
            out[xbase + row] = acc


def python_reduction(values: list) -> float:
    total = 0.0
    for v in values:
        total += v
    return total


# ===================================================================== #
# interpreted multidimensional style (the rejected translation option)
# ===================================================================== #

def _nested(array: np.ndarray) -> list:
    return array.tolist()


def python_multidim_assignment(a: list, out: list,
                               nx: int, ny: int, nz: int) -> None:
    for _ in range(ASSIGN_ITERS):
        for k in range(nz):
            ak = a[k]
            ok = out[k]
            for j in range(ny):
                akj = ak[j]
                okj = ok[j]
                for i in range(nx):
                    okj[i] = akj[i]


def python_multidim_stencil1(a: list, out: list,
                             nx: int, ny: int, nz: int) -> None:
    for k in range(1, nz - 1):
        for j in range(1, ny - 1):
            for i in range(1, nx - 1):
                out[k][j][i] = (C0 * a[k][j][i]
                                + C1 * (a[k][j][i - 1] + a[k][j][i + 1]
                                        + a[k][j - 1][i] + a[k][j + 1][i]
                                        + a[k - 1][j][i] + a[k + 1][j][i]))


def python_multidim_stencil2(a: list, out: list,
                             nx: int, ny: int, nz: int) -> None:
    for k in range(2, nz - 2):
        for j in range(2, ny - 2):
            for i in range(2, nx - 2):
                out[k][j][i] = (
                    C0 * a[k][j][i]
                    + C1 * (a[k][j][i - 1] + a[k][j][i + 1]
                            + a[k][j - 1][i] + a[k][j + 1][i]
                            + a[k - 1][j][i] + a[k + 1][j][i])
                    + C2 * (a[k][j][i - 2] + a[k][j][i + 2]
                            + a[k][j - 2][i] + a[k][j + 2][i]
                            + a[k - 2][j][i] + a[k + 2][j][i]))


def python_multidim_matvec5(m: list, x: list, out: list,
                            nx: int, ny: int, nz: int) -> None:
    for k in range(nz):
        for j in range(ny):
            for i in range(nx):
                mp = m[k][j][i]
                xp = x[k][j][i]
                op = out[k][j][i]
                for row in range(5):
                    mrow = mp[row]
                    acc = 0.0
                    for col in range(5):
                        acc += mrow[col] * xp[col]
                    op[row] = acc


def python_multidim_reduction(values: list,
                              nx: int, ny: int, nz: int) -> float:
    total = 0.0
    for k in range(nz):
        for j in range(ny):
            for i in range(nx):
                vp = values[k][j][i]
                for m in range(5):
                    total += vp[m]
    return total


# ===================================================================== #
# uniform runner
# ===================================================================== #

#: Operation names in Table 1 order.
OPERATIONS = ("assignment", "stencil1", "stencil2", "matvec5", "reduction")

STYLES = ("numpy", "python", "python_multidim")


def run_operation(op: str, style: str, w: Workload):
    """Run one basic operation in one style; returns the result array or
    reduction value (used by the equivalence tests and benchmarks)."""
    nx, ny, nz = w.nx, w.ny, w.nz
    if style == "numpy":
        if op == "assignment":
            out = np.empty_like(w.a)
            numpy_assignment(w, out)
            return out
        if op == "stencil1":
            out = np.zeros_like(w.a)
            numpy_stencil1(w, out)
            return out
        if op == "stencil2":
            out = np.zeros_like(w.a)
            numpy_stencil2(w, out)
            return out
        if op == "matvec5":
            out = np.empty_like(w.vectors)
            numpy_matvec5(w, out)
            return out
        if op == "reduction":
            return numpy_reduction(w)
    elif style == "python":
        if op == "assignment":
            a = _linearize(w.a)
            out = [0.0] * len(a)
            python_assignment(a, out, len(a))
            return np.asarray(out).reshape(w.a.shape)
        if op == "stencil1":
            a = _linearize(w.a)
            out = [0.0] * len(a)
            python_stencil1(a, out, nx, ny, nz)
            return np.asarray(out).reshape(w.a.shape)
        if op == "stencil2":
            a = _linearize(w.a)
            out = [0.0] * len(a)
            python_stencil2(a, out, nx, ny, nz)
            return np.asarray(out).reshape(w.a.shape)
        if op == "matvec5":
            m = _linearize(w.matrices)
            x = _linearize(w.vectors)
            out = [0.0] * len(x)
            python_matvec5(m, x, out, nx * ny * nz)
            return np.asarray(out).reshape(w.vectors.shape)
        if op == "reduction":
            return python_reduction(_linearize(w.four_d))
    elif style == "python_multidim":
        if op == "assignment":
            a = _nested(w.a)
            out = _nested(np.zeros_like(w.a))
            python_multidim_assignment(a, out, nx, ny, nz)
            return np.asarray(out)
        if op == "stencil1":
            a = _nested(w.a)
            out = _nested(np.zeros_like(w.a))
            python_multidim_stencil1(a, out, nx, ny, nz)
            return np.asarray(out)
        if op == "stencil2":
            a = _nested(w.a)
            out = _nested(np.zeros_like(w.a))
            python_multidim_stencil2(a, out, nx, ny, nz)
            return np.asarray(out)
        if op == "matvec5":
            m = _nested(w.matrices)
            x = _nested(w.vectors)
            out = _nested(np.zeros_like(w.vectors))
            python_multidim_matvec5(m, x, out, nx, ny, nz)
            return np.asarray(out)
        if op == "reduction":
            return python_multidim_reduction(_nested(w.four_d), nx, ny, nz)
    raise ValueError(f"unknown op/style: {op}/{style}")
