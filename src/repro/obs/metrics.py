"""Stdlib-only metrics with Prometheus text exposition.

Three instrument kinds, matching what the serving stack needs:

* :class:`Counter` -- monotonically increasing, optionally labelled
  (``jobs_total{benchmark="cg",state="done"}``);
* :class:`Gauge` -- last-set value, or *callback-backed* so scrapes
  read live service state (queue depth, pool leases) without the
  service pushing on every change;
* :class:`Histogram` -- log-bucketed (powers of ``growth`` from
  ``start``), which covers microseconds-to-minutes job latencies with
  a dozen buckets and no per-benchmark tuning.

Exposition follows the Prometheus text format (version 0.0.4): one
``# HELP`` / ``# TYPE`` pair per family, ``_bucket``/``_sum``/
``_count`` series with cumulative ``le`` for histograms.  Everything
is lock-guarded and cheap enough to update from the scheduler loop.
"""

from __future__ import annotations

import math
import resource
import threading
import time
from typing import Callable

_LABEL_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def _escape_label(value: str) -> str:
    out = str(value)
    for raw, escaped in _LABEL_ESCAPES.items():
        out = out.replace(raw, escaped)
    return out


def _format_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(value)}"' for key, value in labels
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _labels_key(labels: dict | None) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonic counter family; ``inc`` with optional labels."""

    kind = "counter"

    def __init__(self, name: str, help_text: str):
        self.name = name
        self.help_text = help_text
        self._lock = threading.Lock()
        self._values: dict[tuple[tuple[str, str], ...], float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _labels_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return self._values.get(_labels_key(labels), 0.0)

    def collect(self) -> list[str]:
        with self._lock:
            items = sorted(self._values.items())
        if not items:
            items = [((), 0.0)]
        return [
            f"{self.name}{_format_labels(labels)} {_format_value(value)}"
            for labels, value in items
        ]


class Gauge:
    """Settable gauge family, optionally callback-backed.

    A callback gauge reads its value at scrape time -- the natural fit
    for "current queue depth" style metrics where the service already
    holds the truth and should not have to mirror it on every change.
    """

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help_text: str,
        callback: Callable[[], float | dict] | None = None,
        label_name: str = "name",
    ):
        self.name = name
        self.help_text = help_text
        self.callback = callback
        #: label key used when a callback returns a dict of sub-series
        self.label_name = label_name
        self._lock = threading.Lock()
        self._values: dict[tuple[tuple[str, str], ...], float] = {}

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._values[_labels_key(labels)] = float(value)

    def value(self, **labels) -> float:
        with self._lock:
            return self._values.get(_labels_key(labels), 0.0)

    def collect(self) -> list[str]:
        if self.callback is not None:
            try:
                result = self.callback()
            except Exception:
                # a scrape must never 500 because one gauge's source
                # (e.g. a draining pool) raced shutdown
                result = {}
            if isinstance(result, dict):
                # {"<label value>": v} families keyed by self.label_name
                items = sorted(
                    (_labels_key({self.label_name: key}), float(value))
                    for key, value in result.items()
                )
                return [
                    f"{self.name}{_format_labels(labels)} "
                    f"{_format_value(value)}"
                    for labels, value in items
                ]
            return [f"{self.name} {_format_value(float(result))}"]
        with self._lock:
            items = sorted(self._values.items())
        if not items:
            items = [((), 0.0)]
        return [
            f"{self.name}{_format_labels(labels)} {_format_value(value)}"
            for labels, value in items
        ]


DEFAULT_BUCKET_START = 0.001
DEFAULT_BUCKET_GROWTH = 4.0
DEFAULT_BUCKET_COUNT = 10


def log_buckets(
    start: float = DEFAULT_BUCKET_START,
    growth: float = DEFAULT_BUCKET_GROWTH,
    count: int = DEFAULT_BUCKET_COUNT,
) -> list[float]:
    """Upper bounds ``start * growth**i`` -- 1ms .. ~260s by default."""
    return [start * growth**i for i in range(count)]


class Histogram:
    """Log-bucketed histogram family with cumulative exposition."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: list[float] | None = None,
    ):
        self.name = name
        self.help_text = help_text
        self.buckets = sorted(buckets if buckets is not None else log_buckets())
        self._lock = threading.Lock()
        #: labels -> (per-bucket counts + overflow, sum, count)
        self._series: dict[
            tuple[tuple[str, str], ...], tuple[list[int], float, int]
        ] = {}

    def observe(self, value: float, **labels) -> None:
        key = _labels_key(labels)
        with self._lock:
            counts, total, n = self._series.get(
                key, ([0] * (len(self.buckets) + 1), 0.0, 0)
            )
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
                    break
            else:
                counts[-1] += 1
            self._series[key] = (counts, total + value, n + 1)

    def snapshot(self, **labels) -> dict:
        with self._lock:
            counts, total, n = self._series.get(
                _labels_key(labels), ([0] * (len(self.buckets) + 1), 0.0, 0)
            )
            return {"counts": list(counts), "sum": total, "count": n}

    def collect(self) -> list[str]:
        with self._lock:
            series = {
                labels: (list(counts), total, n)
                for labels, (counts, total, n) in sorted(self._series.items())
            }
        lines: list[str] = []
        for labels, (counts, total, n) in series.items():
            cumulative = 0
            for bound, bucket_count in zip(self.buckets, counts):
                cumulative += bucket_count
                bucket_labels = labels + (("le", _format_value(bound)),)
                lines.append(
                    f"{self.name}_bucket{_format_labels(bucket_labels)} "
                    f"{cumulative}"
                )
            cumulative += counts[-1]
            inf_labels = labels + (("le", "+Inf"),)
            lines.append(
                f"{self.name}_bucket{_format_labels(inf_labels)} {cumulative}"
            )
            lines.append(
                f"{self.name}_sum{_format_labels(labels)} "
                f"{_format_value(total)}"
            )
            lines.append(f"{self.name}_count{_format_labels(labels)} {n}")
        return lines


class MetricsRegistry:
    """Named instrument registry + the ``/metrics`` renderer."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, object] = {}

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._register(name, lambda: Counter(name, help_text), Counter)

    def gauge(
        self,
        name: str,
        help_text: str = "",
        callback: Callable | None = None,
        label_name: str = "name",
    ) -> Gauge:
        gauge = self._register(
            name,
            lambda: Gauge(name, help_text, callback, label_name),
            Gauge,
        )
        if callback is not None:
            gauge.callback = callback
            gauge.label_name = label_name
        return gauge

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: list[float] | None = None,
    ) -> Histogram:
        return self._register(
            name, lambda: Histogram(name, help_text, buckets), Histogram
        )

    def _register(self, name: str, factory, expected):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif not isinstance(metric, expected):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}"
                )
            return metric

    def render(self) -> str:
        """The full exposition body, terminated by a newline."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        lines: list[str] = []
        for name, metric in metrics:
            help_text = metric.help_text or name
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {metric.kind}")
            lines.extend(metric.collect())
        return "\n".join(lines) + "\n"


CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_registry: MetricsRegistry | None = None
_registry_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-global registry (one per daemon/coordinator)."""
    global _registry
    if _registry is None:
        with _registry_lock:
            if _registry is None:
                _registry = MetricsRegistry()
    return _registry


def set_registry(registry: MetricsRegistry | None) -> MetricsRegistry | None:
    """Swap the process-global registry (tests); returns the old one."""
    global _registry
    with _registry_lock:
        old, _registry = _registry, registry
    return old


def process_rss_bytes() -> int:
    """Peak resident set of this process, in bytes.

    ``ru_maxrss`` is kilobytes on Linux; this is the same number the
    loadgen/chaos leak checks previously shelled out to ``ps`` for.
    """
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


_process_start = time.time()


def process_uptime_seconds() -> float:
    return time.time() - _process_start
