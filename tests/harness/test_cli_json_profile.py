"""Tests for the structured run records (--json) and npb profile."""

import json

from repro.harness.cli import main

REGION_KEYS = {"calls", "wall_seconds", "dispatch_seconds",
               "execute_seconds", "barrier_seconds",
               "alloc_bytes", "alloc_blocks"}


class TestRunJson:
    def test_cg_run_record(self, capsys):
        assert main(["run", "CG", "-c", "S", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["benchmark"] == "CG"
        assert record["problem_class"] == "S"
        assert record["backend"] == "serial"
        assert record["verified"] is True
        assert record["time_seconds"] > 0
        assert "total" in record["timers"]
        # Per-region timers with the dispatch/execute/barrier split.
        assert "conj_grad" in record["regions"]
        for stats in record["regions"].values():
            assert set(stats) == REGION_KEYS
        cg = record["regions"]["conj_grad"]
        # 15 outer iterations x (2 + 25*4 + 1 + 2) dispatches... at least
        # one dispatch per CG inner step; exact count is an implementation
        # detail, positive compute time is the contract.
        assert cg["calls"] > 0
        assert cg["execute_seconds"] > 0
        assert record["verification"][0]["quantity"] == "zeta"

    def test_run_record_under_threads(self, capsys):
        assert main(["run", "IS", "-c", "S", "-b", "threads", "-w", "2",
                     "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["backend"] == "threads"
        assert record["nworkers"] == 2
        assert "rank" in record["regions"]


class TestVerifyJson:
    def test_verify_emits_record_per_benchmark(self, capsys):
        assert main(["verify", "-c", "S", "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        names = {r["benchmark"] for r in records}
        assert names == {"BT", "SP", "LU", "FT", "MG", "CG", "IS", "EP"}
        assert all(r["verified"] for r in records)
        assert all(r["regions"] for r in records)


class TestProfile:
    def test_lu_profile_shows_sync_split(self, capsys):
        assert main(["profile", "LU", "-c", "S"]) == 0
        out = capsys.readouterr().out
        assert "Region profile: LU.S" in out
        # LU's sweep phases appear with synchronization (dispatch/barrier)
        # separated from compute (execute).
        for region in ("blts", "buts", "rhs"):
            assert region in out
        for column in ("dispatch s", "execute s", "barrier s", "sync %"):
            assert column in out
        assert "plan cache" in out

    def test_profile_json_includes_plan_cache(self, capsys):
        assert main(["profile", "EP", "-c", "S", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["plan_cache"]["misses"] >= 1
        assert "tally" in record["regions"]

    def test_profile_threads_records_nonzero_sync(self, capsys):
        assert main(["profile", "CG", "-c", "S", "-b", "threads",
                     "-w", "2"]) == 0
        out = capsys.readouterr().out
        assert "threads x2" in out
