"""The machine model must reproduce every surviving quantitative claim of
the paper (see repro.harness.paper_data).  These are the reproduction's
acceptance tests for Tables 1-6."""

import pytest

from repro.harness import paper_data
from repro.machines import (
    MACHINES,
    machine,
    predict_basic_op,
    predict_benchmark,
    speedup_curve,
)

O2K = machine("origin2000")
P690 = machine("p690")
E10K = machine("e10000")
PC = machine("linux-pc")


def _serial_ratio(spec, name, problem_class="A"):
    java = predict_benchmark(spec, name, problem_class, "java", 0).seconds
    f77 = predict_benchmark(spec, name, problem_class, "f77", 0).seconds
    return java / f77


class TestTable1Claims:
    def test_assignment_ratio_is_smallest_stencil2_largest(self):
        ratios = {op: (predict_basic_op(O2K, op, "java")
                       / predict_basic_op(O2K, op, "f77"))
                  for op in ("assignment", "stencil1", "stencil2",
                             "matvec5", "reduction")}
        assert ratios["assignment"] == pytest.approx(
            paper_data.JAVA_SERIAL_RATIO_MIN, rel=0.02)
        assert ratios["stencil2"] == pytest.approx(
            paper_data.JAVA_SERIAL_RATIO_MAX, rel=0.02)
        assert min(ratios.values()) == ratios["assignment"]
        assert max(ratios.values()) == ratios["stencil2"]

    def test_one_thread_overhead_within_20_percent(self):
        for op in ("assignment", "stencil2", "matvec5"):
            serial = predict_basic_op(O2K, op, "java")
            one = predict_basic_op(O2K, op, "java", 1)
            assert 1.0 < one / serial <= 1.0 + paper_data.ONE_THREAD_OVERHEAD_MAX

    def test_sixteen_thread_speedups(self):
        lo_c, hi_c = paper_data.SPEEDUP16_COMPUTE_OPS
        lo_m, hi_m = paper_data.SPEEDUP16_MEMORY_OPS
        for op in ("stencil1", "stencil2", "matvec5"):
            s = (predict_basic_op(O2K, op, "java")
                 / predict_basic_op(O2K, op, "java", 16))
            assert lo_c <= s <= hi_c
        for op in ("assignment", "reduction"):
            s = (predict_basic_op(O2K, op, "java")
                 / predict_basic_op(O2K, op, "java", 16))
            assert lo_m <= s <= hi_m


class TestSerialRatios:
    def test_structured_group_within_basic_op_interval_on_o2k(self):
        for name in paper_data.STRUCTURED_GROUP:
            ratio = _serial_ratio(O2K, name)
            assert (paper_data.JAVA_SERIAL_RATIO_MIN
                    <= ratio <= paper_data.JAVA_SERIAL_RATIO_MAX)

    def test_unstructured_group_much_smaller_gap(self):
        for name in paper_data.UNSTRUCTURED_GROUP:
            assert _serial_ratio(O2K, name) < paper_data.UNSTRUCTURED_RATIO_MAX

    def test_p690_within_factor_three(self):
        for name in paper_data.STRUCTURED_GROUP + paper_data.UNSTRUCTURED_GROUP:
            assert _serial_ratio(P690, name) <= paper_data.P690_RATIO_MAX

    def test_o2k_worse_than_p690(self):
        for name in paper_data.STRUCTURED_GROUP:
            assert _serial_ratio(O2K, name) > _serial_ratio(P690, name)


class TestThreadingClaims:
    def test_multithread_overhead_10_to_20_percent(self):
        lo, hi = paper_data.MULTITHREAD_OVERHEAD_RANGE
        for name in ("BT", "SP", "LU", "MG", "FT"):
            serial = predict_benchmark(O2K, name, "A", "java", 0).seconds
            one = predict_benchmark(O2K, name, "A", "java", 1).seconds
            assert lo <= one / serial - 1.0 <= hi

    def test_bt_sp_lu_speedup_6_to_12_at_16_threads(self):
        lo, hi = paper_data.BT_SP_LU_SPEEDUP16
        for name in ("BT", "SP", "LU"):
            curve = speedup_curve(O2K, name, "A")
            assert lo <= curve[16] <= hi

    def test_lu_scales_worse_than_bt_and_sp(self):
        """Sync inside the sweep over one grid dimension costs LU."""
        lu = speedup_curve(O2K, "LU", "A")[16]
        assert lu < speedup_curve(O2K, "BT", "A")[16]
        assert lu < speedup_curve(O2K, "SP", "A")[16]

    def test_p690_java_scalability_comparable_to_openmp(self):
        for name in ("BT", "SP", "MG"):
            java = speedup_curve(P690, name, "A")[16]
            omp = speedup_curve(P690, name, "A", "f77")[16]
            assert java / omp > 0.8

    def test_efficiency_about_half_at_16_threads(self):
        effs = [speedup_curve(O2K, n, "A")[16] / 16
                for n in ("BT", "SP", "LU")]
        mean = sum(effs) / len(effs)
        assert 0.38 <= mean <= 0.75


class TestSchedulerQuirks:
    def test_ft_capped_at_4_cpus_on_e10000(self):
        pred = predict_benchmark(E10K, "FT", "A", "java", 16)
        assert pred.effective_cpus == paper_data.E10000_BIG_JOB_CPU_CAP

    def test_small_ft_not_capped(self):
        pred = predict_benchmark(E10K, "FT", "S", "java", 8)
        assert pred.effective_cpus == 8

    def test_cg_coalesced_without_warmup_on_o2k(self):
        pred = predict_benchmark(O2K, "CG", "A", "java", 16)
        assert pred.effective_cpus <= paper_data.CG_COALESCED_CPUS
        curve = speedup_curve(O2K, "CG", "A")
        assert curve[16] < 2.0  # "virtually no performance gain"

    def test_cg_warmup_fix_restores_speedup(self):
        without = speedup_curve(O2K, "CG", "A")[16]
        with_fix = speedup_curve(O2K, "CG", "A", warmup_load=True)[16]
        assert with_fix > 2.0 * without  # "visible speedup"

    def test_structured_benchmarks_not_coalesced(self):
        for name in ("BT", "SP", "LU", "FT", "MG"):
            pred = predict_benchmark(O2K, name, "A", "java", 16)
            assert pred.effective_cpus == 16

    def test_no_speedup_on_linux_pc(self):
        for name in ("BT", "SP", "LU", "FT", "MG", "CG", "IS"):
            curve = speedup_curve(PC, name, "A")
            assert curve[2] <= paper_data.LINUX_PC_SPEEDUP2_MAX


class TestSpecSanity:
    def test_five_machines(self):
        assert len(MACHINES) == 5

    def test_unknown_machine(self):
        with pytest.raises(KeyError):
            machine("cray")

    def test_worker_counts(self):
        assert machine("p690").worker_counts() == [1, 2, 4, 8, 16, 32]
        assert machine("linux-pc").worker_counts() == [1, 2]

    def test_predictions_positive_and_monotone_in_class(self):
        for key in MACHINES:
            spec = machine(key)
            s = predict_benchmark(spec, "CG", "S", "java", 0).seconds
            a = predict_benchmark(spec, "CG", "A", "java", 0).seconds
            assert 0 < s < a

    def test_unknown_language(self):
        with pytest.raises(ValueError):
            predict_benchmark(O2K, "BT", "A", "cobol", 0)


class TestMemoryScalingClaim:
    """Section 5.2: 'An artificial increase in the memory use for other
    benchmarks also resulted in a drop of scalability' on the E10000."""

    def test_bigger_class_trips_the_memory_cap(self):
        # MG.A already exceeds the heap threshold; at class B (4x the
        # modeled footprint) the cap certainly binds, while class S
        # stays uncapped.
        small = predict_benchmark(E10K, "MG", "S", "java", 8)
        big = predict_benchmark(E10K, "MG", "B", "java", 8)
        assert small.effective_cpus == 8
        assert big.effective_cpus == paper_data.E10000_BIG_JOB_CPU_CAP

    def test_memory_capped_benchmarks_lose_speedup(self):
        capped = speedup_curve(E10K, "FT", "A")
        free = speedup_curve(E10K, "SP", "A")
        assert capped[16] < 0.5 * free[16]
