"""Async front end tests: in-flight coalescing, idempotency replays,
deficit-round-robin fair admission, drain, and client keep-alive.

Everything runs in-process.  The HTTP cases use :class:`AsyncServerThread`
(a real asyncio server on a loopback port); the coalescing-race and
fairness cases drive :class:`AsyncFrontEnd`/:class:`FairAdmission`
directly under ``asyncio.run`` so their interleavings are deterministic
-- a gated fake benchmark holds the primary job running until the test
has attached exactly the waiters it wants to measure.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time

import pytest

from repro.service import (
    AsyncFrontEnd,
    AsyncServerThread,
    BenchService,
    FairAdmission,
    ServiceClient,
    ServiceUnavailable,
    TenantQuotaExceeded,
)
from repro.service.jobs import AdmissionRejected

PAYLOAD = {"benchmark": "EP", "problem_class": "S", "workers": 2}


def _service(tmp_path, **kwargs) -> BenchService:
    kwargs.setdefault("backend", "serial")
    kwargs.setdefault("pool_size", 2)
    kwargs.setdefault("cache_dir", str(tmp_path / "cache"))
    return BenchService(**kwargs)


def _gate_benchmark(monkeypatch, gate: threading.Event, fail: bool = False):
    """Replace the benchmark registry with one that blocks on ``gate``.

    The scheduler resolves benchmarks lazily (``from repro.core.registry
    import get_benchmark`` inside ``_execute``), so patching the registry
    attribute reroutes every execution.  Holding the gate keeps the
    primary job running while the test attaches coalesced waiters --
    without it the tiny class-S kernels finish before a second request
    can even arrive, and the race being tested evaporates.
    """
    import repro.core.registry as registry

    real = registry.get_benchmark

    class Gated:
        def __init__(self, problem_class, team):
            self._inner = real("EP")(problem_class, team)

        def run(self):
            assert gate.wait(timeout=60), "test gate never opened"
            if fail:
                raise RuntimeError("injected benchmark failure")
            return self._inner.run()

    monkeypatch.setattr(registry, "get_benchmark", lambda name: Gated)


def _post(frontend: AsyncFrontEnd, payload: dict, headers: dict | None = None):
    return frontend.handle_post_jobs(headers or {}, json.dumps(payload).encode())


async def _until(predicate, timeout=30.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        await asyncio.sleep(0.01)


class TestFairAdmission:
    """DRR unit tests: grant *order* is the observable."""

    def _run_contended(self, offered, weights=None, window=1):
        """Queue ``offered`` (tenant sequence) behind a held window, then
        let grants cascade; returns the grant order."""

        async def main():
            admission = FairAdmission(window=window, weights=weights)
            await admission.acquire("blocker")  # hold the only slot
            order: list[str] = []

            async def one(tenant):
                await admission.acquire(tenant)
                order.append(tenant)
                admission.release()

            tasks = [asyncio.create_task(one(t)) for t in offered]
            await _until(lambda: sum(
                len(q) for q in admission._queues.values()) == len(offered))
            admission.release()  # free the blocker: grants cascade in DRR order
            await asyncio.gather(*tasks)
            return order

        return asyncio.run(main())

    def test_equal_weights_alternate_under_contention(self):
        order = self._run_contended(["a"] * 4 + ["b"] * 4)
        assert order[:8] == ["a", "b", "a", "b", "a", "b", "a", "b"]

    def test_weights_skew_the_share(self):
        order = self._run_contended(["a"] * 6 + ["b"] * 3,
                                    weights={"a": 2.0, "b": 1.0})
        # each round serves 2 a's per b until a's queue drains
        assert order[:9] == ["a", "a", "b", "a", "a", "b", "a", "a", "b"]

    def test_four_to_one_offered_load_equal_weights_splits_evenly(self):
        """The acceptance bound: a tenant offering 4x the load gets no
        more than its fair share while the other still has work queued."""
        offered = []
        for _ in range(10):
            offered.extend(["a", "a", "a", "a", "b"])  # 40:10 offered
        order = self._run_contended(offered)
        contended = order[:20]  # b's queue is provably non-empty here
        share_b = contended.count("b") / len(contended)
        assert 0.4 <= share_b <= 0.6, order

    def test_tenant_quota_rejects_the_excess(self):
        async def main():
            admission = FairAdmission(window=1, quota=2)
            await admission.acquire("blocker")
            waiters = [asyncio.create_task(admission.acquire("a"))
                       for _ in range(2)]
            await _until(lambda: len(admission._queues.get("a", ())) == 2)
            with pytest.raises(TenantQuotaExceeded) as excinfo:
                await admission.acquire("a")
            assert excinfo.value.pending == 2
            assert excinfo.value.quota == 2
            admission.release()
            for waiter in waiters:
                await waiter
                admission.release()

        asyncio.run(main())

    def test_close_rejects_every_parked_request(self):
        async def main():
            admission = FairAdmission(window=1)
            await admission.acquire("blocker")
            parked = asyncio.create_task(admission.acquire("a"))
            await _until(lambda: len(admission._queues.get("a", ())) == 1)
            admission.close()
            with pytest.raises(AdmissionRejected):
                await parked
            with pytest.raises(AdmissionRejected):
                await admission.acquire("b")

        asyncio.run(main())

    def test_cancelled_parked_waiter_does_not_wedge_dispatch(self):
        async def main():
            admission = FairAdmission(window=1)
            await admission.acquire("blocker")
            doomed = asyncio.create_task(admission.acquire("a"))
            live = asyncio.create_task(admission.acquire("a"))
            await _until(lambda: len(admission._queues.get("a", ())) == 2)
            doomed.cancel()
            with pytest.raises(asyncio.CancelledError):
                await doomed
            admission.release()
            await live  # the dispatcher skipped the dead future
            assert admission.in_flight == 1

        asyncio.run(main())


class TestCoalescing:
    """N identical in-flight requests -> exactly one execution."""

    def test_concurrent_twins_execute_exactly_once(self, tmp_path, monkeypatch):
        gate = threading.Event()
        _gate_benchmark(monkeypatch, gate)
        service = _service(tmp_path)

        async def main():
            frontend = AsyncFrontEnd(service)
            frontend.install(asyncio.get_running_loop())
            try:
                waiters = [
                    asyncio.create_task(
                        _post(frontend, dict(PAYLOAD, wait=True)))
                    for _ in range(6)
                ]
                # 1 primary running + 5 attached, *then* let it finish
                await _until(lambda: service.coalesced == 5)
                gate.set()
                return await asyncio.gather(*waiters)
            finally:
                frontend.uninstall()

        responses = asyncio.run(main())
        service.drain()
        codes = [code for code, _, _ in responses]
        assert codes == [200] * 6
        bodies = [body for _, body, _ in responses]
        job_ids = {body["job_id"] for body in bodies}
        assert len(job_ids) == 1  # every waiter saw the primary's job
        primary_id = job_ids.pop()
        stamped = sorted(
            (body["result"]["coalesced_with"] or "primary" for body in bodies),
            key=lambda tag: tag == "primary",
        )
        assert stamped == [primary_id] * 5 + ["primary"]
        assert all(body["result"]["verified"] for body in bodies)
        # the proof of single execution, not just single job id:
        assert service.pool.leases == 1
        assert service.scheduler.executed == 1
        assert service.scheduler.duplicate_executions == 0
        assert service.coalesced == 5

    def test_failed_job_fans_failure_out_to_waiters(self, tmp_path, monkeypatch):
        gate = threading.Event()
        _gate_benchmark(monkeypatch, gate, fail=True)
        service = _service(tmp_path)

        async def main():
            frontend = AsyncFrontEnd(service)
            frontend.install(asyncio.get_running_loop())
            try:
                waiters = [
                    asyncio.create_task(
                        _post(frontend, dict(PAYLOAD, wait=True)))
                    for _ in range(3)
                ]
                await _until(lambda: service.coalesced == 2)
                gate.set()
                return await asyncio.gather(*waiters)
            finally:
                frontend.uninstall()

        responses = asyncio.run(main())
        service.drain()
        # a structured failure for everyone -- nobody hangs, nobody gets
        # a bare connection reset
        for code, body, _ in responses:
            assert code == 200
            assert body["state"] == "failed"
            assert "injected benchmark failure" in body["error"]
        assert service.scheduler.executed == 0
        assert service.pool.leases == 1

    def test_cancelling_one_waiter_keeps_the_shared_job(
        self, tmp_path, monkeypatch
    ):
        gate = threading.Event()
        _gate_benchmark(monkeypatch, gate)
        service = _service(tmp_path)

        async def main():
            frontend = AsyncFrontEnd(service)
            frontend.install(asyncio.get_running_loop())
            try:
                code, body, _ = await _post(frontend, dict(PAYLOAD))
                assert code == 202
                doomed = asyncio.create_task(
                    _post(frontend, dict(PAYLOAD, wait=True)))
                await _until(lambda: service.coalesced == 1)
                doomed.cancel()  # waiter disconnects mid-wait
                with pytest.raises(asyncio.CancelledError):
                    await doomed
                survivor = asyncio.create_task(
                    _post(frontend, dict(PAYLOAD, wait=True)))
                await _until(lambda: service.coalesced == 2)
                gate.set()
                return body["job_id"], await survivor
            finally:
                frontend.uninstall()

        primary_id, (code, body, _) = asyncio.run(main())
        service.drain()
        # the cancelled waiter took neither the job nor the survivor down
        assert code == 200
        assert body["state"] == "done"
        assert body["result"]["coalesced_with"] == primary_id
        assert service.scheduler.executed == 1

    def test_no_cache_requests_never_coalesce(self, tmp_path, monkeypatch):
        gate = threading.Event()
        _gate_benchmark(monkeypatch, gate)
        service = _service(tmp_path)

        async def main():
            frontend = AsyncFrontEnd(service, window=2)
            frontend.install(asyncio.get_running_loop())
            try:
                waiters = [
                    asyncio.create_task(
                        _post(frontend,
                              dict(PAYLOAD, wait=True, no_cache=True)))
                    for _ in range(2)
                ]
                await _until(
                    lambda: service.scheduler._executing == {}
                    and service.pool.leases == 2)
                gate.set()
                return await asyncio.gather(*waiters)
            finally:
                frontend.uninstall()

        responses = asyncio.run(main())
        service.drain()
        job_ids = {body["job_id"] for _, body, _ in responses}
        assert len(job_ids) == 2  # two real executions, by request
        assert service.coalesced == 0
        # no_cache twins are exempt from duplicate accounting too
        assert service.scheduler.duplicate_executions == 0


class TestIdempotency:
    def test_replay_returns_the_original_job(self, tmp_path):
        with _service(tmp_path) as service:
            server = AsyncServerThread(service, host="127.0.0.1", port=0)
            url = server.start()
            try:
                client = ServiceClient(url)
                headers = {"Idempotency-Key": "order-66"}
                _, first = client.submit(
                    dict(PAYLOAD, wait=True), headers=headers)
                code, second = client.submit(
                    dict(PAYLOAD, wait=True), headers=headers)
                # same key, different spec: the key wins, no new job
                _, third = client.submit(
                    {"benchmark": "CG", "problem_class": "S",
                     "wait": True, "job_key": "order-66"})
                _, status = client._request("GET", "/status")
            finally:
                assert server.stop()
        assert code == 200
        assert second["job_id"] == first["job_id"]
        assert third["job_id"] == first["job_id"]
        assert third["spec"]["benchmark"] == "EP"
        assert status["dedup"]["idempotent_replays"] == 2
        assert service.scheduler.executed == 1


class TestDrain:
    def test_drain_resolves_inflight_waiters(self, tmp_path, monkeypatch):
        gate = threading.Event()
        _gate_benchmark(monkeypatch, gate)
        service = _service(tmp_path)
        server = AsyncServerThread(service, host="127.0.0.1", port=0)
        url = server.start()
        results: list[tuple[int, dict]] = []

        def waiter():
            results.append(ServiceClient(url).submit(dict(PAYLOAD, wait=True)))

        thread = threading.Thread(target=waiter)
        thread.start()
        deadline = time.monotonic() + 30
        while service.pool.leases < 1:  # the job is really running
            assert time.monotonic() < deadline
            time.sleep(0.01)
        # open the gate only after the drain has begun: the drain
        # contract is that admitted jobs finish and their waiters see it
        threading.Timer(0.5, gate.set).start()
        assert server.stop()
        thread.join(timeout=30)
        assert not thread.is_alive(), "drain left a waiter hanging"
        code, body = results[0]
        assert code == 200
        assert body["state"] == "done"
        assert body["result"]["verified"] is True

    def test_draining_frontend_rejects_new_jobs(self, tmp_path):
        service = _service(tmp_path)

        async def main():
            frontend = AsyncFrontEnd(service)
            frontend.install(asyncio.get_running_loop())
            frontend.draining = True
            try:
                return await _post(frontend, dict(PAYLOAD))
            finally:
                frontend.uninstall()

        code, body, headers = asyncio.run(main())
        service.drain()
        assert code == 429
        assert "draining" in body["error"]
        assert "Retry-After" in headers


class TestTenantQuotaHTTP:
    def test_over_quota_tenant_gets_structured_429(
        self, tmp_path, monkeypatch
    ):
        gate = threading.Event()
        _gate_benchmark(monkeypatch, gate)
        service = _service(tmp_path, pool_size=1)

        async def main():
            frontend = AsyncFrontEnd(service, window=1, quota=1)
            frontend.install(asyncio.get_running_loop())
            try:
                # distinct no_cache specs so nothing coalesces: the
                # first occupies the window, the second parks (quota 1),
                # the third must bounce
                running = asyncio.create_task(_post(
                    frontend, dict(PAYLOAD, no_cache=True, wait=True),
                    {"x-npb-tenant": "acme"}))
                await _until(lambda: frontend.admission.in_flight == 1)
                parked = asyncio.create_task(_post(
                    frontend, dict(PAYLOAD, workers=1, no_cache=True),
                    {"x-npb-tenant": "acme"}))
                await _until(
                    lambda: frontend.admission.stats()["queued"] == {"acme": 1})
                code, body, headers = await _post(
                    frontend, dict(PAYLOAD, workers=4, no_cache=True),
                    {"x-npb-tenant": "acme"})
                gate.set()
                await asyncio.gather(running, parked)
                return code, body, headers
            finally:
                frontend.uninstall()

        code, body, headers = asyncio.run(main())
        service.drain()
        assert code == 429
        assert body["tenant"] == "acme"
        assert body["pending"] == 1
        assert body["quota"] == 1
        assert "Retry-After" in headers


class TestServiceClientKeepAlive:
    def test_connection_is_reused_across_requests(self, tmp_path):
        with _service(tmp_path) as service:
            server = AsyncServerThread(service, host="127.0.0.1", port=0)
            url = server.start()
            try:
                client = ServiceClient(url)
                client._request("GET", "/status")
                conn = client._local.conn
                assert conn is not None
                client._request("GET", "/status")
                client._request("GET", "/jobs")
                assert client._local.conn is conn  # same socket, 3 requests
            finally:
                client.close()
                assert server.stop()

    def test_stale_connection_is_retried_once_on_a_fresh_one(self, tmp_path):
        with _service(tmp_path) as service:
            server = AsyncServerThread(service, host="127.0.0.1", port=0)
            url = server.start()
            try:
                client = ServiceClient(url)
                client._request("GET", "/status")
                stale = client._local.conn
                stale.sock.close()  # server idle-closed, client can't know
                code, _ = client._request("GET", "/status")
                assert code == 200
                assert client._local.conn is not stale
            finally:
                client.close()
                assert server.stop()

    def test_fresh_connection_failure_is_service_unavailable(self, tmp_path):
        with _service(tmp_path) as service:
            server = AsyncServerThread(service, host="127.0.0.1", port=0)
            url = server.start()
            assert server.stop()
        client = ServiceClient(url)  # nothing listens here any more
        with pytest.raises(ServiceUnavailable):
            client._request("GET", "/status")

    def test_keep_alive_false_never_caches_a_connection(self, tmp_path):
        # The probe mode: liveness is connectability, so each request
        # must dial fresh rather than ride a surviving old socket.
        with _service(tmp_path) as service:
            server = AsyncServerThread(service, host="127.0.0.1", port=0)
            url = server.start()
            try:
                client = ServiceClient(url, keep_alive=False)
                code, _ = client._request("GET", "/status")
                assert code == 200
                assert getattr(client._local, "conn", None) is None
            finally:
                assert server.stop()


class TestStatusSurface:
    def test_status_reports_frontend_and_dedup_counters(self, tmp_path):
        with _service(tmp_path) as service:
            server = AsyncServerThread(
                service, host="127.0.0.1", port=0,
                weights={"gold": 2.0})
            url = server.start()
            try:
                client = ServiceClient(url)
                client.submit(dict(PAYLOAD, wait=True),
                              headers={"X-NPB-Tenant": "gold"})
                _, status = client._request("GET", "/status")
            finally:
                assert server.stop()
        frontend = status["frontend"]
        assert frontend["mode"] == "async"
        assert frontend["admission"]["weights"] == {"gold": 2.0}
        assert frontend["admission"]["granted"] == {"gold": 1}
        assert status["dedup"] == {
            "coalesced": 0,
            "idempotent_replays": 0,
            "duplicate_executions": 0,
        }
