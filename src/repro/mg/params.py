"""MG problem-class parameters and verification constants (mg.f)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.params import ProblemClass, lookup_class


@dataclass(frozen=True)
class MGParams:
    """``nx``: grid size per dimension (cube); ``nit``: V-cycles;
    ``rnm2_verify``: published L2 residual norm after the timed cycles."""

    nx: int
    nit: int
    rnm2_verify: float

    @property
    def lt(self) -> int:
        """Number of grid levels (log2 of the finest grid size)."""
        return self.nx.bit_length() - 1


MG_CLASSES: dict[ProblemClass, MGParams] = {
    ProblemClass.S: MGParams(32, 4, 0.5307707005734e-04),
    ProblemClass.W: MGParams(128, 4, 0.6467329375339e-05),
    ProblemClass.A: MGParams(256, 4, 0.2433365309069e-05),
    ProblemClass.B: MGParams(256, 20, 0.1800564401355e-05),
    ProblemClass.C: MGParams(512, 20, 0.5706732285740e-06),
}

#: Relative tolerance of the rnm2 comparison (mg.f).
MG_EPSILON = 1.0e-8

#: LCG seed for the random charge field (zran3).
MG_SEED = 314159265

#: Residual stencil coefficients a(0..3) (mg.f; a(1) = 0 is never applied).
A_COEFFS = (-8.0 / 3.0, 0.0, 1.0 / 6.0, 1.0 / 12.0)


def smoother_coeffs(problem_class: ProblemClass) -> tuple[float, float, float, float]:
    """Smoother coefficients c(0..3); classes B and C use the stronger set."""
    if problem_class in (ProblemClass.B, ProblemClass.C):
        return (-3.0 / 17.0, 1.0 / 33.0, -1.0 / 61.0, 0.0)
    return (-3.0 / 8.0, 1.0 / 32.0, -1.0 / 64.0, 0.0)


def mg_params(problem_class) -> MGParams:
    return lookup_class(MG_CLASSES, problem_class, "MG")
