"""The LU spatial operator (rhs/erhs in lu.f), slab-parallel.

LU formulates the discrete operator with explicit flux pencils instead of
the expanded per-term form of BT/SP: per direction, a convective flux
vector E(u), a viscous flux built from first differences of the
velocities, and the common 4th-order dissipation.  ``apply_operator_slab``
accumulates the operator of any field into an output array, so it serves
both ``erhs`` (operator of the exact solution -> forcing) and ``rhs``
(operator of u minus forcing -> residual).
"""

from __future__ import annotations

import numpy as np

from repro.cfd.constants import CFDConstants

_AXIS = {"x": 2, "y": 1, "z": 0}


def _interior_view(f, axis: int, offset: int, lo: int, hi: int):
    """Interior view (k in [1+lo,1+hi), j, i interior) of scalar field,
    with the swept axis displaced by ``offset``."""
    slices = [slice(1 + lo, 1 + hi), slice(1, -1), slice(1, -1)]
    base = slices[axis]
    stop = base.stop if base.stop > 0 else f.shape[axis] + base.stop
    slices[axis] = slice(base.start + offset, stop + offset)
    return f[tuple(slices)]


def _convective_flux(field, vel: int, c: CFDConstants):
    """E(field) for the direction with momentum component ``vel``;
    full-grid arrays, shape (nz, ny, nx) per component."""
    u1 = field[..., 0]
    uvel = field[..., vel]
    v = uvel / u1
    q = 0.5 * (field[..., 1] ** 2 + field[..., 2] ** 2
               + field[..., 3] ** 2) / u1
    flux = np.empty(field.shape)
    flux[..., 0] = uvel
    for m in (1, 2, 3):
        if m == vel:
            flux[..., m] = field[..., m] * v + c.c2 * (field[..., 4] - q)
        else:
            flux[..., m] = field[..., m] * v
    flux[..., 4] = (c.c1 * field[..., 4] - c.c2 * q) * v
    return flux


def _viscous_flux(field, vel: int, t3: float, c: CFDConstants):
    """Viscous flux differences along the swept axis.

    Defined at positions 1..n-1 of the swept axis (difference of point i
    and i-1); returned as a full-shape array with position 0 unused.
    """
    axis = {1: 2, 2: 1, 3: 0}[vel]
    tmp = 1.0 / field[..., 0]
    vels = [field[..., m] * tmp for m in (1, 2, 3)]
    e = field[..., 4] * tmp

    def d(g):  # first difference along the swept axis, at positions 1..n-1
        out = np.zeros_like(g)
        sl_hi = [slice(None)] * 3
        sl_lo = [slice(None)] * 3
        sl_hi[axis] = slice(1, None)
        sl_lo[axis] = slice(0, -1)
        tgt = [slice(None)] * 3
        tgt[axis] = slice(1, None)
        out[tuple(tgt)] = g[tuple(sl_hi)] - g[tuple(sl_lo)]
        return out

    flux = np.zeros(field.shape)
    for m in (1, 2, 3):
        coeff = (4.0 / 3.0) if m == vel else 1.0
        flux[..., m] = coeff * t3 * d(vels[m - 1])
    sumsq = vels[0] ** 2 + vels[1] ** 2 + vels[2] ** 2
    flux[..., 4] = (0.5 * (1.0 - c.c1 * c.c5) * t3 * d(sumsq)
                    + (1.0 / 6.0) * t3 * d(vels[vel - 1] ** 2)
                    + c.c1 * c.c5 * t3 * d(e))
    return flux


def apply_operator_slab(lo: int, hi: int, field, out,
                        c: CFDConstants) -> None:
    """Accumulate the LU spatial operator of ``field`` into ``out`` for
    interior k planes [1+lo, 1+hi).

    ``out`` must already hold its base value (0 for erhs, -frct for rhs)
    on those planes.
    """
    if hi <= lo:
        return

    for direction, vel in (("x", 1), ("y", 2), ("z", 3)):
        axis = _AXIS[direction]
        t1 = getattr(c, f"t{direction}1")
        t2 = getattr(c, f"t{direction}2")
        t3 = getattr(c, f"t{direction}3")
        dvec = [getattr(c, f"d{direction}{m}") for m in range(1, 6)]

        eflux = _convective_flux(field, vel, c)
        vflux = _viscous_flux(field, vel, t3, c)

        def C(g, o):
            return _interior_view(g, axis, o, lo, hi)

        for m in range(5):
            out[1 + lo : 1 + hi, 1:-1, 1:-1, m] -= (
                t2 * (C(eflux[..., m], 1) - C(eflux[..., m], -1)))
        out[1 + lo : 1 + hi, 1:-1, 1:-1, 0] += dvec[0] * t1 * (
            C(field[..., 0], -1) - 2.0 * C(field[..., 0], 0)
            + C(field[..., 0], 1))
        for m in range(1, 5):
            fm = field[..., m]
            out[1 + lo : 1 + hi, 1:-1, 1:-1, m] += (
                t3 * c.c3 * c.c4 * (C(vflux[..., m], 1)
                                    - C(vflux[..., m], 0))
                + dvec[m] * t1 * (C(fm, -1) - 2.0 * C(fm, 0) + C(fm, 1)))

        _dissipation(out, field, axis, lo, hi, c.dssp)


def _dissipation(out, field, axis: int, lo: int, hi: int,
                 dssp: float) -> None:
    """Standard NPB 4th-order dissipation of ``field`` subtracted from
    ``out`` on the slab interior (same stencil family as BT/SP)."""
    n = field.shape[axis]

    if axis != 0:
        def F(alo, ahi, off):
            slices = [slice(1 + lo, 1 + hi), slice(1, -1), slice(1, -1),
                      slice(None)]
            slices[axis] = slice(alo + off, ahi + off + 1)
            return field[tuple(slices)]

        def T(alo, ahi):
            slices = [slice(1 + lo, 1 + hi), slice(1, -1), slice(1, -1),
                      slice(None)]
            slices[axis] = slice(alo, ahi + 1)
            return out[tuple(slices)]

        T(1, 1)[...] -= dssp * (5.0 * F(1, 1, 0) - 4.0 * F(1, 1, 1)
                                + F(1, 1, 2))
        T(2, 2)[...] -= dssp * (-4.0 * F(2, 2, -1) + 6.0 * F(2, 2, 0)
                                - 4.0 * F(2, 2, 1) + F(2, 2, 2))
        alo, ahi = 3, n - 4
        if ahi >= alo:
            T(alo, ahi)[...] -= dssp * (
                F(alo, ahi, -2) - 4.0 * F(alo, ahi, -1)
                + 6.0 * F(alo, ahi, 0) - 4.0 * F(alo, ahi, 1)
                + F(alo, ahi, 2))
        i = n - 3
        T(i, i)[...] -= dssp * (F(i, i, -2) - 4.0 * F(i, i, -1)
                                + 6.0 * F(i, i, 0) - 4.0 * F(i, i, 1))
        i = n - 2
        T(i, i)[...] -= dssp * (F(i, i, -2) - 4.0 * F(i, i, -1)
                                + 5.0 * F(i, i, 0))
        return

    for k in range(1 + lo, 1 + hi):
        target = out[k, 1:-1, 1:-1, :]

        def fk(o, _k=k):
            return field[_k + o, 1:-1, 1:-1, :]

        if k == 1:
            target -= dssp * (5.0 * fk(0) - 4.0 * fk(1) + fk(2))
        elif k == 2:
            target -= dssp * (-4.0 * fk(-1) + 6.0 * fk(0)
                              - 4.0 * fk(1) + fk(2))
        elif k == n - 3:
            target -= dssp * (fk(-2) - 4.0 * fk(-1) + 6.0 * fk(0)
                              - 4.0 * fk(1))
        elif k == n - 2:
            target -= dssp * (fk(-2) - 4.0 * fk(-1) + 5.0 * fk(0))
        else:
            target -= dssp * (fk(-2) - 4.0 * fk(-1) + 6.0 * fk(0)
                              - 4.0 * fk(1) + fk(2))


def rhs_slab(lo: int, hi: int, u, rsd, frct, c: CFDConstants) -> None:
    """rsd = operator(u) - frct on interior planes (rhs in lu.f).

    Boundary planes/rows of rsd are set to -frct by the slabs that own
    them (the triangular sweeps never read them, matching the Fortran,
    whose rsd boundary entries are -frct as well)."""
    if hi <= lo:
        return
    nz = u.shape[0]
    klo = 0 if lo == 0 else 1 + lo
    khi = nz if hi == nz - 2 else 1 + hi
    rsd[klo:khi] = -frct[klo:khi]
    apply_operator_slab(lo, hi, u, rsd, c)
