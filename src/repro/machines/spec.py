"""Machine and JVM model records."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class OpCategory(str, Enum):
    """Basic-operation categories that benchmark work decomposes into.

    The first four correspond to the paper's Table 1 microbenchmarks;
    IRREGULAR covers indirect addressing (CG's sparse matvec, IS's
    histogram), where the Fortran compiler's regular-stride advantage --
    and hence the Java gap -- largely disappears.
    """

    COPY = "copy"             # assignment / data movement
    STENCIL = "stencil"       # star-stencil filters
    BLOCKSOLVE = "blocksolve"  # 5x5 matrix-vector / line-solve arithmetic
    REDUCTION = "reduction"
    IRREGULAR = "irregular"


@dataclass(frozen=True)
class JVMModel:
    """Per-JVM translation inefficiency and threading behaviour.

    ``op_ratio`` maps each operation category to the Java/Fortran serial
    time ratio for that category (calibrated from Table 1 for the
    Origin2000's JVM and scaled by JIT quality for the others).

    ``thread_overhead`` is the fractional cost of running under the
    master-worker machinery with one worker (paper: <= 20%).

    ``sync_us`` is the cost of one barrier / notify-wait round trip in
    microseconds.

    ``coalesces_idle_threads`` reproduces the pathology of section 5.2:
    threads with little work are scheduled onto 1-2 processors unless an
    artificial per-thread warm-up load forces placement.

    ``big_job_cpu_cap``: (memory_mb_threshold, cpu_cap) -- the E10000 JVM
    refused to use more than 4 CPUs for jobs with large heaps (FT.A at
    ~350 MB).  None when the JVM has no such cap.
    """

    name: str
    op_ratio: dict[OpCategory, float]
    thread_overhead: float = 0.15
    sync_us: float = 50.0
    coalesces_idle_threads: bool = False
    low_work_cpu_limit: int = 2
    big_job_cpu_cap: "tuple[float, int] | None" = None
    #: hard cap on CPUs the JVM actually spreads threads over (the 2001
    #: Linux JVM pinned all threads to one CPU); None = no cap.
    parallel_cpu_limit: "int | None" = None


@dataclass(frozen=True)
class MachineSpec:
    """One SMP machine from the paper's evaluation."""

    name: str
    clock_mhz: float
    ncpus: int
    #: sustained Mop/s of compiled (f77) code on structured CFD work,
    #: per CPU.  Sets the absolute scale of predicted times.
    fortran_mops: float
    #: relative memory-bandwidth generosity (1.0 = balanced); discounts
    #: the Java penalty for memory-bound categories.
    memory_balance: float
    jvm: JVMModel
    #: f77-OpenMP runtime: fractional overhead and barrier cost.
    openmp_overhead: float = 0.05
    openmp_sync_us: float = 10.0
    #: serial (non-parallelizable) fraction of benchmark work; a machine
    #: property in the model because it folds in the cost of the memory
    #: system under parallel load.
    serial_fraction: float = 0.02

    def worker_counts(self) -> list[int]:
        counts = []
        w = 1
        while w <= self.ncpus:
            counts.append(w)
            w *= 2
        return counts
