"""Tests for the serial, thread, and process team backends."""

import numpy as np
import pytest

from repro.team import ProcessTeam, SerialTeam, ThreadTeam, make_team
from repro.team.procs import WorkerError


# Module-level task functions (picklable for the process backend).

def fill_slab(lo, hi, out, value):
    out[lo:hi] = value


def square_slab(lo, hi, src, dst):
    dst[lo:hi] = src[lo:hi] ** 2


def partial_sum(lo, hi, data):
    return float(data[lo:hi].sum())


def rank_info(rank, nworkers):
    return (rank, nworkers)


def failing_task(lo, hi):
    raise ValueError("deliberate failure")


def slab_bounds(lo, hi):
    return (lo, hi)


class TestMakeTeam:
    def test_known_backends(self):
        assert isinstance(make_team("serial"), SerialTeam)
        with make_team("threads", 2) as t:
            assert isinstance(t, ThreadTeam)
        with make_team("process", 2) as t:
            assert isinstance(t, ProcessTeam)

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_team("mpi")

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ThreadTeam(0)
        with pytest.raises(ValueError):
            ProcessTeam(0)


class TestAnyBackend:
    """Behaviour every backend must share."""

    def test_parallel_for_covers_range(self, any_team):
        out = any_team.shared(101)
        any_team.parallel_for(101, fill_slab, out, 7.0)
        assert np.all(out == 7.0)

    def test_parallel_for_results_in_rank_order(self, any_team):
        bounds = any_team.parallel_for(20, slab_bounds)
        flat = [i for lo, hi in bounds for i in range(lo, hi)]
        assert flat == list(range(20))

    def test_reduction(self, any_team):
        data = any_team.shared(1000)
        data[:] = np.arange(1000.0)
        total = any_team.reduce_sum(1000, partial_sum, data)
        assert total == pytest.approx(999 * 1000 / 2)

    def test_dependent_stages_see_writes(self, any_team):
        src = any_team.shared(64)
        dst = any_team.shared(64)
        any_team.parallel_for(64, fill_slab, src, 3.0)
        any_team.parallel_for(64, square_slab, src, dst)
        assert np.all(dst == 9.0)

    def test_run_on_all(self, any_team):
        infos = any_team.run_on_all(rank_info)
        assert infos == [(r, any_team.nworkers)
                         for r in range(any_team.nworkers)]

    def test_empty_range(self, any_team):
        out = any_team.shared(4)
        any_team.parallel_for(0, fill_slab, out, 1.0)
        assert np.all(out == 0.0)


class TestThreadTeam:
    def test_exception_propagates(self, thread_team):
        with pytest.raises(ValueError, match="deliberate failure"):
            thread_team.parallel_for(10, failing_task)

    def test_team_usable_after_exception(self, thread_team):
        with pytest.raises(ValueError):
            thread_team.parallel_for(10, failing_task)
        out = thread_team.shared(10)
        thread_team.parallel_for(10, fill_slab, out, 2.0)
        assert np.all(out == 2.0)

    def test_closed_team_rejects_work(self):
        team = ThreadTeam(2)
        team.close()
        with pytest.raises(RuntimeError, match="closed"):
            team.parallel_for(4, slab_bounds)

    def test_close_idempotent(self):
        team = ThreadTeam(2)
        team.close()
        team.close()


class TestProcessTeam:
    def test_exception_propagates_with_traceback(self, process_team):
        with pytest.raises(WorkerError, match="deliberate failure"):
            process_team.parallel_for(10, failing_task)

    def test_team_usable_after_exception(self, process_team):
        with pytest.raises(WorkerError):
            process_team.parallel_for(10, failing_task)
        out = process_team.shared(10)
        process_team.parallel_for(10, fill_slab, out, 2.0)
        assert np.all(out == 2.0)

    def test_cross_process_write_visibility(self, process_team):
        out = process_team.shared(128)
        process_team.parallel_for(128, fill_slab, out, 5.0)
        # Master reads what workers wrote.
        assert out.sum() == 5.0 * 128

    def test_shared_view_rejected(self, process_team):
        out = process_team.shared((8, 8))
        with pytest.raises(ValueError, match="not views"):
            process_team.parallel_for(8, fill_slab, out[2:, :], 1.0)

    def test_non_shared_array_passed_by_value(self, process_team):
        # Read-only coefficient arrays may be plain numpy (pickled).
        coeffs = np.arange(4.0)
        total = process_team.reduce_sum(4, partial_sum, coeffs)
        assert total == 6.0

    def test_shared_dtype_and_shape(self, process_team):
        arr = process_team.shared((3, 4), dtype=np.int64)
        assert arr.shape == (3, 4)
        assert arr.dtype == np.int64
        assert np.all(arr == 0)

    def test_closed_team_rejects_work(self):
        team = ProcessTeam(2)
        team.close()
        with pytest.raises(RuntimeError, match="closed"):
            team.parallel_for(4, slab_bounds)
