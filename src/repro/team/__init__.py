"""Parallel runtime for the NPB-Python suite.

The paper parallelizes the Java benchmarks with a master--worker model:
every benchmark class extends ``java.lang.Thread``, the master switches
workers between blocked and runnable with ``wait()``/``notify()``, and work
is block-partitioned over the outermost grid dimension exactly as in the
OpenMP NPB.  This package reproduces that structure with three
interchangeable backends:

``serial``
    No workers; ``parallel_for`` degenerates to a direct call.  This is the
    reference against which the parallel backends are verified.

``threads``
    Persistent Python threads blocked on a condition variable -- the literal
    analogue of the paper's wait()/notify() master--worker scheme.  Subject
    to the GIL for interpreted code, but NumPy kernels release the GIL.

``process``
    Persistent forked worker processes with arrays in POSIX shared memory
    (``multiprocessing.shared_memory``) -- the GIL-free rework called for by
    the reproduction notes.

All backends implement the same :class:`~repro.team.base.Team` interface and
must produce bit-identical benchmark results; the test suite enforces this.
Task/result/error bookkeeping and per-region instrumentation live in the
shared dispatch core (see :mod:`repro.runtime`); each backend contributes
only its transport.
"""

from repro.runtime.dispatch import FaultEvent, FaultPolicy
from repro.team.base import Team, team_worker_counts
from repro.team.partition import block_partition, partition_bounds
from repro.team.serial import SerialTeam
from repro.team.threads import ThreadTeam
from repro.team.procs import ProcessTeam, SharedArrayRef

_BACKENDS = {
    "serial": SerialTeam,
    "threads": ThreadTeam,
    "process": ProcessTeam,
}


def make_team(backend: str = "serial", nworkers: int = 1,
              policy: FaultPolicy | None = None,
              kernel_backend: str = "fused") -> Team:
    """Create a team by backend name (``serial``, ``threads``, ``process``).

    ``policy`` carries the fault-tolerance knobs (per-dispatch timeout,
    respawn retries, backoff); ``None`` means the defaults of
    :class:`~repro.runtime.dispatch.FaultPolicy` (no deadline, 2 retries).
    ``kernel_backend`` selects the kernel tier every dispatch of this team
    resolves against (see :mod:`repro.kernels.registry`).
    """
    try:
        cls = _BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {sorted(_BACKENDS)}"
        ) from None
    if backend == "serial":
        return cls(policy=policy, kernel_backend=kernel_backend)
    return cls(nworkers, policy=policy, kernel_backend=kernel_backend)


__all__ = [
    "Team",
    "SerialTeam",
    "ThreadTeam",
    "ProcessTeam",
    "SharedArrayRef",
    "FaultEvent",
    "FaultPolicy",
    "make_team",
    "block_partition",
    "partition_bounds",
    "team_worker_counts",
]
