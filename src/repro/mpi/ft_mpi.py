"""FT over message passing: the NPB2 FT-MPI slab algorithm.

Decomposition: each rank owns a contiguous slab of z planes for the x/y
transforms and a contiguous slab of y rows for the z transform; the two
layouts are connected by a personalized all-to-all transpose, exactly as
in the reference FT-MPI "1-D layout" code.  The spectral evolve happens
in the z-major (y-slab) layout, so one transpose per inverse transform
and one at startup suffice.

Verified against the same official checksums as the shared-memory FT.
"""

from __future__ import annotations

import numpy as np

from repro.common.randdp import Randlc
from repro.ft.fft import fft_rows
from repro.ft.params import ALPHA, FT_SEED, ft_params
from repro.mpi.comm import Communicator, mpi_run
from repro.team.partition import block_partition, partition_bounds


def _fft_axis_local(x: np.ndarray, axis: int, sign: int) -> np.ndarray:
    moved = np.ascontiguousarray(np.moveaxis(x, axis, -1))
    out = fft_rows(moved.reshape(-1, moved.shape[-1]), sign)
    return np.moveaxis(out.reshape(moved.shape), -1, axis)


def _initial_slab(nx: int, ny: int, zlo: int, zhi: int) -> np.ndarray:
    """This rank's z-slab of the initial conditions (LCG jump per plane)."""
    per_plane = 2 * nx * ny
    rng = Randlc(FT_SEED)
    rng.skip(per_plane * zlo)
    u = np.empty((zhi - zlo, ny, nx), dtype=np.complex128)
    for k in range(zhi - zlo):
        values = rng.batch(per_plane)
        u[k].real = values[0::2].reshape(ny, nx)
        u[k].imag = values[1::2].reshape(ny, nx)
    return u


def _transpose_z_to_y(comm: Communicator, slab: np.ndarray,
                      ny: int, nz: int) -> np.ndarray:
    """(z-slab, full y) -> (full z, y-slab) via alltoall."""
    chunks = [np.ascontiguousarray(slab[:, lo:hi, :])
              for lo, hi in block_partition(ny, comm.size)]
    received = comm.alltoall(chunks)
    return np.concatenate(received, axis=0)


def _transpose_y_to_z(comm: Communicator, slab: np.ndarray,
                      ny: int, nz: int) -> np.ndarray:
    """(full z, y-slab) -> (z-slab, full y) via alltoall."""
    chunks = [np.ascontiguousarray(slab[lo:hi, :, :])
              for lo, hi in block_partition(nz, comm.size)]
    received = comm.alltoall(chunks)
    return np.concatenate(received, axis=1)


def _rank_program(comm: Communicator, problem_class: str) -> list[complex]:
    params = ft_params(problem_class)
    nx, ny, nz = params.nx, params.ny, params.nz
    niter = params.niter
    zlo, zhi = partition_bounds(nz, comm.size, comm.rank)
    ylo, yhi = partition_bounds(ny, comm.size, comm.rank)

    # local initial conditions + x/y transforms in the z-slab layout
    u = _initial_slab(nx, ny, zlo, zhi)
    u = _fft_axis_local(u, 2, 1)
    u = _fft_axis_local(u, 1, 1)
    # transpose and finish the forward transform along z
    u_hat = _transpose_z_to_y(comm, u, ny, nz)
    u_hat = _fft_axis_local(u_hat, 0, 1)

    # damping factors in the y-slab layout
    ap = -4.0 * ALPHA * np.pi * np.pi
    kx = (np.arange(nx) + nx // 2) % nx - nx // 2
    ky = (np.arange(ylo, yhi) + ny // 2) % ny - ny // 2
    kz = (np.arange(nz) + nz // 2) % nz - nz // 2
    k2 = ((kz * kz)[:, None, None] + (ky * ky)[None, :, None]
          + (kx * kx)[None, None, :])
    twiddle = np.exp(ap * k2.astype(np.float64))

    # checksum index set, restricted to this rank's final z-slab
    j = np.arange(1, 1025)
    q = j % nx
    r = (3 * j) % ny
    s = (5 * j) % nz
    mine = (s >= zlo) & (s < zhi)

    checksums: list[complex] = []
    for _ in range(niter):
        u_hat *= twiddle
        # inverse: z first (local in this layout), transpose, then y, x
        u2 = _fft_axis_local(u_hat, 0, -1)
        u2 = _transpose_y_to_z(comm, u2, ny, nz)
        u2 = _fft_axis_local(u2, 1, -1)
        u2 = _fft_axis_local(u2, 2, -1)
        local = complex(u2[s[mine] - zlo, r[mine], q[mine]].sum())
        total = comm.allreduce(local, op=lambda a, b: a + b)
        checksums.append(total / params.ntotal)
    return checksums


def ft_mpi_checksums(problem_class: str = "S",
                     nprocs: int = 4) -> list[complex]:
    """Run FT class ``problem_class`` on ``nprocs`` ranks; returns the
    per-iteration checksums (compare with ft_params(...).checksums)."""
    results = mpi_run(nprocs, _rank_program, problem_class)
    # every rank holds the identical allreduced checksums
    return results[0]
