"""NPB-Python: the NAS Parallel Benchmarks in Python.

A reproduction of Frumkin, Schultz, Jin & Yan, "Performance and Scalability
of the NAS Parallel Benchmarks in Java" (IPPS 2003).  The suite contains
the three simulated CFD applications (BT, SP, LU) and five kernels (FT, MG,
CG, IS, EP), a serial/threads/process parallel runtime in the paper's
master--worker style, the paper's basic-CFD-operation microbenchmarks, a
calibrated performance model of the paper's five test machines, and a
harness that regenerates every table of the paper's evaluation.

Quickstart
----------
>>> from repro import run_benchmark
>>> result = run_benchmark("CG", "S")
>>> result.verified
True
"""

from repro.core.benchmark import BenchmarkResult, NPBenchmark
from repro.core.registry import available_benchmarks, get_benchmark
from repro.team import make_team

__version__ = "3.0.0"


def run_benchmark(name: str, problem_class: str = "S",
                  backend: str = "serial", nworkers: int = 1,
                  policy=None, kernel_backend: str = "fused") -> BenchmarkResult:
    """Run one benchmark end to end and return its result record.

    Parameters
    ----------
    name : benchmark mnemonic (BT, SP, LU, FT, MG, CG, IS, EP)
    problem_class : NPB class letter (S, W, A, B, C)
    backend : "serial", "threads", or "process"
    nworkers : worker count for the parallel backends
    policy : optional :class:`~repro.runtime.dispatch.FaultPolicy`
        (per-dispatch timeout, respawn retries, backoff)
    kernel_backend : kernel tier ("reference", "fused", "compiled") the
        team resolves registered kernels against
        (see :mod:`repro.kernels.registry`)
    """
    cls = get_benchmark(name)
    with make_team(backend, nworkers, policy=policy,
                   kernel_backend=kernel_backend) as team:
        benchmark = cls(problem_class, team)
        return benchmark.run()


__all__ = [
    "run_benchmark",
    "get_benchmark",
    "available_benchmarks",
    "make_team",
    "NPBenchmark",
    "BenchmarkResult",
    "__version__",
]
