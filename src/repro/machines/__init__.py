"""Performance models of the paper's five test machines.

The paper's Tables 2-6 are functions of a small set of machine facts:
CPU clock and count, the JVM's per-operation-category inefficiency
(calibrated by the basic-op microbenchmarks of Table 1), thread creation
and synchronization overheads, and two JVM scheduler pathologies
(coalescing of low-work threads; the memory-driven CPU cap on the SUN
E10000).  This package encodes those facts per machine and derives every
table row from per-benchmark workload profiles -- an analytical model in
the tradition of the paper's own perfex analysis, not a lookup table of
the paper's results.

Modeled machines: IBM p690, SGI Origin2000, SUN Enterprise10000,
a 2-CPU Pentium-III Linux PC, and a 2-CPU Apple Xserve G4.
"""

from repro.machines.spec import JVMModel, MachineSpec, OpCategory
from repro.machines.specs import MACHINES, machine
from repro.machines.workloads import WORKLOADS, WorkloadProfile, workload
from repro.machines.simulator import (
    predict_basic_op,
    predict_benchmark,
    speedup_curve,
)

__all__ = [
    "MachineSpec",
    "JVMModel",
    "OpCategory",
    "MACHINES",
    "machine",
    "WORKLOADS",
    "WorkloadProfile",
    "workload",
    "predict_benchmark",
    "predict_basic_op",
    "speedup_curve",
]
