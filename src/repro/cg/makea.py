"""Generation of the CG sparse matrix (NPB ``makea``/``sprnvc``/``vecset``/``sparse``).

The matrix is a sum of weighted outer products of sparse random vectors,

    A = sum_i  omega_i  v_i v_i^T  +  (rcond - shift) I,

with geometrically decaying weights ``omega_i = rcond**(i/n)`` so that the
condition number is approximately ``1/rcond``.  Every random draw consumes
values from the NPB 46-bit LCG in exactly the Fortran order (including the
draws discarded by the rejection steps), so the assembled matrix -- and
therefore the published ``zeta`` verification values -- are reproduced
bit-faithfully.

The final CSR assembly keeps the Fortran semantics: duplicate entries are
summed in generation-scan order, entries that sum to exactly zero are
dropped, and within each row columns appear in first-occurrence order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.randdp import Randlc


@dataclass
class CSRMatrix:
    """Compressed-sparse-row matrix with 0-based indices.

    ``rowstr`` has ``n + 1`` entries; row ``i``'s entries live in
    ``a[rowstr[i]:rowstr[i+1]]`` with columns ``colidx[rowstr[i]:rowstr[i+1]]``.
    """

    n: int
    rowstr: np.ndarray  # int64, shape (n+1,)
    colidx: np.ndarray  # int64, shape (nnz,)
    a: np.ndarray       # float64, shape (nnz,)

    @property
    def nnz(self) -> int:
        return int(self.rowstr[-1])

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Dense ``A @ x`` (reference path; the benchmark uses slab matvec)."""
        products = self.a * x[self.colidx]
        return np.add.reduceat(products, self.rowstr[:-1])

    def to_dense(self) -> np.ndarray:
        """Dense copy, for small-matrix tests only."""
        dense = np.zeros((self.n, self.n))
        for i in range(self.n):
            sl = slice(self.rowstr[i], self.rowstr[i + 1])
            dense[i, self.colidx[sl]] += self.a[sl]
        return dense


class _Stream:
    """Buffered scalar view of the LCG so ``sprnvc`` stays cheap in Python."""

    __slots__ = ("rng", "_buf", "_pos")

    def __init__(self, rng: Randlc, buffer_size: int = 1 << 14):
        self.rng = rng
        self._buf = rng.batch(buffer_size)
        self._pos = 0

    def next(self) -> float:
        if self._pos >= len(self._buf):
            self._buf = self.rng.batch(len(self._buf))
            self._pos = 0
        value = self._buf[self._pos]
        self._pos += 1
        return value


def _sprnvc(n: int, nz: int, nn1: int, stream: _Stream) -> tuple[list, list]:
    """One sparse random vector: ``nz`` (value, 1-based index) pairs.

    Follows the Fortran rejection scheme exactly: each candidate consumes
    two LCG draws; indices above ``n`` or already present are discarded
    (with their draws).
    """
    values: list[float] = []
    indices: list[int] = []
    seen: set[int] = set()
    while len(values) < nz:
        vecelt = stream.next()
        vecloc = stream.next()
        i = int(nn1 * vecloc) + 1  # icnvrt: truncate toward zero
        if i > n or i in seen:
            continue
        seen.add(i)
        values.append(vecelt)
        indices.append(i)
    return values, indices


def _vecset(values: list, indices: list, i: int, val: float) -> None:
    """Force element ``i`` (1-based) of the sparse vector to ``val``."""
    for k, idx in enumerate(indices):
        if idx == i:
            values[k] = val
            return
    values.append(val)
    indices.append(i)


def makea(n: int, nonzer: int, rcond: float, shift: float,
          rng: Randlc) -> CSRMatrix:
    """Build the CG matrix for order ``n`` (the Fortran ``makea``).

    ``rng`` carries the LCG state; the caller must already have consumed the
    single draw the CG main program makes before ``makea`` (the initial
    ``zeta = randlc(tran, amult)``).
    """
    stream = _Stream(rng)
    nn1 = 1
    while nn1 < n:
        nn1 *= 2

    size = 1.0
    ratio = rcond ** (1.0 / n)

    arow_parts: list[np.ndarray] = []
    acol_parts: list[np.ndarray] = []
    aelt_parts: list[np.ndarray] = []

    for iouter in range(1, n + 1):
        values, indices = _sprnvc(n, nonzer, nn1, stream)
        _vecset(values, indices, iouter, 0.5)
        v = np.asarray(values)
        iv = np.asarray(indices, dtype=np.int64)
        nzv = len(v)
        # Outer product block in Fortran scan order:
        #   for ivelt (column), for ivelt1 (row):
        #     aelt = size * v[ivelt] * v[ivelt1]
        acol_parts.append(np.repeat(iv, nzv))
        arow_parts.append(np.tile(iv, nzv))
        aelt_parts.append((size * np.outer(v, v)).ravel())
        size *= ratio

    # Shifted identity, appended after all outer products (Fortran order).
    diag = np.arange(1, n + 1, dtype=np.int64)
    arow_parts.append(diag)
    acol_parts.append(diag)
    aelt_parts.append(np.full(n, rcond - shift))

    arow = np.concatenate(arow_parts) - 1  # to 0-based
    acol = np.concatenate(acol_parts) - 1
    aelt = np.concatenate(aelt_parts)
    return _sparse(n, arow, acol, aelt)


def _sparse(n: int, arow: np.ndarray, acol: np.ndarray,
            aelt: np.ndarray) -> CSRMatrix:
    """CSR assembly matching the Fortran ``sparse`` routine.

    Duplicates are summed in scan order, exact zeros dropped, and each row's
    columns ordered by first occurrence in the scan.
    """
    keys = arow * np.int64(n) + acol
    unique_keys, first_idx, inverse = np.unique(
        keys, return_index=True, return_inverse=True
    )
    sums = np.zeros(len(unique_keys))
    np.add.at(sums, inverse, aelt)  # accumulates in scan order within groups

    rows = unique_keys // n
    # Order: primary by row, secondary by first occurrence in the scan.
    order = np.lexsort((first_idx, rows))
    rows = rows[order]
    cols = (unique_keys % n)[order]
    vals = sums[order]

    keep = vals != 0.0
    rows, cols, vals = rows[keep], cols[keep], vals[keep]

    rowstr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(rowstr, rows + 1, 1)
    np.cumsum(rowstr, out=rowstr)
    return CSRMatrix(n=n, rowstr=rowstr, colidx=cols.astype(np.int64), a=vals)
