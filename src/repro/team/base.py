"""Abstract Team interface.

A *team* is one master plus ``nworkers`` workers.  Benchmarks express their
parallel structure exclusively through this interface so that the same code
runs under all backends:

``parallel_for(n, fn, *args)``
    The workhorse.  ``range(n)`` (the outermost grid dimension, as in the
    OpenMP NPB) is block-partitioned; each worker calls
    ``fn(lo, hi, *args)`` on its block.  Returns the list of per-worker
    return values in rank order, which is how reductions are expressed
    (each worker returns its partial, the master combines).  The return of
    ``parallel_for`` is a full barrier: all workers have finished.

``run_on_all(fn, *args)``
    Every worker calls ``fn(rank, nworkers, *args)`` once -- used for
    worker-private setup such as the paper's CG "initialization load"
    warm-up fix.

``shared(shape, dtype)``
    Allocate an array visible to master and all workers.  Plain ``np.zeros``
    for serial/threads; POSIX shared memory for the process backend.

For the process backend, ``fn`` must be a module-level (picklable) function
and array arguments must be team-shared arrays; the serial and thread
backends accept anything callable.  Benchmarks in this suite follow the
stricter convention throughout.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Sequence

import numpy as np


class Team(ABC):
    """One master plus ``nworkers`` workers executing slab tasks."""

    #: backend name, set by subclasses
    backend: str = "abstract"

    @property
    @abstractmethod
    def nworkers(self) -> int:
        """Number of workers (1 for the serial backend)."""

    @abstractmethod
    def parallel_for(self, n: int, fn: Callable, *args: Any) -> list[Any]:
        """Block-partition ``range(n)``; worker ``r`` runs ``fn(lo_r, hi_r, *args)``.

        Implicit barrier on return.  Returns per-worker results in rank order.
        """

    @abstractmethod
    def run_on_all(self, fn: Callable, *args: Any) -> list[Any]:
        """Every worker runs ``fn(rank, nworkers, *args)`` once; barrier."""

    def shared(self, shape: Sequence[int] | int, dtype=np.float64) -> np.ndarray:
        """Allocate a zero-initialized array visible to all team members."""
        return np.zeros(shape, dtype=dtype)

    def reduce_sum(self, n: int, fn: Callable, *args: Any) -> float:
        """Sum of per-worker partials from ``fn(lo, hi, *args)``."""
        return float(sum(self.parallel_for(n, fn, *args)))

    def close(self) -> None:
        """Shut workers down and release shared resources (idempotent)."""

    def __enter__(self) -> "Team":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def team_worker_counts(max_workers: int) -> list[int]:
    """Thread counts used in the paper's tables: 1, 2, 4, ... up to the limit."""
    counts = []
    w = 1
    while w <= max_workers:
        counts.append(w)
        w *= 2
    return counts
