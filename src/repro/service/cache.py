"""Content-addressed result cache for the benchmark job service.

Completed run records (``BenchmarkResult.to_dict()`` plus service
provenance) are stored on disk as ``<fingerprint>.json``, where the
fingerprint is the sha256 of the submitting :class:`~repro.service.jobs.JobSpec`
-- benchmark, class, backend, workers, fault flags, git SHA, and
python/numpy versions.  Because every benchmark in the suite is
deterministic and the backends are bit-identical (the equivalence suite
enforces it), an identical re-submission *is* the same computation, so
returning the stored record is exact, not approximate.

The cache is an LRU bounded by entry count: ``get`` refreshes the
entry's mtime, ``put`` evicts the stalest entries beyond the bound.
Everything is JSON on disk so records survive service restarts and can
be inspected with ordinary tools; a corrupt file is treated as a miss
and removed rather than poisoning the service -- and every such heal is
counted (``corruption_healed``) and surfaced through ``/status``, so
disk damage is visible instead of silently folded into the miss rate.
"""

from __future__ import annotations

import json
import os
import threading
import time


class ResultCache:
    """Disk-backed, LRU-bounded map from spec fingerprint to run record."""

    def __init__(self, directory: str, max_entries: int = 256):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.directory = directory
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: corrupt entries healed (unlinked + counted as a miss); surfaced
        #: in /status so operators see disk damage instead of it being
        #: silently absorbed into the miss rate
        self.corruption_healed = 0
        #: optional ChaosInjector (fault-injection tests); None = off
        self.chaos = None
        os.makedirs(directory, exist_ok=True)

    # ------------------------------------------------------------------ #

    def _path(self, fingerprint: str) -> str:
        if not fingerprint or os.sep in fingerprint or "." in fingerprint:
            raise ValueError(f"malformed fingerprint {fingerprint!r}")
        return os.path.join(self.directory, f"{fingerprint}.json")

    def get(self, fingerprint: str) -> dict | None:
        """Stored record for ``fingerprint``, or None on a miss.

        A hit refreshes the entry's mtime (the LRU clock).
        """
        path = self._path(fingerprint)
        if self.chaos is not None:
            self.chaos.on_cache("cache.get", path)
        with self._lock:
            try:
                with open(path) as fh:
                    record = json.load(fh)
            except FileNotFoundError:
                self.misses += 1
                return None
            except (OSError, json.JSONDecodeError):
                # A torn or corrupt entry must not poison the service:
                # drop it, count the heal, and treat the lookup as a miss.
                try:
                    os.unlink(path)
                    self.corruption_healed += 1
                except OSError:
                    pass
                self.misses += 1
                return None
            try:
                os.utime(path, None)
            except OSError:
                pass
            self.hits += 1
            return record

    def put(self, fingerprint: str, record: dict) -> str:
        """Store ``record`` under ``fingerprint``; evict beyond the bound.

        The write is atomic (tmp + rename) so a concurrent ``get`` never
        sees a half-written entry.
        """
        path = self._path(fingerprint)
        with self._lock:
            tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
            with open(tmp, "w") as fh:
                json.dump(record, fh, indent=2)
                fh.write("\n")
            os.replace(tmp, path)
            self._evict_locked()
        if self.chaos is not None:
            self.chaos.on_cache("cache.put", path)
        return path

    def _evict_locked(self) -> None:
        entries = self._entries()
        excess = len(entries) - self.max_entries
        if excess <= 0:
            return
        entries.sort(key=lambda pair: pair[1])  # stalest mtime first
        for name, _ in entries[:excess]:
            try:
                os.unlink(os.path.join(self.directory, name))
                self.evictions += 1
            except OSError:
                pass

    def _entries(self) -> list[tuple[str, float]]:
        entries = []
        try:
            names = os.listdir(self.directory)
        except OSError:
            return entries
        for name in names:
            if not name.endswith(".json"):
                continue
            try:
                entries.append(
                    (name, os.stat(os.path.join(self.directory, name)).st_mtime)
                )
            except OSError:
                continue
        return entries

    # ------------------------------------------------------------------ #

    @property
    def entries(self) -> int:
        with self._lock:
            return len(self._entries())

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> dict:
        return {
            "directory": self.directory,
            "entries": self.entries,
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "corruption_healed": self.corruption_healed,
        }


def provenance(job_id: str, fingerprint: str) -> dict:
    """Stamp stored with every cached record: who computed it and when.

    A later cache hit carries this through, so a ``cached`` job's record
    always names the job that actually executed.
    """
    return {
        "source_job_id": job_id,
        "fingerprint": fingerprint,
        "stored_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
