"""Ablation: LU sweep orderings (hyperplane vs the paper's plane order).

Both orderings compute bit-identical results; they differ in the number
of synchronization groups per sweep (~3n for hyperplanes vs ~n*(2n-3)
for per-plane diagonals).  The paper attributes LU's lower thread
scalability to the latter structure; with a dispatching team the group
count is directly visible as overhead.
"""

import pytest

from repro.lu import LU
from repro.lu.sweep import hyperplanes, plane_wavefronts


@pytest.mark.parametrize("mode", ["hyperplane", "plane"])
def test_lu_class_s_sweep_mode(benchmark, mode):
    instances = []

    def make():
        bench = LU("S", sweep_mode=mode)
        bench.setup()
        instances.append(bench)
        return (), {}

    benchmark.extra_info["sweep_mode"] = mode
    n = LU("S").params.problem_size
    grouping = hyperplanes if mode == "hyperplane" else plane_wavefronts
    benchmark.extra_info["sync_groups_per_sweep"] = (
        len(grouping(n, n, n)[3]) - 1)
    benchmark.pedantic(lambda: instances[-1]._iterate(), setup=make,
                       rounds=1, iterations=1)
    assert instances[-1].verify().verified
