"""FT: 3-D Fast Fourier Transform PDE benchmark.

Solves a 3-D heat-diffusion equation spectrally: the initial state is a
grid of complex LCG deviates, transformed once forward, damped in Fourier
space with precomputed Gaussian factors each time step, and transformed
back to compute a 1024-point checksum per step.

The FFT itself is a from-scratch vectorized Stockham (autosort) radix-2
transform (:mod:`repro.ft.fft`) -- no ``numpy.fft`` -- matching the
``cfftz`` kernel of ft.f.

FT is the benchmark whose 350 MB class-A footprint exposed the JVM's
memory-driven processor cap on the SUN Enterprise (paper section 5.2).
"""

from repro.ft.benchmark import FT
from repro.ft.fft import fft3d, fft_along_axis
from repro.ft.params import FT_CLASSES, FTParams

__all__ = ["FT", "FTParams", "FT_CLASSES", "fft3d", "fft_along_axis"]
