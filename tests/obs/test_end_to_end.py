"""End-to-end tracing through the serving stack, in-process.

Covers the acceptance path (one trace id from HTTP submit down to
kernel-region spans), the free-when-off guarantee, the client's
stale-socket GET retry, and the traced-failover scenario through a
two-shard coordinator.
"""

from __future__ import annotations

import threading

import pytest

from repro.obs.spans import get_span_store
from repro.obs.trace import TraceContext, new_trace_id
from repro.service import BenchService, ServiceClient, make_server
from repro.service.shard import ShardCoordinator


def _serve(service):
    httpd = make_server(service, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]
    return httpd, f"http://{host}:{port}"


class TestTracedDaemon:
    def test_one_trace_id_from_http_submit_to_kernel_region(self, tmp_path):
        service = BenchService(backend="serial",
                               cache_dir=str(tmp_path / "cache"))
        httpd, url = _serve(service)
        try:
            client = ServiceClient(url)
            code, body = client.submit({
                "benchmark": "CG", "problem_class": "S",
                "trace": True, "wait": True, "no_cache": True})
            assert code == 200
            assert body["trace_id"] is not None
            assert body["result"]["trace_id"] == body["trace_id"]
            code, trace = client.trace(body["job_id"])
        finally:
            httpd.shutdown()
            httpd.server_close()
            service.drain(timeout=60.0)
        assert code == 200
        assert trace["trace_id"] == body["trace_id"]
        spans = trace["spans"]
        assert {s["trace_id"] for s in spans} == {body["trace_id"]}
        names = [s["name"] for s in spans]
        for expected in ("http.submit", "schedule", "queue.wait",
                         "pool.lease", "run"):
            assert expected in names, names
        regions = [s for s in spans if s["name"].startswith("region:")]
        assert any(s["name"] == "region:conj_grad" for s in regions)
        # region attrs carry the recorder's numbers, not re-measurements
        conj = next(s for s in regions if s["name"] == "region:conj_grad")
        record_regions = body["result"]["regions"]
        assert conj["attrs"]["wall_seconds"] == pytest.approx(
            record_regions["conj_grad"]["wall_seconds"])
        workers = [s for s in spans if s["name"].startswith("worker.")]
        assert workers, names
        # spans nest: every non-root parent id is a span in the trace
        ids = {s["span_id"] for s in spans}
        roots = [s for s in spans if s["parent_span_id"] not in ids]
        assert len(roots) == 1 and roots[0]["name"] == "http.submit"

    def test_untraced_submit_stays_span_free(self, tmp_path):
        service = BenchService(backend="serial",
                               cache_dir=str(tmp_path / "cache"))
        httpd, url = _serve(service)
        try:
            client = ServiceClient(url)
            code, body = client.submit({
                "benchmark": "CG", "problem_class": "S",
                "wait": True, "no_cache": True})
            assert code == 200
            assert body["trace_id"] is None
            assert "trace_id" not in body["result"]
            code, _ = client.trace(body["job_id"])
            assert code == 404
        finally:
            httpd.shutdown()
            httpd.server_close()
            service.drain(timeout=60.0)
        assert len(get_span_store()) == 0

    def test_status_and_metrics_exposition(self, tmp_path):
        service = BenchService(backend="serial",
                               cache_dir=str(tmp_path / "cache"))
        httpd, url = _serve(service)
        try:
            client = ServiceClient(url)
            client.submit({"benchmark": "CG", "problem_class": "S",
                           "wait": True})
            code, status = client.status()
            assert code == 200
            assert status["rss_bytes"] > 0
            assert status["uptime_seconds"] >= 0
            assert status["trace_sample"] == 0.0
            code, text = client.metrics()
        finally:
            httpd.shutdown()
            httpd.server_close()
            service.drain(timeout=60.0)
        assert code == 200
        assert '# TYPE npb_jobs_total counter' in text
        assert 'npb_jobs_total{benchmark="CG",state="done"} 1' in text
        assert "npb_process_rss_bytes" in text
        assert "npb_job_latency_seconds_bucket" in text

    @pytest.mark.parametrize("backend,workers", [
        ("serial", 1), ("threads", 2), ("process", 2)])
    def test_worker_spans_under_every_team_backend(self, tmp_path,
                                                   backend, workers):
        service = BenchService(backend=backend, workers=workers,
                               cache_dir=str(tmp_path / "cache"))
        ctx = TraceContext(trace_id=new_trace_id(), parent_span_id=None)
        with service:
            job = service.submit("CG", "S", no_cache=True, trace=ctx)
            done = service.wait(job.job_id, timeout=300)
            assert done.state == "done"
        spans = get_span_store().trace(ctx.trace_id)
        workers_seen = {
            span.attrs["rank"]
            for span in spans
            if span.name.startswith("worker.")
        }
        expected = 1 if backend == "serial" else workers
        assert workers_seen == set(range(expected)), (backend, workers_seen)


def _spawn_daemon(cache_dir, port=0, timeout=60.0):
    """A real ``npb serve`` child process; returns ``(child, url)``."""
    import re
    import subprocess
    import sys

    child = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--host", "127.0.0.1", "--port", str(port),
         "--backend", "serial", "--cache-dir", str(cache_dir)],
        stdout=subprocess.PIPE, text=True)
    url = None
    for line in child.stdout:
        match = re.search(r"listening on (http://\S+)", line)
        if match:
            url = match.group(1)
            break
    assert url is not None, "daemon died before announcing"
    return child, url


class TestClientStaleSocketRetry:
    """Satellite: the keep-alive client must survive a daemon being
    SIGKILLed and re-established between a submit and a status poll --
    the GET path retries on a fresh socket exactly like POST does."""

    def test_get_after_daemon_kill_and_restart(self, tmp_path):
        import signal

        child, url = _spawn_daemon(tmp_path / "cache1")
        replacement = None
        try:
            client = ServiceClient(url, timeout=60.0)
            code, body = client.submit({"benchmark": "CG",
                                        "problem_class": "S",
                                        "wait": True})
            assert code == 200
            # SIGKILL: no FIN handshake niceties, the client's kept-alive
            # socket is now truly stale
            child.send_signal(signal.SIGKILL)
            child.wait(timeout=30)
            port = int(url.rsplit(":", 1)[1])
            replacement, _ = _spawn_daemon(tmp_path / "cache2", port=port)
            # the status poll (GET) must retry on a fresh connection
            # instead of surfacing the dead socket as an error
            code, status = client.status()
            assert code == 200
            assert status["scheduler"]["executed"] == 0  # the NEW daemon
            # a GET with a path component reconnects the same way
            code, _ = client.job(body["job_id"])
            assert code == 404
        finally:
            for proc in (child, replacement):
                if proc is not None and proc.poll() is None:
                    proc.kill()
                    proc.wait(timeout=30)
                if proc is not None and proc.stdout is not None:
                    proc.stdout.close()


class TestTracedFailover:
    """Satellite: a traced submit through a two-shard coordinator whose
    preferred shard is dead keeps one trace id end-to-end and records
    the route-around as a ``failover`` span event."""

    def test_failover_continues_the_trace(self, tmp_path):
        services, httpds = [], []
        shards = {}
        for i in range(2):
            service = BenchService(backend="serial", pool_size=1,
                                   cache_dir=str(tmp_path / f"cache{i}"))
            httpd, url = _serve(service)
            services.append(service)
            httpds.append(httpd)
            shards[f"s{i}"] = url
        coordinator = ShardCoordinator(shards, health_interval=60.0)
        try:
            payload = {"benchmark": "CG", "problem_class": "S",
                       "trace": True, "wait": True, "no_cache": True}
            owner = coordinator.route(payload)
            index = int(owner[1:])
            httpds[index].shutdown()
            httpds[index].server_close()
            code, body = coordinator.submit(dict(payload))
            assert code == 200, body
            assert body["routing"]["degraded"] is True
            assert body["trace_id"] is not None
            code, trace = coordinator.trace(body["job_id"])
            assert code == 200
        finally:
            coordinator.close()
            for i, httpd in enumerate(httpds):
                if i != index:
                    httpd.shutdown()
                    httpd.server_close()
            for service in services:
                service.drain(timeout=60.0)

        spans = trace["spans"]
        # one trace id across coordinator, shard, scheduler, and regions
        assert {s["trace_id"] for s in spans} == {body["trace_id"]}
        names = [s["name"] for s in spans]
        assert names.count("coordinator.route") == 1
        for expected in ("http.submit", "schedule", "run"):
            assert expected in names, names
        route = next(s for s in spans if s["name"] == "coordinator.route")
        assert route["attrs"]["served_by"] != owner
        events = [e for e in route["events"] if e["name"] == "failover"]
        assert len(events) == 1
        assert events[0]["shard"] == owner
        # region span attrs agree with the run record's region table
        # (the unattributed bucket is trace-only; the record omits it)
        record_regions = body["result"]["regions"]
        compared = 0
        for span in spans:
            if not span["name"].startswith("region:"):
                continue
            region = span["name"][len("region:"):]
            if region not in record_regions:
                assert region == "(unattributed)", region
                continue
            assert span["attrs"]["wall_seconds"] == pytest.approx(
                record_regions[region]["wall_seconds"]), region
            compared += 1
        assert compared == len(record_regions)
