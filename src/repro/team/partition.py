"""Compatibility re-export: partitioning moved to :mod:`repro.runtime.partition`
with the plan-based runtime (it is dispatch machinery, not backend code)."""

from repro.runtime.partition import block_partition, partition_bounds

__all__ = ["block_partition", "partition_bounds"]
