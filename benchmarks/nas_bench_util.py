"""Shared helpers for the pytest-benchmark table regenerators.

Each ``bench_tableN_*.py`` module does two things:

1. measures the real implementations on this host with pytest-benchmark
   (class S by default so the suite stays fast; pass a larger class via
   the NPB_BENCH_CLASS environment variable, more rounds via
   NPB_BENCH_ROUNDS);
2. attaches the simulated table for the paper's machine to the benchmark
   record (``extra_info``), so a single run carries both the measured and
   the reproduced-table data.

Timing statistics go through :mod:`repro.harness.stats` -- the same
min-of-k / median / MAD summary the ``npb bench`` trajectory records use
-- so pytest-benchmark runs and ``BENCH_*.json`` cells stay directly
comparable.
"""

from __future__ import annotations

import os

from repro.core.registry import get_benchmark
from repro.harness import format_table, generate_table, summarize

#: Problem class for measured runs (override: NPB_BENCH_CLASS=W).
BENCH_CLASS = os.environ.get("NPB_BENCH_CLASS", "S")

#: Rounds per timed region (override: NPB_BENCH_ROUNDS=5 for MAD bars).
BENCH_ROUNDS = int(os.environ.get("NPB_BENCH_ROUNDS", "1"))

#: Benchmarks in the paper's table order.
TABLE_BENCHMARKS = ("BT", "SP", "LU", "FT", "IS", "CG", "MG")


def attach_timing_summary(benchmark) -> None:
    """Summarize the measured rounds with the shared trajectory stats.

    Attaches ``best/median/mad`` seconds to ``extra_info`` under the same
    field names a ``BENCH_*.json`` cell uses, so a pytest-benchmark run
    can be eyeballed against the bench trajectory without conversion.
    """
    stats = getattr(getattr(benchmark, "stats", None), "stats", None)
    data = getattr(stats, "data", None)
    if not data:
        return
    summary = summarize(data)
    benchmark.extra_info["best_seconds"] = summary.best
    benchmark.extra_info["median_seconds"] = summary.median
    benchmark.extra_info["mad_seconds"] = summary.mad
    benchmark.extra_info["repeats"] = summary.repeats


def run_timed_region(benchmark, name: str, problem_class: str = None,
                     team=None):
    """Benchmark one NPB code's timed region (setup excluded), verifying
    the result afterwards."""
    problem_class = problem_class or BENCH_CLASS
    cls = get_benchmark(name)
    instances = []

    def make():
        bench = cls(problem_class) if team is None else cls(problem_class,
                                                            team)
        bench.setup()
        instances.append(bench)
        return (), {}

    benchmark.pedantic(lambda: instances[-1]._iterate(), setup=make,
                       rounds=BENCH_ROUNDS, iterations=1)
    result = instances[-1].verify()
    assert result.verified, result.summary()
    benchmark.extra_info["verified"] = True
    benchmark.extra_info["class"] = problem_class
    attach_timing_summary(benchmark)


def attach_simulated_table(benchmark, number: int) -> None:
    """Record the simulated paper table in the benchmark's extra info and
    echo it so ``pytest benchmarks/ -s`` shows the reproduction."""
    table = generate_table(number, "simulated")
    text = format_table(table)
    benchmark.extra_info[f"table{number}_simulated"] = text
    print()
    print(text)
