"""SP: Scalar Pentadiagonal simulated CFD application.

Beam-Warming approximate factorization of the implicit 3-D compressible
Navier-Stokes operator.  Diagonalization decouples the 5x5 block systems
of BT into five independent scalar pentadiagonal systems per grid line,
solved sequentially along each of the three dimensions per time step, with
pointwise similarity transforms (txinvr / ninvr / pinvr / tzetar) between
sweeps.

SP is in the paper's structured-grid group (serial Java/Fortran ratio
2.6-3.8 on the Origin 2000) and scales well with threads (speedup 6-12 at
16 threads).
"""

from repro.sp.benchmark import SP
from repro.sp.params import SP_CLASSES, SPParams

__all__ = ["SP", "SPParams", "SP_CLASSES"]
