"""Table 1: the five basic CFD operations.

Measured part: each operation in the NumPy (Fortran role) and interpreted
(Java role) styles on a reduced grid; the ratio column of the paper's
Table 1 is the quotient of the two.  Simulated part: the full Table 1 for
the SGI Origin2000 from the machine model.
"""

import pytest

from repro.core.basic_ops import OPERATIONS, make_workload, run_operation
from nas_bench_util import attach_simulated_table

#: Grid for the interpreted styles (the paper's 81x81x100 would take
#: minutes per op in pure Python; ratios are grid-size stable).
GRID = (24, 24, 30)


@pytest.fixture(scope="module")
def workload():
    return make_workload(GRID)


@pytest.mark.parametrize("op", OPERATIONS)
def test_numpy_fortran_role(benchmark, workload, op):
    benchmark.extra_info["style"] = "numpy (f77 role)"
    benchmark(run_operation, op, "numpy", workload)


@pytest.mark.parametrize("op", OPERATIONS)
def test_python_java_role(benchmark, workload, op):
    benchmark.extra_info["style"] = "python (Java role)"
    benchmark.pedantic(run_operation, args=(op, "python", workload),
                       rounds=3, iterations=1)


def test_simulated_table1(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    attach_simulated_table(benchmark, 1)
