"""Unit tests for the kernel-backend registry and its plumbing.

Covers the registry contract in isolation (fresh :class:`KernelRegistry`
instances with hand-registered variants -- no providers involved), then
the layers the tier selection threads through: ``Team``/``make_team``,
the ``JobSpec`` fingerprint, the bench cell grammar and schema-v5
migration, and the ``npb backends`` command.
"""

import json

import numpy as np
import pytest

from repro.harness import cli
from repro.harness.bench import (
    SCHEMA_VERSION,
    BenchCell,
    _migrate_record,
    load_record,
)
from repro.kernels.registry import (
    DEFAULT_TIER,
    REGISTRY,
    TIERS,
    KernelRegistry,
    TierUnavailableError,
    UnknownKernelError,
    UnknownTierError,
    validate_tier,
)
from repro.mg import operators as mg
from repro.service.jobs import JobSpec
from repro.team import make_team


def _stub(lo, hi):
    return ("stub", lo, hi)


class TestRegistryContract:
    """Fresh registries with hand-registered variants."""

    def test_unknown_tier_everywhere(self):
        reg = KernelRegistry()
        with pytest.raises(UnknownTierError):
            reg.register("k", "turbo", _stub)
        with pytest.raises(UnknownTierError):
            reg.resolve("k", "turbo")
        with pytest.raises(UnknownTierError):
            reg.mark_tier_unavailable("turbo", "no such tier")
        with pytest.raises(UnknownTierError):
            reg.tier_status("turbo")
        with pytest.raises(UnknownTierError):
            validate_tier("turbo")
        assert validate_tier("fused") == "fused"

    def test_unknown_kernel(self):
        reg = KernelRegistry()
        reg._providers_loaded = True  # keep the instance hermetic
        with pytest.raises(UnknownKernelError):
            reg.resolve("no.such.kernel")
        with pytest.raises(UnknownKernelError):
            reg.variants("no.such.kernel")

    def test_fallback_walks_past_unregistered_tiers(self):
        reg = KernelRegistry()
        reg._providers_loaded = True
        reg.register("k", "reference", _stub)
        # fused falls back to reference; compiled falls all the way.
        assert reg.resolve("k", "fused").tier == "reference"
        assert reg.resolve("k", "compiled").tier == "reference"
        # The cheaper tier never upgrades: reference resolves reference.
        reg.register("k", "fused", _stub)
        assert reg.resolve("k", "reference").tier == "reference"
        assert reg.resolve("k", "fused").tier == "fused"

    def test_fallback_walks_past_unavailable_tier(self):
        reg = KernelRegistry()
        reg._providers_loaded = True
        reg.register("k", "fused", _stub)
        reg.register("k", "compiled", _stub)
        reg.mark_tier_unavailable("compiled", "numba is not installed")
        assert reg.resolve("k", "compiled").tier == "fused"
        available, reason = reg.tier_status("compiled")
        assert not available and "numba" in reason

    def test_strict_resolution_raises_with_reason(self):
        reg = KernelRegistry()
        reg._providers_loaded = True
        reg.register("k", "fused", _stub)
        with pytest.raises(TierUnavailableError, match="no k variant"):
            reg.resolve("k", "compiled", fallback=False)
        reg.mark_tier_unavailable("compiled", "numba is not installed")
        with pytest.raises(TierUnavailableError, match="numba"):
            reg.resolve("k", "compiled", fallback=False)

    def test_nonzero_tolerance_requires_note(self):
        reg = KernelRegistry()
        with pytest.raises(ValueError, match="note"):
            reg.register("k", "fused", _stub, tolerance=1e-12)
        with pytest.raises(ValueError, match=">= 0"):
            reg.register("k", "fused", _stub, tolerance=-1.0)
        variant = reg.register("k", "fused", _stub, tolerance=1e-12,
                               note="documented departure")
        assert variant.tolerance == 1e-12

    def test_reregistration_replaces(self):
        reg = KernelRegistry()
        reg._providers_loaded = True
        reg.register("k", "fused", _stub)
        reg.register("k", "fused", len)  # module re-import pattern
        assert reg.resolve("k", "fused").fn is len

    def test_coverage_reports_serves(self):
        reg = KernelRegistry()
        reg._providers_loaded = True
        reg.register("k", "fused", _stub)
        reg.register("k", "compiled", _stub)
        reg.mark_tier_unavailable("compiled", "numba is not installed")
        cov = reg.coverage()
        assert cov["kernels"] == ["k"]
        assert cov["tiers"]["fused"]["default"]
        assert not cov["tiers"]["compiled"]["available"]
        # The registered-but-unavailable compiled variant serves fused.
        assert cov["tiers"]["compiled"]["kernels"]["k"]["serves"] == "fused"


class TestGlobalRegistry:
    """The process-wide registry with the real providers loaded."""

    def test_suite_kernels_registered(self):
        kernels = REGISTRY.kernels()
        for kernel in ("mg.resid", "mg.psinv", "mg.rprj3", "mg.interp",
                       "mg.norm2u3", "cg.matvec", "cg.update_zr",
                       "cg.norm_diff", "cfd.fields", "cfd.rhs"):
            assert kernel in kernels
        for kernel in kernels:
            # Every kernel must serve every tier via fallback.
            for tier in TIERS:
                assert REGISTRY.resolve(kernel, tier).fn is not None

    def test_declared_tolerances_carry_notes(self):
        for kernel in REGISTRY.kernels():
            for variant in REGISTRY.variants(kernel).values():
                if variant.tolerance > 0.0:
                    assert variant.note, (
                        f"{kernel}/{variant.tier} has a bare tolerance")


class TestTeamPlumbing:
    """Tier selection through make_team / set_kernel_backend."""

    @pytest.mark.parametrize("backend,workers",
                             [("serial", 1), ("threads", 2), ("process", 2)])
    def test_parallel_kernel_honors_tier(self, backend, workers):
        m = 10
        rng = np.random.default_rng(9)
        a = (-8.0 / 3.0, 0.0, 1.0 / 6.0, 1.0 / 12.0)
        with make_team(backend, workers, kernel_backend="reference") as team:
            assert team.kernel_backend == "reference"
            assert team.plan.kernel_backend == "reference"
            u = team.shared((m, m, m))
            v = team.shared((m, m, m))
            r = team.shared((m, m, m))
            for arr, seed in ((u, 1), (v, 2), (r, 3)):
                arr[...] = np.random.default_rng(seed).standard_normal(
                    (m, m, m))
            r_ref = r.copy()
            mg._resid_slab_reference(0, m - 2, u, v, r_ref, a)
            team.parallel_kernel("mg.resid", m - 2, u, v, r, a)
            assert r.tobytes() == r_ref.tobytes()
            # Retier mid-life: the resolution memo must not leak across.
            team.set_kernel_backend("fused")
            assert team.kernel_backend == "fused"
            rng.shuffle(r.reshape(-1))
            r_ref = r.copy()
            mg._resid_slab_reference(0, m - 2, u, v, r_ref, a)
            team.parallel_kernel("mg.resid", m - 2, u, v, r, a)
            assert r.tobytes() == r_ref.tobytes()

    def test_unknown_tier_rejected_at_construction(self):
        with pytest.raises(UnknownTierError):
            make_team("serial", 1, kernel_backend="turbo")

    def test_unknown_tier_rejected_at_retier(self):
        with make_team("serial", 1) as team:
            assert team.kernel_backend == DEFAULT_TIER
            with pytest.raises(UnknownTierError):
                team.set_kernel_backend("turbo")
            assert team.kernel_backend == DEFAULT_TIER


class TestJobSpecFingerprint:
    def test_kernel_backend_changes_fingerprint(self):
        fused = JobSpec.create("CG", "S", kernel_backend="fused")
        compiled = JobSpec.create("CG", "S", kernel_backend="compiled")
        again = JobSpec.create("CG", "S", kernel_backend="fused")
        assert fused.fingerprint() != compiled.fingerprint()
        assert fused.fingerprint() == again.fingerprint()
        assert fused.as_dict()["kernel_backend"] == "fused"

    def test_unknown_tier_rejected(self):
        with pytest.raises(UnknownTierError):
            JobSpec.create("CG", "S", kernel_backend="turbo")

    def test_round_trips_through_dict(self):
        spec = JobSpec.create("MG", "S", kernel_backend="compiled")
        assert JobSpec.from_dict(spec.as_dict()) == spec


class TestBenchCellGrammar:
    def test_default_tier_keeps_historical_cell_id(self):
        cell = BenchCell.parse("CG:S:serial:1")
        assert cell.kernel_backend == "fused"
        assert cell.cell_id == "CG.S.serial.x1"

    def test_tier_suffix_for_non_default(self):
        assert (BenchCell.parse("CG:S:serial:1:reference").cell_id
                == "CG.S.serial.x1.reference")
        assert (BenchCell.parse("mg:s:threads:2:compiled").cell_id
                == "MG.S.threads.x2.compiled")

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError):
            BenchCell.parse("CG:S:serial")
        with pytest.raises(ValueError):
            BenchCell.parse("CG:S:serial:1:compiled:extra")


class TestSchemaV5Migration:
    def _v4_record(self):
        return {
            "kind": "npb-bench-record",
            "schema_version": 4,
            "cells": [
                {"kind": "benchmark", "cell_id": "CG.S.serial.x1",
                 "faults": 0, "fault_counts": {},
                 "job_id": None, "cache_hit": False,
                 "queue_wait_seconds": 0.0},
                {"kind": "basic_op", "cell_id": "basic_op.stencil1"},
            ],
        }

    def test_v4_gains_kernel_backend(self):
        record = _migrate_record(self._v4_record(), 4)
        assert record["schema_version"] == SCHEMA_VERSION
        bench, basic = record["cells"]
        assert bench["kernel_backend"] == "fused"
        assert "kernel_backend" not in basic  # basic ops have no tier

    def test_v1_chains_to_v5(self):
        record = {"schema_version": 1,
                  "cells": [{"kind": "benchmark",
                             "cell_id": "CG.S.serial.x1",
                             "regions": {"total": {}}}]}
        record = _migrate_record(record, 1)
        cell = record["cells"][0]
        # Every fill-in along the v1->v5 chain is present.
        assert cell["faults"] == 0 and cell["fault_counts"] == {}
        assert cell["regions"]["total"]["alloc_bytes"] == 0
        assert cell["job_id"] is None
        assert cell["kernel_backend"] == "fused"
        assert record["schema_version"] == SCHEMA_VERSION

    def test_load_record_migrates_from_disk(self, tmp_path):
        path = tmp_path / "BENCH_0001.json"
        path.write_text(json.dumps(self._v4_record()))
        record = load_record(str(path))
        assert record["schema_version"] == SCHEMA_VERSION
        assert record["cells"][0]["kernel_backend"] == "fused"


class TestBackendsCommand:
    def test_text_listing(self, capsys):
        assert cli.main(["backends"]) == 0
        out = capsys.readouterr().out
        for tier in TIERS:
            assert tier in out
        assert "mg.resid" in out
        assert "default" in out

    def test_json_listing(self, capsys):
        assert cli.main(["backends", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kernels"] == REGISTRY.kernels()
        assert set(payload["tiers"]) == set(TIERS)
        assert payload["tiers"]["fused"]["default"] is True
