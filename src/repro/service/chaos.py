"""Deterministic service-layer fault injection (``npb chaos``).

PR 3 made *dispatch* fault-tolerant and proved it with real SIGKILLs;
this module points the same discipline at the whole service stack.  The
north-star invariant it gates: **every admitted job reaches ``done``,
``cached``, or ``failed`` with a structured verdict -- zero silently
lost jobs -- and jobs that complete despite injected faults are
bit-identical to clean runs.**

The subsystem has three parts:

:class:`ChaosPlan`
    A *compiled* fault schedule: a pure function of a declarative
    :class:`ChaosSpec` (which faults, where, how often) and a seed.
    Each injection point gets its own RNG stream
    (``random.Random(f"{seed}:{point}")``), so the schedule -- which
    invocation of which point injects which fault -- is bit-identical
    across runs, machines, and thread interleavings.  Replay
    determinism is asserted at this level: the same seed always
    compiles the same schedule, and because injection points consume
    deterministic invocation indices, the same faults fire at the same
    logical moments.  (The *wall-clock order* in the runtime trail may
    vary with thread scheduling; the schedule is the contract.)
:class:`ChaosInjector`
    Hooks a plan into the existing seams -- ``TeamPool.lease``
    (SIGKILL the leased team's workers, or force-degrade in-process
    backends), ``ResultCache.get``/``put`` (corrupt or truncate the
    on-disk entry), the scheduler's dispatch loop (delay), and the
    ``ShardCoordinator`` probe/submit path (drop or delay responses,
    synthesize 429 storms).  Every seam is a no-op when no injector is
    installed: chaos off costs one attribute check.
:class:`InvariantChecker`
    Consumes the traffic ledger (full response bodies, not just status
    codes) plus the surviving shards' job listings and asserts the
    invariant: every entry terminal, every failure structured (an error
    trail, a routing block, or a 429 rejection), zero lost, and all
    completions of one fingerprint verification-bit-identical.

``npb chaos`` wires these together: spawn a 2-shard coordinator whose
shards run in-daemon chaos (``npb serve --chaos-seed``), drive a loadgen
mix through a coordinator-level injector, SIGKILL one spawned shard at a
planned submission index, then check the invariant and append a
schema-versioned ``CHAOS_<seq>.json`` record (plan, injected-fault
trail, verdict) to the trajectory.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import signal
import threading
import time
from dataclasses import dataclass

from repro.harness import records
from repro.service.api import ServiceUnavailable

#: Version of the CHAOS_*.json record layout.
SCHEMA_VERSION = 1

#: The ``kind`` tag every record carries (guards against foreign JSON).
RECORD_KIND = "npb-chaos-record"

#: Trajectory file naming: CHAOS_0001.json, CHAOS_0002.json, ...
RECORD_PREFIX = "CHAOS"

#: Injection points and the fault kinds each one can host.  A point
#: fires once per *invocation* (lease, cache access, probe, ...) and
#: consumes one index of its schedule stream.
POINT_KINDS: dict[str, tuple[str, ...]] = {
    "pool.lease": ("kill_team",),
    "cache.get": ("cache_corrupt", "cache_truncate"),
    "cache.put": ("cache_corrupt", "cache_truncate"),
    "scheduler.dispatch": ("delay_dispatch",),
    "shard.probe": ("drop_response",),
    "shard.submit": ("drop_response", "delay_response", "storm_429"),
    "chaos.submit": ("kill_shard",),
}

#: Every fault kind any point can host.
FAULT_KINDS = tuple(
    sorted({kind for kinds in POINT_KINDS.values() for kind in kinds})
)


@dataclass(frozen=True)
class FaultRule:
    """One declarative fault source: *what* fires *where*, how often.

    ``rate`` is the per-invocation probability of planning the fault
    (1.0 makes it deterministic), ``limit`` caps how many invocations
    of the point this rule may claim, ``after`` skips the first N
    invocations, and ``param`` carries a kind-specific knob (sleep
    seconds for delays, shard ordinal for ``kill_shard``).
    """

    point: str
    kind: str
    rate: float
    limit: int = 1
    after: int = 0
    param: float | int | None = None

    def __post_init__(self):
        if self.point not in POINT_KINDS:
            raise ValueError(
                f"unknown injection point {self.point!r} "
                f"(one of {sorted(POINT_KINDS)})"
            )
        if self.kind not in POINT_KINDS[self.point]:
            raise ValueError(
                f"fault kind {self.kind!r} not valid at {self.point!r} "
                f"(one of {POINT_KINDS[self.point]})"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.limit < 1:
            raise ValueError(f"limit must be >= 1, got {self.limit}")
        if self.after < 0:
            raise ValueError(f"after must be >= 0, got {self.after}")

    def as_dict(self) -> dict:
        return {
            "point": self.point,
            "kind": self.kind,
            "rate": self.rate,
            "limit": self.limit,
            "after": self.after,
            "param": self.param,
        }


@dataclass(frozen=True)
class ChaosSpec:
    """A named set of fault rules plus the planning horizon.

    ``horizon`` bounds how many invocations per point the plan covers;
    invocations beyond it never inject (the run outlived the plan).
    """

    name: str
    rules: tuple[FaultRule, ...]
    horizon: int = 64

    def __post_init__(self):
        if self.horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {self.horizon}")

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "horizon": self.horizon,
            "rules": [rule.as_dict() for rule in self.rules],
        }


def service_preset() -> ChaosSpec:
    """In-daemon faults for one shard (``npb serve --chaos-seed``).

    Mixes deterministic rules (``rate=1.0`` at staggered ``after``
    offsets, so every seed injects at least one kill/corrupt/delay once
    the invocation counts are reached) with probabilistic extras whose
    placement is what the seed varies.
    """
    return ChaosSpec(
        name="service",
        rules=(
            FaultRule("pool.lease", "kill_team", rate=1.0, after=2),
            FaultRule("pool.lease", "kill_team", rate=0.10, limit=1),
            FaultRule("cache.get", "cache_corrupt", rate=1.0, after=1),
            FaultRule("cache.get", "cache_truncate", rate=0.25, limit=1),
            FaultRule("cache.put", "cache_corrupt", rate=0.20, limit=1),
            FaultRule(
                "scheduler.dispatch",
                "delay_dispatch",
                rate=1.0,
                after=0,
                param=0.02,
            ),
            FaultRule(
                "scheduler.dispatch",
                "delay_dispatch",
                rate=0.15,
                limit=2,
                param=0.02,
            ),
        ),
    )


def coordinator_preset(
    kill_shard_after: int = 6, kill_shard_ordinal: int = 1
) -> ChaosSpec:
    """Coordinator-level faults for the ``npb chaos`` runner.

    ``kill_shard`` fires exactly once, at submission index
    ``kill_shard_after``, SIGKILLing spawned shard ``kill_shard_ordinal``
    -- a real process death mid-traffic, recovered by route-around.
    """
    return ChaosSpec(
        name="coordinator",
        rules=(
            FaultRule("shard.submit", "drop_response", rate=1.0, after=1),
            FaultRule("shard.submit", "drop_response", rate=0.10, limit=1),
            FaultRule(
                "shard.submit", "delay_response", rate=1.0, after=4, param=0.05
            ),
            FaultRule("shard.submit", "storm_429", rate=1.0, after=8),
            FaultRule("shard.probe", "drop_response", rate=0.50, limit=2),
            FaultRule(
                "chaos.submit",
                "kill_shard",
                rate=1.0,
                after=kill_shard_after,
                param=kill_shard_ordinal,
            ),
        ),
    )


#: Named preset factories (``--chaos-preset``).
PRESETS = {
    "service": service_preset,
    "coordinator": coordinator_preset,
}


def derive_seed(seed: int, label: str) -> int:
    """Stable per-component sub-seed (e.g. one per spawned shard)."""
    digest = hashlib.sha256(f"{seed}:{label}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


@dataclass(frozen=True)
class PlannedFault:
    """One scheduled injection: fault ``kind`` at invocation ``index``
    of ``point``."""

    point: str
    index: int
    kind: str
    param: float | int | None = None

    def as_dict(self) -> dict:
        return {
            "point": self.point,
            "index": self.index,
            "kind": self.kind,
            "param": self.param,
        }


class ChaosPlan:
    """A compiled fault schedule: pure function of ``(spec, seed)``.

    ``schedule[point][index]`` is the :class:`PlannedFault` to inject at
    that invocation of that point (most invocations have none).  Each
    point draws from its own seeded RNG stream, and every rule draws at
    every index regardless of selection, so one rule's placement never
    perturbs another's -- the property that makes the schedule stable
    under spec evolution and assertable for replay determinism.
    """

    def __init__(
        self,
        spec: ChaosSpec,
        seed: int,
        schedule: dict[str, dict[int, PlannedFault]],
    ):
        self.spec = spec
        self.seed = seed
        self.schedule = schedule

    @classmethod
    def compile(cls, spec: ChaosSpec, seed: int) -> "ChaosPlan":
        schedule: dict[str, dict[int, PlannedFault]] = {}
        for point in sorted(POINT_KINDS):
            rules = [rule for rule in spec.rules if rule.point == point]
            if not rules:
                continue
            rng = random.Random(f"{seed}:{point}")
            fired = [0] * len(rules)
            planned: dict[int, PlannedFault] = {}
            for index in range(spec.horizon):
                for slot, rule in enumerate(rules):
                    draw = rng.random()  # always drawn: streams stay aligned
                    if (
                        index in planned
                        or fired[slot] >= rule.limit
                        or index < rule.after
                        or draw >= rule.rate
                    ):
                        continue
                    planned[index] = PlannedFault(
                        point=point,
                        index=index,
                        kind=rule.kind,
                        param=rule.param,
                    )
                    fired[slot] += 1
            if planned:
                schedule[point] = planned
        return cls(spec, seed, schedule)

    def get(self, point: str, index: int) -> PlannedFault | None:
        return self.schedule.get(point, {}).get(index)

    def faults(self) -> list[PlannedFault]:
        """Every planned fault, in (point, index) order."""
        return [
            self.schedule[point][index]
            for point in sorted(self.schedule)
            for index in sorted(self.schedule[point])
        ]

    def kinds(self) -> set[str]:
        return {fault.kind for fault in self.faults()}

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "spec": self.spec.as_dict(),
            "schedule": [fault.as_dict() for fault in self.faults()],
        }


# ===================================================================== #
# fault mechanics
# ===================================================================== #


def _kill_team(team) -> str:
    """Kill a leased team's workers the way the kind demands.

    Process teams get a real ``SIGKILL`` per worker -- the in-flight job
    then exercises the full WorkerDeath -> respawn -> (or degrade)
    recovery path.  Thread/serial workers cannot be killed from outside
    the interpreter, so forcing the degraded flag exercises the same
    observable contract: the job still completes bit-identically (inline
    serial) and the pool replaces the team instead of recycling it.
    """
    procs = list(getattr(team, "_procs", None) or [])
    if procs:
        killed = []
        for proc in procs:
            if proc.is_alive():
                try:
                    os.kill(proc.pid, signal.SIGKILL)
                    killed.append(proc.pid)
                except (OSError, TypeError):
                    continue
        return f"SIGKILL worker pids {killed}"
    team._degraded = True
    return "forced degraded (no worker processes to kill)"


def _corrupt_file(path: str) -> bool:
    """Overwrite the head of ``path`` with garbage (torn-write model)."""
    try:
        with open(path, "r+b") as fh:
            fh.write(b"\x00chaos{corrupt")
        return True
    except OSError:
        return False


def _truncate_file(path: str) -> bool:
    """Truncate ``path`` to half its size (partial-write model)."""
    try:
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(max(1, size // 2))
        return True
    except OSError:
        return False


def kill_process(process) -> int | None:
    """SIGKILL a child process (Popen-like); returns the pid killed."""
    if process.poll() is not None:
        return None
    try:
        os.kill(process.pid, signal.SIGKILL)
    except OSError:
        return None
    return process.pid


class ChaosInjector:
    """Executes a :class:`ChaosPlan` at the service seams.

    One injector per component (each shard daemon runs its own, the
    coordinator another).  ``fire`` is the only stateful operation: it
    consumes the point's next invocation index under a lock and records
    an event when the schedule plans a fault there.  The seam methods
    (``on_lease``/``on_cache``/...) translate planned kinds into the
    actual mutation -- and are only ever called when an injector is
    installed, so chaos-off costs one ``is None`` check per seam.
    """

    def __init__(self, plan: ChaosPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._invocations: dict[str, int] = {}
        #: runtime injected-fault trail (wall-clock order)
        self.events: list[dict] = []

    def _fire(
        self, point: str, detail: str = ""
    ) -> tuple[PlannedFault | None, dict | None]:
        with self._lock:
            index = self._invocations.get(point, 0)
            self._invocations[point] = index + 1
            fault = self.plan.get(point, index)
            if fault is None:
                return None, None
            event = {
                "point": point,
                "index": index,
                "kind": fault.kind,
                "param": fault.param,
                "detail": detail,
                "at": time.time(),
            }
            self.events.append(event)
            return fault, event

    def fire(self, point: str, detail: str = "") -> PlannedFault | None:
        """Consume one invocation of ``point``; the planned fault, if any."""
        return self._fire(point, detail)[0]

    # ------------------------------------------------------------------ #
    # seam behaviors
    # ------------------------------------------------------------------ #

    def on_lease(self, team) -> None:
        """``TeamPool.lease``: kill the warm team as it is handed out."""
        fault, event = self._fire("pool.lease", type(team).__name__)
        if fault is not None and fault.kind == "kill_team":
            note = _kill_team(team)
            if event is not None:
                event["detail"] = f"{event['detail']}: {note}"

    def on_cache(self, point: str, path: str) -> None:
        """``ResultCache.get``/``put``: damage the entry on disk."""
        fault, event = self._fire(point, os.path.basename(path))
        if fault is None:
            return
        if fault.kind == "cache_corrupt":
            damaged = _corrupt_file(path)
        elif fault.kind == "cache_truncate":
            damaged = _truncate_file(path)
        else:
            return
        if event is not None:
            event["detail"] += ": damaged" if damaged else ": no entry on disk"

    def on_dispatch(self, job) -> None:
        """Scheduler dispatch loop: stall the dispatcher briefly."""
        fault, _ = self._fire(
            "scheduler.dispatch", getattr(job, "job_id", "")
        )
        if fault is not None and fault.kind == "delay_dispatch":
            time.sleep(float(fault.param) if fault.param else 0.02)

    def on_probe(self, shard: str) -> None:
        """Coordinator health probe: drop the /status response."""
        fault, _ = self._fire("shard.probe", shard)
        if fault is not None and fault.kind == "drop_response":
            raise ServiceUnavailable(
                f"chaos: dropped /status probe of shard {shard!r}"
            )

    def on_submit(self, shard: str) -> tuple[int, dict] | None:
        """Coordinator submit path: drop, delay, or synthesize a 429.

        A non-None return is a synthetic response used *instead of* the
        real shard call; ``drop_response`` raises exactly what a dead
        socket would, so the coordinator's existing failover handles it.
        """
        fault, _ = self._fire("shard.submit", shard)
        if fault is None:
            return None
        if fault.kind == "drop_response":
            raise ServiceUnavailable(
                f"chaos: dropped response from shard {shard!r}"
            )
        if fault.kind == "delay_response":
            time.sleep(float(fault.param) if fault.param else 0.05)
            return None
        if fault.kind == "storm_429":
            return 429, {
                "error": "chaos: synthetic 429 storm",
                "chaos": True,
                "shard": shard,
            }
        return None

    def on_chaos_submit(self) -> PlannedFault | None:
        """The runner's own pre-submission point (``kill_shard``)."""
        return self.fire("chaos.submit")

    # ------------------------------------------------------------------ #

    def install(self, service) -> None:
        """Hook this injector into a ``BenchService``'s seams."""
        service.pool.chaos = self
        service.cache.chaos = self
        service.scheduler.chaos = self
        service.chaos = self

    def install_coordinator(self, coordinator) -> None:
        """Hook this injector into a ``ShardCoordinator``'s seams."""
        coordinator.chaos = self

    def summary(self) -> dict:
        """Counters and the injected-fault trail (for /status + records)."""
        with self._lock:
            events = [dict(event) for event in self.events]
            invocations = dict(self._invocations)
        kinds: dict[str, int] = {}
        for event in events:
            kinds[event["kind"]] = kinds.get(event["kind"], 0) + 1
        return {
            "seed": self.plan.seed,
            "spec": self.plan.spec.name,
            "planned": len(self.plan.faults()),
            "injected": len(events),
            "invocations": invocations,
            "kinds": kinds,
            "events": events,
        }


# ===================================================================== #
# traffic ledger
# ===================================================================== #


@dataclass
class LedgerEntry:
    """One request as the chaos driver saw it: the *full* response.

    The loadgen accounting keeps only status/latency; the invariant
    needs the body (state, error, routing block, verification values),
    so the chaos driver records everything.
    """

    index: int
    payload: dict
    code: int | None
    body: dict | None
    error: str | None = None
    retries: int = 0
    elapsed_seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "payload": self.payload,
            "code": self.code,
            "body": self.body,
            "error": self.error,
            "retries": self.retries,
            "elapsed_seconds": self.elapsed_seconds,
        }


def result_digest(verification) -> str:
    """Canonical digest of a run record's verification values.

    Timing fields (mops, seconds) legitimately vary run to run; the
    verification quantities are the deterministic payload the
    bit-identical guarantee covers (the equivalence suite enforces it
    across backends), so they are what completions are compared on.
    """
    blob = json.dumps(verification, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def drive_traffic(
    submit,
    sampler,
    total_requests: int,
    concurrency: int = 2,
    retries: int = 3,
    retry_sleep: float = 0.1,
) -> tuple[list[LedgerEntry], float]:
    """Closed-loop traffic recording full response bodies.

    ``submit(payload) -> (code, body)``; 429s are retried up to
    ``retries`` times (chaos deliberately provokes them).  A transport
    exception is recorded on the entry -- the invariant checker decides
    whether it is structured -- never swallowed.
    """
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    if total_requests < 1:
        raise ValueError("total_requests must be >= 1")
    ledger: list[LedgerEntry | None] = [None] * total_requests
    cursor = [0]
    lock = threading.Lock()
    started = time.perf_counter()

    def worker() -> None:
        while True:
            with lock:
                index = cursor[0]
                if index >= total_requests:
                    return
                cursor[0] = index + 1
            _, payload = sampler.next_request()
            begun = time.perf_counter()
            code = body = None
            error = None
            attempt = 0
            try:
                for attempt in range(retries + 1):
                    code, body = submit(dict(payload))
                    if code != 429 or attempt == retries:
                        break
                    time.sleep(retry_sleep)
            except Exception as exc:
                error = f"{type(exc).__name__}: {exc}"
            ledger[index] = LedgerEntry(
                index=index,
                payload=payload,
                code=code,
                body=body,
                error=error,
                retries=attempt,
                elapsed_seconds=time.perf_counter() - begun,
            )

    threads = [
        threading.Thread(target=worker, daemon=True, name=f"npb-chaos-{i}")
        for i in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return (
        [entry for entry in ledger if entry is not None],
        time.perf_counter() - started,
    )


def summarize_ledger(ledger: list[LedgerEntry], elapsed: float) -> dict:
    """Small traffic rollup for the CHAOS record."""
    by_code: dict[str, int] = {}
    by_state: dict[str, int] = {}
    degraded = 0
    errors = 0
    for entry in ledger:
        by_code[str(entry.code)] = by_code.get(str(entry.code), 0) + 1
        body = entry.body or {}
        state = body.get("state")
        if state:
            by_state[state] = by_state.get(state, 0) + 1
        if (body.get("routing") or {}).get("degraded"):
            degraded += 1
        if entry.error:
            errors += 1
    return {
        "requests": len(ledger),
        "elapsed_seconds": elapsed,
        "by_code": by_code,
        "by_state": by_state,
        "degraded_routes": degraded,
        "transport_errors": errors,
    }


# ===================================================================== #
# the invariant
# ===================================================================== #


class InvariantChecker:
    """Asserts the admitted-jobs invariant over a chaos run.

    An entry is *accounted for* when it is one of:

    * ``done``/``cached`` (HTTP 200) -- completed;
    * ``failed`` with a non-empty structured ``error`` -- a verdict;
    * HTTP 429 -- structured backpressure, the job was never admitted;
    * HTTP 503 with a ``routing`` block -- structured unroutability,
      the job was never admitted.

    Anything else -- a transport exception, a terminal-less body, a
    bare 5xx -- is a *lost* job and fails the check.  On top of that,
    surviving shards' job listings must be all-terminal (nothing stuck
    behind the scenes), and every completion of one spec fingerprint
    must carry bit-identical verification values.
    """

    def __init__(
        self,
        ledger: list[LedgerEntry],
        shard_jobs: dict[str, list[dict]] | None = None,
    ):
        self.ledger = list(ledger)
        self.shard_jobs = dict(shard_jobs or {})

    def check(self) -> dict:
        counts = {
            "requests": len(self.ledger),
            "done": 0,
            "cached": 0,
            "failed": 0,
            "rejected_429": 0,
            "unroutable_503": 0,
            "degraded": 0,
            "completed_with_faults": 0,
            "lost": 0,
        }
        lost: list[dict] = []
        unstructured: list[int] = []
        digests: dict[str, dict[str, int]] = {}
        for entry in self.ledger:
            body = entry.body or {}
            state = body.get("state")
            if (body.get("routing") or {}).get("degraded"):
                counts["degraded"] += 1
            if entry.code == 200 and state in ("done", "cached"):
                counts[state] += 1
                result = body.get("result") or {}
                if result.get("faults"):
                    counts["completed_with_faults"] += 1
                fingerprint = (result.get("provenance") or {}).get(
                    "fingerprint"
                )
                verification = result.get("verification")
                if fingerprint and verification is not None:
                    group = digests.setdefault(fingerprint, {})
                    digest = result_digest(verification)
                    group[digest] = group.get(digest, 0) + 1
            elif entry.code == 200 and state == "failed":
                counts["failed"] += 1
                if not body.get("error"):
                    unstructured.append(entry.index)
            elif entry.code == 429:
                counts["rejected_429"] += 1
            elif entry.code == 503 and isinstance(body.get("routing"), dict):
                counts["unroutable_503"] += 1
            else:
                counts["lost"] += 1
                lost.append(
                    {
                        "index": entry.index,
                        "code": entry.code,
                        "state": state,
                        "error": entry.error,
                    }
                )

        stuck: list[dict] = []
        shard_unstructured: list[str] = []
        for shard, jobs in self.shard_jobs.items():
            for job in jobs:
                state = job.get("state")
                if state in ("done", "cached"):
                    continue
                if state == "failed":
                    if not job.get("error"):
                        shard_unstructured.append(
                            f"{shard}:{job.get('job_id')}"
                        )
                    continue
                stuck.append(
                    {
                        "shard": shard,
                        "job_id": job.get("job_id"),
                        "state": state,
                    }
                )

        divergent = {
            fingerprint: group
            for fingerprint, group in digests.items()
            if len(group) > 1
        }
        checks = [
            {
                "name": "zero_lost_jobs",
                "pass": not lost,
                "detail": lost or f"{counts['requests']} requests accounted",
            },
            {
                "name": "structured_failures",
                "pass": not unstructured and not shard_unstructured,
                "detail": (
                    {
                        "ledger": unstructured,
                        "shards": shard_unstructured,
                    }
                    if unstructured or shard_unstructured
                    else f"{counts['failed']} failed, all with verdicts"
                ),
            },
            {
                "name": "shards_settled",
                "pass": not stuck,
                "detail": stuck
                or f"{sum(len(j) for j in self.shard_jobs.values())} "
                f"shard jobs all terminal",
            },
            {
                "name": "bit_identical_results",
                "pass": not divergent,
                "detail": divergent
                or f"{len(digests)} fingerprints, one digest each",
            },
        ]
        return {
            "pass": all(check["pass"] for check in checks),
            "counts": counts,
            "checks": checks,
        }


# ===================================================================== #
# record IO (the CHAOS_<seq>.json trajectory)
# ===================================================================== #


def build_record(
    seed: int,
    config: dict,
    coordinator_plan: ChaosPlan,
    shard_plans: dict[str, ChaosPlan],
    injected: dict,
    traffic: dict,
    invariant: dict,
) -> dict:
    """Assemble one schema-versioned chaos record.

    ``plan``/``shard_plans`` carry the *compiled schedules* -- the part
    that is a pure function of the seed, and what the CI replay gate
    compares between two same-seed runs.  ``injected`` carries the
    runtime trails (coordinator + runner events, per-shard summaries
    from /status).
    """
    from repro.harness.bench import environment_fingerprint

    kinds: set[str] = set()
    for trail in (injected.get("coordinator"), injected.get("runner")):
        for event in trail or []:
            kinds.add(event["kind"])
    for summary in (injected.get("shards") or {}).values():
        kinds.update((summary or {}).get("kinds", {}))
    return {
        "kind": RECORD_KIND,
        "schema_version": SCHEMA_VERSION,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "environment": environment_fingerprint(),
        "seed": seed,
        "config": config,
        "plan": coordinator_plan.as_dict(),
        "shard_plans": {
            name: plan.as_dict() for name, plan in shard_plans.items()
        },
        "injected": injected,
        "fault_kinds": sorted(kinds),
        "traffic": traffic,
        "invariant": invariant,
    }


def write_record(
    record: dict, directory: str = ".", path: str | None = None
) -> str:
    """Append the record to the trajectory (atomic sequence allocation)."""
    if path is None:
        return records.append_record(record, directory, RECORD_PREFIX)
    return records.write_json_record(record, path)


def latest_record_path(directory: str = ".") -> str | None:
    return records.latest_record_path(directory, RECORD_PREFIX)


def load_record(path: str) -> dict:
    """Load and sanity-check one chaos record."""
    with open(path) as fh:
        record = json.load(fh)
    if not isinstance(record, dict) or record.get("kind") != RECORD_KIND:
        raise ValueError(f"{path}: not an {RECORD_KIND} file")
    version = record.get("schema_version")
    if not isinstance(version, int) or version > SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema_version {version!r} (this tool reads "
            f"<= {SCHEMA_VERSION}); refresh the record with 'npb chaos'"
        )
    return record
