"""Regenerate the paper's evaluation tables and summarize its findings.

Prints the simulated Tables 1-4 plus the summary statistics the paper
draws from them: the Java/Fortran ratio band per machine for the
structured-grid and unstructured groups, and the 16-thread efficiency.
"""

from repro.harness import format_table, generate_table
from repro.machines import machine, predict_benchmark, speedup_curve

STRUCTURED = ("BT", "SP", "LU", "FT", "MG")
UNSTRUCTURED = ("IS", "CG")


def ratio_band(machine_key: str, group) -> tuple[float, float]:
    spec = machine(machine_key)
    ratios = []
    for name in group:
        java = predict_benchmark(spec, name, "A", "java", 0).seconds
        f77 = predict_benchmark(spec, name, "A", "f77", 0).seconds
        ratios.append(java / f77)
    return min(ratios), max(ratios)


def main() -> None:
    for number in (1, 2, 3, 4):
        print(format_table(generate_table(number, "simulated")))
        print()

    print("Summary (paper section 5.1 / conclusions)")
    print("-----------------------------------------")
    for key in ("origin2000", "p690", "e10000"):
        lo, hi = ratio_band(key, STRUCTURED)
        ulo, uhi = ratio_band(key, UNSTRUCTURED)
        print(f"  {key:>11}: structured-grid Java/f77 in "
              f"[{lo:.1f}, {hi:.1f}], unstructured in [{ulo:.1f}, {uhi:.1f}]")

    o2k = machine("origin2000")
    efficiencies = [speedup_curve(o2k, n, "A")[16] / 16
                    for n in ("BT", "SP", "LU")]
    print(f"  Origin2000 16-thread efficiency (BT/SP/LU): "
          + ", ".join(f"{e:.2f}" for e in efficiencies)
          + "  (paper: ~0.5, range 0.38-0.75)")


if __name__ == "__main__":
    main()
