"""Kernel tiers vs reference kernels: same bits, every backend.

Every hot slab kernel is registered in the kernel-backend registry
(:mod:`repro.kernels.registry`) under up to three tiers: ``reference``
(the original expression-form kernels), ``fused`` (in-place arena
chains), and ``compiled`` (Numba scalar loops).  This suite draws
randomized ``(backend, worker count)`` cases and extents from a fixed
seed (the pattern of ``tests/team/test_equivalence.py``) and asserts
every non-reference tier against the reference through the production
path -- ``make_team(..., kernel_backend=tier)`` +
``Team.parallel_kernel`` -- so tier selection, dispatch, and the kernel
itself are all under test at once.

The contract is *bit-identity* unless the registered variant declares a
tolerance, in which case exactly that declared bound is asserted (the
registry refuses a nonzero tolerance without a documenting note).  Two
variants currently declare one:

* ``mg.norm2u3`` (fused): the BLAS dot (``d @ d``) accumulates in a
  different order than ``np.sum(interior * interior)``; 1e-13 relative
  (the max norm stays exact).
* ``cg.matvec`` (compiled): left-to-right scalar row sums versus
  ``np.add.reduceat`` pairwise order; 1e-12 relative.

Compiled cases are skipped when numba is not installed -- unless
``NPB_COMPILED_PUREPY=1`` registers the pure-python stand-in cores
(same arithmetic, no JIT), which is how this suite validates the
compiled tier in environments without numba.
"""

import random

import numpy as np
import pytest

from repro.cfd import rhs as cfd_rhs
from repro.cfd.constants import CFDConstants
from repro.cg import solver as cg
from repro.core import basic_ops
from repro.kernels import compiled as kc
from repro.kernels.registry import REGISTRY
from repro.mg import operators as mg
from repro.team import make_team

#: Whether the compiled tier actually registers variants in this
#: environment (numba, or the pure-python stand-in cores).
COMPILED_OK = kc.NUMBA_AVAILABLE or kc.PUREPY

_compiled_skip = pytest.mark.skipif(
    not COMPILED_OK,
    reason="numba is not installed and NPB_COMPILED_PUREPY is unset")

#: Kernels the compiled tier covers; their tests grow a ``compiled``
#: case (skipped, not silently absent, when the tier is unavailable).
COMPILED_KERNELS = frozenset(
    {"mg.resid", "mg.psinv", "cg.matvec", "cfd.rhs"})


def tier_params(kernel):
    """Non-reference tiers to test ``kernel`` under, as parametrize
    values; the compiled case carries the availability skip marker."""
    params = ["fused"]
    if kernel in COMPILED_KERNELS:
        params.append(pytest.param("compiled", marks=_compiled_skip))
    return params


def _variant(kernel, tier):
    """Strictly resolve (no fallback): a missing registration here is a
    test failure, not a silent downgrade to a tier already covered."""
    return REGISTRY.resolve(kernel, tier, fallback=False)


def _assert_matches(got, want, variant):
    """Bit-identity, or exactly the variant's declared relative bound."""
    if variant.tolerance == 0.0:
        assert got.tobytes() == want.tobytes()
    else:
        scale = max(1.0, float(np.max(np.abs(want))))
        err = float(np.max(np.abs(got - want)))
        assert err <= variant.tolerance * scale, (
            f"{variant.kernel}/{variant.tier}: max rel error {err / scale:g}"
            f" exceeds declared tolerance {variant.tolerance:g}")


#: Fixed-seed random (backend, workers) cases; worker counts deliberately
#: include 1 and counts that do not divide the extents below.
_rng = random.Random(20260806)
TEAM_CASES = sorted({(_rng.choice(["serial", "threads", "process"]),
                      _rng.choice([1, 2, 3, 4]))
                     for _ in range(10)})
TEAM_IDS = [f"{b}x{w}" for b, w in TEAM_CASES]

#: Random extents (grid edges / row counts), also from the fixed seed.
MG_SIZES = sorted({_rng.choice([10, 12, 14, 18]) for _ in range(3)})
COARSE_SIZES = sorted({_rng.choice([5, 6, 7, 8]) for _ in range(3)})
CFD_GRIDS = [(12, 9, 10), (9, 11, 9)]  # (nz, ny, nx)
CG_SIZES = sorted({_rng.randint(40, 200) for _ in range(3)})

#: NPB MG class-S/W coefficient vectors.
A = (-8.0 / 3.0, 0.0, 1.0 / 6.0, 1.0 / 12.0)
C = (-3.0 / 8.0, 1.0 / 32.0, -1.0 / 64.0, 0.0)


def _shared(team, rng, shape):
    """A team-shared array filled with seeded random values."""
    arr = team.shared(shape)
    arr[...] = rng.standard_normal(shape)
    return arr


@pytest.mark.parametrize("backend,workers", TEAM_CASES, ids=TEAM_IDS)
class TestMGTiers:
    @pytest.mark.parametrize("tier", tier_params("mg.resid"))
    def test_resid(self, backend, workers, tier):
        variant = _variant("mg.resid", tier)
        with make_team(backend, workers, kernel_backend=tier) as team:
            for m in MG_SIZES:
                rng = np.random.default_rng(100 + m)
                u = _shared(team, rng, (m, m, m))
                v = _shared(team, rng, (m, m, m))
                r = _shared(team, rng, (m, m, m))
                r_ref = r.copy()
                mg._resid_slab_reference(0, m - 2, u, v, r_ref, A)
                team.parallel_kernel("mg.resid", m - 2, u, v, r, A)
                _assert_matches(r, r_ref, variant)

    @pytest.mark.parametrize("tier", tier_params("mg.resid"))
    def test_resid_v_aliases_r(self, backend, workers, tier):
        """The MG driver calls resid(u, r, r) -- v and r are the same
        array; every tier must read v before overwriting r."""
        variant = _variant("mg.resid", tier)
        with make_team(backend, workers, kernel_backend=tier) as team:
            m = MG_SIZES[0]
            rng = np.random.default_rng(17)
            u = _shared(team, rng, (m, m, m))
            r = _shared(team, rng, (m, m, m))
            r_ref = r.copy()
            mg._resid_slab_reference(0, m - 2, u, r_ref, r_ref, A)
            team.parallel_kernel("mg.resid", m - 2, u, r, r, A)
            _assert_matches(r, r_ref, variant)

    @pytest.mark.parametrize("tier", tier_params("mg.psinv"))
    def test_psinv(self, backend, workers, tier):
        variant = _variant("mg.psinv", tier)
        with make_team(backend, workers, kernel_backend=tier) as team:
            for m in MG_SIZES:
                rng = np.random.default_rng(200 + m)
                r = _shared(team, rng, (m, m, m))
                u = _shared(team, rng, (m, m, m))
                u_ref = u.copy()
                mg._psinv_slab_reference(0, m - 2, r, u_ref, C)
                team.parallel_kernel("mg.psinv", m - 2, r, u, C)
                _assert_matches(u, u_ref, variant)

    @pytest.mark.parametrize("tier", tier_params("mg.rprj3"))
    def test_rprj3(self, backend, workers, tier):
        variant = _variant("mg.rprj3", tier)
        with make_team(backend, workers, kernel_backend=tier) as team:
            for mc in COARSE_SIZES:
                mf = 2 * mc - 2
                rng = np.random.default_rng(300 + mc)
                r = _shared(team, rng, (mf, mf, mf))
                s = _shared(team, rng, (mc, mc, mc))
                s_ref = s.copy()
                d = tuple(2 if mk == 3 else 1 for mk in r.shape)
                mg._rprj3_slab_reference(0, mc - 2, r, s_ref, d)
                team.parallel_kernel("mg.rprj3", mc - 2, r, s, d)
                _assert_matches(s, s_ref, variant)

    @pytest.mark.parametrize("tier", tier_params("mg.interp"))
    def test_interp(self, backend, workers, tier):
        variant = _variant("mg.interp", tier)
        with make_team(backend, workers, kernel_backend=tier) as team:
            for mc in COARSE_SIZES:
                mf = 2 * mc - 2
                rng = np.random.default_rng(400 + mc)
                z = _shared(team, rng, (mc, mc, mc))
                u = _shared(team, rng, (mf, mf, mf))
                u_ref = u.copy()
                mg._interp_slab_reference(0, mc - 1, z, u_ref)
                team.parallel_kernel("mg.interp", mc - 1, z, u)
                _assert_matches(u, u_ref, variant)

    @pytest.mark.parametrize("tier", tier_params("mg.norm2u3"))
    def test_norm(self, backend, workers, tier):
        """Sum of squares at the variant's declared relative tolerance
        (BLAS dot order for the fused tier); the max norm stays exact."""
        variant = _variant("mg.norm2u3", tier)
        with make_team(backend, workers, kernel_backend=tier) as team:
            for m in MG_SIZES:
                rng = np.random.default_rng(500 + m)
                r = _shared(team, rng, (m, m, m))
                partials = team.parallel_kernel("mg.norm2u3", m - 2, r)
                expected = [mg._norm_slab_reference(lo, hi, r)
                            for lo, hi in team.plan.bounds(m - 2)]
                assert len(partials) == len(expected)
                tol = variant.tolerance
                for (ssq, rmax), (ssq_ref, rmax_ref) in zip(partials,
                                                            expected):
                    assert abs(ssq - ssq_ref) <= tol * abs(ssq_ref)
                    assert rmax == rmax_ref  # |.| and max commute bitwise


def _cfd_state(team, nz, ny, nx, seed):
    """Physically plausible random state: positive density and enough
    energy that the SP speed-of-sound argument stays positive."""
    rng = np.random.default_rng(seed)
    u = team.shared((nz, ny, nx, 5))
    u[...] = 0.1 * rng.standard_normal((nz, ny, nx, 5))
    u[..., 0] = 1.0 + 0.2 * rng.random((nz, ny, nx))
    u[..., 4] = 5.0 + rng.random((nz, ny, nx))
    fields = [team.shared((nz, ny, nx)) for _ in range(7)]
    return u, fields


@pytest.mark.parametrize("backend,workers", TEAM_CASES, ids=TEAM_IDS)
class TestCFDTiers:
    @pytest.mark.parametrize("tier", tier_params("cfd.fields"))
    def test_fields(self, backend, workers, tier):
        variant = _variant("cfd.fields", tier)
        with make_team(backend, workers, kernel_backend=tier) as team:
            for i, (nz, ny, nx) in enumerate(CFD_GRIDS):
                c = CFDConstants(nx, ny, nz, 0.001)
                u, tiered = _cfd_state(team, nz, ny, nx, 600 + i)
                reference = [f.copy() for f in tiered]
                cfd_rhs.fields_slab_reference(0, nz, u, *reference, c)
                team.parallel_kernel("cfd.fields", nz, u, *tiered, c)
                for got, want in zip(tiered, reference):
                    _assert_matches(got, want, variant)

    @pytest.mark.parametrize("tier", tier_params("cfd.fields"))
    def test_fields_speed_none(self, backend, workers, tier):
        """The BT variant passes speed=None; the kernel must skip that
        chain identically."""
        variant = _variant("cfd.fields", tier)
        with make_team(backend, workers, kernel_backend=tier) as team:
            nz, ny, nx = CFD_GRIDS[0]
            c = CFDConstants(nx, ny, nz, 0.001)
            u, tiered = _cfd_state(team, nz, ny, nx, 77)
            tiered = tiered[:6]
            reference = [f.copy() for f in tiered]
            cfd_rhs.fields_slab_reference(0, nz, u, *reference, None, c)
            team.parallel_kernel("cfd.fields", nz, u, *tiered, None, c)
            for got, want in zip(tiered, reference):
                _assert_matches(got, want, variant)

    @pytest.mark.parametrize("tier", tier_params("cfd.rhs"))
    def test_rhs(self, backend, workers, tier):
        variant = _variant("cfd.rhs", tier)
        with make_team(backend, workers, kernel_backend=tier) as team:
            for i, (nz, ny, nx) in enumerate(CFD_GRIDS):
                c = CFDConstants(nx, ny, nz, 0.001)
                u, fields = _cfd_state(team, nz, ny, nx, 700 + i)
                rho_i, us, vs, ws, qs, square, _ = fields
                cfd_rhs.fields_slab_reference(0, nz, u, rho_i, us, vs,
                                              ws, qs, square, None, c)
                rng = np.random.default_rng(800 + i)
                forcing = _shared(team, rng, (nz, ny, nx, 5))
                rhs = _shared(team, rng, (nz, ny, nx, 5))
                rhs_ref = rhs.copy()
                cfd_rhs.rhs_slab_reference(0, nz - 2, u, rhs_ref, forcing,
                                           rho_i, us, vs, ws, qs, square, c)
                team.parallel_kernel("cfd.rhs", nz - 2, u, rhs, forcing,
                                     rho_i, us, vs, ws, qs, square, c)
                _assert_matches(rhs, rhs_ref, variant)


def _cg_problem(team, n, seed):
    """A random CSR matrix with 1..5 nonzeros per row (no empty rows)."""
    rng = np.random.default_rng(seed)
    counts = rng.integers(1, 6, size=n)
    rowstr = team.shared(n + 1, dtype=np.int64)
    rowstr[1:] = np.cumsum(counts)
    nnz = int(rowstr[n])
    colidx = team.shared(nnz, dtype=np.int64)
    colidx[:] = rng.integers(0, n, size=nnz)
    a = team.shared(nnz)
    a[:] = rng.standard_normal(nnz)
    x = team.shared(n)
    x[:] = rng.standard_normal(n)
    return rowstr, colidx, a, x


@pytest.mark.parametrize("backend,workers", TEAM_CASES, ids=TEAM_IDS)
class TestCGTiers:
    @pytest.mark.parametrize("tier", tier_params("cg.matvec"))
    def test_matvec_with_precomputed_offsets(self, backend, workers, tier):
        variant = _variant("cg.matvec", tier)
        with make_team(backend, workers, kernel_backend=tier) as team:
            for n in CG_SIZES:
                rowstr, colidx, a, x = _cg_problem(team, n, 900 + n)
                offsets = team.shared(n, dtype=np.int64)
                cg.compute_reduceat_offsets(team.plan.bounds(n), rowstr,
                                            offsets)
                out = team.shared(n)
                out_ref = np.empty(n)
                for lo, hi in team.plan.bounds(n):
                    cg._matvec_slab_reference(lo, hi, rowstr, colidx, a,
                                              x, out_ref)
                team.parallel_kernel("cg.matvec", n, rowstr, colidx, a,
                                     x, out, offsets)
                _assert_matches(out, out_ref, variant)

    @pytest.mark.parametrize("tier", tier_params("cg.matvec"))
    def test_matvec_without_offsets(self, backend, workers, tier):
        """offsets=None falls back to per-call offset computation."""
        variant = _variant("cg.matvec", tier)
        with make_team(backend, workers, kernel_backend=tier) as team:
            n = CG_SIZES[0]
            rowstr, colidx, a, x = _cg_problem(team, n, 41)
            out = team.shared(n)
            out_ref = np.empty(n)
            cg._matvec_slab_reference(0, n, rowstr, colidx, a, x, out_ref)
            team.parallel_kernel("cg.matvec", n, rowstr, colidx, a, x,
                                 out, None)
            _assert_matches(out, out_ref, variant)

    @pytest.mark.parametrize("tier", tier_params("cg.update_zr"))
    def test_update_zr(self, backend, workers, tier):
        variant = _variant("cg.update_zr", tier)
        with make_team(backend, workers, kernel_backend=tier) as team:
            for n in CG_SIZES:
                rng = np.random.default_rng(1000 + n)
                z, r, p, q = (_shared(team, rng, n) for _ in range(4))
                alpha = float(rng.standard_normal())
                z_ref, r_ref = z.copy(), r.copy()
                cg._update_zr_slab_reference(0, n, z_ref, r_ref, p, q,
                                             alpha)
                team.parallel_kernel("cg.update_zr", n, z, r, p, q, alpha)
                _assert_matches(z, z_ref, variant)
                _assert_matches(r, r_ref, variant)

    @pytest.mark.parametrize("tier", tier_params("cg.norm_diff"))
    def test_norm_diff(self, backend, workers, tier):
        _variant("cg.norm_diff", tier)
        with make_team(backend, workers, kernel_backend=tier) as team:
            for n in CG_SIZES:
                rng = np.random.default_rng(1100 + n)
                x = _shared(team, rng, n)
                r = _shared(team, rng, n)
                partials = team.parallel_kernel("cg.norm_diff", n, x, r)
                expected = [cg._norm_diff_slab_reference(lo, hi, x, r)
                            for lo, hi in team.plan.bounds(n)]
                assert partials == expected  # bit-identical floats


@pytest.mark.parametrize("backend,workers", TEAM_CASES, ids=TEAM_IDS)
class TestBasicOpsFusedSlabs:
    def test_stencil1_slab(self, backend, workers):
        with make_team(backend, workers) as team:
            w = basic_ops.make_workload((9, 8, 11), seed=7)
            a = team.shared(w.a.shape)
            a[...] = w.a
            out = team.shared(a.shape)
            out_ref = out.copy()
            basic_ops.numpy_stencil1_slab_reference(0, a.shape[0], a,
                                                    out_ref)
            team.parallel_for(a.shape[0], basic_ops.numpy_stencil1_slab,
                              a, out)
            assert out.tobytes() == out_ref.tobytes()

    def test_stencil2_slab(self, backend, workers):
        with make_team(backend, workers) as team:
            w = basic_ops.make_workload((10, 9, 12), seed=8)
            a = team.shared(w.a.shape)
            a[...] = w.a
            out = team.shared(a.shape)
            out_ref = out.copy()
            basic_ops.numpy_stencil2_slab_reference(0, a.shape[0], a,
                                                    out_ref)
            team.parallel_for(a.shape[0], basic_ops.numpy_stencil2_slab,
                              a, out)
            assert out.tobytes() == out_ref.tobytes()

    def test_matvec5_slab(self, backend, workers):
        with make_team(backend, workers) as team:
            w = basic_ops.make_workload((7, 6, 9), seed=9)
            matrices = team.shared(w.matrices.shape)
            matrices[...] = w.matrices
            vectors = team.shared(w.vectors.shape)
            vectors[...] = w.vectors
            out = team.shared(w.vectors.shape)
            out_ref = np.empty_like(w.vectors)
            basic_ops.numpy_matvec5_slab_reference(
                0, matrices.shape[0], matrices, vectors, out_ref)
            team.parallel_for(matrices.shape[0],
                              basic_ops.numpy_matvec5_slab, matrices,
                              vectors, out)
            assert out.tobytes() == out_ref.tobytes()


class TestBasicOpsFusedFullArray:
    """The full-array numpy styles are entry points (never dispatched as
    slab tasks); they bump the arena generation themselves, so repeated
    calls must reuse -- and stay bit-identical to -- the references."""

    @pytest.mark.parametrize("fused,reference", [
        (basic_ops.numpy_stencil1, basic_ops.numpy_stencil1_reference),
        (basic_ops.numpy_stencil2, basic_ops.numpy_stencil2_reference),
        (basic_ops.numpy_matvec5, basic_ops.numpy_matvec5_reference),
    ], ids=["stencil1", "stencil2", "matvec5"])
    def test_bit_identical(self, fused, reference):
        w = basic_ops.make_workload((11, 9, 10), seed=13)
        shape = (w.vectors.shape if fused is basic_ops.numpy_matvec5
                 else w.a.shape)
        out_fused = np.zeros(shape)
        out_ref = np.zeros(shape)
        for _ in range(3):  # repeated calls: arena reuse must not drift
            fused(w, out_fused)
            reference(w, out_ref)
            assert out_fused.tobytes() == out_ref.tobytes()


class TestRandomExtents:
    """Direct slab calls at random (lo, hi) -- edges the block partition
    never produces (empty slabs, single planes, off-center windows)."""

    EXTENTS = sorted({tuple(sorted((_rng.randint(0, 16),
                                    _rng.randint(0, 16))))
                      for _ in range(10)})

    @pytest.mark.parametrize("tier", tier_params("mg.resid"))
    @pytest.mark.parametrize("lo,hi", EXTENTS,
                             ids=[f"{lo}-{hi}" for lo, hi in EXTENTS])
    def test_mg_kernels_any_extent(self, lo, hi, tier):
        resid = _variant("mg.resid", tier)
        psinv = _variant("mg.psinv", tier)
        m = 18  # interior extent 16 >= any hi above
        rng = np.random.default_rng(1300 + lo + 31 * hi)
        u = rng.standard_normal((m, m, m))
        v = rng.standard_normal((m, m, m))
        r = rng.standard_normal((m, m, m))
        r_ref = r.copy()
        mg._resid_slab_reference(lo, hi, u, v, r_ref, A)
        resid.fn(lo, hi, u, v, r, A)
        _assert_matches(r, r_ref, resid)
        u_ref = u.copy()
        mg._psinv_slab_reference(lo, hi, r, u_ref, C)
        psinv.fn(lo, hi, r, u, C)
        _assert_matches(u, u_ref, psinv)

    @pytest.mark.parametrize("lo,hi", EXTENTS,
                             ids=[f"{lo}-{hi}" for lo, hi in EXTENTS])
    def test_basic_ops_slabs_any_extent(self, lo, hi):
        rng = np.random.default_rng(1400 + lo + 31 * hi)
        a = rng.standard_normal((17, 7, 8))
        out = rng.standard_normal(a.shape)
        out_ref = out.copy()
        basic_ops.numpy_stencil1_slab_reference(lo, hi, a, out_ref)
        basic_ops.numpy_stencil1_slab(lo, hi, a, out)
        assert out.tobytes() == out_ref.tobytes()
        basic_ops.numpy_stencil2_slab_reference(lo, hi, a, out_ref)
        basic_ops.numpy_stencil2_slab(lo, hi, a, out)
        assert out.tobytes() == out_ref.tobytes()
