"""Three-way kernel-tier timing: reference vs fused vs compiled.

Times every kernel registered in the kernel-backend registry
(:mod:`repro.kernels.registry`) at each tier that can serve it
*strictly* (no fallback -- a tier is either timed as itself or reported
unavailable), then prints the language-gap ratios the tiers exist to
measure: ``reference/fused`` (what the arena rewrite bought) and
``fused/compiled`` (what native loops buy on top -- the repository's
analogue of the paper's Fortran/Java gap).  Run from the repo root:

    PYTHONPATH=src python benchmarks/bench_kernel_tiers.py
    PYTHONPATH=src python benchmarks/bench_kernel_tiers.py --json

Methodology matches the bench trajectory (:mod:`repro.harness.stats`):
each sample is ``--inner`` back-to-back calls, ``--repeat`` samples are
summarized as min-of-k with the MAD as the noise bar, and every variant
gets one untimed warm-up call first (which is also where numba pays its
JIT cost, so compilation never pollutes a sample).  Without numba the
compiled column reads ``n/a`` with the registry's reason; with
``NPB_COMPILED_PUREPY=1`` it times the pure-python stand-in cores --
useful to sanity-check the harness, meaningless as a performance claim.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import numpy as np  # noqa: E402

from repro.cfd.constants import CFDConstants  # noqa: E402
from repro.harness.stats import time_callable  # noqa: E402
from repro.kernels.registry import (  # noqa: E402
    REGISTRY,
    TIERS,
    TierUnavailableError,
)
from repro.runtime.arena import worker_arena  # noqa: E402

#: NPB MG class-S/W coefficient vectors.
A = (-8.0 / 3.0, 0.0, 1.0 / 6.0, 1.0 / 12.0)
C = (-3.0 / 8.0, 1.0 / 32.0, -1.0 / 64.0, 0.0)

#: Workload extents: big enough that per-call Python overhead is not the
#: whole measurement, small enough that the reference tier stays quick.
MG_M = 34          # 32^3 interior, the class-S top grid
CFD_GRID = (18, 18, 18)
CG_N = 4000        # rows; 1..10 nonzeros each


def _mg_arrays(seed):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal((MG_M, MG_M, MG_M)) for _ in range(3)]


def _cfd_state(seed):
    nz, ny, nx = CFD_GRID
    rng = np.random.default_rng(seed)
    u = 0.1 * rng.standard_normal((nz, ny, nx, 5))
    u[..., 0] = 1.0 + 0.2 * rng.random((nz, ny, nx))
    u[..., 4] = 5.0 + rng.random((nz, ny, nx))
    fields = [np.empty((nz, ny, nx)) for _ in range(7)]
    return u, fields


def _cg_problem(seed):
    rng = np.random.default_rng(seed)
    counts = rng.integers(1, 11, size=CG_N)
    rowstr = np.zeros(CG_N + 1, dtype=np.int64)
    rowstr[1:] = np.cumsum(counts)
    nnz = int(rowstr[CG_N])
    colidx = rng.integers(0, CG_N, size=nnz).astype(np.int64)
    a = rng.standard_normal(nnz)
    x = rng.standard_normal(CG_N)
    return rowstr, colidx, a, x


def build_workloads():
    """kernel -> (n, args) such that the timed call is fn(0, n, *args)."""
    u, v, r = _mg_arrays(1)
    mc = MG_M // 2 + 1  # coarse grid: fine extent = 2 * mc - 2
    zc = np.random.default_rng(2).standard_normal((mc, mc, mc))
    sc = np.empty_like(zc)
    uf, fields = _cfd_state(3)
    forcing = 0.01 * np.random.default_rng(4).standard_normal(
        uf.shape)
    rhs = np.empty_like(uf)
    c = CFDConstants(CFD_GRID[2], CFD_GRID[1], CFD_GRID[0], 0.001)
    rowstr, colidx, a, x = _cg_problem(5)
    out = np.empty(CG_N)
    zz = np.random.default_rng(6).standard_normal(CG_N)
    rr = zz.copy()
    rho_i, us, vs, ws, qs, square, speed = fields
    return {
        "mg.resid": (MG_M - 2, (u, v, r, A)),
        "mg.psinv": (MG_M - 2, (r, u, C)),
        "mg.rprj3": (zc.shape[0] - 2, (u, sc,
                                       (1, 1, 1))),
        "mg.interp": (zc.shape[0] - 1, (zc, v)),
        "mg.norm2u3": (MG_M - 2, (r,)),
        "cfd.fields": (CFD_GRID[0], (uf, rho_i, us, vs, ws, qs, square,
                                     speed, c)),
        "cfd.rhs": (CFD_GRID[0] - 2, (uf, rhs, forcing, rho_i, us, vs,
                                      ws, qs, square, c)),
        "cg.matvec": (CG_N, (rowstr, colidx, a, x, out, None)),
        "cg.update_zr": (CG_N, (zz, rr, x, out, 0.5)),
        "cg.norm_diff": (CG_N, (x, out)),
    }


def time_kernel(kernel, n, args, repeat, inner):
    """tier -> timing dict (or unavailable note) for one kernel."""
    arena = worker_arena()
    rows = {}
    for tier in TIERS:
        try:
            variant = REGISTRY.resolve(kernel, tier, fallback=False)
        except TierUnavailableError as exc:
            rows[tier] = {"available": False, "reason": str(exc)}
            continue

        def sample(fn=variant.fn):
            for _ in range(inner):
                arena.next_dispatch()
                fn(0, n, *args)

        sample()  # warm-up: arena pools fill, numba JIT-compiles
        summary = time_callable(sample, repeat=repeat)
        rows[tier] = {
            "available": True,
            "per_call_seconds": summary.best / inner,
            "tolerance": variant.tolerance,
            **summary.as_dict(),
        }
    return rows


def _ratio(rows, num, den):
    if rows.get(num, {}).get("available") and rows.get(den, {}).get(
            "available"):
        return rows[num]["per_call_seconds"] / rows[den]["per_call_seconds"]
    return None


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Time each registered kernel at every available tier")
    parser.add_argument("--repeat", type=int, default=5,
                        help="samples per (kernel, tier) [5]")
    parser.add_argument("--inner", type=int, default=10,
                        help="kernel calls per sample [10]")
    parser.add_argument("--json", action="store_true",
                        help="emit the structured report instead of a table")
    args = parser.parse_args(argv)

    workloads = build_workloads()
    report = {"repeat": args.repeat, "inner": args.inner, "kernels": {}}
    for kernel in REGISTRY.kernels():
        if kernel not in workloads:
            continue
        n, kargs = workloads[kernel]
        rows = time_kernel(kernel, n, kargs, args.repeat, args.inner)
        rows["ratios"] = {
            "reference_over_fused": _ratio(rows, "reference", "fused"),
            "fused_over_compiled": _ratio(rows, "fused", "compiled"),
        }
        report["kernels"][kernel] = rows

    if args.json:
        print(json.dumps(report, indent=2))
        return 0

    header = (f"{'kernel':<14}" + "".join(f"{t + ' ms':>14}" for t in TIERS)
              + f"{'ref/fused':>11}{'fused/comp':>11}")
    print(header)
    print("-" * len(header))
    unavailable = set()
    for kernel, rows in report["kernels"].items():
        cols = [f"{kernel:<14}"]
        for tier in TIERS:
            row = rows[tier]
            if row["available"]:
                cols.append(f"{1e3 * row['per_call_seconds']:>14.3f}")
            else:
                cols.append(f"{'n/a':>14}")
                unavailable.add(tier)
        for key in ("reference_over_fused", "fused_over_compiled"):
            ratio = rows["ratios"][key]
            cols.append(f"{ratio:>10.2f}x" if ratio is not None
                        else f"{'-':>11}")
        print("".join(cols))
    for tier in sorted(unavailable):
        available, reason = REGISTRY.tier_status(tier)
        if not available:
            print(f"\n{tier}: unavailable -- {reason}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
