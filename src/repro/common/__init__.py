"""Shared substrate for the NPB-Python suite.

This package holds everything the individual benchmarks have in common:

* :mod:`repro.common.randdp` -- the exact NPB 46-bit linear congruential
  pseudo-random number generator (``randlc``/``vranlc``), both scalar and
  vectorized.  Bit-faithful reproduction of the Fortran generator is what
  makes the official verification values attainable.
* :mod:`repro.common.timers` -- the NPB timer facility.
* :mod:`repro.common.params` -- problem-class definitions (S, W, A, B, C).
* :mod:`repro.common.verification` -- the verification result record shared
  by every benchmark.
"""

from repro.common.randdp import Randlc, randlc, vranlc, ipow46
from repro.common.timers import Timer, TimerSet
from repro.common.verification import VerificationResult, within_epsilon
from repro.common.params import ProblemClass, UnknownClassError

__all__ = [
    "Randlc",
    "randlc",
    "vranlc",
    "ipow46",
    "Timer",
    "TimerSet",
    "VerificationResult",
    "within_epsilon",
    "ProblemClass",
    "UnknownClassError",
]
