"""The CG benchmark driver (cg.f main program)."""

from __future__ import annotations

import math

import numpy as np

from repro.cg.makea import makea
from repro.cg.params import ZETA_EPSILON, cg_params
from repro.cg.solver import (
    _dot_slab,
    _fill_slab,
    _scale_into_x_slab,
    compute_reduceat_offsets,
    conj_grad,
)
from repro.common.randdp import A_DEFAULT, Randlc
from repro.common.verification import VerificationResult
from repro.core.benchmark import NPBenchmark
from repro.core.registry import register

#: LCG seed used by CG (tran in cg.f).
CG_SEED = 314159265


@register
class CG(NPBenchmark):
    """Conjugate Gradient, irregular memory access and communication."""

    name = "CG"

    def __init__(self, problem_class, team=None):
        super().__init__(problem_class, team)
        self.params = cg_params(self.problem_class)
        self.zeta = float("nan")
        #: per-outer-iteration (rnorm, zeta) history of the timed run
        self.history: list[tuple[float, float]] = []

    @property
    def niter(self) -> int:
        return self.params.niter

    # ------------------------------------------------------------------ #

    def _setup(self) -> None:
        params = self.params
        n = params.na
        rng = Randlc(CG_SEED, A_DEFAULT)
        rng.next()  # the main program's initial zeta = randlc(tran, amult)
        import time as _time

        t0 = _time.perf_counter()
        matrix = makea(n, params.nonzer, params.rcond, params.shift, rng)
        self.makea_seconds = _time.perf_counter() - t0

        team = self.team
        nnz = matrix.nnz
        self.rowstr = team.shared(n + 1, dtype=np.int64)
        self.colidx = team.shared(nnz, dtype=np.int64)
        self.a = team.shared(nnz)
        self.rowstr[:] = matrix.rowstr
        self.colidx[:] = matrix.colidx
        self.a[:] = matrix.a
        # Per-slab reduceat offsets for the mat-vec, computed once for
        # this team's plan (team-shared so process workers see them by
        # reference rather than repickling every dispatch).
        self.offsets = team.shared(n, dtype=np.int64)
        compute_reduceat_offsets(team.plan.bounds(n), self.rowstr,
                                 self.offsets)

        self.x = team.shared(n)
        self.z = team.shared(n)
        self.p = team.shared(n)
        self.q = team.shared(n)
        self.r = team.shared(n)

        # One untimed outer iteration to touch all data (cg.f does exactly
        # one), then reset the starting vector.
        team.parallel_for(n, _fill_slab, self.x, 1.0)
        self._outer_step()
        team.parallel_for(n, _fill_slab, self.x, 1.0)
        self.zeta = 0.0

    def _outer_step(self) -> tuple[float, float]:
        """One inverse-power outer iteration; returns (rnorm, zeta)."""
        params = self.params
        n = params.na
        team = self.team
        with self.region("conj_grad"):
            rnorm = conj_grad(team, n, self.rowstr, self.colidx, self.a,
                              self.x, self.z, self.p, self.q, self.r,
                              self.offsets)
        with self.region("norm"):
            norm_xz = team.reduce_sum(n, _dot_slab, self.x, self.z)
            norm_zz = team.reduce_sum(n, _dot_slab, self.z, self.z)
            zeta = params.shift + 1.0 / norm_xz
            team.parallel_for(n, _scale_into_x_slab, self.x, self.z,
                              1.0 / math.sqrt(norm_zz))
        return rnorm, zeta

    def _iterate(self) -> None:
        self.history = []
        for _ in range(self.params.niter):
            rnorm, zeta = self._outer_step()
            self.history.append((rnorm, zeta))
        self.zeta = zeta

    # ------------------------------------------------------------------ #

    def verify(self) -> VerificationResult:
        result = VerificationResult("CG", str(self.problem_class), True)
        result.add("zeta", self.zeta, self.params.zeta_verify, ZETA_EPSILON)
        return result

    def op_count(self) -> float:
        """Official cg.f operation count for the timed region."""
        params = self.params
        nnz_terms = params.nonzer * (params.nonzer + 1)
        return (2.0 * params.niter * params.na
                * (3.0 + nnz_terms + 25.0 * (5.0 + nnz_terms) + 3.0))
