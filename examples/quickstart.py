"""Quickstart: run one NPB benchmark and check its official verification.

Usage::

    python examples/quickstart.py [BENCHMARK] [CLASS]

Defaults to CG class S -- the conjugate-gradient kernel on the sample
size, which finishes in well under a second.
"""

import sys

from repro import run_benchmark


def main() -> int:
    name = sys.argv[1] if len(sys.argv) > 1 else "CG"
    problem_class = sys.argv[2] if len(sys.argv) > 2 else "S"

    print(f"Running {name} class {problem_class} (serial)...\n")
    result = run_benchmark(name, problem_class)

    print(result.banner())
    print()
    print(result.verification.summary())

    # The same benchmark under the process backend (true parallelism on
    # multicore hosts) -- identical verification by construction.
    print("\nSame benchmark with 2 worker processes...")
    parallel = run_benchmark(name, problem_class, backend="process",
                             nworkers=2)
    print(f"  time {parallel.time_seconds:.3f}s "
          f"(serial was {result.time_seconds:.3f}s), "
          f"verified={parallel.verified}")
    return 0 if (result.verified and parallel.verified) else 1


if __name__ == "__main__":
    sys.exit(main())
