"""Tests for SP's pointwise similarity transforms."""

import numpy as np
import pytest

from repro.cfd.constants import CFDConstants
from repro.cfd.initialize import initialize
from repro.cfd.rhs import fields_slab
from repro.sp.pointwise import ninvr_slab, pinvr_slab, tzetar_slab, txinvr_slab


@pytest.fixture(scope="module")
def state():
    c = CFDConstants(10, 10, 10, 0.015)
    shape = (c.nz, c.ny, c.nx)
    u = np.zeros(shape + (5,))
    initialize(u, c)
    fields = {name: np.zeros(shape)
              for name in ("rho_i", "us", "vs", "ws", "qs", "square",
                           "speed")}
    fields_slab(0, c.nz, u, fields["rho_i"], fields["us"], fields["vs"],
                fields["ws"], fields["qs"], fields["square"],
                fields["speed"], c)
    return c, u, fields


def _random_rhs(shape, seed=0):
    return np.random.default_rng(seed).random(shape + (5,))


class TestTransforms:
    def test_ninvr_is_linear_involution_like(self, state):
        """ninvr applied twice is a known permutation-with-signs: check
        linearity and invertibility numerically via matrix probing."""
        c, u, fields = state
        shape = (c.nz, c.ny, c.nx)
        basis = np.eye(5)
        matrix = np.zeros((5, 5))
        for m in range(5):
            rhs = np.zeros(shape + (5,))
            rhs[..., :] = basis[m]
            ninvr_slab(0, c.nz - 2, rhs, c)
            matrix[:, m] = rhs[2, 2, 2]
        assert abs(np.linalg.det(matrix)) > 1e-12  # invertible
        # bt = sqrt(1/2): the acoustic 2x2 block is a rotation-like map
        assert matrix[2, 3] == pytest.approx(c.bt)
        assert matrix[2, 4] == pytest.approx(-c.bt)

    def test_pinvr_invertible(self, state):
        c, u, fields = state
        shape = (c.nz, c.ny, c.nx)
        matrix = np.zeros((5, 5))
        for m in range(5):
            rhs = np.zeros(shape + (5,))
            rhs[..., m] = 1.0
            pinvr_slab(0, c.nz - 2, rhs, c)
            matrix[:, m] = rhs[3, 3, 3]
        assert abs(np.linalg.det(matrix)) > 1e-12

    def test_txinvr_only_touches_interior(self, state):
        c, u, fields = state
        rhs = _random_rhs((c.nz, c.ny, c.nx), 1)
        before = rhs.copy()
        txinvr_slab(0, c.nz - 2, rhs, fields["rho_i"], fields["us"],
                    fields["vs"], fields["ws"], fields["qs"],
                    fields["speed"], c)
        assert np.array_equal(rhs[0], before[0])
        assert np.array_equal(rhs[:, :, 0], before[:, :, 0])
        assert not np.array_equal(rhs[1:-1, 1:-1, 1:-1],
                                  before[1:-1, 1:-1, 1:-1])

    def test_tzetar_linear_in_rhs(self, state):
        c, u, fields = state
        shape = (c.nz, c.ny, c.nx)
        r1 = _random_rhs(shape, 2)
        r2 = _random_rhs(shape, 3)
        combo = 2.0 * r1 + 3.0 * r2

        def apply(rhs):
            out = rhs.copy()
            tzetar_slab(0, c.nz - 2, out, u, fields["us"], fields["vs"],
                        fields["ws"], fields["qs"], fields["speed"], c)
            return out

        lhs = apply(combo)[1:-1, 1:-1, 1:-1]
        rhs_lin = (2.0 * apply(r1) + 3.0 * apply(r2))[1:-1, 1:-1, 1:-1]
        assert np.allclose(lhs, rhs_lin, atol=1e-10)

    def test_slab_split_invariance(self, state):
        c, u, fields = state
        rhs_a = _random_rhs((c.nz, c.ny, c.nx), 4)
        rhs_b = rhs_a.copy()
        ninvr_slab(0, c.nz - 2, rhs_a, c)
        for lo, hi in ((0, 3), (3, 5), (5, c.nz - 2)):
            ninvr_slab(lo, hi, rhs_b, c)
        assert np.array_equal(rhs_a, rhs_b)
