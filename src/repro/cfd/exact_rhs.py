"""BT/SP forcing term (``exact_rhs`` in bt.f/sp.f).

The forcing makes the polynomial exact solution a stationary point of the
discrete equations: it is the negated discrete RHS operator applied to the
exact field (central-difference fluxes plus 4th-order artificial
dissipation with one-sided stencils at the first/last two interior
points).  Computed once during untimed setup, fully vectorized.
"""

from __future__ import annotations

import numpy as np

from repro.cfd.constants import CFDConstants
from repro.cfd.exact import exact_field

#: Axis of the (nz, ny, nx, 5) array swept by each direction.
_AXIS = {"x": 2, "y": 1, "z": 0}


def _shift(field: np.ndarray, axis: int, offset: int) -> np.ndarray:
    """Interior view of ``field`` shifted by ``offset`` along ``axis``.

    ``field`` has shape (nz, ny, nx); the result covers the interior
    (1..n-2 in every axis) with the swept axis displaced.
    """
    slices = [slice(1, -1)] * 3
    n = field.shape[axis]
    slices[axis] = slice(1 + offset, n - 1 + offset)
    return field[tuple(slices)]


def compute_forcing(forcing: np.ndarray, c: CFDConstants) -> None:
    """Fill ``forcing`` (shape (nz, ny, nx, 5)); boundary entries stay 0."""
    ue = exact_field(c.nx, c.ny, c.nz, c.dnxm1, c.dnym1, c.dnzm1)
    dtpp = 1.0 / ue[..., 0]
    buf = [None,
           dtpp * ue[..., 1], dtpp * ue[..., 2], dtpp * ue[..., 3],
           dtpp * ue[..., 4]]
    q = 0.5 * (buf[1] * ue[..., 1] + buf[2] * ue[..., 2]
               + buf[3] * ue[..., 3])

    forcing.fill(0.0)
    interior = forcing[1:-1, 1:-1, 1:-1, :]

    for direction, vel in (("x", 1), ("y", 2), ("z", 3)):
        axis = _AXIS[direction]
        # Direction-dependent constants, mirroring the Fortran names.
        t2 = {"x": c.tx2, "y": c.ty2, "z": c.tz2}[direction]
        prefix = {"x": "xx", "y": "yy", "z": "zz"}[direction]
        dname = {"x": "x", "y": "y", "z": "z"}[direction]
        con1 = getattr(c, f"{prefix}con1")
        con2 = getattr(c, f"{prefix}con2")
        con3 = getattr(c, f"{prefix}con3")
        con4 = getattr(c, f"{prefix}con4")
        con5 = getattr(c, f"{prefix}con5")
        d_t1 = [getattr(c, f"d{dname}{m}t{dname}1") for m in range(1, 6)]

        bvel = buf[vel]
        cuf = bvel * bvel
        # buf1 grouping follows the Fortran per-direction statement order.
        others = [m for m in (1, 2, 3) if m != vel]
        buf1 = cuf + buf[others[0]] ** 2 + buf[others[1]] ** 2

        def C(f, o):
            return _shift(f, axis, o)

        def D2(f):
            return C(f, 1) - 2.0 * C(f, 0) + C(f, -1)

        uevel = ue[..., vel]
        ue5 = ue[..., 4]
        # Continuity
        interior[..., 0] += (-t2 * (C(uevel, 1) - C(uevel, -1))
                             + d_t1[0] * D2(ue[..., 0]))
        # Momentum components
        for m in (1, 2, 3):
            uem = ue[..., m]
            if m == vel:
                flux_p = C(uem, 1) * C(bvel, 1) + c.c2 * (C(ue5, 1) - C(q, 1))
                flux_m = C(uem, -1) * C(bvel, -1) + c.c2 * (C(ue5, -1) - C(q, -1))
                visc = con1 * D2(buf[m])
            else:
                flux_p = C(uem, 1) * C(bvel, 1)
                flux_m = C(uem, -1) * C(bvel, -1)
                visc = con2 * D2(buf[m])
            interior[..., m] += (-t2 * (flux_p - flux_m) + visc
                                 + d_t1[m] * D2(uem))
        # Energy
        interior[..., 4] += (
            -t2 * (C(bvel, 1) * (c.c1 * C(ue5, 1) - c.c2 * C(q, 1))
                   - C(bvel, -1) * (c.c1 * C(ue5, -1) - c.c2 * C(q, -1)))
            + 0.5 * con3 * D2(buf1)
            + con4 * D2(cuf)
            + con5 * D2(buf[4])
            + d_t1[4] * D2(ue5)
        )

        _dissipation(interior, ue, axis, c.dssp)

    # The Fortran flips the sign at the very end.
    np.negative(forcing, out=forcing)


def _dissipation(interior: np.ndarray, field: np.ndarray, axis: int,
                 dssp: float) -> None:
    """Subtract the 4th-order dissipation of ``field`` (all 5 components)
    from the interior forcing, with one-sided stencils at the edges.

    ``interior`` is the (nz-2, ny-2, nx-2, 5) view of the forcing;
    ``field`` is the full (nz, ny, nx, 5) exact solution.
    """
    n = field.shape[axis]

    def F(lo, hi, off):
        """Interior view with the swept axis restricted to Fortran interior
        indices [lo, hi] (1-based interior numbering: 1..n-2) + off."""
        slices = [slice(1, -1)] * 3 + [slice(None)]
        slices[axis] = slice(lo + off, hi + off + 1)
        return field[tuple(slices)]

    def T(lo, hi):
        slices = [slice(None)] * 4
        slices[axis] = slice(lo - 1, hi)  # interior view is offset by 1
        return interior[tuple(slices)]

    # i = 1 (first interior point)
    T(1, 1)[...] -= dssp * (5.0 * F(1, 1, 0) - 4.0 * F(1, 1, 1)
                            + F(1, 1, 2))
    # i = 2
    T(2, 2)[...] -= dssp * (-4.0 * F(2, 2, -1) + 6.0 * F(2, 2, 0)
                            - 4.0 * F(2, 2, 1) + F(2, 2, 2))
    # i = 3 .. n-4  (full 5-point stencil)
    lo, hi = 3, n - 4
    if hi >= lo:
        T(lo, hi)[...] -= dssp * (
            F(lo, hi, -2) - 4.0 * F(lo, hi, -1) + 6.0 * F(lo, hi, 0)
            - 4.0 * F(lo, hi, 1) + F(lo, hi, 2)
        )
    # i = n-3
    i = n - 3
    T(i, i)[...] -= dssp * (F(i, i, -2) - 4.0 * F(i, i, -1)
                            + 6.0 * F(i, i, 0) - 4.0 * F(i, i, 1))
    # i = n-2 (last interior point)
    i = n - 2
    T(i, i)[...] -= dssp * (F(i, i, -2) - 4.0 * F(i, i, -1)
                            + 5.0 * F(i, i, 0))
