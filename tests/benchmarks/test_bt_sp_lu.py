"""Tests for the three simulated CFD applications."""

import numpy as np
import pytest

from repro.bt import BT
from repro.bt.solve import _block_sweep, _jacobians
from repro.cfd.constants import CFDConstants
from repro.lu import LU
from repro.lu.setup import pintgr
from repro.lu.sweep import hyperplanes
from repro.sp import SP
from repro.sp.solve import _build_lhs, _eliminate
from repro.team import ProcessTeam, ThreadTeam


class TestBT:
    def test_class_s_verifies(self):
        result = BT("S").run()
        assert result.verified

    def test_residual_norms_near_bit_exact(self):
        result = BT("S").run()
        xcr_errors = [c[3] for c in result.verification.checks[:5]]
        assert max(xcr_errors) < 1e-11

    def test_thread_backend_verifies(self):
        with ThreadTeam(2) as team:
            assert BT("S", team).run().verified

    def test_block_sweep_solves_block_tridiagonal(self):
        """Assemble the dense block-tridiagonal matrix the sweep implies
        and check the sweep's answer against a dense solve."""
        rng = np.random.default_rng(0)
        n = 6
        c = CFDConstants(n, n, n, 0.01)
        ul = 1.0 + rng.random((1, n, 5)) * 0.1
        qsl = rng.random((1, n))
        sql = rng.random((1, n))
        fjac, njac = _jacobians(ul, qsl, sql, 1, c)
        dvec = np.array([c.dx1, c.dx2, c.dx3, c.dx4, c.dx5])
        tmp1, tmp2 = c.dt * c.tx1, c.dt * c.tx2
        rhs = rng.random((1, n, 5))
        dense = np.zeros((5 * n, 5 * n))
        dense[:5, :5] = np.eye(5)
        dense[-5:, -5:] = np.eye(5)
        dmat = np.diag(dvec)
        for i in range(1, n - 1):
            aa = (-tmp2 * fjac[0, i - 1] - tmp1 * njac[0, i - 1]
                  - tmp1 * dmat)
            bb = np.eye(5) + 2 * tmp1 * njac[0, i] + 2 * tmp1 * dmat
            cc = tmp2 * fjac[0, i + 1] - tmp1 * njac[0, i + 1] - tmp1 * dmat
            dense[5 * i:5 * i + 5, 5 * (i - 1):5 * i] = aa
            dense[5 * i:5 * i + 5, 5 * i:5 * i + 5] = bb
            dense[5 * i:5 * i + 5, 5 * (i + 1):5 * (i + 2)] = cc
        expected = np.linalg.solve(dense, rhs.reshape(-1))
        r = rhs.copy()
        _block_sweep(r, fjac, njac, tmp1, tmp2, dvec)
        assert np.allclose(r.reshape(-1), expected, atol=1e-10)


class TestSP:
    def test_class_s_verifies(self):
        result = SP("S").run()
        assert result.verified

    def test_process_backend_verifies(self):
        with ProcessTeam(2) as team:
            assert SP("S", team).run().verified

    def test_pentadiagonal_solve_matches_dense(self):
        """The scalar factor solve must equal a dense pentadiagonal
        solve assembled from the same lhs."""
        rng = np.random.default_rng(1)
        n = 10
        c = CFDConstants(n, n, n, 0.015)
        cv = rng.random((1, n))
        rho = 0.5 + rng.random((1, n))
        spd = 0.5 + rng.random((1, n))
        lhs, _, _ = _build_lhs(cv, rho, spd, c.dttx1, c.dttx2,
                               c.c2dttx1, c)
        dense = np.zeros((n, n))
        for i in range(n):
            for d, off in enumerate(range(-2, 3)):
                j = i + off
                if 0 <= j < n:
                    dense[i, j] = lhs[0, i, d]
        b = rng.random((1, n, 5))
        expected = np.linalg.solve(dense, b[0, :, 0])
        r = b.copy()
        work = lhs.copy()
        _eliminate(work, r, (0,))
        # back substitution for component 0
        i = n - 2
        r[..., i, 0] -= work[..., i, 3] * r[..., i + 1, 0]
        for i in range(n - 3, -1, -1):
            r[..., i, 0] -= (work[..., i, 3] * r[..., i + 1, 0]
                             + work[..., i, 4] * r[..., i + 2, 0])
        assert np.allclose(r[0, :, 0], expected, atol=1e-10)

    def test_boundary_rows_identity(self):
        n = 8
        c = CFDConstants(n, n, n, 0.015)
        cv = np.zeros((1, n))
        rho = np.ones((1, n))
        spd = np.ones((1, n))
        lhs, lhsp, lhsm = _build_lhs(cv, rho, spd, c.dttx1, c.dttx2,
                                     c.c2dttx1, c)
        for mat in (lhs, lhsp, lhsm):
            assert mat[0, 0, 2] == 1.0 and mat[0, -1, 2] == 1.0
            assert np.all(mat[0, 0, [0, 1, 3, 4]] == 0)
            assert np.all(mat[0, -1, [0, 1, 3, 4]] == 0)


class TestLU:
    def test_class_s_verifies(self):
        result = LU("S").run()
        assert result.verified

    def test_surface_integral_exact_match(self):
        bench = LU("S")
        result = bench.run()
        xci = [c for c in result.verification.checks if c[0] == "xci"][0]
        assert xci[3] < 1e-12

    def test_thread_backend_verifies(self):
        with ThreadTeam(2) as team:
            assert LU("S", team).run().verified

    def test_hyperplanes_cover_interior_once(self):
        k, j, i, offsets = hyperplanes(8, 7, 6)
        points = set(zip(k.tolist(), j.tolist(), i.tolist()))
        assert len(points) == len(k) == 6 * 5 * 4  # interior counts
        assert offsets[0] == 0 and offsets[-1] == len(k)
        # every wavefront really is constant in i+j+k
        for s in range(len(offsets) - 1):
            sel = slice(offsets[s], offsets[s + 1])
            sums = k[sel] + j[sel] + i[sel]
            assert np.all(sums == sums[0])
        # wavefront numbers ascend
        fronts = [int((k[offsets[s]] + j[offsets[s]] + i[offsets[s]]))
                  for s in range(len(offsets) - 1)]
        assert fronts == sorted(fronts)

    def test_pintgr_constant_pressure_field(self):
        # With u = (1, 0, 0, 0, p/c2), phi == p everywhere, so frc is p
        # times the area-weight sum of the three face pairs.
        c = CFDConstants(10, 10, 10, 0.5)
        u = np.zeros((10, 10, 10, 5))
        u[..., 0] = 1.0
        u[..., 4] = 2.5
        frc = pintgr(u, c)
        p = c.c2 * 2.5
        # face 1: (ny-3)-1 x (nx-2)-1 cells? counted via the formula:
        ib, ie, jb, je, kb, ke = 1, 8, 1, 7, 2, 8
        ncells1 = (je - jb) * (ie - ib)
        ncells2 = (ke - kb) * (ie - ib)
        ncells3 = (ke - kb) * (je - jb)
        dxi = deta = dzeta = 1.0 / 9.0
        expected = 0.25 * (ncells1 * 8 * p * dxi * deta
                           + ncells2 * 8 * p * dxi * dzeta
                           + ncells3 * 8 * p * deta * dzeta)
        assert frc == pytest.approx(expected, rel=1e-12)

    def test_ssor_reduces_residual(self):
        bench = LU("S")
        bench.setup()
        initial = bench._l2norm().copy()
        bench._ssor(5)
        assert np.all(bench.rsdnm < initial)
