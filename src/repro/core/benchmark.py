"""Uniform benchmark API.

Every NPB benchmark follows the same life cycle, inherited from the Fortran
originals and preserved by the paper's Java translation:

1. allocate and initialize data (untimed),
2. optionally run one untimed warm-up iteration and re-initialize,
3. run ``niter`` timed iterations,
4. verify computed quantities against published reference values,
5. report time and Mop/s.

:class:`NPBenchmark` encodes that life cycle once; each benchmark package
provides the four hooks.  A benchmark instance is bound to a problem class
and a :class:`~repro.team.base.Team`, so the same object runs serially or
with any number of workers under any backend.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.common.params import ProblemClass
from repro.common.timers import TimerSet
from repro.common.verification import VerificationResult
from repro.runtime.region import ParallelRegion
from repro.team import SerialTeam, Team

#: Version of the ``to_dict()`` run-record layout (the ``--json`` output
#: and the per-cell payload embedded in ``BENCH_*.json`` trajectory
#: records); bump on any breaking change to the schema.
#: v2: added ``faults`` (structured FaultEvent list) and ``fault_counts``.
#: v3: region dicts gained ``alloc_bytes``/``alloc_blocks`` (per-region
#: allocation accounting; zeros unless the run traced allocations).
#: v4: added the job-service fields ``job_id`` (null outside the
#: service), ``cache_hit``, and ``queue_wait_seconds`` (see
#: :mod:`repro.service`).
#: v5: added ``kernel_backend`` (the kernel tier the run's team resolved
#: against; see :mod:`repro.kernels.registry`).
#: v6: added the async-front-end fields ``tenant`` (the tenant id the
#: submitting request carried; null outside the service) and
#: ``coalesced_with`` (the primary job id this response was coalesced
#: onto when an in-flight duplicate attached instead of re-executing;
#: null for the primary and for un-coalesced runs; see
#: :mod:`repro.service.async_api`).
RUN_RECORD_SCHEMA_VERSION = 6


@dataclass
class BenchmarkResult:
    """Outcome of one benchmark run (the NPB results banner, structured)."""

    name: str
    problem_class: str
    backend: str
    nworkers: int
    niter: int
    time_seconds: float
    mops: float
    verification: VerificationResult
    timers: dict[str, float] = field(default_factory=dict)
    #: per-region dispatch accounting of the timed region: region name ->
    #: {calls, wall_seconds, dispatch_seconds, execute_seconds,
    #:  barrier_seconds} (see :mod:`repro.runtime.region`)
    regions: dict[str, dict[str, float]] = field(default_factory=dict)
    #: structured fault-tolerance events of the whole run (timeouts,
    #: worker deaths, respawns, degradations), in occurrence order; each
    #: is a FaultEvent dict (see :mod:`repro.runtime.dispatch`)
    faults: list[dict] = field(default_factory=list)
    #: job-service provenance (schema v4): the service stamps these when
    #: the run was a submitted job; a direct ``npb run`` leaves the
    #: defaults (no job, never cached, zero queue wait)
    job_id: str | None = None
    cache_hit: bool = False
    queue_wait_seconds: float = 0.0
    #: kernel tier the run's team resolved kernels against (schema v5);
    #: the *requested* tier -- an unavailable compiled tier still runs
    #: (and reports) ``compiled`` while serving fallbacks per kernel
    kernel_backend: str = "fused"
    #: async-front-end provenance (schema v6): tenant id the submitting
    #: request carried, and -- for a response fanned out to a coalesced
    #: waiter -- the primary job id the waiter attached to; both stay
    #: ``None`` outside the service and for primary executions
    tenant: str | None = None
    coalesced_with: str | None = None

    @property
    def verified(self) -> bool:
        return self.verification.verified

    @property
    def fault_counts(self) -> dict[str, int]:
        """Fault event counts by kind (``{}`` for a fault-free run)."""
        counts: dict[str, int] = {}
        for event in self.faults:
            kind = event["kind"]
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    def to_dict(self) -> dict:
        """Machine-readable run record (the ``--json`` output)."""
        return {
            "schema_version": RUN_RECORD_SCHEMA_VERSION,
            "benchmark": self.name,
            "problem_class": self.problem_class,
            "backend": self.backend,
            "nworkers": self.nworkers,
            "niter": self.niter,
            "time_seconds": self.time_seconds,
            "mops": self.mops,
            "verified": self.verified,
            "verification": [
                {"quantity": name, "computed": float(computed),
                 "reference": float(reference),
                 "relative_error": float(err), "passed": bool(ok)}
                for name, computed, reference, err, ok
                in self.verification.checks
            ],
            "timers": dict(self.timers),
            "regions": {name: dict(stats)
                        for name, stats in self.regions.items()},
            "faults": [dict(event) for event in self.faults],
            "fault_counts": self.fault_counts,
            "job_id": self.job_id,
            "cache_hit": self.cache_hit,
            "queue_wait_seconds": self.queue_wait_seconds,
            "kernel_backend": self.kernel_backend,
            "tenant": self.tenant,
            "coalesced_with": self.coalesced_with,
        }

    def banner(self) -> str:
        """Text banner in the spirit of the NPB ``print_results``."""
        status = "SUCCESSFUL" if self.verified else "UNSUCCESSFUL"
        banner = (
            f" {self.name} Benchmark Completed.\n"
            f" Class           = {self.problem_class}\n"
            f" Iterations      = {self.niter}\n"
            f" Time in seconds = {self.time_seconds:.4f}\n"
            f" Mop/s total     = {self.mops:.2f}\n"
            f" Backend         = {self.backend} x{self.nworkers}\n"
            f" Verification    = {status}"
        )
        if self.faults:
            counts = ", ".join(f"{kind}={n}" for kind, n
                               in sorted(self.fault_counts.items()))
            banner += f"\n Faults          = {len(self.faults)} ({counts})"
        return banner


class NPBenchmark(ABC):
    """Base class for all NPB benchmarks.

    Subclasses set :attr:`name`, define per-class parameters in their own
    package, and implement the four hooks below.  ``run()`` orchestrates
    the NPB life cycle.
    """

    #: Benchmark mnemonic ("BT", "CG", ...); set by subclasses.
    name: str = "??"

    def __init__(self, problem_class: "str | ProblemClass",
                 team: Team | None = None):
        self.problem_class = ProblemClass.parse(problem_class)
        self.team = team if team is not None else SerialTeam()
        self.timers = TimerSet()
        self._set_up = False

    # ------------------------------------------------------------------ #
    # hooks

    @abstractmethod
    def _setup(self) -> None:
        """Allocate arrays (via ``self.team.shared``) and initialize data."""

    @abstractmethod
    def _iterate(self) -> None:
        """Run the full timed region (all ``niter`` iterations)."""

    @abstractmethod
    def verify(self) -> VerificationResult:
        """Compare computed quantities against the reference values."""

    @abstractmethod
    def op_count(self) -> float:
        """Total floating-point (or key, for IS) operations of the timed
        region, from the official NPB operation-count formulas."""

    @property
    @abstractmethod
    def niter(self) -> int:
        """Number of timed iterations for the bound problem class."""

    # ------------------------------------------------------------------ #

    def region(self, name: str) -> ParallelRegion:
        """Name a phase region (``with self.region("rhs"): ...``).

        Starts the NPB phase timer of the same name and attributes every
        team dispatch inside the block to ``name``, so the run record's
        ``timers`` (wall) and ``regions`` (dispatch/execute/barrier split)
        describe the same phases.  Region names follow the NPB ``t_*``
        convention (see docs/architecture.md).
        """
        return ParallelRegion(name, self.team.recorder, self.timers[name])

    def setup(self) -> None:
        """Idempotent public setup (untimed initialization)."""
        if not self._set_up:
            self._setup()
            self._set_up = True

    def run(self) -> BenchmarkResult:
        """Execute the full benchmark life cycle and return the result."""
        self.setup()
        # NPB semantics: all timers and region stats reset at the start of
        # the timed region (both therefore exclude warm-up and setup).
        self.timers.clear_all()
        self.team.recorder.clear()
        timer = self.timers["total"]
        timer.start()
        self._iterate()
        elapsed = timer.stop()
        # Snapshot before verify() so the breakdown covers exactly the
        # timed region (verify may dispatch, e.g. BT/SP recompute rhs).
        timers = self.timers.report()
        regions = self.team.recorder.report()
        verification = self.verify()
        # Faults snapshot *after* verify: a respawn/degradation during the
        # verification dispatches is still part of the run's fault history.
        faults = self.team.recorder.fault_report()
        mops = self.op_count() / elapsed / 1.0e6 if elapsed > 0 else 0.0
        return BenchmarkResult(
            name=self.name,
            problem_class=str(self.problem_class),
            backend=self.team.backend,
            nworkers=self.team.nworkers,
            niter=self.niter,
            time_seconds=elapsed,
            mops=mops,
            verification=verification,
            timers=timers,
            regions=regions,
            faults=faults,
            kernel_backend=self.team.kernel_backend,
        )
