"""Table 6: NPB times (machine: xserve).

Measured part: the timed regions of a subset of the suite on this host
(the five table benches partition the suite so the full set is covered
exactly twice across tables 2-6).  Simulated part: the paper-machine
table from the model.
"""

import pytest

from nas_bench_util import attach_simulated_table, run_timed_region


@pytest.mark.parametrize("name", ['SP', 'MG'])
def test_benchmark_timed_region(benchmark, name):
    run_timed_region(benchmark, name)


def test_simulated_table6(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    attach_simulated_table(benchmark, 6)
