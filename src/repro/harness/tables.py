"""Regeneration of the paper's Tables 1-7.

Every table exists in two modes:

``simulated`` (default)
    The calibrated machine models predict each cell for the paper's
    hardware (IBM p690, SGI Origin2000, SUN E10000, PIII PC, G4 Xserve).
    This reproduces the *shape* of the published tables: Java/Fortran
    ratios, speedups, scheduler pathologies, crossovers.

``measured``
    The real NumPy ("Fortran" role) and interpreted-Python ("Java" role)
    implementations run on the local host, including the team backends.
    Absolute numbers are host-dependent; ratios mirror the paper's
    methodology.
"""

from __future__ import annotations

import time

from repro.core.basic_ops import (
    OPERATIONS,
    SMALL_GRID,
    make_workload,
    run_operation,
)
from repro.harness.report import Table
from repro.harness.stats import time_callable
from repro.lufact import (
    LU_CLASSES_TABLE7,
    dgetrf_blocked,
    lufact_loops,
    lufact_numpy,
    lufact_ops,
    make_system,
)
from repro.machines import machine, predict_basic_op, predict_benchmark
from repro.machines.spec import OpCategory

#: Benchmarks in the paper's table order.
TABLE_BENCHMARKS = ["BT", "SP", "LU", "FT", "IS", "CG", "MG"]

TABLES = (1, 2, 3, 4, 5, 6, 7)


def generate_table(number: int, mode: str = "simulated",
                   problem_class: str = "A", **kwargs) -> Table:
    """Build the reproduction of paper Table ``number``."""
    if mode not in ("simulated", "measured"):
        raise ValueError(f"unknown mode {mode!r}")
    builders = {
        1: _table1, 2: _table2, 3: _table3, 4: _table4,
        5: _table5, 6: _table6, 7: _table7,
    }
    try:
        builder = builders[number]
    except KeyError:
        raise ValueError(f"the paper has tables 1-7, not {number}") from None
    return builder(mode, problem_class, **kwargs)


# --------------------------------------------------------------------- #
# Table 1: basic CFD operations

_OP_LABELS = {
    "assignment": "Assignment (10 iterations)",
    "stencil1": "First Order Stencil",
    "stencil2": "Second Order Stencil",
    "matvec5": "Matrix vector multiplication",
    "reduction": "Reduction Sum",
}


def _table1(mode: str, problem_class: str, grid=None) -> Table:
    if mode == "simulated":
        spec = machine("origin2000")
        threads = [1, 2, 4, 8, 16]
        table = Table(
            "Table 1: basic CFD operations on the SGI Origin2000 "
            "(simulated; seconds, grid 81x81x100)",
            ["Operation", "f77", "Java serial"]
            + [f"Java {t}thr" for t in threads],
        )
        for op in OPERATIONS:
            f77 = predict_basic_op(spec, op, "f77")
            serial = predict_basic_op(spec, op, "java")
            cells = [f77, serial]
            cells += [predict_basic_op(spec, op, "java", t) for t in threads]
            table.add_row(_OP_LABELS[op], *cells)
        table.notes.append(
            "anchors: Java/f77 3.3 (assignment) ... 12.4 (2nd-order "
            "stencil); 16-thread speedup ~7 compute ops, 5-6 memory ops")
        return table

    grid = grid or SMALL_GRID
    w = make_workload(grid)
    table = Table(
        f"Table 1 (measured on this host; seconds, grid {grid})",
        ["Operation", "numpy (f77 role)", "python (Java role)",
         "ratio", "python multidim", "multidim/linear"],
    )
    for op in OPERATIONS:
        times = {}
        for style in ("numpy", "python", "python_multidim"):
            # min-of-k, like the bench subsystem: a single cold call
            # would charge the numpy styles their one-time warm-up
            # (ufunc loop selection, arena pool allocation) and swamp
            # the tiny-grid ratios.
            summary = time_callable(
                lambda style=style: run_operation(op, style, w), repeat=3)
            times[style] = summary.best
        table.add_row(
            _OP_LABELS[op], times["numpy"], times["python"],
            times["python"] / times["numpy"], times["python_multidim"],
            times["python_multidim"] / times["python"],
        )
    return table


# --------------------------------------------------------------------- #
# Tables 2-6: benchmark times

def _benchmark_table(mode: str, machine_key: str, title: str,
                     problem_class: str, thread_counts: list[int],
                     with_openmp: bool) -> Table:
    if mode == "simulated":
        spec = machine(machine_key)
        table = Table(
            f"{title} (simulated; class {problem_class}, seconds)",
            ["Benchmark", "Serial"] + [str(t) for t in thread_counts],
        )
        for name in TABLE_BENCHMARKS:
            warm = name in ("CG", "IS") and machine_key == "origin2000"
            java = [predict_benchmark(spec, name, problem_class,
                                      "java", 0).seconds]
            java += [predict_benchmark(spec, name, problem_class, "java",
                                       t, warmup_load=warm).seconds
                     for t in thread_counts]
            table.add_row(f"{name}.{problem_class} Java", *java)
            if with_openmp:
                lang = "C-OpenMP" if name == "IS" else "f77-OpenMP"
                f77 = [predict_benchmark(spec, name, problem_class,
                                         "f77", 0).seconds]
                f77 += [predict_benchmark(spec, name, problem_class,
                                          "f77", t).seconds
                        for t in thread_counts]
                table.add_row(f"{name}.{problem_class} {lang}", *f77)
        if machine_key == "origin2000":
            table.notes.append(
                "CG/IS rows include the per-thread warm-up load fix "
                "(without it the JVM coalesces their threads onto "
                "1-2 CPUs)")
        if machine_key == "e10000":
            table.notes.append(
                "FT capped at 4 CPUs by the JVM's big-heap limit "
                "(FT.A ~ 350 MB)")
        return table

    # measured mode: run the real implementations on this host
    from repro import run_benchmark

    counts = [t for t in thread_counts if t <= 4]
    table = Table(
        f"{title} (measured on this host; class {problem_class}, seconds)",
        ["Benchmark", "Serial"]
        + [f"proc x{t}" for t in counts] + ["verified"],
    )
    for name in TABLE_BENCHMARKS:
        serial = run_benchmark(name, problem_class)
        row = [serial.time_seconds]
        verified = serial.verified
        for t in counts:
            result = run_benchmark(name, problem_class, "process", t)
            row.append(result.time_seconds)
            verified = verified and result.verified
        table.add_row(f"{name}.{problem_class} Python", *row,
                      "yes" if verified else "NO")
    table.notes.append(
        "measured with the multiprocessing backend; on a single-CPU host "
        "no speedup is expected")
    return table


def _table2(mode: str, problem_class: str) -> Table:
    return _benchmark_table(
        mode, "p690",
        "Table 2: benchmark times on IBM p690 (1.3 GHz, 32 CPUs)",
        problem_class, [1, 2, 4, 8, 16, 32], with_openmp=True)


def _table3(mode: str, problem_class: str) -> Table:
    return _benchmark_table(
        mode, "origin2000",
        "Table 3: benchmark times on SGI Origin2000 (250 MHz, 32 CPUs)",
        problem_class, [1, 2, 4, 8, 16, 32], with_openmp=True)


def _table4(mode: str, problem_class: str) -> Table:
    return _benchmark_table(
        mode, "e10000",
        "Table 4: benchmark times on SUN Enterprise10000 "
        "(333 MHz, 16 CPUs)",
        problem_class, [1, 2, 4, 8, 16], with_openmp=False)


def _table5(mode: str, problem_class: str) -> Table:
    return _benchmark_table(
        mode, "linux-pc",
        "Table 5: benchmark times on Linux PC (933 MHz, 2 PIII CPUs)",
        problem_class, [1, 2], with_openmp=False)


def _table6(mode: str, problem_class: str) -> Table:
    return _benchmark_table(
        mode, "xserve",
        "Table 6: benchmark times on Apple Xserve (1 GHz, 2 G4 CPUs)",
        problem_class, [1, 2], with_openmp=False)


# --------------------------------------------------------------------- #
# Table 7: Java Grande lufact vs LINPACK

#: BLAS1 efficiency of lufact relative to the machine's sustained CFD
#: Mop/s (cache-miss bound), and BLAS3 efficiency of DGETRF.
_LUFACT_F77_EFFICIENCY = 0.35
_DGETRF_EFFICIENCY = 1.4


def _table7(mode: str, problem_class: str, max_n: int = 1000) -> Table:
    if mode == "simulated":
        machines = ["e10000", "origin2000", "p690"]
        table = Table(
            "Table 7: Java Grande lufact vs LINPACK DGETRF "
            "(simulated; seconds)",
            ["Machine", "Impl"]
            + [f"class {c} (n={n})" for c, n in LU_CLASSES_TABLE7.items()],
        )
        for key in machines:
            spec = machine(key)
            copy_ratio = spec.jvm.op_ratio[OpCategory.COPY]
            f77 = {c: lufact_ops(n) / (spec.fortran_mops * 1e6
                                       * _LUFACT_F77_EFFICIENCY)
                   for c, n in LU_CLASSES_TABLE7.items()}
            table.add_row(spec.name, "Java lufact",
                          *[f77[c] * copy_ratio for c in LU_CLASSES_TABLE7])
            table.add_row("", "f77 lufact", *[f77[c]
                                              for c in LU_CLASSES_TABLE7])
            table.add_row("", "LINPACK DGETRF",
                          *[lufact_ops(n) / (spec.fortran_mops * 1e6
                                             * _DGETRF_EFFICIENCY)
                            for n in LU_CLASSES_TABLE7.values()])
        table.notes.append(
            "shape targets: lufact (BLAS1) slower than DGETRF (BLAS3) in "
            "both languages; Java/f77 lufact ratio ~ the Assignment "
            "basic-op ratio (memory bound)")
        return table

    table = Table(
        "Table 7 (measured on this host; seconds)",
        ["n", "python loops (Java role)", "numpy BLAS1 (f77 role)",
         "blocked BLAS3 (DGETRF role)", "BLAS1/BLAS3"],
    )
    for c, n in LU_CLASSES_TABLE7.items():
        if n > max_n:
            continue
        a, _ = make_system(n)
        t0 = time.perf_counter()
        if n <= 500:
            lufact_loops(a)
            loops_t = time.perf_counter() - t0
        else:
            loops_t = float("nan")
        t0 = time.perf_counter()
        lufact_numpy(a)
        blas1_t = time.perf_counter() - t0
        t0 = time.perf_counter()
        dgetrf_blocked(a)
        blas3_t = time.perf_counter() - t0
        table.add_row(str(n), loops_t, blas1_t, blas3_t, blas1_t / blas3_t)
    return table
