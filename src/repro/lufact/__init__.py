"""Java Grande ``lufact`` and LINPACK DGETRF (the paper's Table 7).

The paper resolves its disagreement with the Java Grande Forum's
"Java is within 2x of Fortran" finding by dissecting the JGF ``lufact``
benchmark: lufact is a direct translation of the LINPACK DGEFA routine,
which is built on BLAS1 (daxpy) column operations with poor cache reuse,
so both the Java and the Fortran versions stall on memory and the
language gap shrinks to roughly the Assignment basic-op ratio.  A
cache-blocked DGETRF (BLAS3) runs several times faster in either
language.

This package rebuilds that experiment from scratch in three styles:

* :func:`lufact_loops` -- per-element interpreted loops (the Java role);
* :func:`lufact_numpy` -- the same BLAS1 algorithm with vectorized
  column operations (the Fortran role);
* :func:`dgetrf_blocked` -- a blocked right-looking factorization whose
  trailing update is a matrix-matrix multiply (the LINPACK DGETRF role).
"""

from repro.lufact.lu import (
    LU_CLASSES_TABLE7,
    dgetrf_blocked,
    lufact_loops,
    lufact_numpy,
    lu_solve,
    lu_solve_lapack,
    lufact_ops,
    make_system,
    residual_check,
)

__all__ = [
    "lufact_loops",
    "lufact_numpy",
    "dgetrf_blocked",
    "lu_solve",
    "lu_solve_lapack",
    "make_system",
    "residual_check",
    "lufact_ops",
    "LU_CLASSES_TABLE7",
]
