"""Thread backend: the paper's master--worker scheme with wait()/notify().

Section 4 of the paper: every benchmark object is a thread; the master
switches workers between blocked and runnable states with ``wait()`` and
``notify()``.  Here each worker blocks on a shared condition variable until
the master publishes a new task generation, executes its slab, and reports
completion; the master's dispatch returns only when all workers have
checked in (the barrier).

Python's GIL serializes interpreted bytecode, but NumPy kernels release the
GIL, so slab-level NumPy work can overlap.  On this suite the backend's role
is structural fidelity (overhead and synchronization behaviour) rather than
raw speedup -- the process backend is the true-parallelism path.

The task/result/error bookkeeping lives in the shared dispatch core
(:meth:`repro.team.base.Team._dispatch`); this module provides only the
condition-variable transport.

Fault tolerance: with ``FaultPolicy.dispatch_timeout`` set, the master's
barrier wait carries a deadline; ranks that have not replied when it
expires raise :class:`~repro.runtime.dispatch.DispatchTimeout` and are
*replaced* by fresh threads (a hung CPython thread cannot be killed, so
the stuck one is retired: it is daemonic, its eventual reply is discarded
by the generation/identity checks, and it can never block interpreter
exit).  ``close()`` escalates a failed join into a ``join_timeout``
:class:`~repro.runtime.dispatch.FaultEvent` on the recorder in addition
to the RuntimeWarning.
"""

from __future__ import annotations

import threading
import time
import warnings
from typing import Callable

from repro.runtime.dispatch import (DispatchTimeout, FaultPolicy,
                                    TransportFailure, WorkerReply,
                                    execute_task)
from repro.runtime.plan import Bounds
from repro.team.base import Team


class ThreadTeam(Team):
    """Persistent worker threads coordinated by a condition variable."""

    backend = "threads"

    def __init__(self, nworkers: int, join_timeout: float = 5.0,
                 policy: FaultPolicy | None = None,
                 kernel_backend: str = "fused"):
        super().__init__(nworkers, policy=policy,
                         kernel_backend=kernel_backend)
        self._join_timeout = join_timeout
        self._cond = threading.Condition()
        self._generation = 0
        self._pending = 0
        self._task: tuple[Callable, Bounds, tuple] | None = None
        self._replies: list[WorkerReply | None] = [None] * nworkers
        self._shutdown = False
        #: (rank, thread) pairs replaced after hanging; joined (briefly)
        #: and reported at close()
        self._retired: list[tuple[int, threading.Thread]] = []
        self._threads: list[threading.Thread | None] = [None] * nworkers
        for rank in range(nworkers):
            self._spawn_worker(rank, seen=0)

    # ------------------------------------------------------------------ #

    def _spawn_worker(self, rank: int, seen: int) -> threading.Thread:
        """Start one worker thread; ``seen`` is the generation it treats
        as already handled (current generation for replacements, so a
        fresh thread never picks up the task its predecessor hung on).

        The rank's slot in ``_threads`` is assigned *before* the thread
        starts so the ownership check never sees a half-registered worker.
        """
        thread = threading.Thread(
            target=self._worker_loop, args=(rank, seen), daemon=True,
            name=f"npb-worker-{rank}",
        )
        self._threads[rank] = thread
        thread.start()
        return thread

    def _is_current(self, rank: int) -> bool:
        return self._threads[rank] is threading.current_thread()

    def _worker_loop(self, rank: int, seen: int) -> None:
        while True:
            with self._cond:
                # blocked state: wait() until the master notify()s a new
                # task -- or this thread has been replaced (retired).
                while (self._generation == seen and not self._shutdown
                       and self._is_current(rank)):
                    self._cond.wait()
                if self._shutdown or not self._is_current(rank):
                    return
                seen = self._generation
                fn, bounds, args = self._task
            a, b = bounds[rank]
            # execute_task captures task exceptions into the reply (the
            # core re-raises) and opens this thread's arena generation.
            reply = execute_task(rank, fn, a, b, args)
            with self._cond:
                # Post only if this thread still owns the rank and the
                # master is still waiting on this generation; a reply from
                # a retired thread or a timed-out generation is stale.
                if self._is_current(rank) and seen == self._generation:
                    self._replies[rank] = reply
                    self._pending -= 1
                    if self._pending == 0:
                        self._cond.notify_all()

    def _transport(self, fn: Callable, bounds: Bounds,
                   args: tuple) -> list[WorkerReply]:
        timeout = self.policy.dispatch_timeout
        deadline = (None if timeout is None
                    else time.perf_counter() + timeout)
        with self._cond:
            self._task = (fn, bounds, args)
            self._replies = [None] * self._nworkers
            self._pending = self._nworkers
            self._generation += 1
            self._cond.notify_all()  # runnable state
            while self._pending > 0:
                if deadline is None:
                    self._cond.wait()
                    continue
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    hung = [r for r in range(self._nworkers)
                            if self._replies[r] is None]
                    raise DispatchTimeout(
                        f"dispatch exceeded {timeout}s; worker(s) "
                        f"{hung} did not reply", ranks=hung)
                self._cond.wait(remaining)
            return list(self._replies)

    def _try_recover(self, failure: TransportFailure, attempt: int) -> bool:
        """Replace hung workers with fresh threads (the hung ones are
        daemonic and retired; they cannot be killed, only abandoned)."""
        if not failure.ranks:
            return False
        time.sleep(attempt * self.policy.backoff_seconds)
        with self._cond:
            current = self._generation
        for rank in failure.ranks:
            old = self._threads[rank]
            self._retired.append((rank, old))
            self._spawn_worker(rank, seen=current)
            self._fault("respawn", rank=rank,
                        detail=f"replaced {'hung' if old.is_alive() else 'dead'}"
                               f" thread {old.name} (attempt {attempt})")
        with self._cond:
            # Wake any retired thread parked in wait() so it can exit.
            self._cond.notify_all()
        return True

    # ------------------------------------------------------------------ #

    def close(self) -> None:
        with self._cond:
            if self._shutdown:
                return
            self._shutdown = True
            self._cond.notify_all()
        super().close()
        leaked = []
        members = list(enumerate(self._threads))
        members.extend(self._retired)
        for rank, t in members:
            t.join(timeout=self._join_timeout)
            if t.is_alive():
                leaked.append(t.name)
                self._fault("join_timeout", rank=rank,
                            detail=f"{t.name} failed to join within "
                                   f"{self._join_timeout}s; leaked as a "
                                   f"daemon thread")
        if leaked:
            warnings.warn(
                f"ThreadTeam.close: worker threads failed to join within "
                f"{self._join_timeout}s and were leaked (daemon): {leaked}",
                RuntimeWarning,
                stacklevel=2,
            )
