"""Fused kernels vs reference kernels: same bits, every backend.

Every hot slab kernel was rewritten as an in-place ``out=`` chain into
per-worker arena scratch (:mod:`repro.runtime.arena`); the original
expression-form kernels survive as ``*_reference``.  This suite draws
randomized ``(backend, worker count)`` cases and extents from a fixed
seed (the pattern of ``tests/team/test_equivalence.py``) and asserts the
fused results are *bit-identical* to the reference -- not approximately
equal -- because the fused chains preserve the reference's floating-point
grouping term by term.

The one documented exception is the MG norm's sum of squares, where the
fused BLAS dot (``d @ d``) accumulates in a different order than
``np.sum(interior * interior)``; it is pinned at 1e-13 relative (the max
norm stays exact).
"""

import random

import numpy as np
import pytest

from repro.cfd import rhs as cfd_rhs
from repro.cfd.constants import CFDConstants
from repro.cg import solver as cg
from repro.core import basic_ops
from repro.mg import operators as mg
from repro.team import make_team

#: Fixed-seed random (backend, workers) cases; worker counts deliberately
#: include 1 and counts that do not divide the extents below.
_rng = random.Random(20260806)
TEAM_CASES = sorted({(_rng.choice(["serial", "threads", "process"]),
                      _rng.choice([1, 2, 3, 4]))
                     for _ in range(10)})
TEAM_IDS = [f"{b}x{w}" for b, w in TEAM_CASES]

#: Random extents (grid edges / row counts), also from the fixed seed.
MG_SIZES = sorted({_rng.choice([10, 12, 14, 18]) for _ in range(3)})
COARSE_SIZES = sorted({_rng.choice([5, 6, 7, 8]) for _ in range(3)})
CFD_GRIDS = [(12, 9, 10), (9, 11, 9)]  # (nz, ny, nx)
CG_SIZES = sorted({_rng.randint(40, 200) for _ in range(3)})

#: NPB MG class-S/W coefficient vectors.
A = (-8.0 / 3.0, 0.0, 1.0 / 6.0, 1.0 / 12.0)
C = (-3.0 / 8.0, 1.0 / 32.0, -1.0 / 64.0, 0.0)


def _shared(team, rng, shape):
    """A team-shared array filled with seeded random values."""
    arr = team.shared(shape)
    arr[...] = rng.standard_normal(shape)
    return arr


@pytest.mark.parametrize("backend,workers", TEAM_CASES, ids=TEAM_IDS)
class TestMGFused:
    def test_resid(self, backend, workers):
        with make_team(backend, workers) as team:
            for m in MG_SIZES:
                rng = np.random.default_rng(100 + m)
                u = _shared(team, rng, (m, m, m))
                v = _shared(team, rng, (m, m, m))
                r = _shared(team, rng, (m, m, m))
                r_ref = r.copy()
                mg._resid_slab_reference(0, m - 2, u, v, r_ref, A)
                team.parallel_for(m - 2, mg._resid_slab, u, v, r, A)
                assert r.tobytes() == r_ref.tobytes()

    def test_resid_v_aliases_r(self, backend, workers):
        """The MG driver calls resid(u, r, r) -- v and r are the same
        array; the fused kernel must read v before overwriting r."""
        with make_team(backend, workers) as team:
            m = MG_SIZES[0]
            rng = np.random.default_rng(17)
            u = _shared(team, rng, (m, m, m))
            r = _shared(team, rng, (m, m, m))
            r_ref = r.copy()
            mg._resid_slab_reference(0, m - 2, u, r_ref, r_ref, A)
            team.parallel_for(m - 2, mg._resid_slab, u, r, r, A)
            assert r.tobytes() == r_ref.tobytes()

    def test_psinv(self, backend, workers):
        with make_team(backend, workers) as team:
            for m in MG_SIZES:
                rng = np.random.default_rng(200 + m)
                r = _shared(team, rng, (m, m, m))
                u = _shared(team, rng, (m, m, m))
                u_ref = u.copy()
                mg._psinv_slab_reference(0, m - 2, r, u_ref, C)
                team.parallel_for(m - 2, mg._psinv_slab, r, u, C)
                assert u.tobytes() == u_ref.tobytes()

    def test_rprj3(self, backend, workers):
        with make_team(backend, workers) as team:
            for mc in COARSE_SIZES:
                mf = 2 * mc - 2
                rng = np.random.default_rng(300 + mc)
                r = _shared(team, rng, (mf, mf, mf))
                s = _shared(team, rng, (mc, mc, mc))
                s_ref = s.copy()
                d = tuple(2 if mk == 3 else 1 for mk in r.shape)
                mg._rprj3_slab_reference(0, mc - 2, r, s_ref, d)
                team.parallel_for(mc - 2, mg._rprj3_slab, r, s, d)
                assert s.tobytes() == s_ref.tobytes()

    def test_interp(self, backend, workers):
        with make_team(backend, workers) as team:
            for mc in COARSE_SIZES:
                mf = 2 * mc - 2
                rng = np.random.default_rng(400 + mc)
                z = _shared(team, rng, (mc, mc, mc))
                u = _shared(team, rng, (mf, mf, mf))
                u_ref = u.copy()
                mg._interp_slab_reference(0, mc - 1, z, u_ref)
                team.parallel_for(mc - 1, mg._interp_slab, z, u)
                assert u.tobytes() == u_ref.tobytes()

    def test_norm(self, backend, workers):
        """Sum of squares at 1e-13 relative (BLAS dot order), max exact."""
        with make_team(backend, workers) as team:
            for m in MG_SIZES:
                rng = np.random.default_rng(500 + m)
                r = _shared(team, rng, (m, m, m))
                partials = team.parallel_for(m - 2, mg._norm_slab, r)
                expected = [mg._norm_slab_reference(lo, hi, r)
                            for lo, hi in team.plan.bounds(m - 2)]
                assert len(partials) == len(expected)
                for (ssq, rmax), (ssq_ref, rmax_ref) in zip(partials,
                                                            expected):
                    assert abs(ssq - ssq_ref) <= 1e-13 * abs(ssq_ref)
                    assert rmax == rmax_ref  # |.| and max commute bitwise


def _cfd_state(team, nz, ny, nx, seed):
    """Physically plausible random state: positive density and enough
    energy that the SP speed-of-sound argument stays positive."""
    rng = np.random.default_rng(seed)
    u = team.shared((nz, ny, nx, 5))
    u[...] = 0.1 * rng.standard_normal((nz, ny, nx, 5))
    u[..., 0] = 1.0 + 0.2 * rng.random((nz, ny, nx))
    u[..., 4] = 5.0 + rng.random((nz, ny, nx))
    fields = [team.shared((nz, ny, nx)) for _ in range(7)]
    return u, fields


@pytest.mark.parametrize("backend,workers", TEAM_CASES, ids=TEAM_IDS)
class TestCFDFused:
    def test_fields(self, backend, workers):
        with make_team(backend, workers) as team:
            for i, (nz, ny, nx) in enumerate(CFD_GRIDS):
                c = CFDConstants(nx, ny, nz, 0.001)
                u, fused = _cfd_state(team, nz, ny, nx, 600 + i)
                reference = [f.copy() for f in fused]
                cfd_rhs.fields_slab_reference(0, nz, u, *reference, c)
                team.parallel_for(nz, cfd_rhs.fields_slab, u, *fused, c)
                for got, want in zip(fused, reference):
                    assert got.tobytes() == want.tobytes()

    def test_fields_speed_none(self, backend, workers):
        """The BT variant passes speed=None; the fused kernel must skip
        that chain identically."""
        with make_team(backend, workers) as team:
            nz, ny, nx = CFD_GRIDS[0]
            c = CFDConstants(nx, ny, nz, 0.001)
            u, fused = _cfd_state(team, nz, ny, nx, 77)
            fused = fused[:6]
            reference = [f.copy() for f in fused]
            cfd_rhs.fields_slab_reference(0, nz, u, *reference, None, c)
            team.parallel_for(nz, cfd_rhs.fields_slab, u, *fused, None, c)
            for got, want in zip(fused, reference):
                assert got.tobytes() == want.tobytes()

    def test_rhs(self, backend, workers):
        with make_team(backend, workers) as team:
            for i, (nz, ny, nx) in enumerate(CFD_GRIDS):
                c = CFDConstants(nx, ny, nz, 0.001)
                u, fields = _cfd_state(team, nz, ny, nx, 700 + i)
                rho_i, us, vs, ws, qs, square, _ = fields
                cfd_rhs.fields_slab_reference(0, nz, u, rho_i, us, vs,
                                              ws, qs, square, None, c)
                rng = np.random.default_rng(800 + i)
                forcing = _shared(team, rng, (nz, ny, nx, 5))
                rhs = _shared(team, rng, (nz, ny, nx, 5))
                rhs_ref = rhs.copy()
                cfd_rhs.rhs_slab_reference(0, nz - 2, u, rhs_ref, forcing,
                                           rho_i, us, vs, ws, qs, square, c)
                team.parallel_for(nz - 2, cfd_rhs.rhs_slab, u, rhs,
                                  forcing, rho_i, us, vs, ws, qs, square, c)
                assert rhs.tobytes() == rhs_ref.tobytes()


def _cg_problem(team, n, seed):
    """A random CSR matrix with 1..5 nonzeros per row (no empty rows)."""
    rng = np.random.default_rng(seed)
    counts = rng.integers(1, 6, size=n)
    rowstr = team.shared(n + 1, dtype=np.int64)
    rowstr[1:] = np.cumsum(counts)
    nnz = int(rowstr[n])
    colidx = team.shared(nnz, dtype=np.int64)
    colidx[:] = rng.integers(0, n, size=nnz)
    a = team.shared(nnz)
    a[:] = rng.standard_normal(nnz)
    x = team.shared(n)
    x[:] = rng.standard_normal(n)
    return rowstr, colidx, a, x


@pytest.mark.parametrize("backend,workers", TEAM_CASES, ids=TEAM_IDS)
class TestCGFused:
    def test_matvec_with_precomputed_offsets(self, backend, workers):
        with make_team(backend, workers) as team:
            for n in CG_SIZES:
                rowstr, colidx, a, x = _cg_problem(team, n, 900 + n)
                offsets = team.shared(n, dtype=np.int64)
                cg.compute_reduceat_offsets(team.plan.bounds(n), rowstr,
                                            offsets)
                out = team.shared(n)
                out_ref = np.empty(n)
                for lo, hi in team.plan.bounds(n):
                    cg._matvec_slab_reference(lo, hi, rowstr, colidx, a,
                                              x, out_ref)
                team.parallel_for(n, cg._matvec_slab, rowstr, colidx, a,
                                  x, out, offsets)
                assert out.tobytes() == out_ref.tobytes()

    def test_matvec_without_offsets(self, backend, workers):
        """offsets=None falls back to per-call offset computation."""
        with make_team(backend, workers) as team:
            n = CG_SIZES[0]
            rowstr, colidx, a, x = _cg_problem(team, n, 41)
            out = team.shared(n)
            out_ref = np.empty(n)
            cg._matvec_slab_reference(0, n, rowstr, colidx, a, x, out_ref)
            team.parallel_for(n, cg._matvec_slab, rowstr, colidx, a, x,
                              out, None)
            assert out.tobytes() == out_ref.tobytes()

    def test_update_zr(self, backend, workers):
        with make_team(backend, workers) as team:
            for n in CG_SIZES:
                rng = np.random.default_rng(1000 + n)
                z, r, p, q = (_shared(team, rng, n) for _ in range(4))
                alpha = float(rng.standard_normal())
                z_ref, r_ref = z.copy(), r.copy()
                cg._update_zr_slab_reference(0, n, z_ref, r_ref, p, q,
                                             alpha)
                team.parallel_for(n, cg._update_zr_slab, z, r, p, q, alpha)
                assert z.tobytes() == z_ref.tobytes()
                assert r.tobytes() == r_ref.tobytes()

    def test_norm_diff(self, backend, workers):
        with make_team(backend, workers) as team:
            for n in CG_SIZES:
                rng = np.random.default_rng(1100 + n)
                x = _shared(team, rng, n)
                r = _shared(team, rng, n)
                partials = team.parallel_for(n, cg._norm_diff_slab, x, r)
                expected = [cg._norm_diff_slab_reference(lo, hi, x, r)
                            for lo, hi in team.plan.bounds(n)]
                assert partials == expected  # bit-identical floats


@pytest.mark.parametrize("backend,workers", TEAM_CASES, ids=TEAM_IDS)
class TestBasicOpsFusedSlabs:
    def test_stencil1_slab(self, backend, workers):
        with make_team(backend, workers) as team:
            w = basic_ops.make_workload((9, 8, 11), seed=7)
            a = team.shared(w.a.shape)
            a[...] = w.a
            out = team.shared(a.shape)
            out_ref = out.copy()
            basic_ops.numpy_stencil1_slab_reference(0, a.shape[0], a,
                                                    out_ref)
            team.parallel_for(a.shape[0], basic_ops.numpy_stencil1_slab,
                              a, out)
            assert out.tobytes() == out_ref.tobytes()

    def test_stencil2_slab(self, backend, workers):
        with make_team(backend, workers) as team:
            w = basic_ops.make_workload((10, 9, 12), seed=8)
            a = team.shared(w.a.shape)
            a[...] = w.a
            out = team.shared(a.shape)
            out_ref = out.copy()
            basic_ops.numpy_stencil2_slab_reference(0, a.shape[0], a,
                                                    out_ref)
            team.parallel_for(a.shape[0], basic_ops.numpy_stencil2_slab,
                              a, out)
            assert out.tobytes() == out_ref.tobytes()

    def test_matvec5_slab(self, backend, workers):
        with make_team(backend, workers) as team:
            w = basic_ops.make_workload((7, 6, 9), seed=9)
            matrices = team.shared(w.matrices.shape)
            matrices[...] = w.matrices
            vectors = team.shared(w.vectors.shape)
            vectors[...] = w.vectors
            out = team.shared(w.vectors.shape)
            out_ref = np.empty_like(w.vectors)
            basic_ops.numpy_matvec5_slab_reference(
                0, matrices.shape[0], matrices, vectors, out_ref)
            team.parallel_for(matrices.shape[0],
                              basic_ops.numpy_matvec5_slab, matrices,
                              vectors, out)
            assert out.tobytes() == out_ref.tobytes()


class TestBasicOpsFusedFullArray:
    """The full-array numpy styles are entry points (never dispatched as
    slab tasks); they bump the arena generation themselves, so repeated
    calls must reuse -- and stay bit-identical to -- the references."""

    @pytest.mark.parametrize("fused,reference", [
        (basic_ops.numpy_stencil1, basic_ops.numpy_stencil1_reference),
        (basic_ops.numpy_stencil2, basic_ops.numpy_stencil2_reference),
        (basic_ops.numpy_matvec5, basic_ops.numpy_matvec5_reference),
    ], ids=["stencil1", "stencil2", "matvec5"])
    def test_bit_identical(self, fused, reference):
        w = basic_ops.make_workload((11, 9, 10), seed=13)
        shape = (w.vectors.shape if fused is basic_ops.numpy_matvec5
                 else w.a.shape)
        out_fused = np.zeros(shape)
        out_ref = np.zeros(shape)
        for _ in range(3):  # repeated calls: arena reuse must not drift
            fused(w, out_fused)
            reference(w, out_ref)
            assert out_fused.tobytes() == out_ref.tobytes()


class TestRandomExtents:
    """Direct slab calls at random (lo, hi) -- edges the block partition
    never produces (empty slabs, single planes, off-center windows)."""

    EXTENTS = sorted({tuple(sorted((_rng.randint(0, 16),
                                    _rng.randint(0, 16))))
                      for _ in range(10)})

    @pytest.mark.parametrize("lo,hi", EXTENTS,
                             ids=[f"{lo}-{hi}" for lo, hi in EXTENTS])
    def test_mg_kernels_any_extent(self, lo, hi):
        m = 18  # interior extent 16 >= any hi above
        rng = np.random.default_rng(1300 + lo + 31 * hi)
        u = rng.standard_normal((m, m, m))
        v = rng.standard_normal((m, m, m))
        r = rng.standard_normal((m, m, m))
        r_ref = r.copy()
        mg._resid_slab_reference(lo, hi, u, v, r_ref, A)
        mg._resid_slab(lo, hi, u, v, r, A)
        assert r.tobytes() == r_ref.tobytes()
        u_ref = u.copy()
        mg._psinv_slab_reference(lo, hi, r, u_ref, C)
        mg._psinv_slab(lo, hi, r, u, C)
        assert u.tobytes() == u_ref.tobytes()

    @pytest.mark.parametrize("lo,hi", EXTENTS,
                             ids=[f"{lo}-{hi}" for lo, hi in EXTENTS])
    def test_basic_ops_slabs_any_extent(self, lo, hi):
        rng = np.random.default_rng(1400 + lo + 31 * hi)
        a = rng.standard_normal((17, 7, 8))
        out = rng.standard_normal(a.shape)
        out_ref = out.copy()
        basic_ops.numpy_stencil1_slab_reference(lo, hi, a, out_ref)
        basic_ops.numpy_stencil1_slab(lo, hi, a, out)
        assert out.tobytes() == out_ref.tobytes()
        basic_ops.numpy_stencil2_slab_reference(lo, hi, a, out_ref)
        basic_ops.numpy_stencil2_slab(lo, hi, a, out)
        assert out.tobytes() == out_ref.tobytes()
