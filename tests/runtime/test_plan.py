"""Tests for ExecutionPlan memoization and partition correctness."""

import pytest

from repro.runtime.partition import block_partition, partition_bounds
from repro.runtime.plan import ExecutionPlan


class TestExecutionPlan:
    def test_bounds_match_partition(self):
        plan = ExecutionPlan(3)
        assert plan.bounds(10) == tuple(
            partition_bounds(10, 3, r) for r in range(3))

    def test_bounds_tile_range(self):
        plan = ExecutionPlan(4)
        for n in (0, 1, 3, 4, 17, 100):
            flat = [i for lo, hi in plan.bounds(n) for i in range(lo, hi)]
            assert flat == list(range(n))

    def test_memoizes_per_extent(self):
        plan = ExecutionPlan(2)
        first = plan.bounds(50)
        second = plan.bounds(50)
        assert first is second
        assert plan.cache_info() == {"hits": 1, "misses": 1, "entries": 1}

    def test_distinct_extents_cached_separately(self):
        plan = ExecutionPlan(2)
        plan.bounds(10)
        plan.bounds(20)
        plan.bounds(10)
        info = plan.cache_info()
        assert info["entries"] == 2
        assert info["misses"] == 2
        assert info["hits"] == 1

    def test_bounds_for_single_rank(self):
        plan = ExecutionPlan(3)
        assert plan.bounds_for(10, 1) == partition_bounds(10, 3, 1)

    def test_ranks_pairs(self):
        plan = ExecutionPlan(3)
        assert plan.ranks == ((0, 3), (1, 3), (2, 3))

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ExecutionPlan(0)

    def test_compat_reexport(self):
        # team.partition must keep working as an import path.
        from repro.team.partition import (
            block_partition as bp,
            partition_bounds as pb,
        )
        assert bp is block_partition
        assert pb is partition_bounds
