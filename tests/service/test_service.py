"""BenchService integration tests: concurrency, caching, backpressure,
drain, and the HTTP front end -- all in-process (``port=0`` loopback for
the HTTP cases, no daemon)."""

from __future__ import annotations

import threading

import pytest

from repro import run_benchmark
from repro.core.benchmark import RUN_RECORD_SCHEMA_VERSION
from repro.service import (AdmissionRejected, BenchService, ServiceClient,
                           make_server)


def _service(tmp_path, **kwargs) -> BenchService:
    kwargs.setdefault("backend", "serial")
    kwargs.setdefault("pool_size", 2)
    kwargs.setdefault("cache_dir", str(tmp_path / "cache"))
    return BenchService(**kwargs)


def _verification_values(record: dict):
    return [(c["quantity"], c["computed"]) for c in record["verification"]]


class TestConcurrentSubmissions:
    def test_eight_jobs_saturate_a_two_team_pool(self, tmp_path):
        """The E2E acceptance path: 8 concurrent CG/MG class-S jobs on a
        2-team pool all complete, bit-identical to direct runs."""
        with _service(tmp_path, pool_size=2) as service:
            jobs = [service.submit("CG" if i % 2 == 0 else "MG", "S",
                                   no_cache=True)  # force real execution
                    for i in range(8)]
            done = [service.wait(job.job_id, timeout=300) for job in jobs]
            occupancy = service.pool.occupancy()
            executed = service.scheduler.executed
        assert [job.state for job in done] == ["done"] * 8
        assert all(job.result["verified"] for job in done)
        assert all(job.pooled for job in done)
        assert executed == 8
        # every job ran on one of the two warm teams, none cold
        assert occupancy["size"] == 2
        assert occupancy["cold_spawns"] == 0
        assert occupancy["leases"] == 8
        # bit-identical to direct one-shot runs
        direct = {name: run_benchmark(name, "S").to_dict()
                  for name in ("CG", "MG")}
        for job in done:
            expected = direct[job.spec.benchmark]
            assert (_verification_values(job.result)
                    == _verification_values(expected))

    def test_records_carry_v4_service_fields(self, tmp_path):
        with _service(tmp_path) as service:
            job = service.submit("CG", "S")
            job = service.wait(job.job_id, timeout=300)
        record = job.result
        assert record["schema_version"] == RUN_RECORD_SCHEMA_VERSION
        assert record["job_id"] == job.job_id
        assert record["cache_hit"] is False
        assert record["queue_wait_seconds"] >= 0.0
        assert record["provenance"]["source_job_id"] == job.job_id


class TestResultCacheIntegration:
    def test_identical_resubmission_is_a_cached_hit(self, tmp_path):
        with _service(tmp_path) as service:
            first = service.wait(service.submit("CG", "S").job_id,
                                 timeout=300)
            second = service.wait(service.submit("CG", "S").job_id,
                                  timeout=300)
            executed = service.scheduler.executed
        assert first.state == "done"
        assert second.state == "cached"
        assert second.cache_hit
        assert executed == 1  # the second submission never ran
        # identical payload, provenance names the job that computed it
        assert (_verification_values(second.result)
                == _verification_values(first.result))
        assert second.result["cache_hit"] is True
        assert (second.result["provenance"]["source_job_id"]
                == first.job_id)

    def test_no_cache_bypasses_the_probe_but_still_stores(self, tmp_path):
        with _service(tmp_path) as service:
            service.wait(service.submit("CG", "S").job_id, timeout=300)
            forced = service.wait(
                service.submit("CG", "S", no_cache=True).job_id,
                timeout=300)
            executed = service.scheduler.executed
        assert forced.state == "done"  # ran despite the cached entry
        assert executed == 2


class TestBackpressure:
    def test_admission_rejection_when_queue_is_full(self, tmp_path):
        # autostart=False: nothing drains the queue, so admission
        # control is exercised deterministically
        service = _service(tmp_path, queue_depth=2, autostart=False)
        service.submit("CG", "S")
        service.submit("MG", "S")
        with pytest.raises(AdmissionRejected) as excinfo:
            service.submit("FT", "S")
        assert excinfo.value.depth == 2
        service.drain(timeout=5)

    def test_draining_service_rejects_submissions(self, tmp_path):
        service = _service(tmp_path)
        service.drain(timeout=30)
        with pytest.raises(AdmissionRejected, match="draining"):
            service.submit("CG", "S")


class TestGracefulDrain:
    def test_drain_finishes_admitted_jobs(self, tmp_path):
        service = _service(tmp_path, pool_size=1)
        jobs = [service.submit("CG", "S", no_cache=True) for _ in range(3)]
        # drain with work still queued: everything admitted must finish
        assert service.drain(timeout=300)
        for job in jobs:
            assert job.state == "done"
            assert job.result["verified"]
        assert service.pool.occupancy()["idle"] == 0  # teams closed
        assert service.status()["draining"] is True


class TestHTTPFrontEnd:
    @pytest.fixture
    def served(self, tmp_path):
        service = _service(tmp_path)
        httpd = make_server(service, port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        host, port = httpd.server_address[:2]
        try:
            yield service, ServiceClient(f"http://{host}:{port}")
        finally:
            httpd.shutdown()
            thread.join(5)
            httpd.server_close()
            service.drain(timeout=30)

    def test_submit_wait_and_cached_resubmit(self, served):
        _, client = served
        code, job = client.submit({"benchmark": "CG", "problem_class": "S",
                                   "wait": True})
        assert code == 200
        assert job["state"] == "done"
        assert job["result"]["verified"] is True
        code, again = client.submit({"benchmark": "CG",
                                     "problem_class": "S", "wait": True})
        assert code == 200
        assert again["state"] == "cached"
        assert again["cache_hit"] is True

    def test_async_submit_then_poll(self, served):
        service, client = served
        code, job = client.submit({"benchmark": "MG", "problem_class": "S"})
        assert code == 202
        service.wait(job["job_id"], timeout=300)
        code, polled = client.job(job["job_id"])
        assert code == 200
        assert polled["state"] in ("done", "cached")

    def test_status_endpoint(self, served):
        _, client = served
        code, status = client.status()
        assert code == 200
        assert status["queue"]["capacity"] == 64
        assert status["pool"]["size"] == 2
        assert "hit_rate" in status["cache"]
        assert "fault_counts" in status["scheduler"]

    def test_unknown_job_is_404(self, served):
        _, client = served
        code, body = client.job("job-999999")
        assert code == 404
        assert "error" in body

    def test_bad_spec_is_400(self, served):
        _, client = served
        code, body = client.submit({"benchmark": "NOPE"})
        assert code == 400
        assert "bad job spec" in body["error"]

    def test_full_queue_is_429(self, tmp_path):
        service = _service(tmp_path, queue_depth=1, autostart=False)
        httpd = make_server(service, port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        host, port = httpd.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}")
        try:
            code, _ = client.submit({"benchmark": "CG",
                                     "problem_class": "S"})
            assert code == 202
            code, body = client.submit({"benchmark": "MG",
                                        "problem_class": "S"})
            assert code == 429
            assert "queue full" in body["error"]
        finally:
            httpd.shutdown()
            thread.join(5)
            httpd.server_close()
            service.drain(timeout=5)
