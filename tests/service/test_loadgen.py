"""Loadgen harness tests: mixes, samplers, percentile accounting, SLO
verdicts, record round-trips, the noise-aware comparator, and a small
end-to-end run against an in-process service."""

from __future__ import annotations

import json
import threading

import pytest

from repro.harness.stats import percentile
from repro.service import BenchService, make_server
from repro.service.loadgen import (LoadgenConfig, MixEntry, PROFILES,
                                   RequestOutcome, RequestSampler, SLOPolicy,
                                   TrafficProfile, compare_records,
                                   evaluate_slo, latest_record_path,
                                   load_record, next_sequence, parse_mix,
                                   run_closed_loop, run_loadgen, run_open_loop,
                                   summarize_outcomes, write_record)


class TestPercentile:
    def test_matches_numpy_linear_interpolation(self):
        numpy = pytest.importorskip("numpy")
        values = [0.5, 0.1, 0.9, 0.2, 0.4, 0.8, 0.3]
        for q in (0, 25, 50, 75, 90, 95, 99, 100):
            assert percentile(values, q) == pytest.approx(
                float(numpy.percentile(values, q)))

    def test_edges_and_errors(self):
        assert percentile([3.0], 95) == 3.0
        assert percentile([1.0, 2.0], 50) == 1.5
        assert percentile([1.0, 2.0], 0) == 1.0
        assert percentile([1.0, 2.0], 100) == 2.0
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestMixes:
    def test_parse_shorthand_and_full_spec(self):
        assert MixEntry.parse("CG") == MixEntry("CG")
        entry = MixEntry.parse("mg:s:threads:2:compiled@3")
        assert entry == MixEntry("MG", "S", "threads", 2, "compiled", 3.0)
        assert entry.cell_id == "MG.S.threads.x2.compiled"
        assert MixEntry.parse("CG").cell_id == "CG.S.serial.x1"

    def test_parse_rejects_malformed_specs(self):
        with pytest.raises(ValueError):
            MixEntry.parse("CG:S:serial:1:fused:extra")
        with pytest.raises(ValueError):
            MixEntry.parse("@2")
        with pytest.raises(ValueError):
            MixEntry.parse("CG@0")
        with pytest.raises(ValueError):
            parse_mix("")
        with pytest.raises(ValueError):
            parse_mix("CG", duplicate_fraction=1.5)

    def test_profiles_match_cli_choices(self):
        from repro.harness.cli import LOADGEN_PROFILES

        assert tuple(sorted(PROFILES)) == LOADGEN_PROFILES
        for profile in PROFILES.values():
            assert 0.0 <= profile.duplicate_fraction <= 1.0
            assert profile.entries

    def test_sampler_is_deterministic_and_marks_duplicates(self):
        profile = TrafficProfile(
            name="t", entries=(MixEntry("CG"), MixEntry("MG")),
            duplicate_fraction=0.5)
        a = RequestSampler(profile, seed=42)
        b = RequestSampler(profile, seed=42)
        stream_a = [a.next_request() for _ in range(50)]
        stream_b = [b.next_request() for _ in range(50)]
        assert stream_a == stream_b
        # duplicate-class requests are cache-eligible, fresh ones are not
        flags = [payload["no_cache"] for _, payload in stream_a]
        assert any(flags) and not all(flags)
        assert all(payload["wait"] for _, payload in stream_a)

    def test_duplicate_fraction_extremes(self):
        always = TrafficProfile("a", (MixEntry("CG"),), 1.0)
        never = TrafficProfile("n", (MixEntry("CG"),), 0.0)
        dup = RequestSampler(always, seed=0)
        fresh = RequestSampler(never, seed=0)
        assert not any(dup.next_request()[1]["no_cache"] for _ in range(20))
        assert all(fresh.next_request()[1]["no_cache"] for _ in range(20))


def _outcome(cell="CG.S.serial.x1", status="ok", latency=0.1,
             cache_hit=False, shard=None, degraded=False, code=200,
             coalesced=False):
    return RequestOutcome(cell_id=cell, status=status, code=code,
                          cache_hit=cache_hit, latency_seconds=latency,
                          shard=shard, degraded=degraded,
                          coalesced=coalesced)


class TestSummarize:
    def test_counts_percentiles_and_ratios_on_a_synthetic_trace(self):
        latencies = [0.010 * (i + 1) for i in range(10)]  # 10ms..100ms
        outcomes = [_outcome(latency=lat, cache_hit=(i % 2 == 0),
                             shard="s0" if i < 7 else "s1")
                    for i, lat in enumerate(latencies)]
        outcomes.append(_outcome(status="rejected", code=429))
        outcomes.append(_outcome(status="failed", code=500))
        outcomes.append(_outcome(status="unreachable", code=0,
                                 degraded=True))
        metrics = summarize_outcomes(outcomes, elapsed_seconds=2.0)
        counts = metrics["requests"]
        assert counts["total"] == 13
        assert counts["ok"] == 10
        assert counts["cached"] == 5
        assert counts["executed"] == 5
        assert counts["rejected_429"] == 1
        assert counts["failed"] == 1
        assert counts["unreachable"] == 1
        assert counts["degraded"] == 1
        latency = metrics["latency_seconds"]
        assert latency["samples"] == 10
        assert latency["p50"] == pytest.approx(percentile(latencies, 50))
        assert latency["p95"] == pytest.approx(percentile(latencies, 95))
        assert latency["min"] == pytest.approx(0.010)
        assert latency["max"] == pytest.approx(0.100)
        assert metrics["throughput_rps"] == pytest.approx(5.0)  # 10 ok / 2s
        assert metrics["cache_hit_ratio"] == pytest.approx(0.5)
        assert metrics["rate_429"] == pytest.approx(1 / 13)
        assert metrics["error_rate"] == pytest.approx(2 / 13)
        assert metrics["by_shard"] == {"s0": 7, "s1": 3}
        cell = metrics["by_cell"]["CG.S.serial.x1"]
        assert cell["requests"] == 13
        assert cell["ok"] == 10
        assert cell["p50_seconds"] is not None

    def test_no_ok_requests_yields_null_latency(self):
        metrics = summarize_outcomes(
            [_outcome(status="rejected", code=429)], elapsed_seconds=1.0)
        assert metrics["latency_seconds"] is None
        assert metrics["throughput_rps"] == 0.0
        assert metrics["cache_hit_ratio"] == 0.0
        assert metrics["dedup_ratio"] == 0.0

    def test_coalesced_counts_toward_dedup_not_cache(self):
        outcomes = ([_outcome(cache_hit=True)] * 2
                    + [_outcome(coalesced=True)] * 3
                    + [_outcome()] * 5)
        metrics = summarize_outcomes(outcomes, elapsed_seconds=1.0)
        counts = metrics["requests"]
        assert counts["cached"] == 2
        assert counts["coalesced"] == 3
        assert counts["executed"] == 5
        assert metrics["cache_hit_ratio"] == pytest.approx(0.2)
        assert metrics["dedup_ratio"] == pytest.approx(0.5)

    def test_cache_hit_wins_over_coalesced_classification(self):
        # a coordinator-side cached replay of a coalesced record carries
        # both flags; it must be counted once, as a cache hit
        metrics = summarize_outcomes(
            [_outcome(cache_hit=True, coalesced=True)], elapsed_seconds=1.0)
        assert metrics["requests"]["cached"] == 1
        assert metrics["requests"]["coalesced"] == 0
        assert metrics["dedup_ratio"] == pytest.approx(1.0)


class TestSLO:
    def _metrics(self, **overrides):
        metrics = {
            "requests": {"ok": 10},
            "error_rate": 0.0,
            "rate_429": 0.0,
            "cache_hit_ratio": 0.5,
            "latency_seconds": {"p95": 0.2},
        }
        metrics.update(overrides)
        return metrics

    def test_default_policy_passes_a_clean_run(self):
        verdict = evaluate_slo(self._metrics(), SLOPolicy())
        assert verdict["pass"] is True

    def test_any_error_fails_the_default_policy(self):
        verdict = evaluate_slo(self._metrics(error_rate=0.1), SLOPolicy())
        assert verdict["pass"] is False
        failed = [c for c in verdict["checks"] if not c["pass"]]
        assert [c["name"] for c in failed] == ["error_rate"]

    def test_optional_bounds_are_checked_when_set(self):
        policy = SLOPolicy(max_p95_seconds=0.1, min_cache_hit_ratio=0.6)
        verdict = evaluate_slo(self._metrics(), policy)
        names = {c["name"]: c["pass"] for c in verdict["checks"]}
        assert names["p95_seconds"] is False  # 0.2 > 0.1
        assert names["cache_hit_ratio"] is False  # 0.5 < 0.6

    def test_min_dedup_ratio_gate(self):
        policy = SLOPolicy(min_dedup_ratio=0.7)
        verdict = evaluate_slo(self._metrics(dedup_ratio=0.8), policy)
        names = {c["name"]: c["pass"] for c in verdict["checks"]}
        assert names["dedup_ratio"] is True
        verdict = evaluate_slo(self._metrics(dedup_ratio=0.6), policy)
        names = {c["name"]: c["pass"] for c in verdict["checks"]}
        assert names["dedup_ratio"] is False

    def test_min_ok_guards_empty_runs(self):
        metrics = self._metrics(latency_seconds=None)
        metrics["requests"] = {"ok": 0}
        verdict = evaluate_slo(metrics, SLOPolicy())
        assert verdict["pass"] is False


class TestClosedLoop:
    def test_issues_exactly_n_requests_via_fake_submit(self):
        profile = TrafficProfile("t", (MixEntry("CG"),), 1.0)
        sampler = RequestSampler(profile, seed=0)
        lock = threading.Lock()
        seen = []

        def submit(payload):
            with lock:
                seen.append(payload)
            return 200, {"state": "done", "cache_hit": True}

        outcomes, elapsed = run_closed_loop(
            submit, sampler, concurrency=4, total_requests=25)
        assert len(outcomes) == 25
        assert len(seen) == 25
        assert elapsed > 0
        assert all(o.status == "ok" and o.cache_hit for o in outcomes)

    def test_classifies_failures_and_shard_routing(self):
        profile = TrafficProfile("t", (MixEntry("CG"),), 1.0)
        sampler = RequestSampler(profile, seed=0)
        responses = iter([
            (200, {"state": "done", "routing": {"served_by": "s1",
                                                "degraded": True}}),
            (429, {"error": "full"}),
            (200, {"state": "failed"}),
        ])

        outcomes, _ = run_closed_loop(
            lambda payload: next(responses), sampler,
            concurrency=1, total_requests=3)
        assert [o.status for o in outcomes] == ["ok", "rejected", "failed"]
        assert outcomes[0].shard == "s1"
        assert outcomes[0].degraded is True

    def test_open_loop_offers_poisson_arrivals(self):
        profile = TrafficProfile("t", (MixEntry("CG"),), 1.0)
        sampler = RequestSampler(profile, seed=3)
        outcomes, elapsed = run_open_loop(
            lambda payload: (200, {"state": "done"}), sampler,
            rate_rps=200.0, duration_seconds=0.25)
        # ~50 expected; Poisson scatter stays well inside [10, 150]
        assert 10 <= len(outcomes) <= 150
        assert elapsed >= 0.2


class TestRecords:
    def _record(self, directory):
        profile = PROFILES["smoke"]
        return {
            "kind": "npb-loadgen-record",
            "schema_version": 1,
            "created_at": "2026-01-01T00:00:00Z",
            "environment": {},
            "url": "http://x",
            "config": LoadgenConfig(profile=profile).as_dict(),
            "curve": [],
            "slo_pass": True,
        }

    def test_sequence_numbering_and_round_trip(self, tmp_path):
        directory = str(tmp_path)
        assert next_sequence(directory) == 1
        path1 = write_record(self._record(directory), directory)
        path2 = write_record(self._record(directory), directory)
        assert path1.endswith("LOADGEN_0001.json")
        assert path2.endswith("LOADGEN_0002.json")
        assert latest_record_path(directory) == path2
        loaded = load_record(path2)
        assert loaded["sequence"] == 2
        assert loaded["kind"] == "npb-loadgen-record"

    def test_v1_record_migrates_in_memory(self, tmp_path):
        """Pre-coalescing records load with the cache as the only dedup
        layer: coalesced=0 and dedup_ratio == cache_hit_ratio."""
        record = self._record(str(tmp_path))
        record["curve"] = [{
            "mode": "closed", "level": 2,
            "requests": {"ok": 10, "total": 10, "cached": 4},
            "cache_hit_ratio": 0.4,
        }]
        path = tmp_path / "LOADGEN_0001.json"
        path.write_text(json.dumps(record))
        loaded = load_record(str(path))
        assert loaded["schema_version"] == 2
        step = loaded["curve"][0]
        assert step["requests"]["coalesced"] == 0
        assert step["dedup_ratio"] == pytest.approx(0.4)
        # migration is in-memory only: the disk file still says v1
        assert json.loads(path.read_text())["schema_version"] == 1

    def test_load_rejects_foreign_and_future_records(self, tmp_path):
        foreign = tmp_path / "LOADGEN_0001.json"
        foreign.write_text(json.dumps({"kind": "other"}))
        with pytest.raises(ValueError):
            load_record(str(foreign))
        future = self._record(str(tmp_path))
        future["schema_version"] = 99
        path = tmp_path / "LOADGEN_0002.json"
        path.write_text(json.dumps(future))
        with pytest.raises(ValueError, match="schema_version"):
            load_record(str(path))


def _step(mode="closed", level=2, p50=0.1, p95=0.15, p99=0.18, mad=0.001,
          rps=20.0, slo_pass=True):
    return {
        "mode": mode,
        "level": level,
        "latency_seconds": {"p50": p50, "p95": p95, "p99": p99,
                            "mad": mad, "samples": 20},
        "throughput_rps": rps,
        "slo": {"pass": slo_pass, "checks": []},
        "requests": {"ok": 20, "total": 20},
    }


def _curve_record(steps):
    return {"kind": "npb-loadgen-record", "schema_version": 1,
            "curve": steps}


class TestCompare:
    def test_identical_records_pass(self):
        base = _curve_record([_step(level=1), _step(level=4)])
        comparison = compare_records(base, _curve_record(
            [_step(level=1), _step(level=4)]))
        assert comparison["verdict"] == "pass"
        assert comparison["regressions"] == 0
        assert len(comparison["steps"]) == 2

    def test_latency_blowup_is_a_regression(self):
        base = _curve_record([_step()])
        cand = _curve_record([_step(p50=0.3, p95=0.45, p99=0.54)])
        comparison = compare_records(base, cand)
        assert comparison["verdict"] == "regression"
        verdicts = {m["metric"]: m["verdict"]
                    for m in comparison["steps"][0]["metrics"]}
        assert verdicts["latency_p50"] == "regression"
        assert verdicts["latency_p95"] == "regression"

    def test_throughput_drop_is_a_regression(self):
        base = _curve_record([_step()])
        cand = _curve_record([_step(rps=5.0)])
        comparison = compare_records(base, cand)
        verdicts = {m["metric"]: m["verdict"]
                    for m in comparison["steps"][0]["metrics"]}
        assert verdicts["throughput_rps"] == "regression"

    def test_noise_widens_the_band(self):
        # 40% slower, but the baseline's own MAD says that's noise
        base = _curve_record([_step(mad=0.02)])  # 3*0.02/0.1 = 60% band
        cand = _curve_record([_step(p50=0.14, p95=0.21, p99=0.25)])
        comparison = compare_records(base, cand)
        assert comparison["verdict"] == "pass"
        assert comparison["steps"][0]["threshold"] >= 0.6

    def test_candidate_slo_failure_counts_as_regression(self):
        base = _curve_record([_step()])
        cand = _curve_record([_step(slo_pass=False)])
        comparison = compare_records(base, cand)
        assert comparison["verdict"] == "regression"

    def test_missing_and_added_steps_are_reported(self):
        base = _curve_record([_step(level=1), _step(level=4)])
        cand = _curve_record([_step(level=1), _step(level=8)])
        comparison = compare_records(base, cand)
        assert comparison["missing"] == ["closed@4"]
        assert comparison["added"] == ["closed@8"]


class TestEndToEnd:
    def test_closed_loop_run_against_a_real_service(self, tmp_path):
        """Small full-path smoke: HTTP service, duplicate-heavy traffic,
        record with a passing SLO and at least one cache hit."""
        service = BenchService(backend="serial", pool_size=2,
                               cache_dir=str(tmp_path / "cache"))
        httpd = make_server(service, port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        host, port = httpd.server_address[:2]
        try:
            config = LoadgenConfig(
                profile=PROFILES["cache-heavy"], mode="closed",
                levels=(2,), requests_per_step=8, seed=5,
                slo=SLOPolicy(min_cache_hit_ratio=0.1))
            record = run_loadgen(f"http://{host}:{port}", config)
        finally:
            httpd.shutdown()
            httpd.server_close()
            service.drain(timeout=60.0)
        assert record["slo_pass"] is True
        step = record["curve"][0]
        assert step["requests"]["total"] == 8
        assert step["requests"]["ok"] == 8
        assert step["requests"]["cached"] >= 1
        assert step["latency_seconds"]["samples"] == 8
        assert record["config"]["profile"]["name"] == "cache-heavy"
        assert record["environment"]  # fingerprint present
        path = write_record(record, directory=str(tmp_path))
        assert load_record(path)["slo_pass"] is True
