"""Plan-based parallel runtime underneath the Team backends.

The paper's central results are *overhead diagnoses*: thread start/notify
cost (Table 1), LU's synchronization-in-the-inner-loop penalty, and CG's
thread-placement pathologies.  Reproducing those diagnoses requires more
than an end-to-end stopwatch, so the execution path is factored into three
explicit pieces that every backend shares:

:class:`ExecutionPlan`
    Memoizes block partitions per loop extent so iteration loops that
    dispatch the same ``parallel_for`` shape thousands of times stop
    recomputing slab bounds on every call.

dispatch core (:mod:`repro.runtime.dispatch`)
    The task/result/error bookkeeping that used to be triplicated across
    the serial, thread, and process backends.  Backends now provide only
    *transport* (inline call, condition-variable hand-off, process pipe);
    the core stamps every dispatch with per-worker timing.

:class:`ParallelRegion` / :class:`RegionRecorder`
    Named instrumentation regions.  Benchmarks wrap their phases
    (``rhs``, ``xsolve``, ``blts``, ``conj_grad``, ...) in regions; every
    dispatch inside a region contributes its dispatch latency, task
    execution time, and barrier-wait time to that region's totals, which
    surface as ``BenchmarkResult.regions`` and in ``npb profile``.

:class:`ScratchArena` (:mod:`repro.runtime.arena`)
    Per-worker reusable scratch buffers for the fused ``out=`` kernels,
    generation-reset by the dispatch core before every task, plus the
    tracemalloc allocation probes behind the per-region
    ``alloc_bytes``/``alloc_blocks`` accounting.
"""

from repro.runtime.arena import ScratchArena, worker_arena
from repro.runtime.dispatch import (DispatchTimeout, FaultEvent,
                                    FaultPolicy, TransportFailure,
                                    WorkerDeath, WorkerError, WorkerReply)
from repro.runtime.plan import ExecutionPlan
from repro.runtime.region import ParallelRegion, RegionRecorder, RegionStats

__all__ = [
    "DispatchTimeout",
    "ExecutionPlan",
    "ScratchArena",
    "worker_arena",
    "FaultEvent",
    "FaultPolicy",
    "ParallelRegion",
    "RegionRecorder",
    "RegionStats",
    "TransportFailure",
    "WorkerDeath",
    "WorkerError",
    "WorkerReply",
]
