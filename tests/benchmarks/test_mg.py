"""Tests for MG operators and the MG benchmark."""

import numpy as np
import pytest

from repro.mg import MG
from repro.mg.operators import comm3, interp, norm2u3, psinv, resid, rprj3
from repro.mg.params import A_COEFFS, smoother_coeffs
from repro.mg.zran3 import charge_positions, zran3
from repro.team import SerialTeam, ThreadTeam
from repro.common.params import ProblemClass


@pytest.fixture
def team():
    return SerialTeam()


def _naive_resid(u, v, a):
    """27-point residual by brute-force loops (reference)."""
    n = u.shape[0]
    out = v.copy()
    for i3 in range(1, n - 1):
        for i2 in range(1, n - 1):
            for i1 in range(1, n - 1):
                sums = [0.0, 0.0, 0.0, 0.0]
                for o3 in (-1, 0, 1):
                    for o2 in (-1, 0, 1):
                        for o1 in (-1, 0, 1):
                            order = abs(o1) + abs(o2) + abs(o3)
                            sums[order] += u[i3 + o3, i2 + o2, i1 + o1]
                out[i3, i2, i1] = (v[i3, i2, i1] - a[0] * sums[0]
                                   - a[1] * sums[1] - a[2] * sums[2]
                                   - a[3] * sums[3])
    comm3(out)
    return out


class TestOperators:
    def test_resid_matches_naive(self, team):
        rng = np.random.default_rng(0)
        u = rng.random((8, 8, 8))
        v = rng.random((8, 8, 8))
        r = np.zeros((8, 8, 8))
        resid(team, u, v, r, A_COEFFS)
        expected = _naive_resid(u, v, A_COEFFS)
        assert np.abs(r[1:-1, 1:-1, 1:-1]
                      - expected[1:-1, 1:-1, 1:-1]).max() < 1e-14

    def test_resid_in_place_v_equals_r(self, team):
        rng = np.random.default_rng(1)
        u = rng.random((8, 8, 8))
        v = rng.random((8, 8, 8))
        r1 = np.zeros_like(v)
        resid(team, u, v, r1, A_COEFFS)
        r2 = v.copy()
        resid(team, u, r2, r2, A_COEFFS)  # in-place, as in mg3P
        assert np.array_equal(r1, r2)

    def test_resid_annihilates_constants(self, team):
        # The stencil has zero row sum: A(const) = 0, so r = v.
        u = np.full((10, 10, 10), 3.7)
        v = np.random.default_rng(2).random((10, 10, 10))
        r = np.zeros_like(v)
        resid(team, u, v, r, A_COEFFS)
        assert np.abs(r[1:-1, 1:-1, 1:-1]
                      - v[1:-1, 1:-1, 1:-1]).max() < 1e-13

    def test_rprj3_full_weighting_of_constant(self, team):
        # Full weighting with weight sum 4 maps a constant field to 4x
        # the constant (the h -> 2h rescaling of the unscaled operator).
        fine = np.ones((10, 10, 10))
        coarse = np.zeros((6, 6, 6))
        rprj3(team, fine, coarse)
        assert np.abs(coarse[1:-1, 1:-1, 1:-1] - 4.0).max() < 1e-14

    def test_interp_exact_on_coincident_points(self, team):
        rng = np.random.default_rng(3)
        z = rng.random((6, 6, 6))
        u = np.zeros((10, 10, 10))
        interp(team, z, u)
        # Even fine points coincide with coarse points.
        assert np.abs(u[0:9:2, 0:9:2, 0:9:2] - z[:-1, :-1, :-1]).max() == 0

    def test_interp_midpoints_average(self, team):
        z = np.zeros((6, 6, 6))
        z[2, 2, 2] = 1.0
        z[2, 2, 3] = 3.0
        u = np.zeros((10, 10, 10))
        interp(team, z, u)
        assert u[4, 4, 5] == pytest.approx(2.0)  # midpoint in i1

    def test_comm3_periodicity(self):
        rng = np.random.default_rng(4)
        x = rng.random((7, 7, 7))
        comm3(x)
        assert np.array_equal(x[0, 1:-1, 1:-1], x[-2, 1:-1, 1:-1])
        assert np.array_equal(x[-1], x[1])
        assert np.array_equal(x[:, 0, :], x[:, -2, :])
        assert np.array_equal(x[:, :, -1], x[:, :, 1])

    def test_norm2u3(self, team):
        x = np.zeros((6, 6, 6))
        x[1:-1, 1:-1, 1:-1] = 2.0
        rnm2, rnmu = norm2u3(team, x, 4, 4, 4)
        assert rnm2 == pytest.approx(2.0)
        assert rnmu == pytest.approx(2.0)

    def test_psinv_slab_invariance(self):
        rng = np.random.default_rng(5)
        r = rng.random((10, 10, 10))
        u1 = rng.random((10, 10, 10))
        u2 = u1.copy()
        c = smoother_coeffs(ProblemClass.S)
        psinv(SerialTeam(), r, u1, c)
        with ThreadTeam(3) as tt:
            psinv(tt, r, u2, c)
        assert np.array_equal(u1, u2)


class TestZran3:
    def test_twenty_charges(self):
        z = np.zeros((10, 10, 10))
        zran3(z, 8, 314159265)
        interior = z[1:-1, 1:-1, 1:-1]
        assert (interior == 1.0).sum() == 10
        assert (interior == -1.0).sum() == 10
        assert ((interior != 0).sum()) == 20

    def test_positions_reused(self):
        positions = charge_positions(8, 314159265)
        z1 = np.zeros((10, 10, 10))
        z2 = np.zeros((10, 10, 10))
        zran3(z1, 8, 314159265)
        zran3(z2, 8, 314159265, positions)
        assert np.array_equal(z1, z2)

    def test_plus_and_minus_disjoint(self):
        plus, minus = charge_positions(16, 314159265)
        plus_set = {tuple(p) for p in plus}
        minus_set = {tuple(p) for p in minus}
        assert not plus_set & minus_set


class TestMGBenchmark:
    def test_class_s_verifies(self):
        result = MG("S").run()
        assert result.verified
        assert result.verification.checks[0][3] < 1e-10

    def test_residual_decreases_per_cycle(self):
        bench = MG("S")
        bench.setup()
        lt = bench.params.lt
        nx = bench.params.nx
        resid(bench.team, bench.u[lt], bench.v, bench.r[lt], bench.a)
        norms = []
        for _ in range(3):
            bench._mg3p()
            resid(bench.team, bench.u[lt], bench.v, bench.r[lt], bench.a)
            norms.append(norm2u3(bench.team, bench.r[lt], nx, nx, nx)[0])
        assert norms[1] < norms[0] and norms[2] < norms[1]

    def test_thread_backend_verifies(self):
        with ThreadTeam(2) as team:
            assert MG("S", team).run().verified
