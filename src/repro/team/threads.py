"""Thread backend: the paper's master--worker scheme with wait()/notify().

Section 4 of the paper: every benchmark object is a thread; the master
switches workers between blocked and runnable states with ``wait()`` and
``notify()``.  Here each worker blocks on a shared condition variable until
the master publishes a new task generation, executes its slab, and reports
completion; the master's ``parallel_for`` returns only when all workers have
checked in (the barrier).

Python's GIL serializes interpreted bytecode, but NumPy kernels release the
GIL, so slab-level NumPy work can overlap.  On this suite the backend's role
is structural fidelity (overhead and synchronization behaviour) rather than
raw speedup -- the process backend is the true-parallelism path.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.team.base import Team
from repro.team.partition import partition_bounds


class ThreadTeam(Team):
    """Persistent worker threads coordinated by a condition variable."""

    backend = "threads"

    def __init__(self, nworkers: int):
        if nworkers < 1:
            raise ValueError("nworkers must be >= 1")
        self._nworkers = nworkers
        self._cond = threading.Condition()
        self._generation = 0
        self._pending = 0
        self._task: tuple[str, Callable, tuple, int] | None = None
        self._results: list[Any] = [None] * nworkers
        self._error: BaseException | None = None
        self._shutdown = False
        self._threads = [
            threading.Thread(
                target=self._worker_loop, args=(rank,), daemon=True,
                name=f"npb-worker-{rank}",
            )
            for rank in range(nworkers)
        ]
        for t in self._threads:
            t.start()

    @property
    def nworkers(self) -> int:
        return self._nworkers

    # ------------------------------------------------------------------ #

    def _worker_loop(self, rank: int) -> None:
        seen = 0
        while True:
            with self._cond:
                # blocked state: wait() until the master notify()s a new task
                while self._generation == seen and not self._shutdown:
                    self._cond.wait()
                if self._shutdown:
                    return
                seen = self._generation
                kind, fn, args, n = self._task
            try:
                if kind == "for":
                    lo, hi = partition_bounds(n, self._nworkers, rank)
                    result = fn(lo, hi, *args)
                else:  # "all"
                    result = fn(rank, self._nworkers, *args)
            except BaseException as exc:  # propagate to master
                result = None
                with self._cond:
                    if self._error is None:
                        self._error = exc
            with self._cond:
                self._results[rank] = result
                self._pending -= 1
                if self._pending == 0:
                    self._cond.notify_all()

    def _dispatch(self, kind: str, n: int, fn: Callable, args: tuple) -> list[Any]:
        with self._cond:
            if self._shutdown:
                raise RuntimeError("team is closed")
            self._task = (kind, fn, args, n)
            self._results = [None] * self._nworkers
            self._error = None
            self._pending = self._nworkers
            self._generation += 1
            self._cond.notify_all()  # runnable state
            while self._pending > 0:
                self._cond.wait()
            if self._error is not None:
                raise self._error
            return list(self._results)

    # ------------------------------------------------------------------ #

    def parallel_for(self, n: int, fn: Callable, *args: Any) -> list[Any]:
        return self._dispatch("for", n, fn, args)

    def run_on_all(self, fn: Callable, *args: Any) -> list[Any]:
        return self._dispatch("all", 0, fn, args)

    def close(self) -> None:
        with self._cond:
            if self._shutdown:
                return
            self._shutdown = True
            self._cond.notify_all()
        for t in self._threads:
            t.join(timeout=5.0)
