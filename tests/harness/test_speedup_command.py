"""Test for the speedup CLI subcommand."""

from repro.harness.cli import main


def test_speedup_ep_threads(capsys):
    assert main(["speedup", "EP", "-c", "S", "-b", "threads",
                 "-w", "2"]) == 0
    out = capsys.readouterr().out
    assert "Speedup study: EP.S" in out
    assert "Modeled EP.A" in out
    assert "origin2000" in out
