"""SP pointwise similarity transforms (txinvr, ninvr, pinvr, tzetar).

The Beam-Warming diagonalization conjugates each directional implicit
operator by the eigenvector matrix of its flux Jacobian; these four
routines apply the relevant (inverse) eigenvector matrices to the
right-hand side between sweeps.  All are slab-parallel over interior k.
"""

from __future__ import annotations

from repro.cfd.constants import CFDConstants


def txinvr_slab(lo: int, hi: int, rhs, rho_i, us, vs, ws, qs, speed,
                c: CFDConstants) -> None:
    """Multiply rhs by T_x^{-1} (txinvr), planes [1+lo, 1+hi)."""
    if hi <= lo:
        return
    sl = (slice(1 + lo, 1 + hi), slice(1, -1), slice(1, -1))
    ru1 = rho_i[sl]
    uu = us[sl]
    vv = vs[sl]
    ww = ws[sl]
    ac = speed[sl]
    ac2inv = 1.0 / (ac * ac)
    r1 = rhs[sl + (0,)].copy()
    r2 = rhs[sl + (1,)].copy()
    r3 = rhs[sl + (2,)].copy()
    r4 = rhs[sl + (3,)].copy()
    r5 = rhs[sl + (4,)].copy()
    t1 = c.c2 * ac2inv * (qs[sl] * r1 - uu * r2 - vv * r3 - ww * r4 + r5)
    t2 = c.bt * ru1 * (uu * r1 - r2)
    t3 = (c.bt * ru1 * ac) * t1
    rhs[sl + (0,)] = r1 - t1
    rhs[sl + (1,)] = -ru1 * (ww * r1 - r4)
    rhs[sl + (2,)] = ru1 * (vv * r1 - r3)
    rhs[sl + (3,)] = -t2 + t3
    rhs[sl + (4,)] = t2 + t3


def ninvr_slab(lo: int, hi: int, rhs, c: CFDConstants) -> None:
    """Block-diagonal inversion after the x sweep (ninvr)."""
    if hi <= lo:
        return
    sl = (slice(1 + lo, 1 + hi), slice(1, -1), slice(1, -1))
    r1 = rhs[sl + (0,)].copy()
    r2 = rhs[sl + (1,)].copy()
    r3 = rhs[sl + (2,)].copy()
    r4 = rhs[sl + (3,)].copy()
    r5 = rhs[sl + (4,)].copy()
    t1 = c.bt * r3
    t2 = 0.5 * (r4 + r5)
    rhs[sl + (0,)] = -r2
    rhs[sl + (1,)] = r1
    rhs[sl + (2,)] = c.bt * (r4 - r5)
    rhs[sl + (3,)] = -t1 + t2
    rhs[sl + (4,)] = t1 + t2


def pinvr_slab(lo: int, hi: int, rhs, c: CFDConstants) -> None:
    """Block-diagonal inversion after the y sweep (pinvr)."""
    if hi <= lo:
        return
    sl = (slice(1 + lo, 1 + hi), slice(1, -1), slice(1, -1))
    r1 = rhs[sl + (0,)].copy()
    r2 = rhs[sl + (1,)].copy()
    r3 = rhs[sl + (2,)].copy()
    r4 = rhs[sl + (3,)].copy()
    r5 = rhs[sl + (4,)].copy()
    t1 = c.bt * r1
    t2 = 0.5 * (r4 + r5)
    rhs[sl + (0,)] = c.bt * (r4 - r5)
    rhs[sl + (1,)] = -r3
    rhs[sl + (2,)] = r2
    rhs[sl + (3,)] = -t1 + t2
    rhs[sl + (4,)] = t1 + t2


def tzetar_slab(lo: int, hi: int, rhs, u, us, vs, ws, qs, speed,
                c: CFDConstants) -> None:
    """Multiply rhs by T_zeta (tzetar) after the z sweep."""
    if hi <= lo:
        return
    sl = (slice(1 + lo, 1 + hi), slice(1, -1), slice(1, -1))
    xvel = us[sl]
    yvel = vs[sl]
    zvel = ws[sl]
    ac = speed[sl]
    ac2u = ac * ac
    r1 = rhs[sl + (0,)].copy()
    r2 = rhs[sl + (1,)].copy()
    r3 = rhs[sl + (2,)].copy()
    r4 = rhs[sl + (3,)].copy()
    r5 = rhs[sl + (4,)].copy()
    uzik1 = u[sl + (0,)]
    btuz = c.bt * uzik1
    t1 = btuz / ac * (r4 + r5)
    t2 = r3 + t1
    t3 = btuz * (r4 - r5)
    rhs[sl + (0,)] = t2
    rhs[sl + (1,)] = -uzik1 * r2 + xvel * t2
    rhs[sl + (2,)] = uzik1 * r1 + yvel * t2
    rhs[sl + (3,)] = zvel * t2 + t3
    rhs[sl + (4,)] = (uzik1 * (-xvel * r2 + yvel * r1)
                      + qs[sl] * t2 + c.c2iv * ac2u * t1 + zvel * t3)
