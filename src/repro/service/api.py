"""Service front end: in-process facade, HTTP daemon, and client.

:class:`BenchService` is the whole job service as one in-process object
-- queue, pool, cache, scheduler, and a job registry -- which is how
tests exercise every concurrency path without opening a socket.  The
HTTP layer (:func:`make_server`, serving ``npb serve``) is a thin JSON
shim over it on a stdlib ``ThreadingHTTPServer``:

``POST /jobs``
    Submit a job.  Body: ``{"benchmark": "CG", "problem_class": "S",
    "backend": "serial", "workers": 1, "priority": "normal",
    "no_cache": false, "dispatch_timeout": null, "max_retries": null,
    "kernel_backend": "fused", "job_key": null, "wait": false}``.
    Returns 202 with the job dict (or 200 with the terminal job when
    ``wait`` is true); 429 when admission is rejected (queue full or
    draining); 400 on a malformed spec.  A repeated ``job_key``
    (idempotency key) returns the already-admitted job instead of a
    duplicate.
``GET /jobs`` / ``GET /jobs/<id>``
    Job listing / one job (404 when unknown).
``GET /status``
    Queue depth, pool occupancy, cache hit rate, scheduler counters
    (including aggregated fault counts), and jobs by state.

:class:`ServiceClient` is the stdlib-``urllib`` client used by
``npb submit`` / ``npb jobs`` and the load generator
(:mod:`repro.service.loadgen`).  ``submit(..., retries=N)`` honors the
``Retry-After`` header on 429 with bounded retries, so a briefly-full
queue reads as backpressure instead of a hard failure.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.runtime.dispatch import FaultPolicy
from repro.service.cache import ResultCache
from repro.service.jobs import AdmissionRejected, Job, JobQueue, JobSpec
from repro.service.pool import TeamPool
from repro.service.scheduler import Scheduler

#: Default on-disk location of the content-addressed result cache.
DEFAULT_CACHE_DIR = ".npb-service-cache"

#: Seconds a 429 tells the client to wait before resubmitting.
RETRY_AFTER_SECONDS = 1.0

#: Longest single backoff ``ServiceClient.submit`` will sleep, however
#: large a Retry-After the server (or a proxy) sends.
MAX_RETRY_AFTER_SECONDS = 10.0


class BenchService:
    """The benchmark job service as one in-process object."""

    def __init__(
        self,
        backend: str = "serial",
        workers: int = 1,
        pool_size: int = 2,
        queue_depth: int = 64,
        cache_dir: str = DEFAULT_CACHE_DIR,
        cache_entries: int = 256,
        policy: FaultPolicy | None = None,
        kernel_backend: str = "fused",
        chaos=None,
        autostart: bool = True,
    ):
        #: default kernel tier for submissions that don't name one
        self.default_kernel_backend = kernel_backend
        self.queue = JobQueue(maxdepth=queue_depth)
        self.pool = TeamPool(backend, workers, size=pool_size, policy=policy)
        self.cache = ResultCache(cache_dir, max_entries=cache_entries)
        self.scheduler = Scheduler(
            self.queue, self.pool, self.cache, on_update=self._on_update
        )
        #: optional ChaosInjector wired into every seam (fault-injection
        #: tests and ``npb serve --chaos-seed``); None = off
        self.chaos = chaos
        if chaos is not None:
            chaos.install(self)
        self._jobs: dict[str, Job] = {}
        self._by_key: dict[str, Job] = {}
        self._cond = threading.Condition()
        self._counter = 0
        self._draining = False
        self.started_at = time.time()
        if autostart:
            self.scheduler.start()

    # ------------------------------------------------------------------ #

    def _on_update(self, job: Job) -> None:
        with self._cond:
            self._cond.notify_all()

    def submit(
        self,
        benchmark: str,
        problem_class: str = "S",
        backend: str | None = None,
        workers: int | None = None,
        priority: str = "normal",
        no_cache: bool = False,
        dispatch_timeout: float | None = None,
        max_retries: int | None = None,
        kernel_backend: str | None = None,
        job_key: str | None = None,
    ) -> Job:
        """Admit one job (raises :class:`AdmissionRejected` when full).

        ``backend``/``workers`` default to the pool configuration, which
        is the warm path; overriding them still works but runs on a cold
        one-shot team.  ``kernel_backend`` selects the kernel tier for
        the run; the scheduler swaps it onto the leased team per job, so
        pooled teams stay warm across tiers.

        ``job_key`` makes the submission idempotent: a repeated key
        returns the job already admitted under it (whatever state it has
        reached) instead of queueing a duplicate.  This is what lets the
        shard coordinator resubmit after an ambiguous transport failure
        without double-running the work.
        """
        if job_key is not None:
            job_key = str(job_key)
            with self._cond:
                existing = self._by_key.get(job_key)
            if existing is not None:
                return existing
        spec = JobSpec.create(
            benchmark,
            problem_class,
            backend=self.pool.backend if backend is None else backend,
            workers=self.pool.workers if workers is None else workers,
            dispatch_timeout=dispatch_timeout,
            max_retries=max_retries,
            kernel_backend=(
                self.default_kernel_backend
                if kernel_backend is None
                else kernel_backend
            ),
        )
        with self._cond:
            if job_key is not None:
                # Re-check under the lock: a concurrent duplicate may
                # have registered the key while the spec was validated.
                existing = self._by_key.get(job_key)
                if existing is not None:
                    return existing
            self._counter += 1
            job = Job(
                job_id=f"job-{self._counter:06d}",
                spec=spec,
                priority=priority,
                no_cache=bool(no_cache),
                job_key=job_key,
            )
            if job_key is not None:
                self._by_key[job_key] = job
        try:
            self.queue.put(job)  # may raise AdmissionRejected
        except AdmissionRejected:
            with self._cond:
                if job_key is not None and self._by_key.get(job_key) is job:
                    del self._by_key[job_key]
            raise
        with self._cond:
            self._jobs[job.job_id] = job
        return job

    def job(self, job_id: str) -> Job | None:
        with self._cond:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        with self._cond:
            return list(self._jobs.values())

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until the job reaches a terminal state."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                job = self._jobs.get(job_id)
                if job is None:
                    raise KeyError(f"unknown job {job_id!r}")
                if job.terminal:
                    return job
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(
                        f"job {job_id} not terminal within {timeout}s "
                        f"(state {job.state})"
                    )
                self._cond.wait(remaining)

    # ------------------------------------------------------------------ #

    def status(self) -> dict:
        with self._cond:
            by_state: dict[str, int] = {}
            for job in self._jobs.values():
                by_state[job.state] = by_state.get(job.state, 0) + 1
            draining = self._draining
        status = {
            "service": "npb-bench-service",
            "uptime_seconds": time.time() - self.started_at,
            "draining": draining,
            "queue": {
                "depth": self.queue.depth,
                "capacity": self.queue.maxdepth,
                "closed": self.queue.closed,
            },
            "pool": self.pool.occupancy(),
            "cache": self.cache.stats(),
            "scheduler": self.scheduler.stats(),
            "jobs": by_state,
        }
        if self.chaos is not None:
            status["chaos"] = self.chaos.summary()
        return status

    def drain(self, timeout: float | None = 30.0) -> bool:
        """Graceful shutdown: finish admitted jobs, reject new ones,
        close every team.  Returns True on a clean drain."""
        with self._cond:
            if self._draining:
                return True
            self._draining = True
        return self.scheduler.drain(timeout)

    def __enter__(self) -> "BenchService":
        return self

    def __exit__(self, *exc) -> None:
        self.drain()


# ===================================================================== #
# HTTP layer
# ===================================================================== #


class _ServiceHandler(BaseHTTPRequestHandler):
    """JSON shim: translates HTTP verbs onto the BenchService facade."""

    server: "ServiceHTTPServer"
    #: keep connection handling simple and stateless
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.verbose:
            super().log_message(format, *args)

    def _send(
        self, code: int, payload: dict, headers: dict | None = None
    ) -> None:
        body = (json.dumps(payload, indent=2) + "\n").encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        service = self.server.service
        path = self.path.rstrip("/") or "/"
        if path == "/status":
            self._send(200, service.status())
        elif path == "/jobs":
            self._send(200, {"jobs": [j.as_dict() for j in service.jobs()]})
        elif path.startswith("/jobs/"):
            job = service.job(path[len("/jobs/") :])
            if job is None:
                self._send(404, {"error": "unknown job"})
            else:
                self._send(200, job.as_dict())
        else:
            self._send(404, {"error": f"no such resource {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        service = self.server.service
        if self.path.rstrip("/") != "/jobs":
            self._send(404, {"error": f"no such resource {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            payload = json.loads(self.rfile.read(length) or b"{}")
            if not isinstance(payload, dict):
                raise ValueError("body must be a JSON object")
            wait = bool(payload.pop("wait", False))
            wait_timeout = payload.pop("wait_timeout", None)
            job = service.submit(**payload)
        except AdmissionRejected as exc:
            self._send(
                429,
                {"error": str(exc), "depth": exc.depth, "capacity": exc.capacity},
                headers={"Retry-After": f"{RETRY_AFTER_SECONDS:g}"},
            )
            return
        except (TypeError, ValueError, json.JSONDecodeError) as exc:
            self._send(400, {"error": f"bad job spec: {exc}"})
            return
        if wait:
            try:
                job = service.wait(job.job_id, timeout=wait_timeout)
            except TimeoutError as exc:
                self._send(504, {"error": str(exc), "job": job.as_dict()})
                return
            self._send(200, job.as_dict())
        else:
            self._send(202, job.as_dict())


class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the BenchService for its handlers."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: BenchService,
        verbose: bool = False,
    ):
        super().__init__(address, _ServiceHandler)
        self.service = service
        self.verbose = verbose


def make_server(
    service: BenchService,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
) -> ServiceHTTPServer:
    """Bind the service to a socket (``port=0`` picks a free one)."""
    return ServiceHTTPServer((host, port), service, verbose=verbose)


# ===================================================================== #
# client (used by ``npb submit`` / ``npb jobs`` / ``npb loadgen``)
# ===================================================================== #


class ServiceUnavailable(RuntimeError):
    """The daemon could not be reached at the given URL."""


def _retry_after_seconds(headers) -> float:
    """Parse a Retry-After header (seconds form) with a safe default."""
    value = headers.get("Retry-After") if headers is not None else None
    try:
        seconds = float(value)
    except (TypeError, ValueError):
        return RETRY_AFTER_SECONDS
    return min(max(seconds, 0.0), MAX_RETRY_AFTER_SECONDS)


class ServiceClient:
    """Minimal stdlib HTTP client for the job service."""

    def __init__(self, url: str, timeout: float = 600.0):
        self.url = url.rstrip("/")
        self.timeout = timeout

    def _request_full(
        self, method: str, path: str, payload: dict | None = None
    ) -> tuple[int, dict, dict]:
        """One request: ``(status, body, headers)``."""
        data = None if payload is None else json.dumps(payload).encode()
        request = urllib.request.Request(
            f"{self.url}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                body = json.loads(response.read() or b"{}")
                return response.status, body, dict(response.headers)
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read() or b"{}")
            except json.JSONDecodeError:
                body = {"error": str(exc)}
            return exc.code, body, dict(exc.headers or {})
        except (urllib.error.URLError, OSError, TimeoutError) as exc:
            raise ServiceUnavailable(
                f"cannot reach {self.url}: {exc}"
            ) from exc

    def _request(
        self, method: str, path: str, payload: dict | None = None
    ) -> tuple[int, dict]:
        code, body, _ = self._request_full(method, path, payload)
        return code, body

    def submit(self, payload: dict, retries: int = 0) -> tuple[int, dict]:
        """POST the job, honoring Retry-After on 429 up to ``retries``
        resubmissions.

        A 429 is backpressure, not failure: the server names its own
        backoff in the Retry-After header, and a client that sleeps it
        off usually gets admitted on the next attempt.  With the default
        ``retries=0`` the first response is returned as-is.
        """
        attempts = max(0, int(retries)) + 1
        code, body, headers = 429, {}, {}
        for attempt in range(attempts):
            code, body, headers = self._request_full("POST", "/jobs", payload)
            if code != 429 or attempt == attempts - 1:
                return code, body
            time.sleep(_retry_after_seconds(headers))
        return code, body

    def job(self, job_id: str) -> tuple[int, dict]:
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> tuple[int, dict]:
        return self._request("GET", "/jobs")

    def status(self) -> tuple[int, dict]:
        return self._request("GET", "/status")
