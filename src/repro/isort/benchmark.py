"""The IS benchmark: histogram-based linear-time integer ranking (is.c)."""

from __future__ import annotations

import numpy as np

from repro.common.randdp import A_DEFAULT, vranlc
from repro.common.verification import VerificationResult
from repro.core.benchmark import NPBenchmark
from repro.core.registry import register
from repro.isort.params import (
    IS_SEED,
    MAX_ITERATIONS,
    TEST_ARRAY_SIZE,
    is_params,
)


def create_seq(num_keys: int, max_key: int,
               seed: int = IS_SEED) -> np.ndarray:
    """Generate the key stream (create_seq in is.c).

    Each key consumes four successive LCG draws; the key is
    ``int(max_key/4 * (u1+u2+u3+u4))``, giving a binomial-ish (approximately
    Gaussian) distribution over ``[0, max_key)``.
    """
    uniforms, _ = vranlc(4 * num_keys, seed, A_DEFAULT)
    sums = uniforms.reshape(num_keys, 4).sum(axis=1)
    return ((max_key // 4) * sums).astype(np.int64)


def _histogram_slab(lo: int, hi: int, keys, max_key: int) -> np.ndarray:
    """Worker task: histogram of the keys in slab [lo, hi).

    Each worker builds a private histogram; the master merges them -- the
    standard parallel counting-sort decomposition the Java version uses.
    """
    return np.bincount(keys[lo:hi], minlength=max_key)


@register
class IS(NPBenchmark):
    """Integer Sort: linear-time ranking via key histogram."""

    name = "IS"

    def __init__(self, problem_class, team=None):
        super().__init__(problem_class, team)
        self.params = is_params(self.problem_class)
        self.passed_verification = 0
        self._cumulative: np.ndarray | None = None

    @property
    def niter(self) -> int:
        return MAX_ITERATIONS

    # ------------------------------------------------------------------ #

    def _setup(self) -> None:
        params = self.params
        self.keys = self.team.shared(params.num_keys, dtype=np.int64)
        self.keys[:] = create_seq(params.num_keys, params.max_key)
        self.passed_verification = 0
        # One untimed ranking (is.c does rank(1) before starting the clock)
        # -- here without the verification side effects, purely as warm-up.
        self._rank(iteration=1, record=False)

    def _rank(self, iteration: int, record: bool = True) -> None:
        """One ranking pass (rank() in is.c)."""
        params = self.params
        keys = self.keys
        # Iteration-dependent modification keeps successive passes distinct.
        keys[iteration] = iteration
        keys[iteration + MAX_ITERATIONS] = params.max_key - iteration
        spot_values = [int(keys[idx]) for idx in params.test_index]

        with self.region("rank"):
            partials = self.team.parallel_for(
                params.num_keys, _histogram_slab, keys, params.max_key
            )
            counts = partials[0]
            for p in partials[1:]:
                counts = counts + p
            cumulative = np.cumsum(counts)
        self._cumulative = cumulative

        if not record:
            return
        # Partial verification: the rank of key k is the number of smaller
        # keys, i.e. cumulative[k-1].
        for i in range(TEST_ARRAY_SIZE):
            k = spot_values[i]
            if 0 < k <= params.num_keys - 1:
                rank = int(cumulative[k - 1])
                offset, sign = params.rank_adjust[i]
                expected = params.test_rank[i] + sign * (iteration + offset)
                if rank == expected:
                    self.passed_verification += 1

    def _iterate(self) -> None:
        for iteration in range(1, MAX_ITERATIONS + 1):
            self._rank(iteration)

    # ------------------------------------------------------------------ #

    def full_verify(self) -> bool:
        """Reconstruct the sorted sequence from the final histogram and
        check it is non-decreasing (full_verify in is.c)."""
        if self._cumulative is None:
            return False
        counts = np.diff(self._cumulative, prepend=0)
        if np.any(counts < 0):
            return False
        sorted_keys = np.repeat(
            np.arange(self.params.max_key, dtype=np.int64), counts
        )
        if len(sorted_keys) != self.params.num_keys:
            return False
        return bool(np.all(np.diff(sorted_keys) >= 0))

    def verify(self) -> VerificationResult:
        result = VerificationResult("IS", str(self.problem_class), True)
        if self.full_verify():
            self.passed_verification += 1
        expected = TEST_ARRAY_SIZE * MAX_ITERATIONS + 1
        result.add("passed_checks", float(self.passed_verification),
                   float(expected), 0.0)
        return result

    def op_count(self) -> float:
        """is.c normalizes Mop/s by ranked keys: niter * num_keys."""
        return float(MAX_ITERATIONS * self.params.num_keys)
