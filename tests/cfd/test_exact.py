"""Tests for the BT/SP/LU exact solution and constants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfd.constants import CFDConstants
from repro.cfd.exact import CE, exact_field, exact_solution

unit = st.floats(min_value=0.0, max_value=1.0)


class TestExactSolution:
    def test_scalar_at_origin_equals_ce_column_one(self):
        values = exact_solution(0.0, 0.0, 0.0)
        assert np.allclose(values, CE[:, 0])

    def test_broadcasting(self):
        xi = np.zeros((3, 1))
        eta = np.zeros((1, 4))
        out = exact_solution(xi, eta, 0.5)
        assert out.shape == (3, 4, 5)

    @given(unit, unit, unit)
    @settings(max_examples=50)
    def test_polynomial_definition(self, xi, eta, zeta):
        values = exact_solution(xi, eta, zeta)
        for m in range(5):
            c = CE[m]
            expected = (c[0]
                        + c[1] * xi + c[4] * xi**2 + c[7] * xi**3
                        + c[10] * xi**4
                        + c[2] * eta + c[5] * eta**2 + c[8] * eta**3
                        + c[11] * eta**4
                        + c[3] * zeta + c[6] * zeta**2 + c[9] * zeta**3
                        + c[12] * zeta**4)
            assert values[m] == pytest.approx(expected, rel=1e-12)

    @given(unit, unit, unit)
    @settings(max_examples=25)
    def test_density_positive(self, xi, eta, zeta):
        # The verification norms divide by the density; it must stay
        # positive over the unit cube for the discretization to be sane.
        assert exact_solution(xi, eta, zeta)[0] > 0

    def test_exact_field_matches_pointwise(self):
        c = CFDConstants(6, 6, 6, 0.1)
        field = exact_field(6, 6, 6, c.dnxm1, c.dnym1, c.dnzm1)
        assert field.shape == (6, 6, 6, 5)
        probe = exact_solution(3 * c.dnxm1, 2 * c.dnym1, 5 * c.dnzm1)
        assert np.allclose(field[5, 2, 3], probe)


class TestConstants:
    def test_paper_values(self):
        c = CFDConstants(12, 12, 12, 0.01)
        assert c.c1 == 1.4 and c.c2 == 0.4
        assert c.dssp == 0.25 * 1.0  # max(dx1, dy1, dz1) = dz1 = 1.0
        assert c.dnxm1 == pytest.approx(1.0 / 11.0)
        assert c.tx2 == pytest.approx(11.0 / 2.0)
        assert c.con43 == pytest.approx(4.0 / 3.0)
        assert c.bt == pytest.approx(np.sqrt(0.5))

    def test_derived_products(self):
        c = CFDConstants(64, 64, 64, 0.0008)
        assert c.c1c5 == pytest.approx(1.4 * 1.4)
        assert c.c1345 == pytest.approx(1.4 * 1.4 * 0.1 * 1.0)
        assert c.xxcon2 == pytest.approx(c.c3c4 * c.tx3 * c.tx3)
        assert c.comz4 == pytest.approx(4 * c.dt * c.dssp)

    def test_picklable(self):
        import pickle

        c = CFDConstants(12, 12, 12, 0.015)
        clone = pickle.loads(pickle.dumps(c))
        assert clone.xxcon5 == c.xxcon5
        assert clone.dz5tz1 == c.dz5tz1
