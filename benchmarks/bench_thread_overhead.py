"""Ablation: the master-worker machinery's overhead (paper sections 3/5.2).

The paper reports <= 20% overhead for one thread vs the serial program
and 10-20% overall.  Here: the same benchmark's timed region under the
serial backend, one worker thread, and one worker process.
"""

import pytest

from repro.team import ProcessTeam, ThreadTeam
from nas_bench_util import run_timed_region

CASES = ["CG", "MG"]


@pytest.mark.parametrize("name", CASES)
def test_serial_baseline(benchmark, name):
    benchmark.extra_info["backend"] = "serial"
    run_timed_region(benchmark, name, "S")


@pytest.mark.parametrize("name", CASES)
def test_one_worker_thread(benchmark, name):
    benchmark.extra_info["backend"] = "threads x1"
    with ThreadTeam(1) as team:
        run_timed_region(benchmark, name, "S", team)


@pytest.mark.parametrize("name", CASES)
def test_one_worker_process(benchmark, name):
    benchmark.extra_info["backend"] = "process x1"
    with ProcessTeam(1) as team:
        run_timed_region(benchmark, name, "S", team)


@pytest.mark.parametrize("name", CASES)
def test_two_worker_processes(benchmark, name):
    benchmark.extra_info["backend"] = "process x2"
    with ProcessTeam(2) as team:
        run_timed_region(benchmark, name, "S", team)
