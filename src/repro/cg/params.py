"""CG problem-class parameters and verification constants (NPB npbparams)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.params import ProblemClass, lookup_class


@dataclass(frozen=True)
class CGParams:
    """One row of the CG class table.

    ``na``: matrix order; ``nonzer``: nonzeros per generated sparse vector;
    ``niter``: outer (timed) iterations; ``shift``: eigenvalue shift;
    ``zeta_verify``: published reference value of the final zeta.
    """

    na: int
    nonzer: int
    niter: int
    shift: float
    zeta_verify: float
    rcond: float = 0.1

    @property
    def nz(self) -> int:
        """Upper bound on stored nonzeros (Fortran array sizing)."""
        return self.na * (self.nonzer + 1) * (self.nonzer + 1)


CG_CLASSES: dict[ProblemClass, CGParams] = {
    ProblemClass.S: CGParams(1400, 7, 15, 10.0, 8.5971775078648),
    ProblemClass.W: CGParams(7000, 8, 15, 12.0, 10.362595087124),
    ProblemClass.A: CGParams(14000, 11, 15, 20.0, 17.130235054029),
    ProblemClass.B: CGParams(75000, 13, 75, 60.0, 22.712745482631),
    ProblemClass.C: CGParams(150000, 15, 75, 110.0, 28.973605592845),
}

#: Relative tolerance of the zeta comparison (cg.f).
ZETA_EPSILON = 1.0e-10


def cg_params(problem_class) -> CGParams:
    return lookup_class(CG_CLASSES, problem_class, "CG")
