"""Tests for the message-passing runtime."""

import numpy as np
import pytest

from repro.mpi.comm import Communicator, MPIWorkerError, mpi_run


# SPMD programs (module level, picklable).

def prog_identity(comm):
    return (comm.rank, comm.size)


def prog_ring(comm):
    """Shift values around a ring (send/recv with explicit ordering;
    sendrecv is a same-peer exchange and would not fit a ring)."""
    if comm.size == 1:
        return comm.rank
    dest = (comm.rank + 1) % comm.size
    source = (comm.rank - 1) % comm.size
    if comm.rank == 0:
        comm.send(comm.rank, dest)
        return comm.recv(source)
    value = comm.recv(source)
    comm.send(comm.rank, dest)
    return value


def prog_bcast(comm):
    value = f"payload-{comm.rank}" if comm.rank == 0 else None
    return comm.bcast(value)


def prog_bcast_root2(comm):
    value = 42 if comm.rank == 2 else None
    return comm.bcast(value, root=2)


def prog_reduce(comm):
    return comm.reduce(comm.rank + 1, op=lambda a, b: a + b)


def prog_allreduce_array(comm):
    return comm.allreduce(np.full(5, float(comm.rank)),
                          op=lambda a, b: a + b)


def prog_gather(comm):
    return comm.gather(comm.rank * 10)


def prog_alltoall(comm):
    chunks = [f"{comm.rank}->{d}" for d in range(comm.size)]
    return comm.alltoall(chunks)


def prog_alltoall_arrays(comm):
    chunks = [np.full(3, comm.rank * comm.size + d)
              for d in range(comm.size)]
    received = comm.alltoall(chunks)
    return np.concatenate(received)


def prog_large_exchange(comm):
    """Messages far beyond the 64 KiB pipe buffer must not deadlock."""
    big = np.full(300_000, float(comm.rank))
    partner = comm.rank ^ 1
    if partner < comm.size:
        other = comm.sendrecv(big, partner)
        return float(other[0])
    return float(comm.rank)


def prog_barrier_order(comm):
    comm.barrier()
    return "after"


def prog_fail(comm):
    if comm.rank == 1:
        raise RuntimeError("rank 1 exploded")
    return "ok"


class TestRuntime:
    def test_identity(self):
        assert mpi_run(3, prog_identity) == [(0, 3), (1, 3), (2, 3)]

    def test_single_rank(self):
        assert mpi_run(1, prog_identity) == [(0, 1)]

    def test_invalid_nprocs(self):
        with pytest.raises(ValueError):
            mpi_run(0, prog_identity)

    def test_error_propagates(self):
        with pytest.raises(MPIWorkerError, match="rank 1 exploded"):
            mpi_run(3, prog_fail)


class TestPointToPoint:
    def test_ring_shift(self):
        assert mpi_run(4, prog_ring) == [3, 0, 1, 2]

    def test_large_messages_no_deadlock(self):
        results = mpi_run(4, prog_large_exchange)
        assert results == [1.0, 0.0, 3.0, 2.0]


class TestCollectives:
    @pytest.mark.parametrize("nprocs", [1, 2, 3, 4, 5])
    def test_bcast(self, nprocs):
        assert mpi_run(nprocs, prog_bcast) == ["payload-0"] * nprocs

    def test_bcast_nonzero_root(self):
        assert mpi_run(4, prog_bcast_root2) == [42] * 4

    @pytest.mark.parametrize("nprocs", [1, 2, 3, 4, 5])
    def test_reduce_sum(self, nprocs):
        results = mpi_run(nprocs, prog_reduce)
        assert results[0] == nprocs * (nprocs + 1) // 2
        assert all(r is None for r in results[1:])

    def test_allreduce_arrays(self):
        results = mpi_run(3, prog_allreduce_array)
        for r in results:
            assert np.array_equal(r, np.full(5, 3.0))

    def test_gather(self):
        results = mpi_run(3, prog_gather)
        assert results[0] == [0, 10, 20]
        assert results[1] is None and results[2] is None

    @pytest.mark.parametrize("nprocs", [2, 3, 4, 5])
    def test_alltoall_strings(self, nprocs):
        results = mpi_run(nprocs, prog_alltoall)
        for rank, received in enumerate(results):
            assert received == [f"{src}->{rank}" for src in range(nprocs)]

    def test_alltoall_arrays(self):
        results = mpi_run(3, prog_alltoall_arrays)
        for rank, got in enumerate(results):
            expected = np.repeat([src * 3 + rank for src in range(3)], 3)
            assert np.array_equal(got, expected)

    def test_barrier(self):
        assert mpi_run(4, prog_barrier_order) == ["after"] * 4

    def test_self_send_rejected(self):
        comm = Communicator(0, 1, {})
        with pytest.raises(ValueError):
            comm.send(1, 0)
        with pytest.raises(ValueError):
            comm.recv(0)
        assert comm.sendrecv("x", 0) == "x"
