"""The MG benchmark driver (mg.f main program and mg3P)."""

from __future__ import annotations

from repro.common.verification import VerificationResult
from repro.core.benchmark import NPBenchmark
from repro.core.registry import register
from repro.mg.operators import interp, norm2u3, psinv, resid, rprj3, zero3
from repro.mg.params import (
    A_COEFFS,
    MG_EPSILON,
    MG_SEED,
    mg_params,
    smoother_coeffs,
)
from repro.mg.zran3 import zran3


@register
class MG(NPBenchmark):
    """V-cycle multigrid for the 3-D periodic Poisson equation."""

    name = "MG"

    def __init__(self, problem_class, team=None):
        super().__init__(problem_class, team)
        self.params = mg_params(self.problem_class)
        self.a = A_COEFFS
        self.c = smoother_coeffs(self.problem_class)
        self.rnm2 = float("nan")

    @property
    def niter(self) -> int:
        return self.params.nit

    # ------------------------------------------------------------------ #

    def _setup(self) -> None:
        nx = self.params.nx
        lt = self.params.lt
        team = self.team
        # Level k (1..lt) has interior 2**k and shape (2**k + 2,)*3.
        self.u = {k: team.shared(((1 << k) + 2,) * 3) for k in range(1, lt + 1)}
        self.r = {k: team.shared(((1 << k) + 2,) * 3) for k in range(1, lt + 1)}
        self.v = team.shared((nx + 2,) * 3)
        self._charges = zran3(self.v, nx, MG_SEED)

        # One untimed warm-up cycle (mg.f), then re-initialize.
        resid(team, self.u[lt], self.v, self.r[lt], self.a)
        self._mg3p()
        resid(team, self.u[lt], self.v, self.r[lt], self.a)
        for k in self.u:
            zero3(self.u[k])
        zran3(self.v, nx, MG_SEED, self._charges)

    def _mg3p(self) -> None:
        """One V-cycle (mg3P in mg.f); lb = 1."""
        team = self.team
        lt = self.params.lt
        a, c = self.a, self.c
        for k in range(lt, 1, -1):
            rprj3(team, self.r[k], self.r[k - 1])
        zero3(self.u[1])
        psinv(team, self.r[1], self.u[1], c)
        for k in range(2, lt):
            zero3(self.u[k])
            interp(team, self.u[k - 1], self.u[k])
            resid(team, self.u[k], self.r[k], self.r[k], a)
            psinv(team, self.r[k], self.u[k], c)
        interp(team, self.u[lt - 1], self.u[lt])
        resid(team, self.u[lt], self.v, self.r[lt], a)
        psinv(team, self.r[lt], self.u[lt], c)

    def _iterate(self) -> None:
        team = self.team
        lt = self.params.lt
        nx = self.params.nx
        with self.region("resid"):
            resid(team, self.u[lt], self.v, self.r[lt], self.a)
        for _ in range(self.params.nit):
            with self.region("mg3P"):
                self._mg3p()
            with self.region("resid"):
                resid(team, self.u[lt], self.v, self.r[lt], self.a)
        with self.region("norm2"):
            self.rnm2, _ = norm2u3(team, self.r[lt], nx, nx, nx)

    # ------------------------------------------------------------------ #

    def verify(self) -> VerificationResult:
        result = VerificationResult("MG", str(self.problem_class), True)
        result.add("rnm2", self.rnm2, self.params.rnm2_verify, MG_EPSILON)
        return result

    def op_count(self) -> float:
        """Flops per point per cycle: ~58 (the mg.f accounting), over all
        levels (geometric factor 8/7), nit cycles plus the extra resid."""
        n3 = float(self.params.nx) ** 3
        points = n3 * 8.0 / 7.0
        return 58.0 * points * self.params.nit
