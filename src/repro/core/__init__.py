"""Core framework: the uniform benchmark API, registry, and the paper's
basic CFD operations.

The paper's primary contribution is a *method* (literal translation +
master--worker threading) applied uniformly across the NPB suite.  This
package captures the uniform part:

* :class:`~repro.core.benchmark.NPBenchmark` -- the base class every
  benchmark implements (setup / timed iteration / verification / op count);
* :mod:`repro.core.registry` -- name-based lookup used by the harness;
* :mod:`repro.core.basic_ops` -- the five basic CFD operations of the
  paper's Table 1, each in interpreted-loop and NumPy styles, linearized
  and multidimensional, with software operation counters standing in for
  SGI ``perfex`` hardware counters.
"""

from repro.core.benchmark import BenchmarkResult, NPBenchmark
from repro.core.registry import available_benchmarks, get_benchmark, register

__all__ = [
    "NPBenchmark",
    "BenchmarkResult",
    "register",
    "get_benchmark",
    "available_benchmarks",
]
