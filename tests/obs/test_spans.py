"""Span store bounds, sampling decisions, and team-trace span synthesis."""

from __future__ import annotations

import time

import pytest

from repro.obs.spans import Span, SpanStore, TraceSampler
from repro.obs.trace import TraceContext, new_span_id, new_trace_id


def _span(trace_id: str, name: str = "s") -> Span:
    return Span(name=name, trace_id=trace_id, span_id=new_span_id(),
                parent_span_id=None, started_at=time.time())


class TestSpan:
    def test_end_is_idempotent_and_keeps_first_status(self):
        span = _span(new_trace_id())
        span.end("error")
        first_end = span.ended_at
        span.end("ok")
        assert span.status == "error"
        assert span.ended_at == first_end

    def test_roundtrip_through_dict(self):
        span = _span(new_trace_id())
        span.attrs["k"] = 1
        span.add_event("evt", detail="x")
        span.end()
        again = Span.from_dict(span.to_dict())
        assert again.to_dict() == span.to_dict()

    def test_duration_zero_while_open(self):
        span = _span(new_trace_id())
        assert span.duration_seconds == 0.0


class TestSpanStore:
    def test_capacity_bound_evicts_oldest_and_drops_empty_traces(self):
        store = SpanStore(capacity=4)
        old_trace = new_trace_id()
        store.add(_span(old_trace))
        for _ in range(4):
            store.add(_span(new_trace_id()))
        assert len(store) == 4
        assert store.dropped == 1
        assert store.trace(old_trace) == []
        assert old_trace not in store.trace_ids()

    def test_trace_index_returns_spans_in_insertion_order(self):
        store = SpanStore(capacity=16)
        trace_id = new_trace_id()
        names = ["a", "b", "c"]
        for name in names:
            store.add(_span(trace_id, name))
        assert [s.name for s in store.trace(trace_id)] == names

    def test_start_span_skips_store_for_unsampled_context(self):
        store = SpanStore(capacity=16)
        ctx = TraceContext(trace_id=new_trace_id(), parent_span_id=None,
                           sampled=False)
        span, child = store.start_span("x", ctx=ctx)
        assert len(store) == 0
        assert child.sampled is False
        assert child.parent_span_id == span.span_id

    def test_start_span_mints_a_root_without_context(self):
        store = SpanStore(capacity=16)
        span, child = store.start_span("root")
        assert span.parent_span_id is None
        assert child.trace_id == span.trace_id
        assert len(store) == 1

    def test_rejects_degenerate_capacity(self):
        with pytest.raises(ValueError):
            SpanStore(capacity=0)


class TestSampler:
    def test_incoming_context_wins_over_rate(self):
        sampler = TraceSampler(0.0)
        incoming = TraceContext(trace_id=new_trace_id(),
                                parent_span_id=new_span_id())
        assert sampler.decide(incoming) is incoming

    def test_forced_upgrades_an_unsampled_incoming_context(self):
        sampler = TraceSampler(0.0)
        incoming = TraceContext(trace_id=new_trace_id(),
                                parent_span_id=new_span_id(), sampled=False)
        ctx = sampler.decide(incoming, forced=True)
        assert ctx.trace_id == incoming.trace_id
        assert ctx.sampled is True

    def test_rate_zero_never_samples_rate_one_always(self):
        off = TraceSampler(0.0)
        on = TraceSampler(1.0)
        assert not any(off.decide().sampled for _ in range(50))
        assert all(on.decide().sampled for _ in range(50))

    def test_forced_samples_at_rate_zero(self):
        assert TraceSampler(0.0).decide(forced=True).sampled is True

    def test_seeded_sampler_is_deterministic(self):
        first = TraceSampler(0.5, seed=7)
        second = TraceSampler(0.5, seed=7)
        a = [first.decide().sampled for _ in range(20)]
        b = [second.decide().sampled for _ in range(20)]
        assert a == b
        assert any(a) and not all(a)

    def test_rejects_out_of_range_rate(self):
        with pytest.raises(ValueError):
            TraceSampler(1.5)
