"""The FT benchmark driver (ft.f main program).

Timed region (as in ft.f): index-map and initial-condition generation, the
forward 3-D FFT, then ``niter`` steps of spectral evolve + inverse FFT +
checksum.  A full untimed warm-up pass touches all data first.
"""

from __future__ import annotations

import numpy as np

from repro.common.randdp import Randlc
from repro.common.verification import VerificationResult
from repro.core.benchmark import NPBenchmark
from repro.core.registry import register
from repro.ft.fft import fft_x_slab, fft_y_slab, fft_z_slab
from repro.ft.params import ALPHA, FT_EPSILON, FT_SEED, ft_params
from repro.team.base import Team


def _indexmap_slab(lo: int, hi: int, twiddle, dims) -> None:
    """Gaussian damping factors exp(ap * |kbar|^2) for z planes [lo, hi)."""
    if hi <= lo:
        return
    nx, ny, nz = dims
    ap = -4.0 * ALPHA * np.pi * np.pi
    kx = (np.arange(nx) + nx // 2) % nx - nx // 2
    ky = (np.arange(ny) + ny // 2) % ny - ny // 2
    kz = (np.arange(lo, hi) + nz // 2) % nz - nz // 2
    k2 = (kz * kz)[:, None, None] + (ky * ky)[None, :, None] + (kx * kx)[None, None, :]
    twiddle[lo:hi] = np.exp(ap * k2.astype(np.float64))


def _evolve_slab(lo: int, hi: int, u0, u1, twiddle) -> None:
    """u0 *= twiddle; u1 = u0 for z planes [lo, hi) (evolve in ft.f)."""
    u0[lo:hi] *= twiddle[lo:hi]
    u1[lo:hi] = u0[lo:hi]


def _fill_conditions_slab(lo: int, hi: int, u1, dims) -> None:
    """Initial conditions for z planes [lo, hi).

    The Fortran fills the whole array from one contiguous LCG stream in
    x/y/z scan order (2 draws per point); each worker jumps the generator
    to the start of its slab, so any partition produces the same field.
    """
    if hi <= lo:
        return
    nx, ny, _ = dims
    per_plane = 2 * nx * ny
    rng = Randlc(FT_SEED)
    rng.skip(per_plane * lo)
    for k in range(lo, hi):
        values = rng.batch(per_plane)
        u1[k].real = values[0::2].reshape(ny, nx)
        u1[k].imag = values[1::2].reshape(ny, nx)


def _fft3d_team(team: Team, sign: int, src, dst, scratch) -> None:
    """3-D FFT via the team, ping-ponging src -> dst.

    Forward: x, y, z; inverse: z, y, x (the cffts call order in ft.f).
    ``scratch`` holds the intermediate; src is left untouched.
    """
    nz, ny, _ = src.shape
    if sign > 0:
        team.parallel_for(nz, fft_x_slab, src, dst, sign)
        team.parallel_for(nz, fft_y_slab, dst, scratch, sign)
        team.parallel_for(ny, fft_z_slab, scratch, dst, sign)
    else:
        team.parallel_for(ny, fft_z_slab, src, dst, sign)
        team.parallel_for(nz, fft_y_slab, dst, scratch, sign)
        team.parallel_for(nz, fft_x_slab, scratch, dst, sign)


@register
class FT(NPBenchmark):
    """3-D FFT spectral solver for the heat equation."""

    name = "FT"

    def __init__(self, problem_class, team=None):
        super().__init__(problem_class, team)
        self.params = ft_params(self.problem_class)
        self.checksums: list[complex] = []

    @property
    def niter(self) -> int:
        return self.params.niter

    @property
    def _dims(self) -> tuple[int, int, int]:
        p = self.params
        return (p.nx, p.ny, p.nz)

    # ------------------------------------------------------------------ #

    def _setup(self) -> None:
        p = self.params
        shape = (p.nz, p.ny, p.nx)
        team = self.team
        self.u0 = team.shared(shape, dtype=np.complex128)
        self.u1 = team.shared(shape, dtype=np.complex128)
        self.u2 = team.shared(shape, dtype=np.complex128)
        self.twiddle = team.shared(shape, dtype=np.float64)
        # Untimed warm-up pass over the whole problem (ft.f).
        self._full_run(warmup=True)

    def _checksum(self, u: np.ndarray) -> complex:
        p = self.params
        j = np.arange(1, 1025)
        q = j % p.nx
        r = (3 * j) % p.ny
        s = (5 * j) % p.nz
        return complex(u[s, r, q].sum() / p.ntotal)

    def _full_run(self, warmup: bool) -> None:
        p = self.params
        team = self.team
        niter = 1 if warmup else p.niter
        with self.region("setup"):
            team.parallel_for(p.nz, _indexmap_slab, self.twiddle, self._dims)
            team.parallel_for(p.nz, _fill_conditions_slab, self.u1,
                              self._dims)
        with self.region("fft"):
            _fft3d_team(team, 1, self.u1, self.u0, self.u2)
        checksums = []
        for _ in range(niter):
            with self.region("evolve"):
                team.parallel_for(p.nz, _evolve_slab, self.u0, self.u1,
                                  self.twiddle)
            with self.region("fft"):
                _fft3d_team(team, -1, self.u1, self.u2, self.u1)
            with self.region("checksum"):
                checksums.append(self._checksum(self.u2))
        if not warmup:
            self.checksums = checksums

    def _iterate(self) -> None:
        self._full_run(warmup=False)

    # ------------------------------------------------------------------ #

    def verify(self) -> VerificationResult:
        result = VerificationResult("FT", str(self.problem_class), True)
        refs = self.params.checksums
        if len(self.checksums) != len(refs):
            result.verified = False
            result.reason = "checksum count mismatch"
            return result
        for i, (computed, reference) in enumerate(zip(self.checksums, refs), 1):
            result.add(f"checksum[{i}].re", computed.real, reference.real,
                       FT_EPSILON)
            result.add(f"checksum[{i}].im", computed.imag, reference.imag,
                       FT_EPSILON)
        return result

    def op_count(self) -> float:
        """Official ft.f operation-count formula."""
        p = self.params
        ntotal = float(p.ntotal)
        log_n = np.log(ntotal) / np.log(2.0)
        return (ntotal * (14.8157 + 7.19641 * log_n
                          + (5.23518 + 7.21113 * log_n) * p.niter))
