"""IS: Integer Sort benchmark.

Ranks (and finally sorts) a stream of integer keys with a linear-time
counting sort based on the key histogram.  The keys are drawn from the NPB
LCG with a four-draw sum per key, giving an approximately Gaussian key
distribution.

IS is the second of the paper's "unstructured" benchmarks; the paper found
its thread scalability poor because per-thread work is small relative to
the data movement -- a property the workload profile in
:mod:`repro.machines` captures.

(The package is named ``isort`` because ``is`` is a Python keyword.)
"""

from repro.isort.benchmark import IS
from repro.isort.params import IS_CLASSES, ISParams

__all__ = ["IS", "ISParams", "IS_CLASSES"]
