"""From-scratch vectorized Stockham FFT (the cfftz kernel of ft.f).

The Stockham autosort algorithm avoids the bit-reversal permutation by
ping-ponging between two buffers, which is why the NPB chose it for vector
machines; the same property makes it a natural fit for NumPy, where every
butterfly stage is a whole-array expression.

Only power-of-two lengths are supported (all NPB grids are powers of two).
Conventions follow ft.f: ``sign=+1`` is the forward transform
``X[k] = sum_j x[j] exp(+2*pi*i*j*k/n)`` and ``sign=-1`` its conjugate;
neither direction normalizes (the benchmark's checksum divides by the grid
size instead).
"""

from __future__ import annotations

import numpy as np

#: Cache of butterfly root tables keyed by (n, L, sign).
_ROOTS: dict[tuple[int, int, int], np.ndarray] = {}


def _roots(n: int, L: int, sign: int) -> np.ndarray:
    key = (n, L, sign)
    table = _ROOTS.get(key)
    if table is None:
        table = np.exp(sign * 2j * np.pi * np.arange(L) / (2 * L))
        _ROOTS[key] = table
    return table


def fft_rows(x: np.ndarray, sign: int) -> np.ndarray:
    """DFT of each row of a 2-D complex array (Stockham, radix 2).

    Invariant after stage t (block length L = 2**t): ``y[:, j, k]`` holds
    the length-L DFT of the decimated subsequence ``x[:, j::R]`` at
    frequency k, with R = n // L.  The decimation-in-time combine step
    halves R and doubles L until R == 1.
    """
    m, n = x.shape
    if n & (n - 1):
        raise ValueError("fft_rows requires a power-of-two length")
    if n == 1:
        return x.copy()
    y = x.reshape(m, n, 1).copy()
    L = 1
    while L < n:
        half = y.shape[1] // 2
        w = _roots(n, L, sign)
        even = y[:, :half, :]
        odd = y[:, half:, :] * w
        y = np.concatenate((even + odd, even - odd), axis=2)
        L *= 2
    return y.reshape(m, n)


def fft_along_axis(x: np.ndarray, axis: int, sign: int) -> np.ndarray:
    """DFT along one axis of an n-D complex array; returns a new array."""
    moved = np.moveaxis(x, axis, -1)
    shape = moved.shape
    flat = np.ascontiguousarray(moved).reshape(-1, shape[-1])
    out = fft_rows(flat, sign).reshape(shape)
    return np.ascontiguousarray(np.moveaxis(out, -1, axis))


def fft3d(x: np.ndarray, sign: int) -> np.ndarray:
    """Full 3-D transform on a (nz, ny, nx) array.

    Forward (sign=+1) transforms x, then y, then z; inverse (sign=-1)
    transforms z, then y, then x -- the cffts1/2/3 call order of ft.f.
    """
    axes = (2, 1, 0) if sign > 0 else (0, 1, 2)
    for axis in axes:
        x = fft_along_axis(x, axis, sign)
    return x


# --------------------------------------------------------------------- #
# Slab workers used by the FT benchmark (module-level for the process
# backend).  x/y transforms are partitioned over z planes; the z transform
# over y rows.

def fft_x_slab(lo: int, hi: int, src, dst, sign: int) -> None:
    """Transform along x (last axis) for z planes [lo, hi)."""
    if hi <= lo:
        return
    planes = src[lo:hi]
    nz, ny, nx = planes.shape
    dst[lo:hi] = fft_rows(planes.reshape(-1, nx), sign).reshape(planes.shape)


def fft_y_slab(lo: int, hi: int, src, dst, sign: int) -> None:
    """Transform along y (middle axis) for z planes [lo, hi)."""
    if hi <= lo:
        return
    planes = src[lo:hi]
    moved = np.ascontiguousarray(np.moveaxis(planes, 1, -1))
    ny = moved.shape[-1]
    out = fft_rows(moved.reshape(-1, ny), sign).reshape(moved.shape)
    dst[lo:hi] = np.moveaxis(out, -1, 1)


def fft_z_slab(lo: int, hi: int, src, dst, sign: int) -> None:
    """Transform along z (first axis) for y rows [lo, hi)."""
    if hi <= lo:
        return
    rows = src[:, lo:hi, :]
    moved = np.ascontiguousarray(np.moveaxis(rows, 0, -1))
    nz = moved.shape[-1]
    out = fft_rows(moved.reshape(-1, nz), sign).reshape(moved.shape)
    dst[:, lo:hi, :] = np.moveaxis(out, -1, 0)
