"""Scratch-arena semantics, allocation probes, and steady-state reuse.

The fused kernels' allocation-free claim rests on three properties tested
here: ``take`` reuses the same buffers generation after generation, every
worker (on every backend) owns exactly one arena, and after a warm-up
dispatch the arena stops allocating entirely -- the CI perf-smoke gate
asserts the same invariant via ``benchmarks/bench_alloc.py --check``.
"""

import threading
import tracemalloc

import numpy as np
import pytest

from repro.runtime.arena import (
    STALE_GENERATIONS,
    ScratchArena,
    allocation_probe_start,
    allocation_probe_stop,
    arena_stats_task,
    fresh_worker_arena,
    worker_arena,
)
from repro.runtime.region import UNATTRIBUTED


# Module-level tasks (picklable for the process backend).

def fused_scaled_fill(lo, hi, out, scale):
    """An arena-using slab task: one scratch buffer, out= chain."""
    arena = worker_arena()
    t = arena.take((hi - lo,))
    np.multiply(out[lo:hi], 0.0, out=t)
    i = np.arange(lo, hi, dtype=np.float64)
    np.multiply(i, scale, out=t)
    np.add(t, 1.0, out=out[lo:hi])


def churn_task(lo, hi, out):
    """A deliberately naive task: allocates fresh temporaries."""
    out[lo:hi] = np.sqrt(np.arange(lo, hi, dtype=np.float64) + 1.0) * 2.0


class TestScratchArena:
    def test_take_shape_dtype_and_int_shape(self):
        arena = ScratchArena()
        a = arena.take((3, 4))
        assert a.shape == (3, 4) and a.dtype == np.float64
        b = arena.take(7, dtype=np.int64)
        assert b.shape == (7,) and b.dtype == np.int64

    def test_distinct_within_generation_same_across_generations(self):
        arena = ScratchArena()
        arena.next_dispatch()
        a1 = arena.take((5,))
        a2 = arena.take((5,))
        assert a1 is not a2
        arena.next_dispatch()
        b1 = arena.take((5,))
        b2 = arena.take((5,))
        # same buffers, same hand-out order
        assert b1 is a1 and b2 is a2
        assert arena.allocations == 2 and arena.reuses == 2

    def test_different_keys_use_different_pools(self):
        arena = ScratchArena()
        a = arena.take((4,))
        b = arena.take((4,), dtype=np.float32)
        c = arena.take((2, 2))
        assert a is not b and a is not c
        assert arena.stats()["buffers"] == 3

    def test_take_like(self):
        arena = ScratchArena()
        template = np.zeros((2, 3), dtype=np.float32)
        got = arena.take_like(template)
        assert got.shape == (2, 3) and got.dtype == np.float32

    def test_stats_and_nbytes(self):
        arena = ScratchArena()
        arena.take((10,))  # 80 bytes
        arena.next_dispatch()
        arena.take((10,))
        stats = arena.stats()
        assert stats == {"generation": 1, "allocations": 1, "reuses": 1,
                         "buffers": 1, "nbytes": 80}

    def test_stale_pools_released(self):
        arena = ScratchArena()
        arena.take((9,))  # touched at generation 0
        for _ in range(2 * STALE_GENERATIONS):
            arena.next_dispatch()
            arena.take((3,))  # the hot pool, touched every generation
        stats = arena.stats()
        assert stats["buffers"] == 1  # the (9,) pool was collected
        assert stats["nbytes"] == 3 * 8

    def test_release_drops_buffers_keeps_counters(self):
        arena = ScratchArena()
        arena.take((6,))
        arena.release()
        assert arena.stats()["buffers"] == 0
        assert arena.allocations == 1
        arena.next_dispatch()
        arena.take((6,))
        assert arena.allocations == 2  # had to reallocate


class TestWorkerOwnership:
    def test_worker_arena_is_per_thread(self):
        main = worker_arena()
        assert worker_arena() is main  # stable within a thread
        seen = []
        thread = threading.Thread(target=lambda: seen.append(worker_arena()))
        thread.start()
        thread.join()
        assert seen[0] is not main

    def test_fresh_worker_arena_replaces(self):
        old = worker_arena()
        fresh = fresh_worker_arena()
        assert fresh is not old
        assert worker_arena() is fresh


class TestAllocationProbes:
    def test_probe_is_none_when_not_tracing(self):
        assert not tracemalloc.is_tracing()
        assert allocation_probe_start() is None
        assert allocation_probe_stop(None) is None

    def test_probe_measures_span_churn(self):
        tracemalloc.start()
        try:
            token = allocation_probe_start()
            assert token is not None
            garbage = [np.empty(1 << 16) for _ in range(4)]
            del garbage
            alloc = allocation_probe_stop(token)
        finally:
            tracemalloc.stop()
        assert alloc is not None
        alloc_bytes, _ = alloc
        # the span's peak rose by at least one of the temporaries
        assert alloc_bytes >= (1 << 16) * 8


class TestRegionAllocAccounting:
    def test_untraced_dispatch_records_zero_alloc(self, any_team):
        out = any_team.shared(64)
        any_team.parallel_for(64, churn_task, out)
        stats = any_team.recorder.stats(UNATTRIBUTED)
        assert stats.alloc_bytes == 0 and stats.alloc_blocks == 0

    def test_traced_dispatch_charges_region(self, serial_team):
        out = serial_team.shared(1 << 15)
        serial_team.recorder.push("churn")
        tracemalloc.start()
        try:
            serial_team.parallel_for(1 << 15, churn_task, out)
        finally:
            tracemalloc.stop()
            serial_team.recorder.pop()
        stats = serial_team.recorder.stats("churn")
        assert stats.calls == 1
        # churn_task allocates at least one full-extent f64 temporary
        assert stats.alloc_bytes >= (1 << 15) * 8


@pytest.mark.parametrize("backend", ["serial", "threads", "process"])
def test_steady_state_is_allocation_free(backend, request):
    """After one warm-up dispatch, further dispatches allocate nothing.

    This is the zero-steady-state-growth invariant the CI perf-smoke
    step gates on: every worker's ``allocations`` counter must be flat
    across repeated dispatches, with every ``take`` served by reuse.
    """
    team = request.getfixturevalue(f"{backend}_team"
                                   if backend != "threads" else "thread_team")
    n = 257
    out = team.shared(n)
    team.parallel_for(n, fused_scaled_fill, out, 1.5)  # warm-up
    before = team.run_on_all(arena_stats_task)
    for _ in range(5):
        team.parallel_for(n, fused_scaled_fill, out, 1.5)
    after = team.run_on_all(arena_stats_task)
    assert len(before) == len(after) == team.nworkers
    for b, a in zip(before, after):
        assert a["allocations"] == b["allocations"], (
            f"arena grew after warm-up on {backend}: {b} -> {a}")
        assert a["reuses"] > b["reuses"]
        assert a["generation"] > b["generation"]
