"""Tracing overhead on the dispatch hot path (min-of-k, gateable).

The obs subsystem's contract is *free when off*: with no sampled trace
in scope, ``Team._dispatch`` pays exactly one module-global check
(:func:`repro.obs.trace.tracing_active`) per dispatch and touches
nothing else.  This script measures that contract:

* ``dispatch off``      -- per-call ``parallel_for`` cost, tracing off
  (the production default);
* ``dispatch unsampled``-- same, under an ambient *unsampled* context
  (a continued trace whose edge decided not to sample);
* ``dispatch sampled``  -- same, under a sampled context, spans
  accumulating (the diagnosis mode; expected to cost more);
* ``active() check``    -- the gate itself, measured alone.

``--check`` exits non-zero unless the off-path overhead stays under
``--threshold`` (default 1%) of one *no-op* dispatch -- the floor case;
any real workload makes the denominator larger.  The overhead is the
cost of ``tracing_active()`` minus the cost of calling a trivial
``lambda: False`` through the same harness: the timing loop and the
function-call convention are paid identically by both, so the
difference isolates what the obs subsystem itself adds (one module
global load plus a compare).  The raw per-call numbers are printed too,
nothing is netted out silently.  Timings are min-of-``--repeats`` over
batched loops, so scheduler noise inflates neither side.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_trace_overhead.py --check
"""

from __future__ import annotations

import argparse
import sys
import time


def _min_of_k(fn, batch: int, repeats: int) -> float:
    """Best-of-``repeats`` per-call seconds of ``fn`` over batches."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(batch):
            fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed / batch)
    return best


def _noop_task(lo, hi):
    return None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="measure tracing overhead on the dispatch hot path")
    parser.add_argument("--batch", type=int, default=2000,
                        help="dispatches per timed batch (default 2000)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="batches per case; min is reported (default 5)")
    parser.add_argument("--extent", type=int, default=1400,
                        help="parallel_for extent (default 1400, ~CG.S)")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless the tracing-off overhead is "
                             "under --threshold of a no-op dispatch")
    parser.add_argument("--threshold", type=float, default=0.01,
                        help="--check bound on check-cost/dispatch-cost "
                             "(default 0.01 = 1%%)")
    parser.add_argument("--json", action="store_true",
                        help="print the measurements as JSON")
    args = parser.parse_args(argv)

    from repro.obs.spans import SpanStore, set_span_store
    from repro.obs.trace import (TraceContext, new_trace_id,
                                 tracing_active, use_trace)
    from repro.team import SerialTeam

    with SerialTeam() as team:
        team.parallel_for(args.extent, _noop_task)  # prime the plan

        def dispatch():
            team.parallel_for(args.extent, _noop_task)

        off = _min_of_k(dispatch, args.batch, args.repeats)

        unsampled_ctx = TraceContext(trace_id=new_trace_id(),
                                     parent_span_id=None, sampled=False)
        with use_trace(unsampled_ctx):
            unsampled = _min_of_k(dispatch, args.batch, args.repeats)

        old_store = set_span_store(SpanStore(capacity=16))
        try:
            sampled_ctx = TraceContext(trace_id=new_trace_id(),
                                       parent_span_id=None)
            with use_trace(sampled_ctx):
                sampled = _min_of_k(dispatch, args.batch, args.repeats)
        finally:
            set_span_store(old_store)

        team.reset()  # drop the accumulated trace extents

    call_floor = _min_of_k(lambda: False, args.batch * 20, args.repeats)
    check_cost = _min_of_k(tracing_active, args.batch * 20, args.repeats)
    off_overhead = max(0.0, check_cost - call_floor) / off
    sampled_overhead = (sampled - off) / off

    results = {
        "batch": args.batch,
        "repeats": args.repeats,
        "extent": args.extent,
        "dispatch_off_seconds": off,
        "dispatch_unsampled_seconds": unsampled,
        "dispatch_sampled_seconds": sampled,
        "tracing_active_seconds": check_cost,
        "call_floor_seconds": call_floor,
        "off_overhead_fraction": off_overhead,
        "sampled_overhead_fraction": sampled_overhead,
        "threshold": args.threshold,
    }

    if args.json:
        import json

        print(json.dumps(results, indent=2))
    else:
        print(f"dispatch off        {off * 1e6:9.3f} us/call")
        print(f"dispatch unsampled  {unsampled * 1e6:9.3f} us/call  "
              f"(x{unsampled / off:.3f})")
        print(f"dispatch sampled    {sampled * 1e6:9.3f} us/call  "
              f"(x{sampled / off:.3f}, span accumulation on)")
        print(f"active() check      {check_cost * 1e9:9.3f} ns/call  "
              f"(trivial-call floor {call_floor * 1e9:.3f} ns)")
        print(f"off-path overhead   {off_overhead:.4%} of one no-op "
              f"dispatch (threshold {args.threshold:.0%})")

    if args.check and off_overhead >= args.threshold:
        print(f"FAIL: tracing-off overhead {off_overhead:.4%} >= "
              f"{args.threshold:.0%}", file=sys.stderr)
        return 1
    if args.check:
        print("check passed: tracing is free when off")
    return 0


if __name__ == "__main__":
    sys.exit(main())
