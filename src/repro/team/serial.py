"""Serial backend: the reference implementation of the Team interface."""

from __future__ import annotations

from typing import Any, Callable

from repro.team.base import Team


class SerialTeam(Team):
    """No workers; every task runs inline on the master.

    This is the baseline against which the paper measures thread overhead
    (its "Serial" column), and the correctness reference for the parallel
    backends.
    """

    backend = "serial"

    @property
    def nworkers(self) -> int:
        return 1

    def parallel_for(self, n: int, fn: Callable, *args: Any) -> list[Any]:
        return [fn(0, n, *args)]

    def run_on_all(self, fn: Callable, *args: Any) -> list[Any]:
        return [fn(0, 1, *args)]
