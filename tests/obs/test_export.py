"""TRACE_<seq>.json records, JSONL export, and the rendered span tree."""

from __future__ import annotations

import json
import time

import pytest

from repro.obs.export import (
    TRACE_RECORD_SCHEMA_VERSION,
    build_trace_record,
    latest_trace_record_path,
    layer_summary,
    load_trace_record,
    render_trace_tree,
    spans_to_jsonl,
    trace_duration_seconds,
    write_trace_record,
)
from repro.obs.spans import Span
from repro.obs.trace import new_span_id, new_trace_id


def _tree(trace_id: str) -> list[Span]:
    """root(0..10ms) -> child(2..8ms) -> leaf(3..4ms)."""
    base = time.time()
    root = Span(name="root", trace_id=trace_id, span_id=new_span_id(),
                parent_span_id=None, started_at=base, ended_at=base + 0.010,
                status="ok")
    child = Span(name="child", trace_id=trace_id, span_id=new_span_id(),
                 parent_span_id=root.span_id, started_at=base + 0.002,
                 ended_at=base + 0.008, status="ok", attrs={"hit": True})
    leaf = Span(name="leaf", trace_id=trace_id, span_id=new_span_id(),
                parent_span_id=child.span_id, started_at=base + 0.003,
                ended_at=base + 0.004, status="error")
    return [root, child, leaf]


class TestRecords:
    def test_write_load_roundtrip_continues_the_sequence(self, tmp_path):
        trace_id = new_trace_id()
        spans = _tree(trace_id)
        first = write_trace_record(spans, trace_id, str(tmp_path),
                                   job_id="job-1")
        second = write_trace_record(spans, trace_id, str(tmp_path))
        assert first.endswith("TRACE_0001.json")
        assert second.endswith("TRACE_0002.json")
        assert latest_trace_record_path(str(tmp_path)) == second
        record = load_trace_record(first)
        assert record["schema_version"] == TRACE_RECORD_SCHEMA_VERSION
        assert record["trace_id"] == trace_id
        assert record["job_id"] == "job-1"
        assert record["span_count"] == 3
        assert record["root_span_id"] == spans[0].span_id
        assert record["duration_seconds"] == pytest.approx(0.010, abs=1e-6)
        rebuilt = [Span.from_dict(s) for s in record["spans"]]
        assert [s.name for s in rebuilt] == ["root", "child", "leaf"]

    def test_unsupported_schema_version_is_refused(self, tmp_path):
        path = tmp_path / "TRACE_0001.json"
        path.write_text(json.dumps({"schema_version": 999, "spans": []}))
        with pytest.raises(ValueError, match="schema"):
            load_trace_record(str(path))

    def test_latest_path_none_when_empty(self, tmp_path):
        assert latest_trace_record_path(str(tmp_path)) is None

    def test_build_record_with_dangling_parent_picks_local_root(self):
        trace_id = new_trace_id()
        spans = _tree(trace_id)[1:]  # drop the root: child's parent dangles
        record = build_trace_record(spans, trace_id)
        assert record["root_span_id"] == spans[0].span_id


class TestJsonl:
    def test_one_object_per_line(self):
        spans = _tree(new_trace_id())
        lines = spans_to_jsonl(spans).splitlines()
        assert len(lines) == 3
        assert [json.loads(line)["name"] for line in lines] == [
            "root", "child", "leaf"]

    def test_empty_export_is_empty_string(self):
        assert spans_to_jsonl([]) == ""


class TestRender:
    def test_tree_nests_by_parent_and_shows_percentages(self):
        trace_id = new_trace_id()
        text = render_trace_tree(_tree(trace_id), trace_id)
        lines = text.splitlines()
        assert lines[0] == f"trace {trace_id}"
        assert lines[1].startswith("root  10.0ms  100.0%  [ok]")
        assert lines[2].startswith("  child  6.0ms  60.0%  [ok]")
        assert "hit=True" in lines[2]
        assert lines[3].startswith("    leaf  1.0ms  10.0%  [error]")

    def test_events_rendered_inline(self):
        trace_id = new_trace_id()
        spans = _tree(trace_id)
        spans[0].add_event("failover", shard="s0")
        text = render_trace_tree(spans)
        assert "!failover" in text

    def test_no_spans_renders_placeholder(self):
        assert render_trace_tree([]) == "(no spans)"

    def test_dangling_parent_becomes_a_local_root(self):
        trace_id = new_trace_id()
        spans = _tree(trace_id)[1:]
        text = render_trace_tree(spans)
        assert text.splitlines()[0].startswith("child")


class TestSummaries:
    def test_layer_summary_sums_by_name(self):
        trace_id = new_trace_id()
        spans = _tree(trace_id) + _tree(trace_id)
        layers = layer_summary(spans)
        assert layers["root"] == pytest.approx(0.020, abs=1e-6)
        assert layers["leaf"] == pytest.approx(0.002, abs=1e-6)

    def test_trace_duration_is_the_tree_extent(self):
        spans = _tree(new_trace_id())
        assert trace_duration_seconds(spans) == pytest.approx(
            0.010, abs=1e-6)
        assert trace_duration_seconds([]) == 0.0
