"""Tests for the Java Grande lufact / DGETRF reproduction (Table 7)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lufact import (
    LU_CLASSES_TABLE7,
    dgetrf_blocked,
    lufact_loops,
    lufact_numpy,
    lufact_ops,
    lu_solve,
    lu_solve_lapack,
    make_system,
    residual_check,
)


@pytest.fixture(scope="module")
def system():
    return make_system(120)


class TestFactorizations:
    def test_loops_and_numpy_identical(self, system):
        a, _ = system
        lu1, ip1 = lufact_loops(a)
        lu2, ip2 = lufact_numpy(a)
        assert np.array_equal(ip1, ip2)
        assert np.allclose(lu1, lu2, atol=1e-12)

    def test_all_styles_solve_correctly(self, system):
        a, b = system
        for factor, solver in ((lufact_loops, lu_solve),
                               (lufact_numpy, lu_solve),
                               (dgetrf_blocked, lu_solve_lapack)):
            lu, ip = factor(a)
            x = solver(lu, ip, b)
            assert residual_check(a, x, b) < 10.0
            assert np.allclose(x, np.linalg.solve(a, b), atol=1e-8)

    def test_blocked_matches_unblocked_solution(self, system):
        a, b = system
        lu_u, ip_u = lufact_numpy(a)
        lu_b, ip_b = dgetrf_blocked(a, block=32)
        x_u = lu_solve(lu_u, ip_u, b)
        x_b = lu_solve_lapack(lu_b, ip_b, b)
        assert np.allclose(x_u, x_b, atol=1e-9)

    @pytest.mark.parametrize("block", [1, 7, 64, 1000])
    def test_block_size_irrelevant_to_answer(self, system, block):
        a, b = system
        lu, ip = dgetrf_blocked(a, block=block)
        x = lu_solve_lapack(lu, ip, b)
        assert residual_check(a, x, b) < 10.0

    @given(st.integers(min_value=1, max_value=30),
           st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_random_sizes_and_seeds(self, n, seed):
        a, b = make_system(n, seed=seed)
        lu, ip = lufact_numpy(a)
        x = lu_solve(lu, ip, b)
        assert residual_check(a, x, b) < 20.0

    def test_pivoting_handles_zero_leading_entry(self):
        a = np.array([[0.0, 1.0], [1.0, 1.0]])
        b = np.array([2.0, 3.0])
        lu, ip = lufact_numpy(a)
        x = lu_solve(lu, ip, b)
        assert np.allclose(a @ x, b)


class TestTable7Shape:
    def test_make_system_solution_is_ones(self, system):
        a, b = system
        x = np.linalg.solve(a, b)
        assert np.allclose(x, 1.0, atol=1e-8)

    def test_ops_formula(self):
        assert lufact_ops(100) == pytest.approx(2e6 / 3 + 2e4)

    def test_classes(self):
        assert LU_CLASSES_TABLE7 == {"A": 500, "B": 1000, "C": 2000}

    def test_blas3_faster_than_blas1(self):
        """The crux of the paper's Table 7 analysis, measured."""
        import time

        a, _ = make_system(400)
        t0 = time.perf_counter()
        lufact_numpy(a)
        blas1 = time.perf_counter() - t0
        t0 = time.perf_counter()
        dgetrf_blocked(a)
        blas3 = time.perf_counter() - t0
        assert blas3 < blas1
