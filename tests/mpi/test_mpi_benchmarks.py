"""Tests for the MPI-style NPB implementations (class S, few ranks)."""

import numpy as np
import pytest

from repro.cg.params import ZETA_EPSILON, cg_params
from repro.ep.params import EP_EPSILON, ep_params
from repro.ft.params import FT_EPSILON, ft_params
from repro.mpi import (
    cg_mpi_zeta,
    ep_mpi_sums,
    ft_mpi_checksums,
    is_mpi_verify,
)


class TestFTMPI:
    @pytest.mark.parametrize("nprocs", [1, 2, 4])
    def test_class_s_checksums(self, nprocs):
        params = ft_params("S")
        checksums = ft_mpi_checksums("S", nprocs)
        assert len(checksums) == params.niter
        for computed, reference in zip(checksums, params.checksums):
            assert abs((computed.real - reference.real)
                       / reference.real) < FT_EPSILON
            assert abs((computed.imag - reference.imag)
                       / reference.imag) < FT_EPSILON

    def test_uneven_rank_count(self):
        # ny=64, nz=64 split over 3 ranks exercises uneven slabs.
        checksums = ft_mpi_checksums("S", 3)
        reference = ft_params("S").checksums[0]
        assert checksums[0].real == pytest.approx(reference.real,
                                                  rel=1e-12)


class TestISMPI:
    @pytest.mark.parametrize("nprocs", [1, 3, 4])
    def test_class_s_verifies(self, nprocs):
        assert is_mpi_verify("S", nprocs)


class TestCGMPI:
    @pytest.mark.parametrize("nprocs", [1, 2, 4])
    def test_class_s_zeta(self, nprocs):
        zeta = cg_mpi_zeta("S", nprocs)
        reference = cg_params("S").zeta_verify
        assert abs((zeta - reference) / reference) < ZETA_EPSILON


class TestEPMPI:
    def test_class_s_sums(self):
        params = ep_params("S")
        sx, sy, counts = ep_mpi_sums("S", 4)
        assert abs((sx - params.sx_verify) / params.sx_verify) < EP_EPSILON
        assert abs((sy - params.sy_verify) / params.sy_verify) < EP_EPSILON
        assert counts.sum() > 0

    def test_matches_shared_memory_ep(self):
        from repro.ep import EP

        bench = EP("S")
        bench.run()
        sx, sy, counts = ep_mpi_sums("S", 2)
        assert sx == pytest.approx(bench.sx, rel=1e-12)
        assert np.array_equal(counts, bench.counts)
