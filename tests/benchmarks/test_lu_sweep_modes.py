"""Tests for the two LU sweep orderings (hyperplane vs paper-style plane)."""

import numpy as np
import pytest

from repro.lu import LU
from repro.lu.sweep import hyperplanes, plane_wavefronts
from repro.team import ThreadTeam


class TestPlaneWavefronts:
    def test_covers_interior_once(self):
        k, j, i, offsets = plane_wavefronts(7, 6, 5)
        points = set(zip(k.tolist(), j.tolist(), i.tolist()))
        assert len(points) == len(k) == 5 * 4 * 3
        assert offsets[-1] == len(k)

    def test_groups_constant_in_k_and_diagonal(self):
        k, j, i, offsets = plane_wavefronts(8, 8, 8)
        for s in range(len(offsets) - 1):
            sel = slice(int(offsets[s]), int(offsets[s + 1]))
            if offsets[s] == offsets[s + 1]:
                continue
            assert np.all(k[sel] == k[sel][0])
            diag = j[sel] + i[sel]
            assert np.all(diag == diag[0])

    def test_many_more_groups_than_hyperplane(self):
        """The paper's sync-inside-a-grid-loop pattern: O(n^2) barriers
        instead of O(n)."""
        _, _, _, hp = hyperplanes(18, 18, 18)
        _, _, _, pw = plane_wavefronts(18, 18, 18)
        assert len(pw) > 5 * len(hp)


class TestSweepModeEquivalence:
    def test_identical_results(self):
        a = LU("S")
        a.run()
        b = LU("S", sweep_mode="plane")
        b.run()
        assert np.array_equal(a.rsdnm, b.rsdnm)
        assert a.frc == b.frc

    def test_plane_mode_verifies_threaded(self):
        with ThreadTeam(2) as team:
            assert LU("S", team, sweep_mode="plane").run().verified

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="sweep_mode"):
            LU("S", sweep_mode="diagonal")
