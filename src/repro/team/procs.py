"""Process backend: true parallelism over POSIX shared memory.

The reproduction notes for this paper flag the CPython GIL as the obstacle
to Java-style thread scalability, and call for a NumPy/multiprocessing
rework.  This backend is that rework: persistent forked worker processes,
benchmark arrays placed in ``multiprocessing.shared_memory`` segments, and
slab tasks shipped over pipes as (function, bounds, arguments) tuples with
shared arrays passed *by reference* (name + shape + dtype), never by value.

Constraints (enforced by convention across the suite):

* task functions must be module-level (picklable);
* mutable arrays must come from ``team.shared(...)``;
* other arguments are pickled by value and therefore treated as read-only.

The task/result/error bookkeeping lives in the shared dispatch core
(:meth:`repro.team.base.Team._dispatch`); this module provides only the
pipe transport.  Worker replies carry the worker's own ``perf_counter``
start/finish stamps (CLOCK_MONOTONIC, shared across processes on Linux),
so the core's dispatch/execute/barrier split works identically here.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import traceback
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Callable, Sequence

import numpy as np

# Re-exported here for backwards compatibility; defined with the runtime's
# dispatch types.
from repro.runtime.dispatch import WorkerError, WorkerReply
from repro.runtime.plan import Bounds
from repro.team.base import Team

__all__ = ["ProcessTeam", "SharedArrayRef", "WorkerError"]


@dataclass(frozen=True)
class SharedArrayRef:
    """Pickle-friendly handle to a team-shared array segment."""

    name: str
    shape: tuple[int, ...]
    dtype: str


def _worker_main(rank: int, conn) -> None:
    """Worker loop: resolve array refs, run the slab task, reply."""
    attached: dict[str, tuple[shared_memory.SharedMemory, None]] = {}

    def resolve(arg: Any) -> Any:
        if isinstance(arg, SharedArrayRef):
            entry = attached.get(arg.name)
            if entry is None:
                # The master started the resource tracker before forking, so
                # this register call lands in the shared tracker's cache
                # (idempotent) rather than spawning a per-worker tracker
                # that would unlink segments on worker exit (gh-82300).
                shm = shared_memory.SharedMemory(name=arg.name)
                attached[arg.name] = entry = (shm, None)
            shm = entry[0]
            return np.ndarray(arg.shape, dtype=np.dtype(arg.dtype),
                              buffer=shm.buf)
        return arg

    try:
        while True:
            msg = conn.recv()
            if msg is None:
                break
            fn, a, b, args = msg
            started_at = time.perf_counter()
            try:
                args = tuple(resolve(x) for x in args)
                ok, result = True, fn(a, b, *args)
            except BaseException:
                ok, result = False, traceback.format_exc()
            finished_at = time.perf_counter()
            conn.send((ok, result, started_at, finished_at))
    finally:
        for shm, _ in attached.values():
            shm.close()
        conn.close()


class ProcessTeam(Team):
    """Persistent forked workers sharing arrays through POSIX shared memory."""

    backend = "process"

    def __init__(self, nworkers: int):
        super().__init__(nworkers)
        self._ctx = mp.get_context("fork")
        # Start the resource tracker now so every forked worker inherits it;
        # see the note in _worker_main's resolve().
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        self._segments: list[shared_memory.SharedMemory] = []
        self._array_ids: list[int] = []
        self._pipes: list = []
        self._procs: list = []
        for rank in range(nworkers):
            parent, child = self._ctx.Pipe()
            proc = self._ctx.Process(
                target=_worker_main, args=(rank, child),
                daemon=True, name=f"npb-worker-{rank}",
            )
            proc.start()
            child.close()
            self._pipes.append(parent)
            self._procs.append(proc)

    # ------------------------------------------------------------------ #

    def shared(self, shape: Sequence[int] | int, dtype=np.float64) -> np.ndarray:
        dtype = np.dtype(dtype)
        if isinstance(shape, int):
            shape = (shape,)
        shape = tuple(int(s) for s in shape)
        nbytes = max(1, int(np.prod(shape)) * dtype.itemsize)
        shm = shared_memory.SharedMemory(
            create=True, size=nbytes, name=f"npb_{os.getpid()}_{len(self._segments)}"
        )
        self._segments.append(shm)
        array = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
        array.fill(0)
        # Remember the segment name on the array so arguments can be
        # translated back to references when dispatching.
        _SHM_BY_ID[id(array)] = (shm.name, array)
        self._array_ids.append(id(array))
        return array

    def _translate(self, arg: Any) -> Any:
        if isinstance(arg, np.ndarray):
            entry = _SHM_BY_ID.get(id(arg))
            if entry is not None and entry[1] is arg:
                return SharedArrayRef(entry[0], arg.shape, arg.dtype.str)
            # Views of shared arrays must not be shipped: the worker could
            # not reconstruct them, and silently pickling them by value
            # would break write visibility.
            base = arg.base
            while base is not None:
                if isinstance(base, np.ndarray):
                    base_entry = _SHM_BY_ID.get(id(base))
                    if base_entry is not None and base_entry[1] is base:
                        raise ValueError(
                            "pass whole team-shared arrays to parallel "
                            "tasks, not views; slice inside the task function"
                        )
                    base = base.base
                else:
                    break
        return arg

    def _transport(self, fn: Callable, bounds: Bounds,
                   args: tuple) -> list[WorkerReply]:
        payload = tuple(self._translate(a) for a in args)
        for rank, pipe in enumerate(self._pipes):
            a, b = bounds[rank]
            pipe.send((fn, a, b, payload))
        replies: list[WorkerReply] = []
        for rank, pipe in enumerate(self._pipes):
            ok, value, started_at, finished_at = pipe.recv()
            replies.append(WorkerReply(rank, ok, value, started_at,
                                       finished_at))
        return replies

    def close(self) -> None:
        if self._closed:
            return
        super().close()
        for pipe in self._pipes:
            try:
                pipe.send(None)
                pipe.close()
            except OSError:
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
        for array_id in self._array_ids:
            _SHM_BY_ID.pop(array_id, None)
        self._array_ids.clear()
        for shm in self._segments:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:
                pass
        self._segments.clear()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass


#: id(array) -> (segment name, owning array).  Keyed by object identity; the
#: owning-array reference keeps the ndarray alive so ids are never recycled
#: while registered.
_SHM_BY_ID: dict[int, tuple[str, np.ndarray]] = {}
