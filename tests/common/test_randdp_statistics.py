"""Statistical quality tests for the NPB LCG.

The benchmarks assume the generator behaves like a uniform source (EP's
acceptance rate, IS's key distribution, CG's pattern density all depend
on it).  These tests check first-order statistics at fixed seeds --
deterministic, so no flakiness."""

import numpy as np

from repro.common.randdp import Randlc, vranlc

N = 200_000


class TestUniformity:
    def test_mean_and_variance(self):
        values, _ = vranlc(N, 314159265)
        assert abs(values.mean() - 0.5) < 0.005
        assert abs(values.var() - 1.0 / 12.0) < 0.002

    def test_chi_square_uniform_bins(self):
        values, _ = vranlc(N, 271828183)
        bins = 64
        counts = np.bincount((values * bins).astype(int), minlength=bins)
        expected = N / bins
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        # 63 dof: mean 63, std ~11; 200 is a generous deterministic bound
        assert chi2 < 200.0

    def test_serial_correlation_small(self):
        values, _ = vranlc(N, 314159265)
        a = values[:-1] - 0.5
        b = values[1:] - 0.5
        corr = float((a * b).mean() / (a.var()))
        assert abs(corr) < 0.01

    def test_no_values_at_exact_bounds(self):
        values, _ = vranlc(N, 271828183)
        assert values.min() > 0.0
        assert values.max() < 1.0


class TestStreamIndependence:
    def test_distant_streams_uncorrelated(self):
        a = Randlc(314159265)
        b = Randlc(314159265)
        b.skip(10_000_000)
        va = a.batch(50_000) - 0.5
        vb = b.batch(50_000) - 0.5
        corr = float((va * vb).mean() / np.sqrt(va.var() * vb.var()))
        assert abs(corr) < 0.02

    def test_different_seeds_differ(self):
        va, _ = vranlc(1000, 314159265)
        vb, _ = vranlc(1000, 271828183)
        assert not np.array_equal(va, vb)
