"""Content-addressed result cache unit tests."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.service.cache import ResultCache, provenance

FP = "a" * 64
FP2 = "b" * 64
FP3 = "c" * 64


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        record = {"benchmark": "CG", "verified": True}
        path = cache.put(FP, record)
        assert os.path.exists(path)
        assert cache.get(FP) == record

    def test_miss_counts(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.get(FP) is None
        cache.put(FP, {"x": 1})
        assert cache.get(FP) == {"x": 1}
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_lru_eviction_drops_stalest(self, tmp_path):
        cache = ResultCache(str(tmp_path), max_entries=2)
        cache.put(FP, {"n": 1})
        # ensure distinct mtimes even on coarse filesystems
        os.utime(os.path.join(str(tmp_path), f"{FP}.json"),
                 (time.time() - 100, time.time() - 100))
        cache.put(FP2, {"n": 2})
        cache.put(FP3, {"n": 3})
        assert cache.get(FP) is None  # stalest entry evicted
        assert cache.get(FP2) == {"n": 2}
        assert cache.get(FP3) == {"n": 3}
        assert cache.evictions == 1

    def test_get_refreshes_lru_clock(self, tmp_path):
        cache = ResultCache(str(tmp_path), max_entries=2)
        cache.put(FP, {"n": 1})
        cache.put(FP2, {"n": 2})
        old = time.time() - 100
        for fp in (FP, FP2):
            os.utime(os.path.join(str(tmp_path), f"{fp}.json"), (old, old))
        cache.get(FP)  # FP is now the freshest
        cache.put(FP3, {"n": 3})
        assert cache.get(FP) == {"n": 1}
        assert cache.get(FP2) is None  # FP2 was the stalest

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        path = os.path.join(str(tmp_path), f"{FP}.json")
        with open(path, "w") as fh:
            fh.write("{torn")
        assert cache.get(FP) is None
        assert not os.path.exists(path)

    def test_corruption_heals_are_counted_not_silent(self, tmp_path):
        """Every healed corrupt entry increments ``corruption_healed``
        (surfaced via stats/status); clean misses do not."""
        cache = ResultCache(str(tmp_path))
        assert cache.get(FP) is None  # clean miss
        assert cache.corruption_healed == 0
        for n, fp in enumerate((FP, FP2), start=1):
            with open(os.path.join(str(tmp_path), f"{fp}.json"), "w") as fh:
                fh.write("\x00garbage")
            assert cache.get(fp) is None
            assert cache.corruption_healed == n
        assert cache.stats()["corruption_healed"] == 2
        # healing is an unlink: the next lookup is a plain miss
        assert cache.get(FP) is None
        assert cache.corruption_healed == 2

    def test_malformed_fingerprint_rejected(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        with pytest.raises(ValueError):
            cache.get("../escape")
        with pytest.raises(ValueError):
            cache.put("evil.json", {})

    def test_survives_restart(self, tmp_path):
        ResultCache(str(tmp_path)).put(FP, {"persisted": True})
        reopened = ResultCache(str(tmp_path))
        assert reopened.get(FP) == {"persisted": True}

    def test_stats_shape(self, tmp_path):
        stats = ResultCache(str(tmp_path), max_entries=9).stats()
        assert stats["entries"] == 0
        assert stats["max_entries"] == 9
        assert set(stats) >= {"directory", "hits", "misses", "hit_rate",
                              "evictions", "corruption_healed"}

    def test_entries_are_plain_json(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        path = cache.put(FP, {"inspectable": True})
        with open(path) as fh:
            assert json.load(fh) == {"inspectable": True}


class TestProvenance:
    def test_names_the_computing_job(self):
        stamp = provenance("job-000042", FP)
        assert stamp["source_job_id"] == "job-000042"
        assert stamp["fingerprint"] == FP
        assert "stored_at" in stamp
