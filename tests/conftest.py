"""Shared fixtures for the NPB-Python test suite."""

from __future__ import annotations

import pytest

from repro.team import ProcessTeam, SerialTeam, ThreadTeam


@pytest.fixture
def serial_team():
    with SerialTeam() as team:
        yield team


@pytest.fixture
def thread_team():
    with ThreadTeam(3) as team:
        yield team


@pytest.fixture
def process_team():
    with ProcessTeam(2) as team:
        yield team


@pytest.fixture(params=["serial", "threads", "process"])
def any_team(request):
    """One fixture that runs the test under every backend."""
    if request.param == "serial":
        team = SerialTeam()
    elif request.param == "threads":
        team = ThreadTeam(3)
    else:
        team = ProcessTeam(2)
    with team:
        yield team
