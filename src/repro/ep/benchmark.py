"""The EP benchmark: Gaussian pairs by the Marsaglia polar method (ep.f)."""

from __future__ import annotations

import numpy as np

from repro.common.randdp import A_DEFAULT, Randlc
from repro.common.verification import VerificationResult
from repro.core.benchmark import NPBenchmark
from repro.core.registry import register
from repro.ep.params import EP_EPSILON, EP_SEED, MK, NQ, ep_params


def _batch_tallies(batch_index: int) -> tuple[float, float, np.ndarray]:
    """Tally one batch of 2**MK pairs: returns (sx, sy, annulus counts).

    Batch ``k`` starts the generator at state ``s * a**(2*nk*k) mod 2**46``
    -- the same jump the Fortran code reaches with its binary-method loop --
    so batches are independent and order-insensitive (the basis of EP's
    embarrassing parallelism).
    """
    nk = 1 << MK
    rng = Randlc(EP_SEED, A_DEFAULT)
    rng.skip(2 * nk * batch_index)
    uniforms = rng.batch(2 * nk)
    x = 2.0 * uniforms[0::2] - 1.0
    y = 2.0 * uniforms[1::2] - 1.0
    t = x * x + y * y
    accept = t <= 1.0
    x, y, t = x[accept], y[accept], t[accept]
    factor = np.sqrt(-2.0 * np.log(t) / t)
    gx = x * factor
    gy = y * factor
    bins = np.maximum(np.abs(gx), np.abs(gy)).astype(np.int64)
    counts = np.bincount(bins, minlength=NQ)
    return float(gx.sum()), float(gy.sum()), counts


def _batch_range(lo: int, hi: int) -> tuple[float, float, np.ndarray]:
    """Worker task: tally batches [lo, hi)."""
    sx = 0.0
    sy = 0.0
    counts = np.zeros(NQ, dtype=np.int64)
    for k in range(lo, hi):
        bsx, bsy, bcounts = _batch_tallies(k)
        sx += bsx
        sy += bsy
        counts += bcounts
    return sx, sy, counts


@register
class EP(NPBenchmark):
    """Embarrassingly Parallel: random-number generation and tabulation."""

    name = "EP"

    def __init__(self, problem_class, team=None):
        super().__init__(problem_class, team)
        self.params = ep_params(self.problem_class)
        self.sx = float("nan")
        self.sy = float("nan")
        self.counts = np.zeros(NQ, dtype=np.int64)

    @property
    def niter(self) -> int:
        return 1

    def _setup(self) -> None:
        # EP has no initialization phase; everything is in the timed region.
        pass

    def _iterate(self) -> None:
        nbatches = 1 << (self.params.m - MK)
        with self.region("tally"):
            partials = self.team.parallel_for(nbatches, _batch_range)
        with self.region("reduce"):
            self.sx = sum(p[0] for p in partials)
            self.sy = sum(p[1] for p in partials)
            self.counts = np.sum([p[2] for p in partials], axis=0)

    def verify(self) -> VerificationResult:
        result = VerificationResult("EP", str(self.problem_class), True)
        result.add("sx", self.sx, self.params.sx_verify, EP_EPSILON)
        result.add("sy", self.sy, self.params.sy_verify, EP_EPSILON)
        return result

    def op_count(self) -> float:
        """ep.f counts the Gaussian pair generation as ~25 flops per pair
        attempt (the official Mop/s normalization uses 2**(m+1))."""
        return 25.0 * (1 << (self.params.m + 1)) / 2.0

    @property
    def gaussian_count(self) -> int:
        """Number of accepted Gaussian pairs (gc in ep.f)."""
        return int(self.counts.sum())
