"""Tests for workload profiles and the live findings report."""

import pytest

from repro.harness.findings import generate_report
from repro.machines.spec import OpCategory
from repro.machines.workloads import (
    CLASS_A_MEMORY_MB,
    WORKLOADS,
    benchmark_size_and_iters,
    total_ops,
    workload,
)


class TestWorkloads:
    def test_every_benchmark_has_profile(self):
        assert set(WORKLOADS) == {"BT", "SP", "LU", "FT", "MG", "CG",
                                  "IS", "EP"}

    def test_op_mixes_sum_to_one(self):
        for profile in WORKLOADS.values():
            assert sum(profile.op_mix.values()) == pytest.approx(1.0)

    def test_unstructured_benchmarks_irregular_dominated(self):
        for name in ("CG", "IS"):
            mix = workload(name).op_mix
            assert mix.get(OpCategory.IRREGULAR, 0) >= 0.5

    def test_structured_benchmarks_no_irregular(self):
        for name in ("BT", "SP", "LU", "FT", "MG"):
            mix = workload(name).op_mix
            assert OpCategory.IRREGULAR not in mix

    def test_lu_sync_count_linear_in_grid(self):
        lu = workload("LU")
        assert lu.syncs(64, 10) > 4 * lu.syncs(16, 10) * 0.9
        bt = workload("BT")
        assert bt.syncs(64, 10) == bt.syncs(16, 10)  # grid-independent

    def test_ft_class_a_memory_is_the_paper_number(self):
        assert CLASS_A_MEMORY_MB["FT"] == 350.0

    def test_total_ops_uses_official_formula(self):
        from repro.cg import CG

        assert total_ops("CG", "S") == CG("S").op_count()

    def test_size_and_iters(self):
        size, niter = benchmark_size_and_iters("BT", "S")
        assert (size, niter) == (12, 60)
        size, niter = benchmark_size_and_iters("CG", "S")
        assert (size, niter) == (1400, 15)

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            workload("ZZ")


class TestFindingsReport:
    @pytest.fixture(scope="class")
    def report(self):
        return generate_report(include_tables=False)

    def test_all_claims_pass(self, report):
        assert "[FAIL]" not in report
        assert "0 failed" in report

    def test_claim_count(self, report):
        assert report.count("[PASS]") >= 15

    def test_sections_present(self, report):
        for heading in ("Table 1", "5.1", "5.2", "Java Grande"):
            assert heading in report

    def test_tables_included_when_asked(self):
        full = generate_report(include_tables=True)
        assert "Table 7" in full and "```" in full
