"""Deterministic fault-injection tests: plans, seams, the invariant.

Three layers, mirroring :mod:`repro.service.chaos`:

* **plans** -- compilation is a pure function of (spec, seed): same seed
  same schedule, rules respect rate/limit/after/horizon, and both
  shipped presets plan >= 4 distinct fault kinds for *any* seed;
* **seams** -- each injector hook does what it says against the real
  component (a ProcessTeam's workers really get SIGKILLed, cache entries
  really get corrupted on disk and healed, coordinator submissions
  really drop/delay/429);
* **the invariant** -- the checker's classification matrix, and a full
  ``BenchService`` + coordinator run under chaos whose surviving
  completions are bit-identical to clean runs.
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
import time

import pytest

from repro import run_benchmark
from repro.harness.cli import CHAOS_PRESETS
from repro.service import BenchService, make_server
from repro.service.api import ServiceUnavailable
from repro.service.cache import ResultCache
from repro.service.chaos import (
    FAULT_KINDS,
    POINT_KINDS,
    PRESETS,
    RECORD_KIND,
    SCHEMA_VERSION,
    ChaosInjector,
    ChaosPlan,
    ChaosSpec,
    FaultRule,
    InvariantChecker,
    LedgerEntry,
    build_record,
    coordinator_preset,
    derive_seed,
    drive_traffic,
    load_record,
    result_digest,
    service_preset,
    summarize_ledger,
    write_record,
)
from repro.service.pool import TeamPool
from repro.service.shard import ShardCoordinator
from repro.team.procs import ProcessTeam


# ===================================================================== #
# rules and specs
# ===================================================================== #


class TestFaultRule:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown injection point"):
            FaultRule("cache.evict", "cache_corrupt", rate=1.0)

    def test_kind_invalid_at_point_rejected(self):
        with pytest.raises(ValueError, match="not valid at"):
            FaultRule("pool.lease", "cache_corrupt", rate=1.0)

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            FaultRule("pool.lease", "kill_team", rate=1.5)
        with pytest.raises(ValueError, match="rate"):
            FaultRule("pool.lease", "kill_team", rate=-0.1)

    def test_limit_and_after_validated(self):
        with pytest.raises(ValueError, match="limit"):
            FaultRule("pool.lease", "kill_team", rate=1.0, limit=0)
        with pytest.raises(ValueError, match="after"):
            FaultRule("pool.lease", "kill_team", rate=1.0, after=-1)

    def test_every_point_has_known_kinds(self):
        for point, kinds in POINT_KINDS.items():
            for kind in kinds:
                assert kind in FAULT_KINDS
                FaultRule(point, kind, rate=0.5)  # must not raise

    def test_spec_horizon_validated(self):
        with pytest.raises(ValueError, match="horizon"):
            ChaosSpec("bad", rules=(), horizon=0)

    def test_spec_as_dict_is_json_clean(self):
        spec = service_preset()
        blob = json.dumps(spec.as_dict())
        assert json.loads(blob)["name"] == "service"


# ===================================================================== #
# plan compilation
# ===================================================================== #


class TestChaosPlan:
    def test_same_seed_same_schedule(self):
        for preset in (service_preset, coordinator_preset):
            for seed in (0, 7, 42, 99991):
                a = ChaosPlan.compile(preset(), seed)
                b = ChaosPlan.compile(preset(), seed)
                assert a.as_dict() == b.as_dict()

    def test_different_seeds_differ_somewhere(self):
        spec = service_preset()
        schedules = {
            json.dumps(ChaosPlan.compile(spec, seed).as_dict()["schedule"])
            for seed in range(20)
        }
        assert len(schedules) > 1  # probabilistic rules move with the seed

    def test_rate_one_fires_exactly_at_after_index(self):
        spec = ChaosSpec(
            "t",
            rules=(FaultRule("pool.lease", "kill_team", rate=1.0, after=3),),
        )
        plan = ChaosPlan.compile(spec, 123)
        faults = plan.faults()
        assert [f.index for f in faults] == [3]
        assert plan.get("pool.lease", 3).kind == "kill_team"
        assert plan.get("pool.lease", 2) is None

    def test_limit_caps_firings(self):
        spec = ChaosSpec(
            "t",
            rules=(
                FaultRule("cache.get", "cache_corrupt", rate=1.0, limit=2),
            ),
        )
        plan = ChaosPlan.compile(spec, 1)
        assert [f.index for f in plan.faults()] == [0, 1]

    def test_horizon_bounds_the_schedule(self):
        spec = ChaosSpec(
            "t",
            rules=(
                FaultRule("cache.get", "cache_corrupt", rate=1.0, limit=99),
            ),
            horizon=5,
        )
        plan = ChaosPlan.compile(spec, 1)
        assert len(plan.faults()) == 5
        assert plan.get("cache.get", 5) is None

    def test_first_rule_wins_an_index(self):
        spec = ChaosSpec(
            "t",
            rules=(
                FaultRule("cache.get", "cache_truncate", rate=1.0, limit=1),
                FaultRule("cache.get", "cache_corrupt", rate=1.0, limit=1),
            ),
        )
        plan = ChaosPlan.compile(spec, 5)
        assert plan.get("cache.get", 0).kind == "cache_truncate"
        assert plan.get("cache.get", 1).kind == "cache_corrupt"

    def test_points_have_independent_streams(self):
        """Adding rules at one point must not move another point's
        faults -- each point draws from its own seeded RNG."""
        base = ChaosSpec(
            "t",
            rules=(FaultRule("pool.lease", "kill_team", rate=0.3, limit=8),),
        )
        widened = ChaosSpec(
            "t",
            rules=base.rules
            + (FaultRule("cache.get", "cache_corrupt", rate=0.3, limit=8),),
        )
        for seed in range(10):
            a = ChaosPlan.compile(base, seed).schedule.get("pool.lease", {})
            b = ChaosPlan.compile(widened, seed).schedule.get(
                "pool.lease", {}
            )
            assert a == b

    def test_presets_plan_at_least_four_kinds_for_any_seed(self):
        """The CI gate needs >= 4 distinct fault kinds regardless of
        seed; both presets guarantee it with deterministic rate-1.0
        rules at staggered offsets."""
        for factory in PRESETS.values():
            spec = factory()
            for seed in range(50):
                kinds = ChaosPlan.compile(spec, seed).kinds()
                assert len(kinds) >= 4, (spec.name, seed, kinds)

    def test_cli_preset_names_in_sync(self):
        assert tuple(sorted(PRESETS)) == CHAOS_PRESETS

    def test_derive_seed_stable_and_distinct(self):
        assert derive_seed(7, "shard0") == derive_seed(7, "shard0")
        assert derive_seed(7, "shard0") != derive_seed(7, "shard1")
        assert derive_seed(7, "shard0") != derive_seed(8, "shard0")


# ===================================================================== #
# injector seams
# ===================================================================== #


def _plan(*rules, horizon=64):
    return ChaosPlan.compile(ChaosSpec("t", rules=rules, horizon=horizon), 0)


class TestInjectorCore:
    def test_fire_consumes_indices_and_records_events(self):
        injector = ChaosInjector(
            _plan(FaultRule("pool.lease", "kill_team", rate=1.0, after=1))
        )
        assert injector.fire("pool.lease") is None  # index 0: nothing
        fault = injector.fire("pool.lease")  # index 1: the kill
        assert fault.kind == "kill_team"
        assert injector.fire("pool.lease") is None  # limit reached
        summary = injector.summary()
        assert summary["injected"] == 1
        assert summary["invocations"] == {"pool.lease": 3}
        assert summary["kinds"] == {"kill_team": 1}

    def test_unplanned_points_are_noops(self):
        injector = ChaosInjector(_plan())
        for point in POINT_KINDS:
            assert injector.fire(point) is None
        assert injector.events == []

    def test_fire_is_thread_safe(self):
        injector = ChaosInjector(
            _plan(
                FaultRule("cache.get", "cache_corrupt", rate=1.0, limit=100),
            )
        )
        hits = []

        def worker():
            for _ in range(50):
                fault = injector.fire("cache.get")
                if fault is not None:
                    hits.append(fault)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # 200 invocations, horizon 64, limit 100 -> exactly 64 planned
        assert len(hits) == 64
        assert injector.summary()["invocations"]["cache.get"] == 200


class TestKillTeamSeam:
    def test_process_team_workers_really_die(self):
        injector = ChaosInjector(
            _plan(FaultRule("pool.lease", "kill_team", rate=1.0))
        )
        team = ProcessTeam(2)
        try:
            pids = [proc.pid for proc in team._procs]
            injector.on_lease(team)
            deadline = time.time() + 5.0
            while time.time() < deadline and team.alive():
                time.sleep(0.05)
            assert not team.alive()
            event = injector.events[0]
            assert event["kind"] == "kill_team"
            assert str(pids[0]) in event["detail"]
        finally:
            team.close()

    def test_killed_process_team_recovers_bit_identically(self):
        """The in-flight job after a lease-time SIGKILL must still
        complete with the same verification values as a clean run."""
        from repro.core.registry import get_benchmark

        injector = ChaosInjector(
            _plan(FaultRule("pool.lease", "kill_team", rate=1.0))
        )
        clean = run_benchmark("CG", "S").to_dict()
        team = ProcessTeam(2)
        try:
            injector.on_lease(team)
            result = get_benchmark("CG")("S", team).run()
            assert result.verified
            record = result.to_dict()
            assert record["verification"] == clean["verification"]
            assert any(f["kind"] in ("respawn", "degraded")
                       for f in record["faults"])
        finally:
            team.close()

    def test_serial_team_is_force_degraded(self):
        from repro.team import make_team

        injector = ChaosInjector(
            _plan(FaultRule("pool.lease", "kill_team", rate=1.0))
        )
        with make_team("serial", 1) as team:
            injector.on_lease(team)
            assert team.degraded
            assert "degraded" in injector.events[0]["detail"]


class TestCacheSeam:
    def _cache_with_entry(self, tmp_path, injector=None):
        cache = ResultCache(str(tmp_path / "cache"))
        cache.chaos = injector
        fingerprint = "f" * 64
        cache.put(fingerprint, {"verification": [1, 2, 3]})
        return cache, fingerprint

    def test_corrupt_on_get_heals_and_counts(self, tmp_path):
        injector = ChaosInjector(
            _plan(FaultRule("cache.get", "cache_corrupt", rate=1.0))
        )
        cache, fingerprint = self._cache_with_entry(tmp_path, injector)
        assert cache.get(fingerprint) is None  # corrupted -> healed miss
        assert cache.corruption_healed == 1
        assert cache.misses == 1
        assert not os.path.exists(cache._path(fingerprint))
        assert cache.stats()["corruption_healed"] == 1
        # next lookup is a clean miss, not another heal
        assert cache.get(fingerprint) is None
        assert cache.corruption_healed == 1

    def test_truncate_on_get_heals(self, tmp_path):
        injector = ChaosInjector(
            _plan(FaultRule("cache.get", "cache_truncate", rate=1.0))
        )
        cache, fingerprint = self._cache_with_entry(tmp_path, injector)
        assert cache.get(fingerprint) is None
        assert cache.corruption_healed == 1

    def test_corrupt_on_put_poisons_next_get_only_once(self, tmp_path):
        injector = ChaosInjector(
            _plan(FaultRule("cache.put", "cache_corrupt", rate=1.0))
        )
        cache, fingerprint = self._cache_with_entry(tmp_path, injector)
        assert cache.get(fingerprint) is None  # the put was torn
        assert cache.corruption_healed == 1
        cache.put(fingerprint, {"verification": [1]})  # put index 1: clean
        assert cache.get(fingerprint) == {"verification": [1]}

    def test_missing_entry_damage_is_harmless(self, tmp_path):
        injector = ChaosInjector(
            _plan(FaultRule("cache.get", "cache_corrupt", rate=1.0))
        )
        cache = ResultCache(str(tmp_path / "cache"))
        cache.chaos = injector
        assert cache.get("a" * 64) is None
        assert cache.corruption_healed == 0
        assert "no entry" in injector.events[0]["detail"]


class TestCoordinatorSeams:
    def test_probe_drop_raises_service_unavailable(self):
        injector = ChaosInjector(
            _plan(FaultRule("shard.probe", "drop_response", rate=1.0))
        )
        with pytest.raises(ServiceUnavailable, match="chaos"):
            injector.on_probe("shard0")
        assert injector.on_probe("shard0") is None  # limit hit: clean

    def test_submit_drop_raises(self):
        injector = ChaosInjector(
            _plan(FaultRule("shard.submit", "drop_response", rate=1.0))
        )
        with pytest.raises(ServiceUnavailable, match="dropped"):
            injector.on_submit("shard0")

    def test_submit_delay_sleeps_then_proceeds(self):
        injector = ChaosInjector(
            _plan(
                FaultRule(
                    "shard.submit", "delay_response", rate=1.0, param=0.05
                )
            )
        )
        t0 = time.perf_counter()
        assert injector.on_submit("shard0") is None  # delayed, not replaced
        assert time.perf_counter() - t0 >= 0.04

    def test_submit_storm_returns_synthetic_429(self):
        injector = ChaosInjector(
            _plan(FaultRule("shard.submit", "storm_429", rate=1.0))
        )
        code, body = injector.on_submit("shard0")
        assert code == 429
        assert body["chaos"] is True


# ===================================================================== #
# component integration
# ===================================================================== #


class TestPoolIntegration:
    def test_lease_hook_fires_on_warm_leases(self):
        injector = ChaosInjector(
            _plan(FaultRule("pool.lease", "kill_team", rate=1.0))
        )
        with TeamPool("serial", 1, size=1) as pool:
            pool.chaos = injector
            team, pooled = pool.lease()
            assert pooled and team.degraded  # the hook degraded it
            pool.release(team, pooled)
            assert pool.occupancy()["replacements"] == 1

    def test_install_wires_every_seam(self, tmp_path):
        injector = ChaosInjector(_plan())
        service = BenchService(
            cache_dir=str(tmp_path / "cache"), chaos=injector,
            autostart=False,
        )
        try:
            assert service.pool.chaos is injector
            assert service.cache.chaos is injector
            assert service.scheduler.chaos is injector
            assert service.chaos is injector
            status = service.status()
            assert status["chaos"]["planned"] == 0
            assert status["chaos"]["seed"] == 0
        finally:
            service.drain(timeout=5.0)

    def test_no_chaos_means_no_status_block(self, tmp_path):
        service = BenchService(
            cache_dir=str(tmp_path / "cache"), autostart=False
        )
        try:
            assert "chaos" not in service.status()
        finally:
            service.drain(timeout=5.0)


class TestServiceUnderChaos:
    def test_jobs_complete_bit_identically_under_service_preset(
        self, tmp_path
    ):
        """A full BenchService run under the shipped service preset:
        every job terminal, completions match a clean run exactly."""
        plan = ChaosPlan.compile(service_preset(), 7)
        service = BenchService(
            cache_dir=str(tmp_path / "cache"),
            chaos=ChaosInjector(plan),
        )
        clean = run_benchmark("CG", "S").to_dict()
        try:
            jobs = [
                service.submit("CG", "S", no_cache=(i % 2 == 0))
                for i in range(6)
            ]
            for job in jobs:
                done = service.wait(job.job_id, timeout=60.0)
                assert done.state in ("done", "cached")
                assert (
                    done.result["verification"] == clean["verification"]
                )
            summary = service.status()["chaos"]
            assert summary["injected"] > 0
        finally:
            service.drain(timeout=10.0)

    def test_dispatch_delay_does_not_lose_jobs(self, tmp_path):
        plan = _plan(
            FaultRule(
                "scheduler.dispatch",
                "delay_dispatch",
                rate=1.0,
                limit=3,
                param=0.02,
            )
        )
        service = BenchService(
            cache_dir=str(tmp_path / "cache"), chaos=ChaosInjector(plan)
        )
        try:
            job = service.submit("MG", "S")
            assert service.wait(job.job_id, timeout=60.0).state == "done"
        finally:
            service.drain(timeout=10.0)


@contextlib.contextmanager
def _chaos_fleet(tmp_path, injector, count=2):
    """In-process shard fleet with a chaos-injecting coordinator."""
    services, httpds = [], []
    coordinator = None
    try:
        shards = {}
        for i in range(count):
            service = BenchService(
                backend="serial",
                pool_size=1,
                cache_dir=str(tmp_path / f"cache{i}"),
            )
            httpd = make_server(service, port=0)
            threading.Thread(target=httpd.serve_forever, daemon=True).start()
            services.append(service)
            httpds.append(httpd)
            host, port = httpd.server_address[:2]
            shards[f"s{i}"] = f"http://{host}:{port}"
        coordinator = ShardCoordinator(shards, health_interval=60.0)
        injector.install_coordinator(coordinator)
        coordinator.start()
        yield coordinator, services
    finally:
        if coordinator is not None:
            coordinator.close()
        for httpd in httpds:
            httpd.shutdown()
            httpd.server_close()
        for service in services:
            service.drain(timeout=10.0)


class TestCoordinatorUnderChaos:
    def test_dropped_submission_fails_over_with_verdict(self, tmp_path):
        injector = ChaosInjector(
            _plan(FaultRule("shard.submit", "drop_response", rate=1.0))
        )
        with _chaos_fleet(tmp_path, injector) as (coordinator, _):
            code, body = coordinator.submit(
                {"benchmark": "CG", "problem_class": "S", "wait": True}
            )
            assert code == 200
            assert body["state"] == "done"
            routing = body["routing"]
            assert routing["degraded"] is True
            assert len(routing["attempts"]) == 1
            assert "chaos" in routing["attempts"][0]["error"]

    def test_storm_429_passes_through_as_backpressure(self, tmp_path):
        injector = ChaosInjector(
            _plan(FaultRule("shard.submit", "storm_429", rate=1.0))
        )
        with _chaos_fleet(tmp_path, injector) as (coordinator, _):
            code, body = coordinator.submit(
                {"benchmark": "CG", "problem_class": "S", "wait": True}
            )
            assert code == 429
            assert body["chaos"] is True
            # the storm burns one shard.submit index; the retry is clean
            code, body = coordinator.submit(
                {"benchmark": "CG", "problem_class": "S", "wait": True}
            )
            assert code == 200

    def test_probe_drop_marks_shard_unhealthy_then_recovers(self, tmp_path):
        injector = ChaosInjector(
            _plan(FaultRule("shard.probe", "drop_response", rate=1.0))
        )
        with _chaos_fleet(tmp_path, injector) as (coordinator, _):
            # start() already probed: index 0 dropped -> s0 condemned
            assert not coordinator._states["s0"].healthy
            coordinator.check_shard("s0")  # next probe is clean
            assert coordinator._states["s0"].healthy


# ===================================================================== #
# traffic driver
# ===================================================================== #


class _ScriptedSampler:
    def __init__(self, payload=None):
        self.payload = payload or {"benchmark": "CG", "wait": True}

    def next_request(self):
        return "CG.S", dict(self.payload)


class TestDriveTraffic:
    def test_records_every_request_in_order(self):
        calls = []

        def submit(payload):
            calls.append(payload)
            return 200, {"state": "done"}

        ledger, elapsed = drive_traffic(
            submit, _ScriptedSampler(), total_requests=10, concurrency=3
        )
        assert len(ledger) == 10
        assert [e.index for e in ledger] == list(range(10))
        assert all(e.code == 200 for e in ledger)
        assert elapsed >= 0.0

    def test_retries_429_then_gives_up(self):
        codes = iter([429, 429, 200])

        def submit(payload):
            return next(codes), {"state": "done"}

        ledger, _ = drive_traffic(
            submit,
            _ScriptedSampler(),
            total_requests=1,
            concurrency=1,
            retries=3,
            retry_sleep=0.0,
        )
        assert ledger[0].code == 200
        assert ledger[0].retries == 2

    def test_transport_error_recorded_not_raised(self):
        def submit(payload):
            raise ServiceUnavailable("boom")

        ledger, _ = drive_traffic(
            submit, _ScriptedSampler(), total_requests=2, concurrency=2
        )
        assert all(e.code is None for e in ledger)
        assert all("ServiceUnavailable" in e.error for e in ledger)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            drive_traffic(lambda p: (200, {}), _ScriptedSampler(), 0)
        with pytest.raises(ValueError):
            drive_traffic(
                lambda p: (200, {}),
                _ScriptedSampler(),
                total_requests=1,
                concurrency=0,
            )


# ===================================================================== #
# the invariant
# ===================================================================== #


def _entry(index, code, body, error=None):
    return LedgerEntry(
        index=index, payload={}, code=code, body=body, error=error
    )


def _done_body(fingerprint="f" * 64, verification=(1.0, 2.0), state="done"):
    return {
        "state": state,
        "result": {
            "verification": list(verification),
            "provenance": {"fingerprint": fingerprint},
        },
    }


class TestInvariantChecker:
    def test_clean_completions_pass(self):
        ledger = [
            _entry(0, 200, _done_body()),
            _entry(1, 200, _done_body(state="cached")),
        ]
        verdict = InvariantChecker(ledger).check()
        assert verdict["pass"]
        assert verdict["counts"]["done"] == 1
        assert verdict["counts"]["cached"] == 1
        assert verdict["counts"]["lost"] == 0

    def test_structured_failure_passes(self):
        ledger = [_entry(0, 200, {"state": "failed", "error": "Trace..."})]
        verdict = InvariantChecker(ledger).check()
        assert verdict["pass"]
        assert verdict["counts"]["failed"] == 1

    def test_unstructured_failure_fails(self):
        ledger = [_entry(0, 200, {"state": "failed", "error": None})]
        verdict = InvariantChecker(ledger).check()
        assert not verdict["pass"]
        checks = {c["name"]: c for c in verdict["checks"]}
        assert not checks["structured_failures"]["pass"]

    def test_429_and_routed_503_are_accounted(self):
        ledger = [
            _entry(0, 429, {"error": "queue full"}),
            _entry(1, 503, {"error": "no shard", "routing": {"attempts": []}}),
        ]
        verdict = InvariantChecker(ledger).check()
        assert verdict["pass"]
        assert verdict["counts"]["rejected_429"] == 1
        assert verdict["counts"]["unroutable_503"] == 1

    def test_transport_error_is_lost(self):
        ledger = [_entry(0, None, None, error="ServiceUnavailable: boom")]
        verdict = InvariantChecker(ledger).check()
        assert not verdict["pass"]
        assert verdict["counts"]["lost"] == 1

    def test_bare_503_without_routing_is_lost(self):
        ledger = [_entry(0, 503, {"error": "???"})]
        verdict = InvariantChecker(ledger).check()
        assert not verdict["pass"]

    def test_divergent_completions_fail_bit_identical(self):
        ledger = [
            _entry(0, 200, _done_body(verification=(1.0, 2.0))),
            _entry(1, 200, _done_body(verification=(1.0, 2.00001))),
        ]
        verdict = InvariantChecker(ledger).check()
        assert not verdict["pass"]
        checks = {c["name"]: c for c in verdict["checks"]}
        assert not checks["bit_identical_results"]["pass"]

    def test_identical_completions_pass_bit_identical(self):
        ledger = [
            _entry(i, 200, _done_body(verification=(1.0, 2.0)))
            for i in range(3)
        ]
        assert InvariantChecker(ledger).check()["pass"]

    def test_stuck_shard_job_fails(self):
        shard_jobs = {"s0": [{"job_id": "job-1", "state": "running"}]}
        verdict = InvariantChecker([], shard_jobs).check()
        assert not verdict["pass"]
        checks = {c["name"]: c for c in verdict["checks"]}
        assert not checks["shards_settled"]["pass"]

    def test_terminal_shard_jobs_pass(self):
        shard_jobs = {
            "s0": [
                {"job_id": "a", "state": "done"},
                {"job_id": "b", "state": "cached"},
                {"job_id": "c", "state": "failed", "error": "Trace"},
            ]
        }
        assert InvariantChecker([], shard_jobs).check()["pass"]

    def test_unstructured_shard_failure_fails(self):
        shard_jobs = {"s0": [{"job_id": "a", "state": "failed"}]}
        assert not InvariantChecker([], shard_jobs).check()["pass"]

    def test_result_digest_is_canonical(self):
        a = [{"quantity": "zeta", "computed": 1.0}]
        b = [{"computed": 1.0, "quantity": "zeta"}]  # key order irrelevant
        assert result_digest(a) == result_digest(b)
        assert result_digest(a) != result_digest(
            [{"quantity": "zeta", "computed": 1.1}]
        )


# ===================================================================== #
# records
# ===================================================================== #


def _minimal_record(seed=7):
    plan = ChaosPlan.compile(coordinator_preset(), seed)
    ledger = [_entry(0, 200, _done_body())]
    return build_record(
        seed=seed,
        config={"shards": 2},
        coordinator_plan=plan,
        shard_plans={"shard0": ChaosPlan.compile(service_preset(), 1)},
        injected={
            "coordinator": [{"kind": "drop_response", "point": "x"}],
            "runner": [{"kind": "kill_shard"}],
            "shards": {"shard0": {"kinds": {"kill_team": 1}}},
        },
        traffic=summarize_ledger(ledger, 1.0),
        invariant=InvariantChecker(ledger).check(),
    )


class TestChaosRecords:
    def test_build_record_shape(self):
        record = _minimal_record()
        assert record["kind"] == RECORD_KIND
        assert record["schema_version"] == SCHEMA_VERSION
        assert record["seed"] == 7
        assert set(record["fault_kinds"]) == {
            "drop_response",
            "kill_shard",
            "kill_team",
        }
        assert record["invariant"]["pass"]
        json.dumps(record)  # must be JSON-serializable

    def test_write_load_round_trip_and_sequencing(self, tmp_path):
        record = _minimal_record()
        path1 = write_record(record, directory=str(tmp_path))
        path2 = write_record(record, directory=str(tmp_path))
        assert path1.endswith("CHAOS_0001.json")
        assert path2.endswith("CHAOS_0002.json")
        loaded = load_record(path1)
        assert loaded["sequence"] == 1
        assert loaded["plan"] == record["plan"]

    def test_load_rejects_foreign_kind(self, tmp_path):
        path = tmp_path / "CHAOS_0001.json"
        path.write_text(json.dumps({"kind": "npb-bench-record"}))
        with pytest.raises(ValueError, match="not an npb-chaos-record"):
            load_record(str(path))

    def test_load_rejects_newer_schema(self, tmp_path):
        record = dict(_minimal_record(), schema_version=SCHEMA_VERSION + 1)
        path = tmp_path / "CHAOS_0001.json"
        path.write_text(json.dumps(record))
        with pytest.raises(ValueError, match="schema_version"):
            load_record(str(path))

    def test_summarize_ledger_rollup(self):
        ledger = [
            _entry(0, 200, _done_body()),
            _entry(1, 429, {"error": "full"}),
            _entry(2, None, None, error="boom"),
            _entry(
                3,
                200,
                dict(_done_body(), routing={"degraded": True}),
            ),
        ]
        rollup = summarize_ledger(ledger, 2.0)
        assert rollup["requests"] == 4
        assert rollup["by_code"] == {"200": 2, "429": 1, "None": 1}
        assert rollup["degraded_routes"] == 1
        assert rollup["transport_errors"] == 1
