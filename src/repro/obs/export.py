"""Span export: ``TRACE_<seq>.json`` records, JSONL, and the tree view.

A trace record is the durable form of one span tree -- what ``npb
trace <job_id>`` writes after fetching ``/jobs/<id>/trace``, and what
``npb trace --last`` re-renders from disk.  Records go through the
shared :mod:`repro.harness.records` allocator so concurrent traced
runs never clobber each other's sequence numbers, same as BENCH /
LOADGEN / CHAOS records.

Schema v1::

    {
      "schema_version": 1,
      "kind": "trace",
      "trace_id": "...",            # 32 hex
      "job_id": "...",              # the submit that produced it, if any
      "created_at": <epoch>,
      "root_span_id": "..." | null,
      "span_count": N,
      "duration_seconds": <root duration or max span extent>,
      "spans": [Span.to_dict(), ...],
      "sequence": N                  # stamped by append_record
    }
"""

from __future__ import annotations

import json
import time

from repro.obs.spans import Span

# NOTE: repro.harness.records is imported lazily inside the record IO
# functions below.  The harness package __init__ pulls in benchmarks
# (tables -> machines -> core.registry), and obs is imported from
# team.base which core.benchmark itself imports -- a module-level
# import here would close that cycle.

TRACE_RECORD_SCHEMA_VERSION = 1
TRACE_RECORD_PREFIX = "TRACE"


def _find_roots(spans: list[Span]) -> list[Span]:
    """Spans whose parent is absent from the collection (tree roots).

    A trace collected from one process of a multi-process request
    legitimately has a dangling parent id -- the parent span lives in
    the upstream process -- so "root" means *local* root.
    """
    ids = {span.span_id for span in spans}
    return [
        span
        for span in spans
        if span.parent_span_id is None or span.parent_span_id not in ids
    ]


def trace_duration_seconds(spans: list[Span]) -> float:
    """Extent of the whole tree: last end minus first start."""
    starts = [s.started_at for s in spans]
    ends = [s.ended_at for s in spans if s.ended_at is not None]
    if not starts or not ends:
        return 0.0
    return max(0.0, max(ends) - min(starts))


def build_trace_record(
    spans: list[Span],
    trace_id: str,
    job_id: str | None = None,
) -> dict:
    roots = _find_roots(spans)
    return {
        "schema_version": TRACE_RECORD_SCHEMA_VERSION,
        "kind": "trace",
        "trace_id": trace_id,
        "job_id": job_id,
        "created_at": time.time(),
        "root_span_id": roots[0].span_id if roots else None,
        "span_count": len(spans),
        "duration_seconds": trace_duration_seconds(spans),
        "spans": [span.to_dict() for span in spans],
    }


def write_trace_record(
    spans: list[Span],
    trace_id: str,
    directory: str,
    job_id: str | None = None,
) -> str:
    """Append a TRACE record to the trajectory; returns its path."""
    from repro.harness import records

    record = build_trace_record(spans, trace_id, job_id=job_id)
    return records.append_record(record, directory, TRACE_RECORD_PREFIX)


def load_trace_record(path: str) -> dict:
    with open(path) as fh:
        record = json.load(fh)
    version = record.get("schema_version")
    if version != TRACE_RECORD_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported trace record schema {version!r} in {path!r}"
        )
    return record


def latest_trace_record_path(directory: str) -> str | None:
    from repro.harness import records

    return records.latest_record_path(directory, TRACE_RECORD_PREFIX)


def spans_to_jsonl(spans: list[Span]) -> str:
    """One compact JSON object per line -- pipeable span export."""
    return "\n".join(
        json.dumps(span.to_dict(), separators=(",", ":"), sort_keys=True)
        for span in spans
    ) + ("\n" if spans else "")


# --------------------------------------------------------------------- #
# tree rendering (npb trace)
# --------------------------------------------------------------------- #

def render_trace_tree(spans: list[Span], trace_id: str | None = None) -> str:
    """The span tree as indented text with durations and % of total.

    Children sort by start time; each line shows the span's own
    duration and its share of the *root* extent, which is how a
    reader attributes one slow request to a layer at a glance::

        http.submit  412.1ms  100.0%  [ok]
          schedule  410.0ms  99.5%  [ok]
            queue.wait  1.2ms  0.3%  [ok]
            run  405.8ms  98.5%  [ok]  benchmark=cg
              region:conj_grad  398.0ms  96.6%  [ok]
    """
    if not spans:
        return "(no spans)"
    total = trace_duration_seconds(spans) or 1e-9
    children: dict[str | None, list[Span]] = {}
    ids = {span.span_id for span in spans}
    for span in spans:
        parent = span.parent_span_id
        if parent not in ids:
            parent = None
        children.setdefault(parent, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: s.started_at)

    lines: list[str] = []
    if trace_id:
        lines.append(f"trace {trace_id}")

    def emit(span: Span, depth: int) -> None:
        duration = span.duration_seconds
        pct = 100.0 * duration / total
        attrs = " ".join(
            f"{key}={value}"
            for key, value in sorted(span.attrs.items())
            if key not in ("rank",) and value is not None
        )
        events = (
            " !" + ",".join(event["name"] for event in span.events)
            if span.events
            else ""
        )
        line = (
            f"{'  ' * depth}{span.name}  "
            f"{duration * 1000:.1f}ms  {pct:.1f}%  [{span.status}]"
        )
        if attrs:
            line += f"  {attrs}"
        line += events
        lines.append(line)
        for child in children.get(span.span_id, ()):
            emit(child, depth + 1)

    for root in children.get(None, ()):
        emit(root, 0)
    return "\n".join(lines)


def layer_summary(spans: list[Span]) -> dict[str, float]:
    """Total seconds per span name -- the per-layer breakdown."""
    totals: dict[str, float] = {}
    for span in spans:
        totals[span.name] = totals.get(span.name, 0.0) + span.duration_seconds
    return totals
