"""EP problem-class parameters and verification constants (ep.f)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.params import ProblemClass, lookup_class


@dataclass(frozen=True)
class EPParams:
    """``m``: log2 of the number of Gaussian pairs; reference sums sx, sy."""

    m: int
    sx_verify: float
    sy_verify: float

    @property
    def npairs(self) -> int:
        return 1 << self.m


EP_CLASSES: dict[ProblemClass, EPParams] = {
    ProblemClass.S: EPParams(24, -3.247834652034740e3, -6.958407078382297e3),
    ProblemClass.W: EPParams(25, -2.863319731645753e3, -6.320053679109499e3),
    ProblemClass.A: EPParams(28, -4.295875165629892e3, -1.580732573678431e4),
    ProblemClass.B: EPParams(30, 4.033815542441498e4, -2.660669192809235e4),
    ProblemClass.C: EPParams(32, 4.764367927995374e4, -8.084072988043731e4),
}

#: Relative tolerance of the sx/sy comparison (ep.f).
EP_EPSILON = 1.0e-8

#: Batch size exponent (mk in ep.f): 2**16 pairs per batch.
MK = 16

#: Number of annulus bins (nq in ep.f).
NQ = 10

#: LCG seed (s in ep.f).
EP_SEED = 271828183


def ep_params(problem_class) -> EPParams:
    return lookup_class(EP_CLASSES, problem_class, "EP")
