"""The NPB double-precision pseudo-random number generator.

The NAS Parallel Benchmarks define a linear congruential generator over a
46-bit state::

    x_{k+1} = a * x_k  (mod 2**46)        value_k = x_k * 2**-46

with the default multiplier ``a = 5**13 = 1220703125``.  Every benchmark's
initial data (CG's sparse matrix, FT's source field, MG's charge placement,
EP's Gaussian deviates, IS's key stream) is produced by this generator, so
the official verification values are only reachable if the sequence is
reproduced *bit for bit*.

The Fortran reference implements the 46-bit modular multiply in double
precision by splitting operands into 23-bit halves.  Since every intermediate
there is an exact integer below 2**46, the computation is exact; here we use
64-bit unsigned integer arithmetic with the same splitting (products of
23-bit halves fit comfortably in 64 bits), which yields the identical
sequence while remaining vectorizable with NumPy.

Two interfaces are provided, mirroring the Fortran:

``randlc(x, a)``
    Advance a scalar state once; returns ``(value, new_state)``.

``vranlc(n, x, a)``
    Generate ``n`` successive values as a NumPy vector; returns
    ``(values, new_state)``.  Internally the sequential recurrence is
    replaced by a logarithmic-depth scan over precomputed powers of ``a``,
    so generation is O(n log n) NumPy work rather than an interpreted loop.

plus an object wrapper :class:`Randlc` holding the evolving state.
"""

from __future__ import annotations

import numpy as np

#: Default NPB multiplier, 5**13.
A_DEFAULT = 1220703125

#: Modulus 2**46 and friends.
_R46 = 1 << 46
_MASK46 = _R46 - 1
_MASK23 = (1 << 23) - 1

#: 2**-46 as an exact double (2**-46 is representable).
R46_INV = float(2.0**-46)


def _mulmod46(a: int, x: int) -> int:
    """Exact ``a * x mod 2**46`` for 46-bit non-negative integers."""
    return (a * x) & _MASK46


def randlc(x: int, a: int = A_DEFAULT) -> tuple[float, int]:
    """Advance the NPB LCG one step.

    Parameters
    ----------
    x : int
        Current 46-bit state (the Fortran code carries it in a double).
    a : int
        Multiplier, default ``5**13``.

    Returns
    -------
    (value, new_state) : tuple[float, int]
        ``value`` is the uniform deviate in ``(0, 1)`` corresponding to the
        *new* state, matching the Fortran convention where ``randlc``
        updates ``x`` and returns ``x * 2**-46``.
    """
    x = _mulmod46(int(a), int(x))
    return x * R46_INV, x


def _mulmod46_vec(a: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Vectorized exact ``a * x mod 2**46`` on uint64 arrays of 46-bit values.

    Splits each operand into 23-bit halves so each partial product fits in
    64 bits::

        a = a1*2**23 + a0,   x = x1*2**23 + x0
        a*x mod 2**46 = (a0*x0 + ((a1*x0 + a0*x1) mod 2**23) * 2**23) mod 2**46

    The a1*x1 term contributes only multiples of 2**46 and is dropped.
    """
    a0 = a & _MASK23
    a1 = a >> np.uint64(23)
    x0 = x & _MASK23
    x1 = x >> np.uint64(23)
    mid = (a1 * x0 + a0 * x1) & _MASK23
    return (a0 * x0 + (mid << np.uint64(23))) & np.uint64(_MASK46)


def ipow46(a: int, exponent: int) -> int:
    """Compute ``a**exponent mod 2**46`` (NPB's ``ipow46`` jump function).

    Used by EP and FT to jump the generator to the start of a batch without
    generating the intervening values, enabling embarrassingly parallel
    generation.
    """
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    result = 1
    q = int(a) & _MASK46
    n = exponent
    while n > 0:
        if n & 1:
            result = _mulmod46(result, q)
        q = _mulmod46(q, q)
        n >>= 1
    return result


# Cache of power tables keyed by (a, ceil_log2(n)) so repeated vranlc calls
# with the same multiplier and similar batch sizes reuse the table.
_POWER_CACHE: dict[tuple[int, int], np.ndarray] = {}
_POWER_CACHE_MAX_LOG = 24  # cache tables up to 2**24 entries (128 MiB)


def _powers_of(a: int, n: int) -> np.ndarray:
    """Return ``[a**1, a**2, ..., a**n] mod 2**46`` as a uint64 array.

    Built by repeated doubling: powers[2k] from squaring, so construction is
    O(log n) vectorized passes.
    """
    log = max(0, (n - 1).bit_length())
    key = (a, min(log, _POWER_CACHE_MAX_LOG))
    cached = _POWER_CACHE.get(key)
    if cached is not None and len(cached) >= n:
        return cached[:n]
    size = 1 << log
    powers = np.empty(size, dtype=np.uint64)
    powers[0] = a & _MASK46
    filled = 1
    while filled < size:
        step = np.uint64(ipow46(a, filled))
        take = min(filled, size - filled)
        powers[filled : filled + take] = _mulmod46_vec(
            np.uint64(step), powers[:take]
        )
        filled += take
    if log <= _POWER_CACHE_MAX_LOG:
        _POWER_CACHE[key] = powers
    return powers[:n]


def vranlc(n: int, x: int, a: int = A_DEFAULT) -> tuple[np.ndarray, int]:
    """Generate ``n`` successive NPB deviates, vectorized.

    Semantically identical to the Fortran ``vranlc``: starting from state
    ``x`` it produces values for states ``a*x, a^2*x, ..., a^n*x`` and
    returns the final state.

    Returns
    -------
    (values, new_state) : tuple[np.ndarray, int]
        ``values`` is a float64 array of length ``n`` in ``(0, 1)``.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if n == 0:
        return np.empty(0, dtype=np.float64), int(x)
    powers = _powers_of(int(a), n)
    states = _mulmod46_vec(powers, np.uint64(int(x) & _MASK46))
    values = states.astype(np.float64) * R46_INV
    return values, int(states[-1])


class Randlc:
    """Stateful wrapper around the NPB generator.

    Example
    -------
    >>> rng = Randlc(314159265)
    >>> v = rng.next()          # one deviate
    >>> batch = rng.batch(100)  # vectorized batch of 100
    """

    __slots__ = ("state", "a")

    def __init__(self, seed: int, a: int = A_DEFAULT):
        if not 0 <= seed < _R46:
            raise ValueError("seed must be a 46-bit non-negative integer")
        self.state = int(seed)
        self.a = int(a)

    def next(self) -> float:
        """Advance once and return the deviate (Fortran ``randlc``)."""
        value, self.state = randlc(self.state, self.a)
        return value

    def batch(self, n: int) -> np.ndarray:
        """Return the next ``n`` deviates as a vector (Fortran ``vranlc``)."""
        values, self.state = vranlc(n, self.state, self.a)
        return values

    def skip(self, n: int) -> None:
        """Jump the state forward by ``n`` steps without producing values."""
        self.state = _mulmod46(ipow46(self.a, n), self.state)

    def copy(self) -> "Randlc":
        clone = Randlc.__new__(Randlc)
        clone.state = self.state
        clone.a = self.a
        return clone
