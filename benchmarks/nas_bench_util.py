"""Shared helpers for the pytest-benchmark table regenerators.

Each ``bench_tableN_*.py`` module does two things:

1. measures the real implementations on this host with pytest-benchmark
   (class S by default so the suite stays fast; pass a larger class via
   the NPB_BENCH_CLASS environment variable);
2. attaches the simulated table for the paper's machine to the benchmark
   record (``extra_info``), so a single run carries both the measured and
   the reproduced-table data.
"""

from __future__ import annotations

import os

from repro.core.registry import get_benchmark
from repro.harness import format_table, generate_table

#: Problem class for measured runs (override: NPB_BENCH_CLASS=W).
BENCH_CLASS = os.environ.get("NPB_BENCH_CLASS", "S")

#: Benchmarks in the paper's table order.
TABLE_BENCHMARKS = ("BT", "SP", "LU", "FT", "IS", "CG", "MG")


def run_timed_region(benchmark, name: str, problem_class: str = None,
                     team=None):
    """Benchmark one NPB code's timed region (setup excluded), verifying
    the result afterwards."""
    problem_class = problem_class or BENCH_CLASS
    cls = get_benchmark(name)
    instances = []

    def make():
        bench = cls(problem_class) if team is None else cls(problem_class,
                                                            team)
        bench.setup()
        instances.append(bench)
        return (), {}

    benchmark.pedantic(lambda: instances[-1]._iterate(), setup=make,
                       rounds=1, iterations=1)
    result = instances[-1].verify()
    assert result.verified, result.summary()
    benchmark.extra_info["verified"] = True
    benchmark.extra_info["class"] = problem_class


def attach_simulated_table(benchmark, number: int) -> None:
    """Record the simulated paper table in the benchmark's extra info and
    echo it so ``pytest benchmarks/ -s`` shows the reproduction."""
    table = generate_table(number, "simulated")
    text = format_table(table)
    benchmark.extra_info[f"table{number}_simulated"] = text
    print()
    print(text)
