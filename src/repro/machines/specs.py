"""The five machines of the paper's evaluation.

Numeric calibration notes
-------------------------
* Clock rates, CPU counts and JVM versions are the paper's (section 5).
* ``fortran_mops`` (sustained compiled Mop/s per CPU on CFD code) sets
  absolute time scales; values are order-of-magnitude estimates for the
  2001-era machines.  Reproduction targets are ratios and speedups, which
  are insensitive to this scale.
* ``op_ratio`` tables are calibrated so the Origin2000 reproduces the
  paper's Table 1 anchor points (assignment 3.3x ... second-order stencil
  12.4x), the p690 lands "within a factor of 3" (paper's conclusion), and
  the unstructured (irregular) category shows the much smaller gap the
  paper reports for CG/IS.
"""

from __future__ import annotations

from repro.machines.spec import JVMModel, MachineSpec, OpCategory

_O2K_RATIOS = {
    OpCategory.COPY: 3.3,
    OpCategory.STENCIL: 9.0,
    OpCategory.BLOCKSOLVE: 7.5,
    OpCategory.REDUCTION: 5.0,
    OpCategory.IRREGULAR: 2.0,
}

_E10K_RATIOS = {
    OpCategory.COPY: 3.5,
    OpCategory.STENCIL: 9.5,
    OpCategory.BLOCKSOLVE: 8.0,
    OpCategory.REDUCTION: 5.5,
    OpCategory.IRREGULAR: 2.1,
}

_P690_RATIOS = {
    OpCategory.COPY: 1.8,
    OpCategory.STENCIL: 2.9,
    OpCategory.BLOCKSOLVE: 2.6,
    OpCategory.REDUCTION: 2.0,
    OpCategory.IRREGULAR: 1.3,
}

_PIII_RATIOS = {
    OpCategory.COPY: 2.2,
    OpCategory.STENCIL: 4.2,
    OpCategory.BLOCKSOLVE: 3.8,
    OpCategory.REDUCTION: 2.8,
    OpCategory.IRREGULAR: 1.6,
}

_G4_RATIOS = {
    OpCategory.COPY: 2.0,
    OpCategory.STENCIL: 3.6,
    OpCategory.BLOCKSOLVE: 3.3,
    OpCategory.REDUCTION: 2.5,
    OpCategory.IRREGULAR: 1.5,
}

MACHINES: dict[str, MachineSpec] = {
    "p690": MachineSpec(
        name="IBM p690 (1.3 GHz, 32 CPUs, Java 1.3.0)",
        clock_mhz=1300.0, ncpus=32, fortran_mops=450.0,
        memory_balance=1.2,
        jvm=JVMModel(
            name="IBM Java 1.3.0",
            op_ratio=_P690_RATIOS,
            thread_overhead=0.10,
            sync_us=100.0,
        ),
        serial_fraction=0.015,
    ),
    "origin2000": MachineSpec(
        name="SGI Origin2000 (250 MHz, 32 CPUs, Java 1.1.8)",
        clock_mhz=250.0, ncpus=32, fortran_mops=60.0,
        memory_balance=1.0,
        jvm=JVMModel(
            name="SGI Java 1.1.8",
            op_ratio=_O2K_RATIOS,
            thread_overhead=0.15,
            sync_us=1500.0,
            coalesces_idle_threads=True,
            low_work_cpu_limit=2,
        ),
        serial_fraction=0.02,
    ),
    "e10000": MachineSpec(
        name="SUN Enterprise10000 (333 MHz, 16 CPUs, Java 1.1.3)",
        clock_mhz=333.0, ncpus=16, fortran_mops=55.0,
        memory_balance=0.9,
        jvm=JVMModel(
            name="SUN Java 1.1.3",
            op_ratio=_E10K_RATIOS,
            thread_overhead=0.18,
            sync_us=2000.0,
            big_job_cpu_cap=(300.0, 4),
        ),
        serial_fraction=0.025,
    ),
    "linux-pc": MachineSpec(
        name="Linux PC (933 MHz, 2 PIII CPUs, Java 1.3.0)",
        clock_mhz=933.0, ncpus=2, fortran_mops=130.0,
        memory_balance=0.8,
        jvm=JVMModel(
            name="Linux Java 1.3.0",
            op_ratio=_PIII_RATIOS,
            thread_overhead=0.12,
            sync_us=300.0,
            # Section 5.2: "On the Linux PIII PC we did not obtain any
            # speedup on any benchmark when using 2 threads" -- the JVM
            # effectively kept both threads on one CPU.
            parallel_cpu_limit=1,
        ),
        serial_fraction=0.03,
    ),
    "xserve": MachineSpec(
        name="Apple Xserve (1 GHz, 2 G4 CPUs, Java 1.3.1)",
        clock_mhz=1000.0, ncpus=2, fortran_mops=160.0,
        memory_balance=0.85,
        jvm=JVMModel(
            name="Apple Java 1.3.1",
            op_ratio=_G4_RATIOS,
            thread_overhead=0.12,
            sync_us=300.0,
        ),
        serial_fraction=0.03,
    ),
}


def machine(name: str) -> MachineSpec:
    """Look up a machine by key (p690, origin2000, e10000, linux-pc, xserve)."""
    try:
        return MACHINES[name]
    except KeyError:
        raise KeyError(
            f"unknown machine {name!r}; known: {sorted(MACHINES)}"
        ) from None
